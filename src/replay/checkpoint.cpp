#include "replay/checkpoint.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "replay/replay.h"

namespace mapg {
namespace {

/// Streaming FNV-1a over a canonical little-endian byte encoding.  Every
/// field of every state struct goes through here in a fixed order; doubles
/// are hashed by bit pattern, not value, so -0.0 vs 0.0 and NaN payloads
/// all count (the golden pins bit-exactness, nothing weaker).
class Fnv {
 public:
  void u8(std::uint8_t v) { byte(v); }
  void b(bool v) { byte(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i, v >>= 8) byte(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i, v >>= 8) byte(static_cast<std::uint8_t>(v));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t digest() const { return h_; }

 private:
  void byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= 0x100000001B3ULL;
  }
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

void hash(Fnv& f, const RunningStat& s) {
  f.u64(s.count());
  f.f64(s.mean());
  f.f64(s.m2());
  f.f64(s.min());
  f.f64(s.max());
}

void hash(Fnv& f, const Histogram& h) {
  f.f64(h.lo());
  f.f64(h.hi());
  f.u64(h.buckets());
  for (std::size_t i = 0; i < h.buckets(); ++i) f.u64(h.bucket_count(i));
  f.u64(h.underflow());
  f.u64(h.overflow());
  f.u64(h.total());
}

void hash(Fnv& f, const CoreStats& s) {
  f.u64(s.instrs);
  f.u64(s.cycles);
  for (const std::uint64_t n : s.instr_by_class) f.u64(n);
  f.u64(s.stalls_dram);
  f.u64(s.stalls_other);
  f.u64(s.stall_cycles_dram);
  f.u64(s.stall_cycles_other);
  f.u64(s.penalty_cycles);
  f.u64(s.mlp_limit_stalls);
  hash(f, s.dram_stall_hist);
  hash(f, s.outstanding_at_stall);
}

void hash(Fnv& f, const MemAccessResult& r) {
  f.u64(r.complete);
  f.u64(r.commit);
  f.u64(r.estimate);
  f.u8(static_cast<std::uint8_t>(r.served_by));
  f.b(r.merged);
  f.b(r.prefetched);
}

void hash(Fnv& f, const Core::State& s) {
  f.u64(s.now);
  f.u32(s.slot);
  f.u64(s.stats_base);
  f.u64(s.next_id);
  f.u64(s.scoreboard.size());
  for (const Core::Blocker& b : s.scoreboard) {
    f.u64(b.ready);
    f.u64(b.commit);
    f.u64(b.estimate);
    f.b(b.dram);
  }
  f.u64(s.outstanding.size());
  for (const MemAccessResult& r : s.outstanding) hash(f, r);
  hash(f, s.stats);
}

void hash(Fnv& f, const CacheStats& s) {
  f.u64(s.read_hits);
  f.u64(s.read_misses);
  f.u64(s.write_hits);
  f.u64(s.write_misses);
  f.u64(s.writebacks);
  f.u64(s.evictions);
  f.u64(s.prefetch_fills);
}

void hash(Fnv& f, const Cache::State& s) {
  f.u64(s.lines.size());
  for (const Cache::Line& l : s.lines) {
    f.u64(l.tag);
    f.b(l.valid);
    f.b(l.dirty);
    f.b(l.prefetched);
    f.u64(l.lru_stamp);
  }
  f.u64(s.plru_bits.size());
  for (const std::uint8_t b : s.plru_bits) f.u8(b);
  f.u64(s.stamp);
  for (const std::uint64_t w : s.victim_prng) f.u64(w);
  hash(f, s.stats);
}

void hash(Fnv& f, const Dram::State& s) {
  f.u64(s.channels.size());
  for (const Dram::Channel& ch : s.channels) {
    f.u64(ch.banks.size());
    for (const Dram::Bank& b : ch.banks) {
      f.u64(b.open_row);
      f.b(b.row_open);
      f.u64(b.ready_at);
      f.u64(b.activated_at);
    }
    f.u64(ch.bus_free_at);
    // The posted-write queue is live controller state: a resumed run must
    // re-issue exactly these writes at exactly the deferred times the
    // from-zero run would (docs/DRAM.md §3).
    f.u64(ch.write_queue.size());
    for (const Dram::PendingWrite& w : ch.write_queue) {
      f.u64(w.line_addr);
      f.u64(w.enqueued);
    }
    f.u64(ch.idle_from);
    f.u64(ch.accounted_until);
  }
  f.u64(s.stats.reads);
  f.u64(s.stats.writes);
  f.u64(s.stats.row_hits);
  f.u64(s.stats.row_closed);
  f.u64(s.stats.row_conflicts);
  f.u64(s.stats.refresh_delays);
  f.u64(s.stats.writes_queued);
  f.u64(s.stats.writes_starved);
  f.u64(s.stats.writes_overflowed);
  f.u64(s.stats.writes_drained);
  f.u64(s.stats.write_queue_peak);
  f.u64(s.stats.write_wait_cycles);
  f.u64(s.stats.write_wait_max);
  hash(f, s.stats.read_latency);
  f.u64(s.stats.active_cycles);
  f.u64(s.stats.refresh_cycles);
  f.u64(s.stats.powerdown_cycles);
  f.u64(s.stats.selfrefresh_cycles);
  f.u64(s.stats.powerdown_entries);
  f.u64(s.stats.selfrefresh_entries);
  f.u64(s.stats.lowpower_exit_delay);
}

void hash(Fnv& f, const StreamPrefetcher::State& s) {
  f.u64(s.table.size());
  for (const StreamPrefetcher::Stream& st : s.table) {
    f.u64(st.next_demand);
    f.u64(st.next_issue);
    f.u8(static_cast<std::uint8_t>(st.dir));
    f.u32(st.hits);
    f.u64(st.lru);
  }
  f.u64(s.tick);
  f.u64(s.stats.trained);
  f.u64(s.stats.issued);
  f.u64(s.stats.streams);
}

void hash(Fnv& f, const MemoryHierarchy::State& s) {
  hash(f, s.l1);
  hash(f, s.l2);
  hash(f, s.dram);
  hash(f, s.prefetcher);
  f.u64(s.stats.loads);
  f.u64(s.stats.stores);
  f.u64(s.stats.served_l1);
  f.u64(s.stats.served_l2);
  f.u64(s.stats.served_dram);
  f.u64(s.stats.merged);
  f.u64(s.stats.dram_fills);
  f.u64(s.stats.prefetch_issued);
  f.u64(s.stats.prefetch_merges);
  // The merge table's bucket order is not canonical; sort by line address
  // so equal tables always hash equal.
  std::vector<std::pair<Addr, MemAccessResult>> inflight(s.inflight.begin(),
                                                         s.inflight.end());
  std::sort(inflight.begin(), inflight.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  f.u64(inflight.size());
  for (const auto& [addr, r] : inflight) {
    f.u64(addr);
    hash(f, r);
  }
}

}  // namespace

SimCheckpoint capture_checkpoint(const Core& core, const MemoryHierarchy& mem,
                                 std::uint64_t instr_pos, bool in_warmup,
                                 std::uint64_t windows) {
  SimCheckpoint ck;
  ck.instr_pos = instr_pos;
  ck.windows = windows;
  ck.in_warmup = in_warmup;
  ck.core = core.export_state();
  ck.mem = mem.export_state();
  return ck;
}

std::uint64_t checkpoint_fingerprint(const SimCheckpoint& ck) {
  Fnv f;
  f.u64(ck.instr_pos);
  f.u64(ck.windows);
  f.b(ck.in_warmup);
  hash(f, ck.core);
  hash(f, ck.mem);
  return f.digest();
}

SimResult resume_from_checkpoint(const StallTimeline& timeline,
                                 const SimCheckpoint& ck,
                                 const std::string& policy_spec) {
  const SimConfig& cfg = timeline.config;
  const PgCircuit circuit(cfg.pg, cfg.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  const StallKernelParams kparams = make_stall_kernel_params(cfg, circuit);
  PgController controller(*policy, circuit, nullptr, kparams);

  // Rebuild the controller at the checkpoint by feeding the recorded event
  // prefix — exactly what replay_policy does, stats reset at the warmup
  // boundary included.  The precondition (every prefix event penalty-free
  // under this policy) makes the rebuilt state identical to the direct
  // run's controller at this instruction position; the resume cycles the
  // prefix feed returns are therefore already reflected in ck and are
  // discarded here.
  const StallSeries& warm = timeline.record.warmup_stalls;
  const StallSeries& meas = timeline.record.stalls;
  if (ck.in_warmup) {
    for (std::uint64_t i = 0; i < ck.windows; ++i) controller.on_stall(warm[i]);
  } else {
    for (std::size_t i = 0; i < warm.size(); ++i) controller.on_stall(warm[i]);
    controller.reset_stats();  // no-op when warmup==0, matching run_impl
    const std::uint64_t measured = ck.windows - warm.size();
    for (std::uint64_t i = 0; i < measured; ++i) controller.on_stall(meas[i]);
  }

  MemoryHierarchy mem(cfg.mem);
  Core core(cfg.core, mem, &controller);
  core.set_step_mode(kparams.mode);
  core.import_state(ck.core);
  mem.import_state(ck.mem);

  SharedTraceView trace(timeline.record.trace);
  trace.seek(static_cast<std::size_t>(ck.instr_pos));

  // Continue direct simulation, replicating run_impl's phase sequence from
  // the restore point on.  A boundary checkpoint (in_warmup == false,
  // instr_pos == warmup) was captured after the settle/reset sequence, so
  // the else branch needs no boundary handling; the trailing settle_power
  // is idempotent either way.
  if (ck.in_warmup) {
    core.run(trace, cfg.warmup_instructions - ck.instr_pos);
    mem.dram().settle_power(core.now());
    core.reset_stats();
    mem.reset_stats();
    controller.reset_stats();
    core.run(trace, cfg.instructions);
  } else {
    core.run(trace,
             cfg.warmup_instructions + cfg.instructions - ck.instr_pos);
  }
  mem.dram().settle_power(core.now());

  // Assemble exactly as run_impl does (replay_policy already duplicates the
  // energy recomputation; the run-level obs roll-up is intentionally not
  // repeated here, matching replay_policy).
  SimResult result;
  result.workload = timeline.profile.name;
  result.policy = policy->name();
  result.ctx = policy->context();
  result.core = core.stats();
  result.hier = mem.stats();
  result.l1 = mem.l1_stats();
  result.l2 = mem.l2_stats();
  result.dram = mem.dram_stats();
  result.gating = controller.stats();
  result.energy = compute_energy(cfg.tech, &circuit, result.core,
                                 result.gating.activity);
  const DramEnergyBreakdown dram_e = compute_dram_energy_breakdown(
      result.dram, cfg.mem.dram, cfg.tech, cfg.dram_energy,
      result.core.cycles, result.gating.dram_pd_channel_cycles);
  result.energy.dram_j = dram_e.total_j();
  result.energy.dram_background_j = dram_e.background_j;
  result.energy.dram_lowpower_saved_j = dram_e.lowpower_saved_j;
  return result;
}

ResumeOutcome resume_policy(const StallTimeline& timeline,
                            const std::string& policy_spec,
                            std::uint64_t max_prefix_windows) {
  ResumeOutcome out;
  // Latest eligible checkpoint: the most instructions skipped while every
  // prefix event stays strictly before the first penalized window.
  const SimCheckpoint* best = nullptr;
  for (const SimCheckpoint& ck : timeline.checkpoints) {
    if (ck.windows > max_prefix_windows) continue;
    if (best == nullptr || ck.instr_pos > best->instr_pos) best = &ck;
  }
  if (best == nullptr) return out;

  out.result = resume_from_checkpoint(timeline, *best, policy_spec);
  out.ok = true;
  out.from_instr = best->instr_pos;
  out.windows_replayed = best->windows;
  MAPG_OBS_COUNTER_INC("sim.replay.prefix_resumes");
  MAPG_OBS_COUNTER_ADD("sim.replay.windows_saved", best->windows);
  return out;
}

}  // namespace mapg
