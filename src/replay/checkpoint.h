// Architectural checkpoints + prefix-resume for penalized replay cells.
//
// replay_policy (replay.h) reconstitutes a cell only when EVERY window
// resolves penalty-free; one penalized window voids the equivalence and the
// cell used to re-simulate from cycle 0.  But the equivalence does not die
// at the run level — it dies at the first penalized window.  Everything
// before timeline position k is still bit-identical to the reference, so a
// direct simulation may begin at any recorded point <= k instead of at 0.
//
// While the `none` reference is being recorded, record_timeline captures a
// SimCheckpoint every config.checkpoint_stride instructions (and at the
// warmup boundary): the complete mutable state of the core and the memory
// hierarchy, frozen between instructions.  What must be inside, and why
// (docs/MODEL.md §4c gives the full equivalence argument):
//
//   - Core: clock, issue slot, scoreboard, outstanding-miss pool, stats
//     (incl. histogram/moments) — CoreStats.cycles is relative to
//     stats_base, so both travel together.
//   - Caches: tags, dirty/prefetch bits, LRU stamps + PLRU bits + the
//     random-victim PRNG stream, per level.
//   - MSHR merge table: whether a later access merges (and thus skips tag
//     access entirely) depends on it — dropping it perturbs tag state.
//   - DRAM: bank open rows / ready / tRAS anchors, bus occupancy, and the
//     low-power anchors (idle_from / accounted_until) that determine both
//     residency classification and the tXP/tXS exit penalty a post-resume
//     access pays.  Refresh needs NO anchor: Dram::skip_refresh and the
//     stall kernels' refresh meter are anchored at absolute tREFI
//     multiples, so restoring the clock restores refresh alignment.
//   - PRNG streams: the trace generator's stream is NOT here — the
//     materialized trace buffer plus a seek position replaces it exactly.
//
// The PgController is deliberately NOT serialized: controller state is a
// pure deterministic function of the StallEvent sequence (stall_kernel.h
// anchor contract), so the resume path rebuilds it by feeding the recorded
// event prefix [0, checkpoint.windows) through a fresh controller — the
// same construction replay_policy uses, including the stats reset at the
// warmup boundary.
//
// resume_policy() then seeks the shared trace to the checkpoint position
// and continues DIRECT simulation to the end, replicating run_impl's phase
// sequence (warmup remainder, settle_power, resets, measured phase) from
// the restore point on.  tests/test_checkpoint.cpp proves resume-at-k
// byte-identical (full SimResult JSON) to the from-zero run for every
// checkpoint index, including DRAM power-down configs.
//
// Layering: exec -> replay -> core.  Nothing in core depends on replay.
#pragma once

#include <cstdint>
#include <string>

#include "core/sim.h"

namespace mapg {

struct StallTimeline;  // replay.h (which includes this header)

/// One architectural checkpoint of a recording run, frozen between
/// instructions.  `windows` is the number of stall events already emitted
/// (warmup + measured) — the prefix a resumed controller must be fed, and
/// the eligibility bound: the checkpoint is a valid resume point for a
/// policy whose first penalized window has index >= windows.
struct SimCheckpoint {
  std::uint64_t instr_pos = 0;  ///< absolute instructions consumed
  std::uint64_t windows = 0;    ///< stall events emitted before capture
  bool in_warmup = false;       ///< warmup boundary not yet crossed
  Core::State core;
  MemoryHierarchy::State mem;
};

/// Snapshot `core` + `mem` into a checkpoint (Simulator::CheckpointHook
/// adapter; record_timeline supplies the event count from its sinks).
SimCheckpoint capture_checkpoint(const Core& core, const MemoryHierarchy& mem,
                                 std::uint64_t instr_pos, bool in_warmup,
                                 std::uint64_t windows);

/// FNV-1a over a canonical little-endian byte encoding of EVERY checkpoint
/// field, in a fixed order.  tests/test_golden.cpp pins it so silent
/// state-layout or capture-semantics drift fails CI instead of corrupting
/// resumes.
std::uint64_t checkpoint_fingerprint(const SimCheckpoint& ck);

struct ResumeOutcome {
  /// true: `result` is bit-identical to a from-zero direct run of the
  /// policy.  false: no checkpoint at or before the first penalized window
  /// exists (or none that saves work) — the caller falls back to a full
  /// direct simulation.
  bool ok = false;
  std::uint64_t from_instr = 0;        ///< checkpoint position resumed from
  std::uint64_t windows_replayed = 0;  ///< prefix events fed, not simulated
  SimResult result;                    ///< valid only when ok
};

/// Resume `policy_spec` from the latest checkpoint whose event count is
/// <= `max_prefix_windows` — the number of penalty-free windows a failed
/// replay_policy observed before bailing (ReplayOutcome::windows - 1).
/// Throws std::invalid_argument on an unknown spec.  Increments the
/// sim.replay.prefix_resumes / sim.replay.windows_saved obs counters on
/// success.
ResumeOutcome resume_policy(const StallTimeline& timeline,
                            const std::string& policy_spec,
                            std::uint64_t max_prefix_windows);

/// Resume from one specific checkpoint (the differential test's backbone;
/// resume_policy routes through this).  Precondition: every recorded event
/// with index < ck.windows resolves penalty-free under the policy —
/// resume_policy guarantees it via the failed replay's bail index.
SimResult resume_from_checkpoint(const StallTimeline& timeline,
                                 const SimCheckpoint& ck,
                                 const std::string& policy_spec);

}  // namespace mapg
