#include "replay/replay.h"

#include <stdexcept>

#include "obs/obs.h"

namespace mapg {

StallTimeline record_timeline(const SimConfig& config,
                              const WorkloadProfile& profile) {
  StallTimeline tl;
  tl.config = config;
  tl.profile = profile;
  // The hook reads the recorder's sinks live: at capture time they hold
  // exactly the events resolved so far, which is the prefix a resumed
  // controller must be fed (SimCheckpoint::windows).  At the warmup
  // boundary the measured sink is still empty, so the count is the warmup
  // event total — matching the boundary reset semantics.
  Simulator::CheckpointHook hook;
  if (config.checkpoint_stride > 0) {
    hook = [&tl](const Core& core, const MemoryHierarchy& mem,
                 std::uint64_t instr_pos, bool in_warmup) {
      tl.checkpoints.push_back(capture_checkpoint(
          core, mem, instr_pos, in_warmup,
          tl.record.warmup_stalls.size() + tl.record.stalls.size()));
    };
  }
  tl.reference = std::make_shared<const SimResult>(
      Simulator(config).run_recorded(profile, "none", tl.record, hook));
  MAPG_OBS_COUNTER_INC("sim.replay.timelines");
  return tl;
}

StallTimeline record_timeline_traced(const SimConfig& config,
                                     TraceSource& trace,
                                     const std::string& workload_name) {
  StallTimeline tl;
  tl.config = config;
  tl.profile.name = workload_name;  // stub: replay reads only the name
  Simulator::CheckpointHook hook;
  if (config.checkpoint_stride > 0) {
    hook = [&tl](const Core& core, const MemoryHierarchy& mem,
                 std::uint64_t instr_pos, bool in_warmup) {
      tl.checkpoints.push_back(capture_checkpoint(
          core, mem, instr_pos, in_warmup,
          tl.record.warmup_stalls.size() + tl.record.stalls.size()));
    };
  }
  tl.reference = std::make_shared<const SimResult>(Simulator(config).run_recorded(
      trace, workload_name, "none", tl.record, hook));
  MAPG_OBS_COUNTER_INC("sim.replay.timelines");
  return tl;
}

ReplayOutcome replay_policy(const StallTimeline& timeline,
                            const std::string& policy_spec) {
  const SimConfig& cfg = timeline.config;
  const PgCircuit circuit(cfg.pg, cfg.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  // Same kernel parameters (mode, refresh timing, energy rates,
  // coordinated-PD inputs) and a null arbiter, exactly as the single-core
  // direct path constructs them — the controller cannot tell it is being
  // replayed.
  const StallKernelParams kparams = make_stall_kernel_params(cfg, circuit);
  PgController controller(*policy, circuit, nullptr, kparams);

  ReplayOutcome out;
  // The series is SoA (cpu/core.h): iterate by index so each field is read
  // from its own contiguous stream, materializing one event at a time.
  auto feed = [&](const StallSeries& events) {
    const std::size_t n = events.size();
    for (std::size_t i = 0; i < n; ++i) {
      const StallEvent ev = events[i];
      ++out.windows;
      if (controller.on_stall(ev) != ev.data_ready) return false;
    }
    return true;
  };

  // Warmup events are replayed too — gating runs during warmup in a direct
  // run, so adaptive policies carry identical observed state into the
  // measured phase — then the controller stats reset mirrors run_impl's
  // post-warmup reset (a no-op when there was no warmup, matching the
  // direct warmup==0 path).
  const bool exact = [&] {
    if (!feed(timeline.record.warmup_stalls)) return false;
    controller.reset_stats();
    return feed(timeline.record.stalls);
  }();
  MAPG_OBS_COUNTER_ADD("sim.replay.windows", out.windows);
  if (!exact) return out;

  // Every window resolved penalty-free: core timing, trace consumption,
  // hierarchy and DRAM state match the reference bit for bit, so those
  // statistics are copied; gating comes from the replayed controller and
  // energy is a pure function of the two (same formulas as run_impl).
  SimResult r = *timeline.reference;
  r.policy = policy->name();
  r.ctx = policy->context();
  r.gating = controller.stats();
  r.energy = compute_energy(cfg.tech, &circuit, r.core, r.gating.activity);
  const DramEnergyBreakdown dram_e = compute_dram_energy_breakdown(
      r.dram, cfg.mem.dram, cfg.tech, cfg.dram_energy, r.core.cycles,
      r.gating.dram_pd_channel_cycles);
  r.energy.dram_j = dram_e.total_j();
  r.energy.dram_background_j = dram_e.background_j;
  r.energy.dram_lowpower_saved_j = dram_e.lowpower_saved_j;

  out.ok = true;
  out.result = std::move(r);
  MAPG_OBS_COUNTER_INC("sim.replay.cells");
  return out;
}

}  // namespace mapg
