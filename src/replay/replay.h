// Single-pass policy sweeps: record the stall timeline once, replay it per
// policy.
//
// The enabling observation (pg/stall_kernel.h): a full-core stall window is
// fully determined at onset by its StallEvent plus circuit constants, and
// the StallHandler's returned resume cycle is the ONLY channel by which a
// gating policy influences core or memory timing.  A policy whose every
// window resolves with resume == data_ready (zero visible wake penalty)
// therefore produces a run whose core timing, trace consumption, cache and
// DRAM state are bit-identical to the `none` reference — only the gating
// statistics and the energy derived from them differ.
//
// record_timeline() runs the reference once (under `none`), materializing
// the trace into an immutable shared buffer and capturing the ordered
// StallEvent sequence.  replay_policy() then re-resolves each recorded
// window through the real PgController (same policy factory, same stall
// kernel, same parameters as a direct run) and reconstitutes a complete
// SimResult by copying the reference's core/hierarchy/DRAM statistics and
// recomputing gating + energy.
//
// Exactness guard: the replayer checks resume == data_ready per window as
// it goes.  The first penalized window voids the equivalence — a penalty
// shifts all later timing, refresh alignment, and DRAM state — so the
// replayer bails out (ReplayOutcome::ok == false) and the caller falls back
// to direct simulation for that cell.  The fallback no longer has to start
// from cycle 0: record_timeline also captures periodic architectural
// checkpoints, and resume_policy (replay/checkpoint.h) continues direct
// simulation from the latest checkpoint before the first penalized window.
// tests/test_replay.cpp proves replay == direct JSON-identical for eligible
// cells and byte-identical fallback; tests/test_checkpoint.cpp proves the
// same for prefix-resume at every checkpoint index.
//
// Layering: exec -> replay -> core.  Nothing in core depends on replay.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/sim.h"
#include "replay/checkpoint.h"

namespace mapg {

/// One recorded reference run: the platform/workload identity it was
/// recorded under, the materialized trace + stall sequence, and the full
/// `none` SimResult (shared; also usable as the sweep's baseline cell).
struct StallTimeline {
  SimConfig config;
  WorkloadProfile profile;
  RunRecord record;
  std::shared_ptr<const SimResult> reference;
  /// Architectural checkpoints captured during the recording run, in
  /// instruction order: one at every config.checkpoint_stride boundary plus
  /// one at the warmup boundary (post-reset).  Empty when the stride is 0.
  std::vector<SimCheckpoint> checkpoints;
};

/// Run the `none` reference once and capture the timeline.  Deterministic
/// function of (config, profile); the reference result is bit-identical to
/// Simulator(config).run(profile, "none").
StallTimeline record_timeline(const SimConfig& config,
                              const WorkloadProfile& profile);

/// Trace-source variant: records the reference from an externally provided
/// stream (e.g. a file-trace window in sampled simulation, src/sample)
/// instead of a profile's generator.  The timeline's `profile` is a stub
/// carrying only `workload_name` — replay_policy and resume_policy consult
/// nothing else (they feed recorded events / the materialized trace), so
/// every replay tier applies to traced timelines unchanged.
StallTimeline record_timeline_traced(const SimConfig& config,
                                     TraceSource& trace,
                                     const std::string& workload_name);

struct ReplayOutcome {
  /// true: every window resolved with resume == data_ready and `result` is
  /// bit-identical to a direct run.  false: a window was penalized (windows
  /// counts how many were replayed, the last one being the penalized one);
  /// the caller must fall back to direct simulation.
  bool ok = false;
  std::uint64_t windows = 0;  ///< windows replayed (warmup + measured)
  SimResult result;           ///< valid only when ok
};

/// Replay the timeline under `policy_spec`.  Throws std::invalid_argument
/// on an unknown spec (same contract as Simulator::run).  Increments the
/// sim.replay.{windows,cells} obs counters; fallback accounting is the
/// caller's job (it alone knows whether a prefix-resume saved the cell or
/// a full from-zero simulation was needed — sim.replay.full_fallbacks).
ReplayOutcome replay_policy(const StallTimeline& timeline,
                            const std::string& policy_spec);

}  // namespace mapg
