#include "cpu/core.h"

#include <algorithm>
#include <cassert>

namespace mapg {

Core::Core(CoreConfig config, MemoryHierarchy& mem, StallHandler* handler)
    : config_(config),
      mem_(mem),
      handler_(handler ? handler : &default_handler_) {
  assert(config_.valid() && "invalid core configuration");
  scoreboard_.resize(config_.scoreboard_window);
  outstanding_.reserve(config_.mlp_window);
}

void Core::reset_stats() {
  stats_ = CoreStats{};
  stats_base_ = now_;
}

Core::State Core::export_state() const {
  State s;
  s.now = now_;
  s.slot = slot_;
  s.stats_base = stats_base_;
  s.next_id = next_id_;
  s.scoreboard = scoreboard_;
  s.outstanding = outstanding_;
  s.stats = stats_;
  return s;
}

void Core::import_state(const State& s) {
  assert(s.scoreboard.size() == scoreboard_.size() &&
         "checkpoint was captured under a different CoreConfig");
  now_ = s.now;
  slot_ = s.slot;
  stats_base_ = s.stats_base;
  next_id_ = s.next_id;
  scoreboard_ = s.scoreboard;
  outstanding_ = s.outstanding;
  stats_ = s.stats;
}

void Core::prune_outstanding() {
  std::erase_if(outstanding_, [this](const MemAccessResult& r) {
    return r.complete <= now_;
  });
}

void Core::stall_until(Blocker blocker, StallReason reason) {
  StallEvent ev;
  ev.start = now_;
  ev.data_ready = blocker.ready;
  ev.commit = blocker.commit;
  ev.estimate = blocker.estimate;
  ev.dram = blocker.dram;
  ev.reason = reason;

  const Cycle resume = std::max(handler_->on_stall(ev), ev.data_ready);
  if (step_mode_ == StepMode::kFastForward)
    account_stall_bulk(ev, resume);
  else
    account_stall_stepped(ev, resume);
  if (reason == StallReason::kMlpLimit) ++stats_.mlp_limit_stalls;

  now_ = resume;
  slot_ = 0;  // issue restarts at the top of the resume cycle
}

void Core::account_stall_bulk(const StallEvent& ev, Cycle resume) {
  record_stall_window(ev, ev.data_ready - ev.start, resume - ev.data_ready);
}

void Core::account_stall_stepped(const StallEvent& ev, Cycle resume) {
  // Classify every stalled cycle individually: before data_ready the core
  // waits on memory, from data_ready to resume it pays the wakeup penalty.
  Cycle stall_len = 0;
  Cycle penalty = 0;
  for (Cycle t = ev.start; t < resume; ++t) {
    if (t < ev.data_ready)
      ++stall_len;
    else
      ++penalty;
  }
  record_stall_window(ev, stall_len, penalty);
}

void Core::record_stall_window(const StallEvent& ev, Cycle stall_len,
                               Cycle penalty) {
  if (ev.dram) {
    ++stats_.stalls_dram;
    stats_.stall_cycles_dram += stall_len;
    stats_.dram_stall_hist.add(static_cast<double>(stall_len));
    // MLP proxy: in-flight DRAM fills when the core blocks on memory (the
    // blocking fill itself is still outstanding, so >= 1 normally).
    stats_.outstanding_at_stall.add(
        static_cast<double>(outstanding_.size()));
  } else {
    ++stats_.stalls_other;
    stats_.stall_cycles_other += stall_len;
  }
  stats_.penalty_cycles += penalty;
}

void Core::run(TraceSource& trace, std::uint64_t max_instrs) {
  for (std::uint64_t n = 0; n < max_instrs && step(trace); ++n) {
  }
}

void Core::run_batched(TraceSource& trace, std::uint64_t max_instrs) {
  // Same per-instruction semantics as run() — exec_one is step()'s body —
  // but fetched a block at a time, so the trace source fills SoA lanes
  // without per-instruction virtual dispatch, and the derived cycles
  // counter is refreshed per block instead of per instruction.  Statistics
  // are only observed between run calls, so both deferrals are invisible.
  InstrBlock block;
  std::uint64_t done = 0;
  while (done < max_instrs) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(max_instrs - done, InstrBlock::kCapacity));
    trace.next_batch(block, want);
    if (block.count == 0) break;
    for (std::size_t i = 0; i < block.count; ++i)
      exec_one(block.op[i], block.addr[i], block.dep_dist[i]);
    done += block.count;
    stats_.cycles = now_ - stats_base_;
    if (block.count < want) break;  // trace exhausted
  }
}

void Core::exec_one(OpClass op, Addr addr, std::uint16_t dep_dist) {
  const InstrId id = next_id_++;

  // 1. Dependence check: does this instruction consume an unreturned load?
  Blocker& slot = scoreboard_[id % scoreboard_.size()];
  if (slot.ready != kNoCycle) {
    if (slot.ready > now_) stall_until(slot, StallReason::kDependence);
    slot = Blocker{};
  }

  ++stats_.instrs;
  ++stats_.instr_by_class[static_cast<std::size_t>(op)];

  switch (op) {
    case OpClass::kLoad: {
      // 2. MLP credit: a new load needs a free miss slot before it can
      // probe the hierarchy (MSHR-full semantics).  A load that merges
      // into an in-flight fill shares that entry and needs no credit.
      prune_outstanding();
      if (outstanding_.size() >= config_.mlp_window &&
          !mem_.line_in_flight(addr)) {
        const auto earliest = std::min_element(
            outstanding_.begin(), outstanding_.end(),
            [](const MemAccessResult& a, const MemAccessResult& b) {
              return a.complete < b.complete;
            });
        Blocker b;
        b.ready = earliest->complete;
        b.commit = earliest->commit;
        b.estimate = earliest->estimate;
        b.dram = true;
        stall_until(b, StallReason::kMlpLimit);
        prune_outstanding();
      }

      const MemAccessResult res = mem_.load(addr, now_);
      if (res.served_by == ServedBy::kDram && !res.merged)
        outstanding_.push_back(res);

      // 3. Register the consumer's blocker (keep the latest-finishing
      // producer if several loads feed the same consumer slot).
      if (dep_dist > 0) {
        assert(dep_dist < scoreboard_.size() &&
               "trace dep_dist exceeds scoreboard window");
        Blocker& dep = scoreboard_[(id + dep_dist) % scoreboard_.size()];
        if (dep.ready == kNoCycle || res.complete > dep.ready) {
          dep.ready = res.complete;
          dep.commit = res.commit;
          dep.estimate = res.estimate;
          dep.dram = res.served_by == ServedBy::kDram;
        }
      }
      advance_slot();
      break;
    }
    case OpClass::kStore:
      // Retires through an unbounded write buffer: updates memory state
      // (and thus future latencies) but never blocks issue.
      mem_.store(addr, now_);
      advance_slot();
      break;
    case OpClass::kDiv:
      // Unpipelined divider blocks issue for its full latency and flushes
      // the current issue group.
      now_ += config_.div_latency;
      slot_ = 0;
      break;
    case OpClass::kMul:
    case OpClass::kFp:
    case OpClass::kAlu:
    case OpClass::kBranch:
      // Pipelined issue: `issue_width` instructions per cycle; latencies
      // only matter through load dependences, which the trace encodes.
      advance_slot();
      break;
  }
}

bool Core::step(TraceSource& trace) {
  Instr instr;
  if (!trace.next(instr)) return false;
  exec_one(instr.op, instr.addr, instr.dep_dist);
  stats_.cycles = now_ - stats_base_;
  return true;
}

}  // namespace mapg
