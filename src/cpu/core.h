// Trace-driven cycle-level core model.
//
// Microarchitecture: scalar in-order issue with a scoreboard for load
// results and an outstanding-miss credit pool (the "MLP window").  Loads are
// non-blocking: the core keeps issuing until either (a) an instruction needs
// a load result that has not returned, or (b) a new load cannot get a miss
// credit.  Both cases idle the *entire* core — exactly the condition MAPG
// gates on — and are reported to a pluggable StallHandler, which may delay
// the resume point (modeling power-gating wakeup penalties).
//
// Why not full out-of-order: the gating opportunity is characterized by the
// distribution of full-core stall intervals, which this model reproduces
// with two knobs (dependency distance from the trace, MLP window here) while
// remaining analytically testable.  See DESIGN.md §6.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/hierarchy.h"
#include "trace/instr.h"

namespace mapg {

struct CoreConfig {
  Cycle mul_latency = 3;   ///< pipelined
  Cycle fp_latency = 4;    ///< pipelined
  Cycle div_latency = 20;  ///< unpipelined: blocks issue
  /// Instructions issued per cycle (superscalar width).  Loads/stores and
  /// pipelined ALU ops share issue slots; a divide flushes the slot group.
  std::uint32_t issue_width = 1;
  /// Maximum outstanding DRAM fills before a new load stalls issue.
  std::uint32_t mlp_window = 8;
  /// Scoreboard depth; must exceed the largest trace dep_dist.
  std::uint32_t scoreboard_window = 128;

  bool valid() const {
    return issue_width > 0 && mlp_window > 0 && scoreboard_window > 1;
  }
};

enum class StallReason : std::uint8_t {
  kDependence,  ///< an instruction needs an unreturned load result
  kMlpLimit,    ///< no miss credit available for a new load
};

/// Everything the platform knows about a full-core stall, at stall onset.
/// Policies must respect the information boundary: `data_ready` is ground
/// truth (visible to the clairvoyant Oracle only); real policies may use
/// `estimate` immediately and `data_ready` only from `commit` onward.
struct StallEvent {
  Cycle start = 0;       ///< first idle cycle
  Cycle data_ready = 0;  ///< cycle the blocking data becomes usable
  Cycle commit = 0;      ///< cycle at which data_ready became exactly known
  Cycle estimate = 0;    ///< controller's estimate of data_ready at issue
  bool dram = false;     ///< blocking request was served by DRAM
  StallReason reason = StallReason::kDependence;

  Cycle length() const { return data_ready - start; }
};

/// Structure-of-arrays storage for an ordered StallEvent sequence.  The
/// replay tiers (src/replay) stream these linearly — every window of every
/// policy cell walks the full sequence — so keeping each field in its own
/// contiguous vector turns that walk into four sequential streams instead
/// of a 34-byte-stride gather.  push_back/operator[] round-trip StallEvent
/// exactly; the two sub-Cycle fields (dram flag, reason) pack into one byte.
class StallSeries {
 public:
  void clear() {
    start_.clear();
    data_ready_.clear();
    commit_.clear();
    estimate_.clear();
    flags_.clear();
  }
  void reserve(std::size_t n) {
    start_.reserve(n);
    data_ready_.reserve(n);
    commit_.reserve(n);
    estimate_.reserve(n);
    flags_.reserve(n);
  }
  void push_back(const StallEvent& ev) {
    start_.push_back(ev.start);
    data_ready_.push_back(ev.data_ready);
    commit_.push_back(ev.commit);
    estimate_.push_back(ev.estimate);
    flags_.push_back(static_cast<std::uint8_t>(
        (ev.dram ? 1u : 0u) |
        (static_cast<unsigned>(ev.reason) << 1)));
  }
  StallEvent operator[](std::size_t i) const {
    StallEvent ev;
    ev.start = start_[i];
    ev.data_ready = data_ready_[i];
    ev.commit = commit_[i];
    ev.estimate = estimate_[i];
    ev.dram = (flags_[i] & 1u) != 0;
    ev.reason = static_cast<StallReason>(flags_[i] >> 1);
    return ev;
  }
  std::size_t size() const { return start_.size(); }
  bool empty() const { return start_.empty(); }

 private:
  std::vector<Cycle> start_;
  std::vector<Cycle> data_ready_;
  std::vector<Cycle> commit_;
  std::vector<Cycle> estimate_;
  std::vector<std::uint8_t> flags_;  ///< bit 0: dram; bits 1+: reason
};

/// Receives every full-core stall and dictates the actual resume cycle.
/// The power-gating controller in src/core implements this.
class StallHandler {
 public:
  virtual ~StallHandler() = default;
  /// Return the cycle at which the core may resume issue.  Values below
  /// event.data_ready are clamped up; values above model wakeup penalties.
  virtual Cycle on_stall(const StallEvent& event) { return event.data_ready; }
};

/// Tee decorator: appends every StallEvent to a sink series, then forwards
/// to the wrapped handler unchanged.  Because it never alters the returned
/// resume cycle, a recorded run is bit-identical to an unrecorded one — the
/// property the replay engine (src/replay) is built on.  The sink can be
/// switched mid-run (e.g. at the warmup boundary) so event phases land in
/// separate series.
class RecordingStallHandler final : public StallHandler {
 public:
  explicit RecordingStallHandler(StallHandler& inner) : inner_(inner) {}

  void set_sink(StallSeries& sink) { sink_ = &sink; }

  Cycle on_stall(const StallEvent& event) override {
    if (sink_ != nullptr) sink_->push_back(event);
    return inner_.on_stall(event);
  }

 private:
  StallHandler& inner_;
  StallSeries* sink_ = nullptr;
};

struct CoreStats {
  std::uint64_t instrs = 0;
  std::uint64_t cycles = 0;  ///< total execution time
  std::array<std::uint64_t, kNumOpClasses> instr_by_class{};

  std::uint64_t stalls_dram = 0;
  std::uint64_t stalls_other = 0;
  std::uint64_t stall_cycles_dram = 0;   ///< excludes handler penalties
  std::uint64_t stall_cycles_other = 0;
  std::uint64_t penalty_cycles = 0;  ///< handler-added cycles (wakeup cost)
  std::uint64_t mlp_limit_stalls = 0;

  /// Distribution of DRAM-blocked stall durations (R-Fig.1 input).
  Histogram dram_stall_hist{0.0, 1024.0, 64};
  RunningStat outstanding_at_stall;  ///< in-flight fills at DRAM-stall onset

  std::uint64_t idle_cycles() const {
    return stall_cycles_dram + stall_cycles_other + penalty_cycles;
  }
  std::uint64_t busy_cycles() const { return cycles - idle_cycles(); }
  double ipc() const {
    return cycles ? static_cast<double>(instrs) / static_cast<double>(cycles)
                  : 0.0;
  }
};

class Core {
 public:
  /// One scoreboard slot: the blocker a future instruction may wait on.
  /// Public because it is part of Core::State (below).
  struct Blocker {
    Cycle ready = kNoCycle;  ///< kNoCycle = slot empty
    Cycle commit = 0;
    Cycle estimate = 0;
    bool dram = false;
  };

  /// Complete mutable state of the core: clock, issue slot, instruction ids,
  /// scoreboard, outstanding-miss pool, and statistics (histogram and
  /// running moments included).  export_state()/import_state() round-trip it
  /// bit-exactly; import requires a Core constructed with the same
  /// CoreConfig.  This is the cpu half of an architectural checkpoint
  /// (src/replay/checkpoint.h) — the StallHandler is NOT part of it (the
  /// resume path reconstructs the controller by replaying the recorded
  /// event prefix; see docs/MODEL.md §4c).
  struct State {
    Cycle now = 0;
    std::uint32_t slot = 0;
    Cycle stats_base = 0;
    InstrId next_id = 0;
    std::vector<Blocker> scoreboard;
    std::vector<MemAccessResult> outstanding;
    CoreStats stats;
  };

  Core(CoreConfig config, MemoryHierarchy& mem,
       StallHandler* handler = nullptr);

  State export_state() const;
  void import_state(const State& s);

  /// Execute up to `max_instrs` from `trace` (or until it ends).  Can be
  /// called repeatedly; time continues from the previous call.
  void run(TraceSource& trace, std::uint64_t max_instrs);

  /// Batched variant of run(): pulls InstrBlocks via TraceSource::next_batch
  /// and executes them through the same per-instruction semantics
  /// (exec_one), deferring only the derived cycles counter to block
  /// boundaries.  Statistics are observed exclusively between run calls, so
  /// the result is bit-identical to run() — a pure execution-strategy knob
  /// (SimConfig::batched), proven by the differential suite and the
  /// micro_sim_throughput identity gate.
  void run_batched(TraceSource& trace, std::uint64_t max_instrs);

  /// Execute exactly one instruction; returns false at end-of-trace.  The
  /// multicore scheduler uses this to interleave cores in time order.
  bool step(TraceSource& trace);

  const CoreStats& stats() const { return stats_; }
  Cycle now() const { return now_; }

  /// Select how stall windows are charged to the counters: kFastForward
  /// (default) bulk-advances in closed form; kCycleAccurate classifies each
  /// stalled cycle in a per-cycle loop.  Both produce identical statistics
  /// (the differential tests prove it); the knob exists so the closed-form
  /// arithmetic stays falsifiable.
  void set_step_mode(StepMode mode) { step_mode_ = mode; }
  StepMode step_mode() const { return step_mode_; }

  /// Zero the statistics without disturbing microarchitectural state; used
  /// after cache warmup.  Subsequent stats cover only post-reset execution.
  void reset_stats();

 private:
  /// Execute one already-fetched instruction: the shared body of step() and
  /// run_batched().  Everything except the trace fetch and the derived
  /// stats_.cycles update.
  void exec_one(OpClass op, Addr addr, std::uint16_t dep_dist);
  void stall_until(Blocker blocker, StallReason reason);
  /// Bulk-advance API: charge the whole window [ev.start, resume) to the
  /// stall counters in closed form (fast-forward mode)...
  void account_stall_bulk(const StallEvent& ev, Cycle resume);
  /// ...or walk it cycle by cycle (cycle-accurate reference mode).
  void account_stall_stepped(const StallEvent& ev, Cycle resume);
  /// Shared sink: one classified stall window into the counters.
  void record_stall_window(const StallEvent& ev, Cycle stall_len,
                           Cycle penalty);
  void prune_outstanding();
  /// Consume one issue slot; advances the clock when the group is full.
  void advance_slot() {
    if (++slot_ >= config_.issue_width) {
      slot_ = 0;
      now_ += 1;
    }
  }

  CoreConfig config_;
  MemoryHierarchy& mem_;
  StallHandler* handler_;
  StallHandler default_handler_;

  StepMode step_mode_ = StepMode::kFastForward;
  Cycle now_ = 0;
  std::uint32_t slot_ = 0;  ///< issue slot used within the current cycle
  Cycle stats_base_ = 0;  ///< cycle at the last reset_stats()
  InstrId next_id_ = 0;
  std::vector<Blocker> scoreboard_;  ///< ring keyed by instr id % window
  /// Outstanding (non-merged) DRAM fills; bounded by mlp_window.
  std::vector<MemAccessResult> outstanding_;
  CoreStats stats_;
};

}  // namespace mapg
