// Fundamental scalar types shared by every MAPG library.
//
// All simulator time is expressed in core clock cycles (`Cycle`).  Converting
// to wall-clock time or energy requires the technology parameters in
// src/power/tech_params.h; nothing below this layer ever deals in seconds.
#pragma once

#include <cstdint>
#include <limits>

namespace mapg {

/// Absolute simulation time, in core clock cycles.
using Cycle = std::uint64_t;

/// A physical byte address.
using Addr = std::uint64_t;

/// Monotonically increasing instruction sequence number within a trace.
using InstrId = std::uint64_t;

/// Sentinel for "no cycle" / "unknown time".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// Sentinel for "no address".
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/// Saturating cycle addition; keeps kNoCycle absorbing.
constexpr Cycle cycle_add(Cycle a, Cycle b) {
  if (a == kNoCycle || b == kNoCycle) return kNoCycle;
  return (a > kNoCycle - b) ? kNoCycle : a + b;
}

/// Difference that clamps at zero instead of wrapping.
constexpr Cycle cycle_sub_sat(Cycle a, Cycle b) { return a > b ? a - b : 0; }

/// How the simulator advances time across a full-core stall window.
///
/// kFastForward resolves the whole window in closed form (MAPG's own
/// observation applied to the simulator: once the DRAM column command is
/// scheduled the stall's end time is deterministic, so there is nothing to
/// discover by ticking through it).  kCycleAccurate walks the window one
/// cycle at a time through per-component tick() dispatch and is the
/// reference the fast path is proven bit-identical against
/// (tests/test_differential.cpp).
enum class StepMode : std::uint8_t { kFastForward = 0, kCycleAccurate = 1 };

}  // namespace mapg
