// Deterministic pseudo-random number generation for workload synthesis.
//
// Reproducibility is a hard requirement: every experiment in EXPERIMENTS.md
// must regenerate bit-identical traces from a (profile, seed) pair.  We use
// xoshiro256** seeded through SplitMix64 — fast, well-studied, and stable
// across platforms (unlike std::default_random_engine, whose mapping is
// implementation-defined).  All distribution helpers below are hand-rolled
// for the same reason: libstdc++/libc++ distributions are not portable.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace mapg {

/// SplitMix64: used only to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna).  Period 2^256 - 1.
class Prng {
 public:
  using result_type = std::uint64_t;
  /// The full generator state.  Exposed so architectural checkpoints
  /// (src/replay/checkpoint.h) can snapshot and restore a stream mid-run
  /// bit-exactly; the state is the only mutable member, so
  /// set_state(state()) round-trips perfectly.
  using State = std::array<std::uint64_t, 4>;

  explicit Prng(std::uint64_t seed = 0x3243f6a8885a308dULL) { reseed(seed); }

  const State& state() const { return state_; }
  void set_state(const State& s) { state_ = s; }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).  53-bit mantissa path.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, n).  Lemire's unbiased multiply-shift rejection.
  std::uint64_t below(std::uint64_t n) {
    if (n <= 1) return 0;
    // 128-bit multiply rejection sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Geometric: number of failures before first success, success prob p.
  std::uint64_t geometric(double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return ~0ULL;
    const double u = 1.0 - uniform();  // (0, 1]
    return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    const double u = 1.0 - uniform();  // (0, 1]
    return -mean * std::log(u);
  }

  /// Pareto-ish bounded heavy tail in [lo, hi] with shape alpha (> 0).
  /// Used for dependency-distance tails in pointer-chasing profiles.
  std::uint64_t bounded_pareto(std::uint64_t lo, std::uint64_t hi,
                               double alpha) {
    if (hi <= lo) return lo;
    const double l = static_cast<double>(lo);
    const double h = static_cast<double>(hi) + 1.0;
    const double u = uniform();
    const double la = std::pow(l, -alpha);
    const double ha = std::pow(h, -alpha);
    const double x = std::pow(la - u * (la - ha), -1.0 / alpha);
    auto v = static_cast<std::uint64_t>(x);
    return v > hi ? hi : (v < lo ? lo : v);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mapg
