// Console table / CSV rendering used by the benchmark harnesses to print the
// reconstructed paper tables and figure series.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mapg {

/// Column-aligned text table.  Cells are strings; numeric helpers format with
/// fixed precision.  `print` pads to the widest cell per column.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& begin_row();
  Table& cell(const std::string& value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }

  std::size_t rows() const { return rows_.size(); }

  /// Pretty-print with a header rule, e.g. for stdout.
  void print(std::ostream& os) const;

  /// Comma-separated form; quotes cells containing commas.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches and examples.
std::string format_fixed(double v, int precision);
std::string format_percent(double fraction, int precision = 1);
std::string format_si(double v, int precision = 2);  ///< 1.2k / 3.4M / 5.6G

}  // namespace mapg
