#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mapg {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stdev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets ? buckets : 1)),
      counts_(buckets ? buckets : 1, 0) {}

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge guard
  counts_[idx] += weight;
}

void Histogram::merge(const Histogram& other) {
  // Only same-shape histograms may merge; shape mismatch is a logic error.
  if (other.counts_.size() != counts_.size()) return;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  std::size_t rows = 0;
  for (std::size_t i = 0; i < counts_.size() && rows < max_rows; ++i) {
    if (counts_[i] == 0) continue;
    const double pct =
        total_ ? 100.0 * static_cast<double>(counts_[i]) /
                     static_cast<double>(total_)
               : 0.0;
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << "): " << counts_[i]
       << " (" << pct << "%)\n";
    ++rows;
  }
  if (underflow_) os << "underflow: " << underflow_ << "\n";
  if (overflow_) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

void LogHistogram::add(std::uint64_t x, std::uint64_t weight) {
  std::size_t idx = 0;
  if (x > 0) idx = static_cast<std::size_t>(64 - __builtin_clzll(x));
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += weight;
  total_ += weight;
}

std::uint64_t LogHistogram::bucket_lo(std::size_t i) const {
  return i == 0 ? 0 : (1ULL << (i - 1));
}

std::uint64_t LogHistogram::bucket_hi(std::size_t i) const {
  return i == 0 ? 1 : (1ULL << i);
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double pct =
        total_ ? 100.0 * static_cast<double>(counts_[i]) /
                     static_cast<double>(total_)
               : 0.0;
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << "): " << counts_[i]
       << " (" << pct << "%)\n";
  }
  return os.str();
}

std::uint64_t CounterSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace mapg
