#include "common/config.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace mapg {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

bool KvConfig::parse_text(const std::string& text, std::string* error) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      if (error)
        *error = "line " + std::to_string(lineno) + ": missing '=': " + line;
      return false;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      if (error) *error = "line " + std::to_string(lineno) + ": empty key";
      return false;
    }
    set(key, value);
  }
  return true;
}

std::vector<std::string> KvConfig::parse_args(int argc,
                                              const char* const* argv) {
  std::vector<std::string> leftovers;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      leftovers.push_back(argv[i]);
      continue;
    }
    set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)));
  }
  return leftovers;
}

void KvConfig::set(const std::string& key, const std::string& value) {
  kv_[key] = value;
}

bool KvConfig::contains(const std::string& key) const {
  return kv_.count(key) != 0;
}

std::optional<std::string> KvConfig::get(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string KvConfig::get_or(const std::string& key,
                             const std::string& dflt) const {
  return get(key).value_or(dflt);
}

std::int64_t KvConfig::get_int(const std::string& key,
                               std::int64_t dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 0);
  return (end && *end == '\0' && !v->empty()) ? parsed : dflt;
}

std::uint64_t KvConfig::get_uint(const std::string& key,
                                 std::uint64_t dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 0);
  return (end && *end == '\0' && !v->empty()) ? parsed : dflt;
}

double KvConfig::get_double(const std::string& key, double dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return (end && *end == '\0' && !v->empty()) ? parsed : dflt;
}

bool KvConfig::get_bool(const std::string& key, bool dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  if (*v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  return dflt;
}

}  // namespace mapg
