// Minimal key=value configuration store.
//
// Examples and bench binaries accept "--key=value" overrides; this class is
// the single parsing point so every component's knobs are scriptable without
// pulling in a heavyweight config library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mapg {

class KvConfig {
 public:
  KvConfig() = default;

  /// Parse "key=value" lines; '#' starts a comment; blank lines are skipped.
  /// Returns false (and stops) on a malformed line.
  bool parse_text(const std::string& text, std::string* error = nullptr);

  /// Parse argv-style overrides: each "--key=value" or "key=value" is stored.
  /// Unrecognized words (no '=') are returned for the caller to handle.
  std::vector<std::string> parse_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);
  bool contains(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  std::uint64_t get_uint(const std::string& key, std::uint64_t dflt) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  const std::map<std::string, std::string>& all() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace mapg
