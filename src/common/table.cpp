#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace mapg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) begin_row();
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << v;
    }
    os << " |\n";
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      if (row[c].find(',') != std::string::npos)
        os << '"' << row[c] << '"';
      else
        os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  return format_fixed(100.0 * fraction, precision) + "%";
}

std::string format_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (v >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  return format_fixed(scaled, precision) + suffix;
}

}  // namespace mapg
