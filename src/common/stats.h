// Streaming statistics used throughout the simulator: running moments,
// linear and logarithmic histograms, and simple named counters.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace mapg {

/// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stdev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Raw second central moment; together with restore() this lets the
  /// result cache (src/exec) round-trip a RunningStat bit-exactly.
  double m2() const { return m2_; }
  static RunningStat restore(std::uint64_t n, double mean, double m2,
                             double min, double max) {
    RunningStat s;
    if (n == 0) return s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1);
  void merge(const Histogram& other);

  /// Rebuild a histogram from serialized state (src/exec result cache);
  /// the total is re-derived, preserving add()'s invariant.
  static Histogram restore(double lo, double hi,
                           std::vector<std::uint64_t> counts,
                           std::uint64_t underflow, std::uint64_t overflow) {
    Histogram h(lo, hi, counts.size());
    h.counts_ = std::move(counts);
    h.underflow_ = underflow;
    h.overflow_ = overflow;
    h.total_ = underflow + overflow;
    for (const std::uint64_t c : h.counts_) h.total_ += c;
    return h;
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t buckets() const { return counts_.size(); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Value below which `q` (0..1) of the mass lies (linear interpolation
  /// within the containing bucket; under/overflow clamp to the range edges).
  double quantile(double q) const;

  /// Render as "lo..hi: count (percent)" lines, skipping empty buckets.
  std::string to_string(std::size_t max_rows = 64) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Power-of-two bucketed histogram for long-tailed cycle counts.
class LogHistogram {
 public:
  void add(std::uint64_t x, std::uint64_t weight = 1);
  std::uint64_t total() const { return total_; }
  std::size_t buckets() const { return counts_.size(); }
  /// Bucket i covers [2^(i-1), 2^i) for i >= 1; bucket 0 covers {0}.
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::uint64_t bucket_lo(std::size_t i) const;
  std::uint64_t bucket_hi(std::size_t i) const;
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// String-keyed event counters; cheap enough for per-simulation bookkeeping,
/// not for per-cycle hot paths (those use dedicated struct fields).
class CounterSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) {
    counters_[name] += by;
  }
  std::uint64_t get(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace mapg
