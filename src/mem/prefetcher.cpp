#include "mem/prefetcher.h"

#include <cassert>

namespace mapg {

StreamPrefetcher::StreamPrefetcher(PrefetcherConfig config)
    : config_(config) {
  assert(config_.valid() && "invalid prefetcher configuration");
  table_.resize(config_.table_entries);
}

void StreamPrefetcher::emit_window(Stream& s, Addr demand_line,
                                   std::uint64_t line_bytes,
                                   std::vector<Addr>& out) {
  const Addr span = static_cast<Addr>(config_.degree) * line_bytes;
  if (s.dir > 0) {
    if (s.next_issue == kNoAddr || s.next_issue <= demand_line)
      s.next_issue = demand_line + line_bytes;
    const Addr limit = demand_line + span;  // furthest line in the window
    while (s.next_issue <= limit) {
      out.push_back(s.next_issue);
      ++stats_.issued;
      s.next_issue += line_bytes;
    }
  } else {
    if (s.next_issue == kNoAddr ||
        (s.next_issue != kNoAddr && s.next_issue >= demand_line)) {
      if (demand_line < line_bytes) return;  // at the bottom of memory
      s.next_issue = demand_line - line_bytes;
    }
    const Addr limit = demand_line >= span ? demand_line - span : 0;
    while (s.next_issue >= limit) {
      out.push_back(s.next_issue);
      ++stats_.issued;
      if (s.next_issue < line_bytes) {
        s.next_issue = kNoAddr;  // reached address zero: stream exhausted
        break;
      }
      s.next_issue -= line_bytes;
    }
  }
}

void StreamPrefetcher::observe(Addr line_addr, std::uint64_t line_bytes,
                               std::vector<Addr>& out) {
  if (!config_.enable) return;
  ++tick_;

  // 1. Does this event extend a tracked stream?
  for (Stream& s : table_) {
    if (s.next_demand != line_addr) continue;
    ++stats_.trained;
    ++s.hits;
    s.lru = tick_;
    s.next_demand = s.dir > 0 ? line_addr + line_bytes
                              : (line_addr >= line_bytes
                                     ? line_addr - line_bytes
                                     : kNoAddr);
    if (s.hits >= config_.confirm_after)
      emit_window(s, line_addr, line_bytes, out);
    return;
  }

  // 2. Descending detection: a previous miss allocated an ascending stream
  // expecting line+2; this miss one line BELOW it means a descending sweep.
  for (Stream& s : table_) {
    if (s.next_demand != kNoAddr && s.dir > 0 && s.hits == 0 &&
        line_addr + 2 * line_bytes == s.next_demand) {
      s.dir = -1;
      s.next_demand =
          line_addr >= line_bytes ? line_addr - line_bytes : kNoAddr;
      s.next_issue = kNoAddr;
      s.hits = 1;
      s.lru = tick_;
      ++stats_.trained;
      if (s.hits >= config_.confirm_after)
        emit_window(s, line_addr, line_bytes, out);
      return;
    }
  }

  // 3. New stream: allocate the LRU (or free) entry, assuming ascending.
  Stream* victim = &table_.front();
  for (Stream& s : table_) {
    if (s.next_demand == kNoAddr) {
      victim = &s;
      break;
    }
    if (s.lru < victim->lru) victim = &s;
  }
  ++stats_.streams;
  victim->next_demand = line_addr + line_bytes;
  victim->next_issue = kNoAddr;
  victim->dir = 1;
  victim->hits = 0;
  victim->lru = tick_;
}

}  // namespace mapg
