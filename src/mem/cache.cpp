#include "mem/cache.h"

#include <bit>
#include <cassert>

namespace mapg {

bool CacheConfig::valid() const {
  if (line_bytes == 0 || !std::has_single_bit(line_bytes)) return false;
  if (assoc == 0) return false;
  if (size_bytes == 0 || size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                                       assoc) != 0)
    return false;
  const std::uint64_t sets = num_sets();
  return sets > 0 && std::has_single_bit(sets);
}

Cache::Cache(CacheConfig config) : config_(config) {
  assert(config_.valid() && "invalid cache geometry");
  line_mask_ = config_.line_bytes - 1;
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(config_.line_bytes)));
  set_mask_ = config_.num_sets() - 1;
  lines_.resize(config_.num_sets() * config_.assoc);
  plru_bits_.assign(config_.num_sets() * config_.assoc, 0);
}

std::uint64_t Cache::set_index(Addr addr) const {
  return (addr >> line_shift_) & set_mask_;
}

Addr Cache::tag_of(Addr addr) const {
  return addr >> line_shift_;  // full line number as tag; simple and exact
}

void Cache::decode_block(const Addr* addrs, std::size_t n, Addr* lines,
                         std::uint64_t* sets, Addr* tags) const {
  // One pass per output lane: each loop body is a single shift/mask with no
  // cross-iteration dependence, which is exactly the shape auto-vectorizers
  // turn into SIMD mask/shift instructions.
  const std::uint64_t line_mask = line_mask_;
  const std::uint32_t line_shift = line_shift_;
  const std::uint64_t set_mask = set_mask_;
  if (lines != nullptr)
    for (std::size_t i = 0; i < n; ++i) lines[i] = addrs[i] & ~line_mask;
  if (sets != nullptr)
    for (std::size_t i = 0; i < n; ++i)
      sets[i] = (addrs[i] >> line_shift) & set_mask;
  if (tags != nullptr)
    for (std::size_t i = 0; i < n; ++i) tags[i] = addrs[i] >> line_shift;
}

void Cache::touch(std::uint64_t set, std::uint32_t way) {
  Line& line = lines_[set * config_.assoc + way];
  line.lru_stamp = ++stamp_;
  if (config_.repl == ReplPolicy::kTreePlru) {
    // Walk from the root, flipping each internal node away from this way.
    std::uint8_t* bits = &plru_bits_[set * config_.assoc];
    std::uint32_t node = 0;
    std::uint32_t lo = 0, hi = config_.assoc;
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (way < mid) {
        bits[node] = 1;  // next victim search goes right
        node = 2 * node + 1;
        hi = mid;
      } else {
        bits[node] = 0;  // next victim search goes left
        node = 2 * node + 2;
        lo = mid;
      }
    }
  }
}

std::uint32_t Cache::choose_victim(std::uint64_t set) {
  const std::uint32_t assoc = config_.assoc;
  Line* set_lines = &lines_[set * assoc];

  // Invalid ways first, for every policy.
  for (std::uint32_t w = 0; w < assoc; ++w)
    if (!set_lines[w].valid) return w;

  switch (config_.repl) {
    case ReplPolicy::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < assoc; ++w)
        if (set_lines[w].lru_stamp < set_lines[victim].lru_stamp) victim = w;
      return victim;
    }
    case ReplPolicy::kTreePlru: {
      const std::uint8_t* bits = &plru_bits_[set * assoc];
      std::uint32_t node = 0;
      std::uint32_t lo = 0, hi = assoc;
      while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (bits[node]) {  // bit set = go right
          node = 2 * node + 2;
          lo = mid;
        } else {
          node = 2 * node + 1;
          hi = mid;
        }
      }
      return lo;
    }
    case ReplPolicy::kRandom:
      return static_cast<std::uint32_t>(victim_prng_.below(assoc));
  }
  return 0;
}

Cache::AccessResult Cache::access(Addr addr, bool is_write) {
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* set_lines = &lines_[set * config_.assoc];

  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Line& line = set_lines[w];
    if (line.valid && line.tag == tag) {
      touch(set, w);
      if (is_write) {
        ++stats_.write_hits;
        if (config_.write_back) line.dirty = true;
      } else {
        ++stats_.read_hits;
      }
      AccessResult result{.hit = true};
      if (line.prefetched) {
        line.prefetched = false;  // consume the re-trigger signal
        result.hit_on_prefetched = true;
      }
      return result;
    }
  }

  // Miss: allocate (write-allocate for both reads and writes).
  if (is_write)
    ++stats_.write_misses;
  else
    ++stats_.read_misses;

  const std::uint32_t victim = choose_victim(set);
  Line& line = set_lines[victim];
  AccessResult result;
  if (line.valid) {
    ++stats_.evictions;
    if (line.dirty) {
      ++stats_.writebacks;
      result.writeback = true;
      result.writeback_addr = line.tag << line_shift_;
    }
  }
  line.valid = true;
  line.tag = tag;
  line.dirty = is_write && config_.write_back;
  line.prefetched = false;
  touch(set, victim);
  return result;
}

Cache::AccessResult Cache::fill(Addr addr) {
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* set_lines = &lines_[set * config_.assoc];

  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    if (set_lines[w].valid && set_lines[w].tag == tag)
      return AccessResult{.hit = true};  // already resident: nothing to do
  }

  ++stats_.prefetch_fills;
  const std::uint32_t victim = choose_victim(set);
  Line& line = set_lines[victim];
  AccessResult result;
  if (line.valid) {
    ++stats_.evictions;
    if (line.dirty) {
      ++stats_.writebacks;
      result.writeback = true;
      result.writeback_addr = line.tag << line_shift_;
    }
  }
  line.valid = true;
  line.tag = tag;
  line.dirty = false;
  line.prefetched = true;
  touch(set, victim);
  return result;
}

bool Cache::contains(Addr addr) const {
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const Line* set_lines = &lines_[set * config_.assoc];
  for (std::uint32_t w = 0; w < config_.assoc; ++w)
    if (set_lines[w].valid && set_lines[w].tag == tag) return true;
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) line = Line{};
  plru_bits_.assign(plru_bits_.size(), 0);
  stamp_ = 0;
}

Cache::State Cache::export_state() const {
  State s;
  s.lines = lines_;
  s.plru_bits = plru_bits_;
  s.stamp = stamp_;
  s.victim_prng = victim_prng_.state();
  s.stats = stats_;
  return s;
}

void Cache::import_state(const State& s) {
  assert(s.lines.size() == lines_.size() &&
         s.plru_bits.size() == plru_bits_.size() &&
         "checkpoint was captured under a different CacheConfig");
  lines_ = s.lines;
  plru_bits_ = s.plru_bits;
  stamp_ = s.stamp;
  victim_prng_.set_state(s.victim_prng);
  stats_ = s.stats;
}

}  // namespace mapg
