#include "mem/hierarchy.h"

#include <cassert>

namespace mapg {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig config)
    : config_(config),
      l1_(config.l1d),
      owned_l2_(std::make_unique<Cache>(config.l2)),
      owned_dram_(std::make_unique<Dram>(config.dram)),
      l2_(owned_l2_.get()),
      dram_(owned_dram_.get()),
      prefetcher_(config.prefetch) {
  assert(config_.valid() && "invalid hierarchy configuration");
}

MemoryHierarchy::MemoryHierarchy(HierarchyConfig config, Cache& shared_l2,
                                 Dram& shared_dram)
    : config_(config),
      l1_(config.l1d),
      l2_(&shared_l2),
      dram_(&shared_dram),
      prefetcher_(config.prefetch) {
  assert(config_.valid() && "invalid hierarchy configuration");
  assert(shared_l2.config().line_bytes == config.l1d.line_bytes &&
         "shared L2 line size must match the private L1");
}

MemoryHierarchy::State MemoryHierarchy::export_state() const {
  assert(owns_l2_and_dram() &&
         "checkpointing is defined for the single-core owning hierarchy");
  State s;
  s.l1 = l1_.export_state();
  s.l2 = l2_->export_state();
  s.dram = dram_->export_state();
  s.prefetcher = prefetcher_.export_state();
  s.stats = stats_;
  s.inflight = inflight_;
  return s;
}

void MemoryHierarchy::import_state(const State& s) {
  assert(owns_l2_and_dram() &&
         "checkpointing is defined for the single-core owning hierarchy");
  l1_.import_state(s.l1);
  l2_->import_state(s.l2);
  dram_->import_state(s.dram);
  prefetcher_.import_state(s.prefetcher);
  stats_ = s.stats;
  // A copied merge table may hash into different buckets, but no simulator
  // output depends on its iteration order: lookups are keyed and
  // prune_inflight's erase order does not affect the surviving set.
  inflight_ = s.inflight;
}

void MemoryHierarchy::prune_inflight(Cycle now) {
  // The merge table tracks at most the core's MLP window worth of fills, so
  // a linear sweep is cheap; erase fills whose data has already returned.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.complete <= now)
      it = inflight_.erase(it);
    else
      ++it;
  }
}

void MemoryHierarchy::handle_l1_writeback(Addr line_addr, Cycle now) {
  // Inclusive-style assumption: the victim usually hits in L2.  If it does
  // not (it was evicted from L2 first), the write allocates in L2 and any
  // dirty L2 victim streams to DRAM as a fire-and-forget write.
  const Cache::AccessResult l2_res = l2_->access(line_addr, /*is_write=*/true);
  if (l2_res.writeback) {
    const Cycle t_req = now + config_.l1d.hit_latency + config_.l2.hit_latency +
                        config_.mc_request_latency;
    dram_->access(l2_res.writeback_addr, /*is_write=*/true, t_req);
  }
}

void MemoryHierarchy::run_prefetcher(Addr miss_line, Cycle t_req) {
  prefetch_scratch_.clear();
  prefetcher_.observe(miss_line, config_.l2.line_bytes,
                      prefetch_scratch_);
  for (Addr target : prefetch_scratch_) {
    if (l2_->contains(target) || inflight_.count(target) != 0) continue;
    const DramResult dres = dram_->access(target, /*is_write=*/false, t_req);
    const Cache::AccessResult fill_res = l2_->fill(target);
    if (fill_res.writeback)
      dram_->access(fill_res.writeback_addr, /*is_write=*/true, t_req);
    ++stats_.prefetch_issued;

    MemAccessResult entry;
    entry.complete = dres.completion + config_.fill_return_latency;
    entry.commit = dres.commit;
    entry.estimate = dres.estimate + config_.fill_return_latency;
    entry.served_by = ServedBy::kDram;
    entry.prefetched = true;
    inflight_.emplace(target, entry);
  }
}

MemAccessResult MemoryHierarchy::access(Addr addr, bool is_write, Cycle now) {
  const Addr line = l1_.line_addr(addr);
  prune_inflight(now);

  // MSHR merge: a second access to a line whose fill is outstanding waits on
  // the same fill instead of re-missing (the line was already allocated).
  if (auto it = inflight_.find(line); it != inflight_.end()) {
    MemAccessResult merged = it->second;
    merged.merged = true;
    ++stats_.merged;
    if (merged.prefetched) ++stats_.prefetch_merges;
    return merged;
  }

  const Cache::AccessResult l1_res = l1_.access(line, is_write);
  if (l1_res.writeback) handle_l1_writeback(l1_res.writeback_addr, now);
  if (l1_res.hit) {
    MemAccessResult res;
    res.complete = now + config_.l1d.hit_latency;
    res.commit = now;
    res.estimate = res.complete;
    res.served_by = ServedBy::kL1;
    return res;
  }

  const Cycle l2_probe = now + config_.l1d.hit_latency;
  const Cache::AccessResult l2_res = l2_->access(line, /*is_write=*/false);
  if (l2_res.hit) {
    // First demand touch of a prefetched line keeps the stream running
    // ahead even when prefetching has eliminated the misses entirely.
    if (l2_res.hit_on_prefetched) {
      run_prefetcher(line, l2_probe + config_.l2.hit_latency +
                               config_.mc_request_latency);
    }
    MemAccessResult res;
    res.complete = l2_probe + config_.l2.hit_latency;
    res.commit = now;
    res.estimate = res.complete;
    res.served_by = ServedBy::kL2;
    return res;
  }

  // L2 miss: demand fill from DRAM, then retire the L2 victim writeback
  // (demand reads are prioritized over victim writes, as in a real MC).
  const Cycle t_req = l2_probe + config_.l2.hit_latency +
                      config_.mc_request_latency;
  const DramResult dres = dram_->access(line, /*is_write=*/false, t_req);
  if (l2_res.writeback)
    dram_->access(l2_res.writeback_addr, /*is_write=*/true, t_req);

  MemAccessResult res;
  res.complete = dres.completion + config_.fill_return_latency;
  res.commit = dres.commit;
  res.estimate = dres.estimate + config_.fill_return_latency;
  res.served_by = ServedBy::kDram;
  ++stats_.dram_fills;
  inflight_.emplace(line, res);
  run_prefetcher(line, t_req);
  return res;
}

MemAccessResult MemoryHierarchy::load(Addr addr, Cycle now) {
  ++stats_.loads;
  MemAccessResult res = access(addr, /*is_write=*/false, now);
  switch (res.served_by) {
    case ServedBy::kL1:
      ++stats_.served_l1;
      break;
    case ServedBy::kL2:
      ++stats_.served_l2;
      break;
    case ServedBy::kDram:
      ++stats_.served_dram;
      break;
  }
  return res;
}

MemAccessResult MemoryHierarchy::store(Addr addr, Cycle now) {
  ++stats_.stores;
  return access(addr, /*is_write=*/true, now);
}

}  // namespace mapg
