#include "mem/dram.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/obs.h"

namespace mapg {

namespace {
/// Sentinel for "this transition never happens".
constexpr Cycle kNever = ~Cycle{0};
}  // namespace

const char* to_string(DramStandard s) {
  switch (s) {
    case DramStandard::kCustom: return "custom";
    case DramStandard::kDdr3_1600: return "ddr3-1600";
    case DramStandard::kDdr4_2400: return "ddr4-2400";
    case DramStandard::kLpddr4_3200: return "lpddr4-3200";
  }
  return "custom";
}

const char* to_string(PagePolicy p) {
  switch (p) {
    case PagePolicy::kOpen: return "open";
    case PagePolicy::kClosed: return "closed";
    case PagePolicy::kHybrid: return "hybrid";
  }
  return "open";
}

bool parse_dram_standard(const std::string& name, DramStandard& out) {
  if (name == "custom") out = DramStandard::kCustom;
  else if (name == "ddr3-1600") out = DramStandard::kDdr3_1600;
  else if (name == "ddr4-2400") out = DramStandard::kDdr4_2400;
  else if (name == "lpddr4-3200") out = DramStandard::kLpddr4_3200;
  else return false;
  return true;
}

bool parse_page_policy(const std::string& name, PagePolicy& out) {
  if (name == "open") out = PagePolicy::kOpen;
  else if (name == "closed") out = PagePolicy::kClosed;
  else if (name == "hybrid") out = PagePolicy::kHybrid;
  else return false;
  return true;
}

void apply_dram_standard(DramConfig& cfg, DramStandard standard) {
  // Core cycles at 3 GHz: cycles = ceil(ns * 3).  Datasheet provenance for
  // every row is tabulated in docs/DRAM.md §2; the DDR3-1600 column must
  // stay equal to DramConfig's member defaults (pinned by
  // tests/test_dram_sched.cpp: StandardTable.Ddr3PresetIsTheDefault).
  cfg.standard = standard;
  switch (standard) {
    case DramStandard::kCustom:
      break;  // label only; keep whatever the caller configured
    case DramStandard::kDdr3_1600:
      // DDR3-1600 CL11-11-11, 4 Gb x8, 8 KiB row (tCK 1.25 ns).
      cfg.row_bytes = 8192;
      cfg.t_rcd = 41;     // 13.75 ns
      cfg.t_rp = 41;      // 13.75 ns
      cfg.t_cl = 41;      // 13.75 ns
      cfg.t_bl = 15;      // BL8 @ 1600 MT/s = 5 ns
      cfg.t_ras = 105;    // 35 ns
      cfg.t_rfc = 480;    // 160 ns (4 Gb)
      cfg.t_refi = 23400; // 7.8 us
      cfg.power.t_pd = 8;
      cfg.power.t_xp = 18;    // 6 ns
      cfg.power.t_cke = 17;   // 5.625 ns
      cfg.power.t_xs = 510;   // tRFC + 10 ns
      cfg.power.powerdown_timeout = 192;
      break;
    case DramStandard::kDdr4_2400:
      // DDR4-2400 CL17-17-17, 8 Gb x8, 8 KiB row (tCK 0.833 ns).
      cfg.row_bytes = 8192;
      cfg.t_rcd = 43;     // 14.16 ns
      cfg.t_rp = 43;      // 14.16 ns
      cfg.t_cl = 43;      // 14.16 ns
      cfg.t_bl = 10;      // BL8 @ 2400 MT/s = 3.33 ns
      cfg.t_ras = 96;     // 32 ns
      cfg.t_rfc = 1050;   // 350 ns (8 Gb)
      cfg.t_refi = 23400; // 7.8 us
      cfg.power.t_pd = 8;
      cfg.power.t_xp = 20;    // 6.4 ns
      cfg.power.t_cke = 15;   // 5 ns
      cfg.power.t_xs = 1080;  // tRFC + 10 ns
      cfg.power.powerdown_timeout = 192;
      break;
    case DramStandard::kLpddr4_3200:
      // LPDDR4-3200 RL28, 8 Gb x16, 2 KiB row (tCK 0.625 ns).
      cfg.row_bytes = 2048;
      cfg.t_rcd = 54;     // 18 ns
      cfg.t_rp = 54;      // 18 ns (tRPpb)
      cfg.t_cl = 53;      // RL28 = 17.5 ns
      cfg.t_bl = 15;      // BL16 @ 3200 MT/s = 5 ns
      cfg.t_ras = 126;    // 42 ns
      cfg.t_rfc = 840;    // 280 ns (tRFCab, 8 Gb)
      cfg.t_refi = 11700; // 3.9 us
      cfg.power.t_pd = 8;
      cfg.power.t_xp = 23;    // 7.5 ns
      cfg.power.t_cke = 23;   // 7.5 ns
      cfg.power.t_xs = 863;   // tRFCab + 7.5 ns (tXSR)
      cfg.power.powerdown_timeout = 96;  // mobile parts park aggressively
      break;
  }
}

bool DramConfig::valid() const {
  if (channels == 0 || banks_per_channel == 0) return false;
  if (line_bytes == 0 || !std::has_single_bit(line_bytes)) return false;
  if (row_bytes < line_bytes || row_bytes % line_bytes != 0) return false;
  if (t_cl == 0 || t_bl == 0) return false;
  if (t_refi > 0 && t_rfc >= t_refi) return false;
  if (queue_depth > 0 && write_starve_limit == 0) return false;
  if (hybrid_addr_bits >= 64) return false;
  if (!power.valid()) return false;
  return true;
}

Dram::Dram(DramConfig config) : config_(config) {
  assert(config_.valid() && "invalid DRAM configuration");
  channels_.resize(config_.channels);
  for (auto& ch : channels_) ch.banks.resize(config_.banks_per_channel);
}

Dram::~Dram() {
  MAPG_OBS_ONLY({
    if (stats_.powerdown_cycles || stats_.selfrefresh_cycles) {
      MAPG_OBS_COUNTER_ADD("sim.dram.powerdown_cycles",
                           stats_.powerdown_cycles);
      MAPG_OBS_COUNTER_ADD("sim.dram.selfrefresh_cycles",
                           stats_.selfrefresh_cycles);
      MAPG_OBS_COUNTER_ADD("sim.dram.powerdown_entries",
                           stats_.powerdown_entries);
      MAPG_OBS_COUNTER_ADD("sim.dram.selfrefresh_entries",
                           stats_.selfrefresh_entries);
    }
    if (stats_.writes_queued) {
      MAPG_OBS_COUNTER_ADD("sim.dram.writes_queued", stats_.writes_queued);
      MAPG_OBS_COUNTER_ADD("sim.dram.write_wait_cycles",
                           stats_.write_wait_cycles);
    }
  });
}

Dram::State Dram::export_state() const {
  State s;
  s.channels = channels_;
  s.stats = stats_;
  return s;
}

void Dram::import_state(const State& s) {
  assert(s.channels.size() == channels_.size() &&
         "checkpoint was captured under a different DramConfig");
  channels_ = s.channels;
  stats_ = s.stats;
}

void Dram::map_address(Addr line_addr, std::uint32_t& channel,
                       std::uint32_t& bank, std::uint64_t& row) const {
  // Line-interleave across channels, then column within the row, then bank:
  // sequential lines hit the same row (per channel) until the row is
  // exhausted, which is what gives streaming workloads row-buffer locality.
  std::uint64_t line_no = line_addr / config_.line_bytes;
  channel = static_cast<std::uint32_t>(line_no % config_.channels);
  line_no /= config_.channels;
  line_no /= config_.lines_per_row();  // discard column-in-row bits
  bank = static_cast<std::uint32_t>(line_no % config_.banks_per_channel);
  row = line_no / config_.banks_per_channel;
}

Cycle Dram::skip_refresh(Cycle start) {
  if (config_.t_refi == 0) return start;
  const Cycle window_start = (start / config_.t_refi) * config_.t_refi;
  if (start < window_start + config_.t_rfc) {
    ++stats_.refresh_delays;
    return window_start + config_.t_rfc;
  }
  return start;
}

Cycle Dram::refresh_overlap(Cycle begin, Cycle end) const {
  if (config_.t_refi == 0 || config_.t_rfc == 0 || end <= begin) return 0;
  const Cycle per = std::min(config_.t_rfc, config_.t_refi);
  const auto busy = [&](Cycle bound) {
    return (bound / config_.t_refi) * per +
           std::min(bound % config_.t_refi, per);
  };
  return busy(end) - busy(begin);
}

void Dram::settle_channel(Channel& ch, Cycle upto) {
  const DramPowerConfig& p = config_.power;
  if (upto <= ch.accounted_until) return;

  const auto account_active = [&](Cycle b, Cycle e) {
    const Cycle ref = refresh_overlap(b, e);
    stats_.refresh_cycles += ref;
    stats_.active_cycles += (e - b) - ref;
  };

  Cycle cur = ch.accounted_until;
  ch.accounted_until = upto;

  // The tail of the previous burst (and any exit ramp) is active time.
  const Cycle busy_end = std::min(upto, std::max(cur, ch.idle_from));
  if (busy_end > cur) {
    account_active(cur, busy_end);
    cur = busy_end;
  }
  if (cur >= upto) return;

  // Idle gap: the timeout machinery.  Entry ramps ([*_at, *_at + t_pd))
  // count as active; residency counts once the state is established.
  const Cycle pd_at = p.powerdown_timeout > 0
                          ? ch.idle_from + p.powerdown_timeout
                          : kNever;
  const Cycle sr_at = p.selfrefresh_timeout > 0
                          ? ch.idle_from + p.selfrefresh_timeout
                          : kNever;
  const Cycle pd_est = pd_at == kNever ? kNever : pd_at + p.t_pd;
  const Cycle sr_est = sr_at == kNever ? kNever : sr_at + p.t_pd;

  const Cycle active_end = std::min(upto, std::min(pd_est, sr_est));
  if (active_end > cur) {
    account_active(cur, active_end);
    cur = active_end;
  }
  if (pd_est < sr_est && upto > pd_est) {
    // Power-down holds until self-refresh is established (CKE stays low
    // across the escalation, so the PD->SR ramp is charged as PD).
    const Cycle pd_end = std::min(upto, sr_est);
    if (cur <= pd_est && pd_end > pd_est) ++stats_.powerdown_entries;
    if (pd_end > cur) {
      stats_.powerdown_cycles += pd_end - cur;
      cur = pd_end;
    }
  }
  if (sr_est != kNever && upto > sr_est) {
    if (cur <= sr_est) ++stats_.selfrefresh_entries;
    if (upto > cur) {
      stats_.selfrefresh_cycles += upto - cur;
      cur = upto;
    }
  }
}

Cycle Dram::power_exit_shift(Channel& ch, Cycle now) {
  const DramPowerConfig& p = config_.power;
  settle_channel(ch, now);
  if (now <= ch.idle_from) return 0;  // channel still busy: no state entered

  const Cycle pd_at = p.powerdown_timeout > 0
                          ? ch.idle_from + p.powerdown_timeout
                          : kNever;
  const Cycle sr_at = p.selfrefresh_timeout > 0
                          ? ch.idle_from + p.selfrefresh_timeout
                          : kNever;

  Cycle shift = 0;
  if (sr_at != kNever && now >= sr_at + p.t_pd) {
    // In self-refresh: exit initiates immediately, first command after tXS.
    shift = p.t_xs;
  } else if (pd_at != kNever && now >= pd_at + p.t_pd) {
    // In power-down: CKE may not rise before tCKE(min) has elapsed since it
    // fell, then the exit ramp takes tXP.  The hold remainder [now,
    // exit_start) delays timing but is classified as active by the next
    // settle (like entry ramps) — advancing accounted_until past `now` here
    // would let a warmup-boundary reset lose those cycles and break the
    // residency-conservation equality.
    const Cycle exit_start = std::max(now, pd_at + p.t_cke);
    shift = (exit_start - now) + p.t_xp;
  } else {
    return 0;  // idle but no state established (entry in progress is free)
  }

  // Both states require all banks precharged: entering closed the rows.
  for (auto& bank : ch.banks) {
    bank.row_open = false;
    bank.open_row = ~0ULL;
  }
  stats_.lowpower_exit_delay += shift;
  return shift;
}

void Dram::settle_power(Cycle now) {
  drain_writes(now);
  if (config_.power.mode != DramPowerMode::kTimeout) return;
  for (auto& ch : channels_) settle_channel(ch, now);
}

Cycle Dram::bank_ready(std::uint32_t channel, std::uint32_t bank) const {
  return channels_.at(channel).banks.at(bank).ready_at;
}

bool Dram::policy_closes_row(std::uint64_t row) const {
  switch (config_.page_policy) {
    case PagePolicy::kOpen:
      return false;
    case PagePolicy::kClosed:
      return true;
    case PagePolicy::kHybrid: {
      // Address-keyed predictor (HAPPY-style, degenerate identity-indexed
      // table): rows whose selected low bits are all zero are predicted
      // reuse-poor and close; every other row stays open.  Deterministic in
      // the row address, so a row's policy never flips mid-run.
      const std::uint64_t mask = (1ULL << config_.hybrid_addr_bits) - 1;
      return (row & mask) == 0;
    }
  }
  return false;
}

DramResult Dram::service_request(Channel& ch, std::uint32_t ch_idx,
                                 std::uint32_t bank_idx, std::uint64_t row,
                                 bool is_write, Cycle now) {
  // Low-power exit: a sleeping channel delays the request by its exit
  // latency.  Applied before the refresh check so an exit that lands inside
  // a refresh window pays the remainder of that window (the device still
  // owes the deferred auto-refresh; see docs/MEMORY_POWER.md).
  Cycle wake = 0;
  if (config_.power.mode == DramPowerMode::kTimeout)
    wake = power_exit_shift(ch, now);

  Bank& bank = ch.banks[bank_idx];

  DramResult res;
  res.channel = ch_idx;
  res.bank = bank_idx;
  res.estimate = now + config_.estimate_latency();

  // Command dispatch can begin once the channel is awake, the bank has
  // finished its prior work, and any refresh in progress has completed.
  Cycle start = skip_refresh(std::max(now + wake, bank.ready_at));

  Cycle col_ready;  // earliest cycle the column command may issue
  if (bank.row_open && bank.open_row == row) {
    res.outcome = RowBufferOutcome::kHit;
    ++stats_.row_hits;
    col_ready = start;
  } else if (!bank.row_open) {
    res.outcome = RowBufferOutcome::kClosed;
    ++stats_.row_closed;
    const Cycle act = start;
    col_ready = act + config_.t_rcd;
    bank.activated_at = act;
    bank.row_open = true;
    bank.open_row = row;
  } else {
    res.outcome = RowBufferOutcome::kConflict;
    ++stats_.row_conflicts;
    // Precharge may not begin before tRAS has elapsed since activation.
    const Cycle pre = std::max(start, bank.activated_at + config_.t_ras);
    const Cycle act = pre + config_.t_rp;
    col_ready = act + config_.t_rcd;
    bank.activated_at = act;
    bank.open_row = row;
  }

  // Data-bus contention: the burst [col + tCL, col + tCL + tBL) must not
  // overlap an earlier burst on this channel.
  Cycle col = col_ready;
  if (col + config_.t_cl < ch.bus_free_at)
    col = ch.bus_free_at - config_.t_cl;
  const Cycle data_start = col + config_.t_cl;
  const Cycle data_end = data_start + config_.t_bl;
  ch.bus_free_at = data_end;

  // The bank can dispatch its next command once this burst's column phase is
  // done (approximates tCCD/tBL spacing between column commands).
  bank.ready_at = col + config_.t_bl;

  // Page-policy close: auto-precharge after the column command.  The
  // precharge may not start before the burst's column phase is done nor
  // before tRAS has elapsed since activation; the bank re-opens only with a
  // fresh ACT (so the next access is kClosed, never kConflict).
  if (policy_closes_row(row)) {
    const Cycle pre = std::max(col + config_.t_bl,
                               bank.activated_at + config_.t_ras);
    bank.ready_at = pre + config_.t_rp;
    bank.row_open = false;
    bank.open_row = ~0ULL;
  }

  res.commit = col;
  res.completion = data_end;

  if (config_.power.mode == DramPowerMode::kTimeout) {
    // The channel is busy until the burst drains; the idle-timeout clock
    // restarts there.
    ch.idle_from = std::max(ch.idle_from, data_end);
  }

  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
    stats_.read_latency.add(static_cast<double>(data_end - now));
  }
  return res;
}

void Dram::issue_queued_write(Channel& ch, std::uint32_t ch_idx,
                              std::size_t pos, Cycle now) {
  const PendingWrite w = ch.write_queue[pos];
  ch.write_queue.erase(ch.write_queue.begin() +
                       static_cast<std::ptrdiff_t>(pos));
  std::uint32_t wch = 0, wbank = 0;
  std::uint64_t wrow = 0;
  map_address(w.line_addr, wch, wbank, wrow);
  const Cycle wait = now - w.enqueued;
  stats_.write_wait_cycles += wait;
  stats_.write_wait_max = std::max(stats_.write_wait_max, wait);
  service_request(ch, ch_idx, wbank, wrow, /*is_write=*/true, now);
}

void Dram::schedule_before_read(Channel& ch, std::uint32_t ch_idx,
                                std::uint32_t bank_idx, std::uint64_t row,
                                Cycle now) {
  // 1. Starvation bound: any write that has waited write_starve_limit or
  // longer issues ahead of everything, oldest first (the queue is in age
  // order, so the front is always the oldest).
  while (!ch.write_queue.empty() &&
         now - ch.write_queue.front().enqueued >= config_.write_starve_limit) {
    ++stats_.writes_starved;
    issue_queued_write(ch, ch_idx, 0, now);
  }

  // 2. Row-hit-first: when the arriving read would NOT hit an open row, any
  // queued write that WOULD hit one issues first (FR-FCFS: column commands
  // to open rows beat activates), oldest first.  When the read itself is a
  // row hit it wins the tie against row-hitting writes by age — it is the
  // newest request, but reads are latency-critical and demand reads are
  // prioritized over victim writes (see MemoryHierarchy), which is the
  // documented read-priority tilt of this FR-FCFS implementation.
  const Bank& rb = ch.banks[bank_idx];
  const bool read_hits = rb.row_open && rb.open_row == row;
  if (read_hits) return;
  for (std::size_t i = 0; i < ch.write_queue.size();) {
    std::uint32_t wch = 0, wbank = 0;
    std::uint64_t wrow = 0;
    map_address(ch.write_queue[i].line_addr, wch, wbank, wrow);
    const Bank& wb = ch.banks[wbank];
    if (wb.row_open && wb.open_row == wrow) {
      issue_queued_write(ch, ch_idx, i, now);
      // restart the scan: issuing may have changed open-row state
      i = 0;
    } else {
      ++i;
    }
  }
}

void Dram::drain_writes(Cycle now) {
  if (config_.queue_depth == 0) return;
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    Channel& ch = channels_[c];
    while (!ch.write_queue.empty()) {
      ++stats_.writes_drained;
      issue_queued_write(ch, c, 0, now);
    }
  }
}

DramResult Dram::access(Addr line_addr, bool is_write, Cycle now) {
  std::uint32_t ch_idx = 0, bank_idx = 0;
  std::uint64_t row = 0;
  map_address(line_addr, ch_idx, bank_idx, row);
  Channel& ch = channels_[ch_idx];

  if (config_.queue_depth == 0)  // legacy synchronous path, bit-identical
    return service_request(ch, ch_idx, bank_idx, row, is_write, now);

  if (is_write) {
    // Posted write: park it in the channel queue.  A full queue forces the
    // oldest write out immediately (bounded depth).
    ch.write_queue.push_back({line_addr, now});
    ++stats_.writes_queued;
    stats_.write_queue_peak =
        std::max<std::uint64_t>(stats_.write_queue_peak,
                                ch.write_queue.size());
    if (ch.write_queue.size() > config_.queue_depth) {
      ++stats_.writes_overflowed;
      issue_queued_write(ch, ch_idx, 0, now);
    }
    // No caller consumes a write's completion (stores are posted through the
    // hierarchy's write buffer; see MemoryHierarchy::store) — return a
    // placeholder carrying only the mapping and the enqueue estimate.
    DramResult res;
    res.channel = ch_idx;
    res.bank = bank_idx;
    res.estimate = now + config_.estimate_latency();
    res.commit = now;
    res.completion = now;
    return res;
  }

  schedule_before_read(ch, ch_idx, bank_idx, row, now);
  return service_request(ch, ch_idx, bank_idx, row, /*is_write=*/false, now);
}

}  // namespace mapg
