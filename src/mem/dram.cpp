#include "mem/dram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mapg {

bool DramConfig::valid() const {
  if (channels == 0 || banks_per_channel == 0) return false;
  if (line_bytes == 0 || !std::has_single_bit(line_bytes)) return false;
  if (row_bytes < line_bytes || row_bytes % line_bytes != 0) return false;
  if (t_cl == 0 || t_bl == 0) return false;
  if (t_refi > 0 && t_rfc >= t_refi) return false;
  return true;
}

Dram::Dram(DramConfig config) : config_(config) {
  assert(config_.valid() && "invalid DRAM configuration");
  channels_.resize(config_.channels);
  for (auto& ch : channels_) ch.banks.resize(config_.banks_per_channel);
}

void Dram::map_address(Addr line_addr, std::uint32_t& channel,
                       std::uint32_t& bank, std::uint64_t& row) const {
  // Line-interleave across channels, then column within the row, then bank:
  // sequential lines hit the same row (per channel) until the row is
  // exhausted, which is what gives streaming workloads row-buffer locality.
  std::uint64_t line_no = line_addr / config_.line_bytes;
  channel = static_cast<std::uint32_t>(line_no % config_.channels);
  line_no /= config_.channels;
  line_no /= config_.lines_per_row();  // discard column-in-row bits
  bank = static_cast<std::uint32_t>(line_no % config_.banks_per_channel);
  row = line_no / config_.banks_per_channel;
}

Cycle Dram::skip_refresh(Cycle start) {
  if (config_.t_refi == 0) return start;
  const Cycle window_start = (start / config_.t_refi) * config_.t_refi;
  if (start < window_start + config_.t_rfc) {
    ++stats_.refresh_delays;
    return window_start + config_.t_rfc;
  }
  return start;
}

Cycle Dram::bank_ready(std::uint32_t channel, std::uint32_t bank) const {
  return channels_.at(channel).banks.at(bank).ready_at;
}

DramResult Dram::access(Addr line_addr, bool is_write, Cycle now) {
  std::uint32_t ch_idx = 0, bank_idx = 0;
  std::uint64_t row = 0;
  map_address(line_addr, ch_idx, bank_idx, row);
  Channel& ch = channels_[ch_idx];
  Bank& bank = ch.banks[bank_idx];

  DramResult res;
  res.channel = ch_idx;
  res.bank = bank_idx;
  res.estimate = now + config_.estimate_latency();

  // Command dispatch can begin once the bank has finished its prior work and
  // any refresh in progress has completed.
  Cycle start = skip_refresh(std::max(now, bank.ready_at));

  Cycle col_ready;  // earliest cycle the column command may issue
  if (bank.row_open && bank.open_row == row) {
    res.outcome = RowBufferOutcome::kHit;
    ++stats_.row_hits;
    col_ready = start;
  } else if (!bank.row_open) {
    res.outcome = RowBufferOutcome::kClosed;
    ++stats_.row_closed;
    const Cycle act = start;
    col_ready = act + config_.t_rcd;
    bank.activated_at = act;
    bank.row_open = true;
    bank.open_row = row;
  } else {
    res.outcome = RowBufferOutcome::kConflict;
    ++stats_.row_conflicts;
    // Precharge may not begin before tRAS has elapsed since activation.
    const Cycle pre = std::max(start, bank.activated_at + config_.t_ras);
    const Cycle act = pre + config_.t_rp;
    col_ready = act + config_.t_rcd;
    bank.activated_at = act;
    bank.open_row = row;
  }

  // Data-bus contention: the burst [col + tCL, col + tCL + tBL) must not
  // overlap an earlier burst on this channel.
  Cycle col = col_ready;
  if (col + config_.t_cl < ch.bus_free_at)
    col = ch.bus_free_at - config_.t_cl;
  const Cycle data_start = col + config_.t_cl;
  const Cycle data_end = data_start + config_.t_bl;
  ch.bus_free_at = data_end;

  // The bank can dispatch its next command once this burst's column phase is
  // done (approximates tCCD/tBL spacing between column commands).
  bank.ready_at = col + config_.t_bl;

  res.commit = col;
  res.completion = data_end;

  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
    stats_.read_latency.add(static_cast<double>(data_end - now));
  }
  return res;
}

}  // namespace mapg
