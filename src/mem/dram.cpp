#include "mem/dram.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/obs.h"

namespace mapg {

namespace {
/// Sentinel for "this transition never happens".
constexpr Cycle kNever = ~Cycle{0};
}  // namespace

bool DramConfig::valid() const {
  if (channels == 0 || banks_per_channel == 0) return false;
  if (line_bytes == 0 || !std::has_single_bit(line_bytes)) return false;
  if (row_bytes < line_bytes || row_bytes % line_bytes != 0) return false;
  if (t_cl == 0 || t_bl == 0) return false;
  if (t_refi > 0 && t_rfc >= t_refi) return false;
  if (!power.valid()) return false;
  return true;
}

Dram::Dram(DramConfig config) : config_(config) {
  assert(config_.valid() && "invalid DRAM configuration");
  channels_.resize(config_.channels);
  for (auto& ch : channels_) ch.banks.resize(config_.banks_per_channel);
}

Dram::~Dram() {
  MAPG_OBS_ONLY({
    if (stats_.powerdown_cycles || stats_.selfrefresh_cycles) {
      MAPG_OBS_COUNTER_ADD("sim.dram.powerdown_cycles",
                           stats_.powerdown_cycles);
      MAPG_OBS_COUNTER_ADD("sim.dram.selfrefresh_cycles",
                           stats_.selfrefresh_cycles);
      MAPG_OBS_COUNTER_ADD("sim.dram.powerdown_entries",
                           stats_.powerdown_entries);
      MAPG_OBS_COUNTER_ADD("sim.dram.selfrefresh_entries",
                           stats_.selfrefresh_entries);
    }
  });
}

Dram::State Dram::export_state() const {
  State s;
  s.channels = channels_;
  s.stats = stats_;
  return s;
}

void Dram::import_state(const State& s) {
  assert(s.channels.size() == channels_.size() &&
         "checkpoint was captured under a different DramConfig");
  channels_ = s.channels;
  stats_ = s.stats;
}

void Dram::map_address(Addr line_addr, std::uint32_t& channel,
                       std::uint32_t& bank, std::uint64_t& row) const {
  // Line-interleave across channels, then column within the row, then bank:
  // sequential lines hit the same row (per channel) until the row is
  // exhausted, which is what gives streaming workloads row-buffer locality.
  std::uint64_t line_no = line_addr / config_.line_bytes;
  channel = static_cast<std::uint32_t>(line_no % config_.channels);
  line_no /= config_.channels;
  line_no /= config_.lines_per_row();  // discard column-in-row bits
  bank = static_cast<std::uint32_t>(line_no % config_.banks_per_channel);
  row = line_no / config_.banks_per_channel;
}

Cycle Dram::skip_refresh(Cycle start) {
  if (config_.t_refi == 0) return start;
  const Cycle window_start = (start / config_.t_refi) * config_.t_refi;
  if (start < window_start + config_.t_rfc) {
    ++stats_.refresh_delays;
    return window_start + config_.t_rfc;
  }
  return start;
}

Cycle Dram::refresh_overlap(Cycle begin, Cycle end) const {
  if (config_.t_refi == 0 || config_.t_rfc == 0 || end <= begin) return 0;
  const Cycle per = std::min(config_.t_rfc, config_.t_refi);
  const auto busy = [&](Cycle bound) {
    return (bound / config_.t_refi) * per +
           std::min(bound % config_.t_refi, per);
  };
  return busy(end) - busy(begin);
}

void Dram::settle_channel(Channel& ch, Cycle upto) {
  const DramPowerConfig& p = config_.power;
  if (upto <= ch.accounted_until) return;

  const auto account_active = [&](Cycle b, Cycle e) {
    const Cycle ref = refresh_overlap(b, e);
    stats_.refresh_cycles += ref;
    stats_.active_cycles += (e - b) - ref;
  };

  Cycle cur = ch.accounted_until;
  ch.accounted_until = upto;

  // The tail of the previous burst (and any exit ramp) is active time.
  const Cycle busy_end = std::min(upto, std::max(cur, ch.idle_from));
  if (busy_end > cur) {
    account_active(cur, busy_end);
    cur = busy_end;
  }
  if (cur >= upto) return;

  // Idle gap: the timeout machinery.  Entry ramps ([*_at, *_at + t_pd))
  // count as active; residency counts once the state is established.
  const Cycle pd_at = p.powerdown_timeout > 0
                          ? ch.idle_from + p.powerdown_timeout
                          : kNever;
  const Cycle sr_at = p.selfrefresh_timeout > 0
                          ? ch.idle_from + p.selfrefresh_timeout
                          : kNever;
  const Cycle pd_est = pd_at == kNever ? kNever : pd_at + p.t_pd;
  const Cycle sr_est = sr_at == kNever ? kNever : sr_at + p.t_pd;

  const Cycle active_end = std::min(upto, std::min(pd_est, sr_est));
  if (active_end > cur) {
    account_active(cur, active_end);
    cur = active_end;
  }
  if (pd_est < sr_est && upto > pd_est) {
    // Power-down holds until self-refresh is established (CKE stays low
    // across the escalation, so the PD->SR ramp is charged as PD).
    const Cycle pd_end = std::min(upto, sr_est);
    if (cur <= pd_est && pd_end > pd_est) ++stats_.powerdown_entries;
    if (pd_end > cur) {
      stats_.powerdown_cycles += pd_end - cur;
      cur = pd_end;
    }
  }
  if (sr_est != kNever && upto > sr_est) {
    if (cur <= sr_est) ++stats_.selfrefresh_entries;
    if (upto > cur) {
      stats_.selfrefresh_cycles += upto - cur;
      cur = upto;
    }
  }
}

Cycle Dram::power_exit_shift(Channel& ch, Cycle now) {
  const DramPowerConfig& p = config_.power;
  settle_channel(ch, now);
  if (now <= ch.idle_from) return 0;  // channel still busy: no state entered

  const Cycle pd_at = p.powerdown_timeout > 0
                          ? ch.idle_from + p.powerdown_timeout
                          : kNever;
  const Cycle sr_at = p.selfrefresh_timeout > 0
                          ? ch.idle_from + p.selfrefresh_timeout
                          : kNever;

  Cycle shift = 0;
  if (sr_at != kNever && now >= sr_at + p.t_pd) {
    // In self-refresh: exit initiates immediately, first command after tXS.
    shift = p.t_xs;
  } else if (pd_at != kNever && now >= pd_at + p.t_pd) {
    // In power-down: CKE may not rise before tCKE(min) has elapsed since it
    // fell, then the exit ramp takes tXP.  The hold remainder [now,
    // exit_start) delays timing but is classified as active by the next
    // settle (like entry ramps) — advancing accounted_until past `now` here
    // would let a warmup-boundary reset lose those cycles and break the
    // residency-conservation equality.
    const Cycle exit_start = std::max(now, pd_at + p.t_cke);
    shift = (exit_start - now) + p.t_xp;
  } else {
    return 0;  // idle but no state established (entry in progress is free)
  }

  // Both states require all banks precharged: entering closed the rows.
  for (auto& bank : ch.banks) {
    bank.row_open = false;
    bank.open_row = ~0ULL;
  }
  stats_.lowpower_exit_delay += shift;
  return shift;
}

void Dram::settle_power(Cycle now) {
  if (config_.power.mode != DramPowerMode::kTimeout) return;
  for (auto& ch : channels_) settle_channel(ch, now);
}

Cycle Dram::bank_ready(std::uint32_t channel, std::uint32_t bank) const {
  return channels_.at(channel).banks.at(bank).ready_at;
}

DramResult Dram::access(Addr line_addr, bool is_write, Cycle now) {
  std::uint32_t ch_idx = 0, bank_idx = 0;
  std::uint64_t row = 0;
  map_address(line_addr, ch_idx, bank_idx, row);
  Channel& ch = channels_[ch_idx];

  // Low-power exit: a sleeping channel delays the request by its exit
  // latency.  Applied before the refresh check so an exit that lands inside
  // a refresh window pays the remainder of that window (the device still
  // owes the deferred auto-refresh; see docs/MEMORY_POWER.md).
  Cycle wake = 0;
  if (config_.power.mode == DramPowerMode::kTimeout)
    wake = power_exit_shift(ch, now);

  Bank& bank = ch.banks[bank_idx];

  DramResult res;
  res.channel = ch_idx;
  res.bank = bank_idx;
  res.estimate = now + config_.estimate_latency();

  // Command dispatch can begin once the channel is awake, the bank has
  // finished its prior work, and any refresh in progress has completed.
  Cycle start = skip_refresh(std::max(now + wake, bank.ready_at));

  Cycle col_ready;  // earliest cycle the column command may issue
  if (bank.row_open && bank.open_row == row) {
    res.outcome = RowBufferOutcome::kHit;
    ++stats_.row_hits;
    col_ready = start;
  } else if (!bank.row_open) {
    res.outcome = RowBufferOutcome::kClosed;
    ++stats_.row_closed;
    const Cycle act = start;
    col_ready = act + config_.t_rcd;
    bank.activated_at = act;
    bank.row_open = true;
    bank.open_row = row;
  } else {
    res.outcome = RowBufferOutcome::kConflict;
    ++stats_.row_conflicts;
    // Precharge may not begin before tRAS has elapsed since activation.
    const Cycle pre = std::max(start, bank.activated_at + config_.t_ras);
    const Cycle act = pre + config_.t_rp;
    col_ready = act + config_.t_rcd;
    bank.activated_at = act;
    bank.open_row = row;
  }

  // Data-bus contention: the burst [col + tCL, col + tCL + tBL) must not
  // overlap an earlier burst on this channel.
  Cycle col = col_ready;
  if (col + config_.t_cl < ch.bus_free_at)
    col = ch.bus_free_at - config_.t_cl;
  const Cycle data_start = col + config_.t_cl;
  const Cycle data_end = data_start + config_.t_bl;
  ch.bus_free_at = data_end;

  // The bank can dispatch its next command once this burst's column phase is
  // done (approximates tCCD/tBL spacing between column commands).
  bank.ready_at = col + config_.t_bl;

  res.commit = col;
  res.completion = data_end;

  if (config_.power.mode == DramPowerMode::kTimeout) {
    // The channel is busy until the burst drains; the idle-timeout clock
    // restarts there.
    ch.idle_from = std::max(ch.idle_from, data_end);
  }

  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
    stats_.read_latency.add(static_cast<double>(data_end - now));
  }
  return res;
}

}  // namespace mapg
