// L2 stream prefetcher (substrate extension).
//
// MAPG's opportunity is defined by DRAM-blocked stalls, so its interaction
// with latency-hiding techniques matters: a prefetcher that converts demand
// misses into hits (or shortens them via in-flight merges) removes exactly
// the stalls MAPG gates.  R-Tab.5 quantifies the interaction.
//
// Design: a small table of unit-stride streams.  A demand L2 miss that
// extends a tracked stream trains it; confirmed streams keep an issue
// window `degree` lines ahead of the most recent demand.  The prefetcher is
// re-triggered both by demand misses AND by the first demand touch of a
// prefetched line (the per-line prefetch bit in Cache), so an established
// stream keeps running ahead even when it eliminates all misses.
// Prefetches fill the L2 via Cache::fill (no demand-stats distortion) and
// register in the MSHR merge table, so demand accesses to in-flight
// prefetched lines wait only for the remaining latency — timeliness is
// modeled, not assumed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mapg {

struct PrefetcherConfig {
  bool enable = false;
  std::uint32_t degree = 2;        ///< issue-window depth, in lines
  std::uint32_t table_entries = 16;
  std::uint32_t confirm_after = 1; ///< stream extensions before issuing

  bool valid() const {
    return !enable || (degree > 0 && table_entries > 0);
  }
};

struct PrefetcherStats {
  std::uint64_t trained = 0;   ///< events that extended a tracked stream
  std::uint64_t issued = 0;    ///< prefetch requests emitted
  std::uint64_t streams = 0;   ///< new streams allocated
};

class StreamPrefetcher {
 public:
  /// One tracked stream.  Public because it is part of State (below).
  struct Stream {
    Addr next_demand = kNoAddr;  ///< expected next demand line
    Addr next_issue = kNoAddr;   ///< next line the window will fetch
    std::int8_t dir = 1;         ///< +1 ascending, -1 descending
    std::uint32_t hits = 0;      ///< consecutive confirmations
    std::uint64_t lru = 0;
  };

  /// Complete mutable state: the stream table, the LRU tick, and the
  /// statistics.  Round-trips bit-exactly (src/replay/checkpoint.h).
  struct State {
    std::vector<Stream> table;
    std::uint64_t tick = 0;
    PrefetcherStats stats;
  };

  explicit StreamPrefetcher(PrefetcherConfig config);

  State export_state() const { return State{table_, tick_, stats_}; }
  void import_state(const State& s) {
    table_ = s.table;
    tick_ = s.tick;
    stats_ = s.stats;
  }

  /// Observe a demand event (L2 miss or first touch of a prefetched line)
  /// for `line_addr` (line-aligned); append the prefetch candidates
  /// (line-aligned) to `out`.
  void observe(Addr line_addr, std::uint64_t line_bytes,
               std::vector<Addr>& out);

  const PrefetcherConfig& config() const { return config_; }
  const PrefetcherStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PrefetcherStats{}; }

 private:
  /// Emit window lines from s.next_issue up to `degree` lines beyond
  /// `demand_line`, advancing s.next_issue.
  void emit_window(Stream& s, Addr demand_line, std::uint64_t line_bytes,
                   std::vector<Addr>& out);

  PrefetcherConfig config_;
  std::vector<Stream> table_;
  std::uint64_t tick_ = 0;
  PrefetcherStats stats_;
};

}  // namespace mapg
