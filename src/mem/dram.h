// Multi-standard main-memory timing model (DDR3 / DDR4 / LPDDR4 class).
//
// This is the substrate MAPG's early-wakeup mechanism depends on: once the
// controller issues the column command for a request, the data-return cycle
// is deterministic (tCL + burst + return path).  The model therefore reports,
// for every request, three timestamps:
//   estimate   -- the controller's latency estimate at enqueue time,
//   commit     -- the cycle at which the exact return time becomes known
//                 (column-command issue),
//   completion -- the cycle data leaves the DRAM data bus.
// The policy layer is only ever allowed to act on `estimate` before `commit`
// and on `completion` after it; the clairvoyant Oracle baseline may peek.
//
// Modeled: per-bank row buffers, activate/precharge/CAS timing, tRAS
// row-occupancy, per-channel data-bus contention, periodic refresh
// (tREFI/tRFC), per-channel low-power states (precharge power-down and
// self-refresh; see DramPowerConfig and docs/MEMORY_POWER.md), a
// named-standard timing table (DramStandard; apply_dram_standard), an
// explicit page-management policy axis (PagePolicy: open / closed /
// HAPPY-style hybrid keyed by row-address bits), and a per-channel FR-FCFS
// posted-write queue (row-hit-first, then oldest, with a starvation bound
// and a bounded depth; DramConfig::queue_depth, 0 = legacy synchronous
// service).  The full memory-model spec lives in docs/DRAM.md.
// Simplifications (documented in docs/DRAM.md §6): demand reads are serviced
// at arrival (the in-order core exposes at most its MLP window of reads, so
// arrival order is service order among reads; FR-FCFS reordering applies
// between an arriving read and the posted writes), single rank per channel,
// and refresh checked at request start -- where "start" includes any
// low-power exit shift, so a self-refresh exit that lands inside a refresh
// window pays the remainder of that window instead of silently skipping it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mapg {

/// Named timing standards for the parameter table (docs/DRAM.md §2).  Every
/// timing field of DramConfig/DramPowerConfig stays individually overridable
/// after a preset is applied -- that is the custom path; kCustom itself is a
/// pure provenance label that applies no preset.
enum class DramStandard : std::uint8_t {
  kCustom = 0,      ///< hand-set parameters; apply_dram_standard is a no-op
  kDdr3_1600 = 1,   ///< DDR3-1600 CL11 (the historical repo default)
  kDdr4_2400 = 2,   ///< DDR4-2400 CL17, 8 Gb-class tRFC
  kLpddr4_3200 = 3, ///< LPDDR4-3200 RL28, 2 KiB pages, deep low-power states
};

/// Page-management policy axis (docs/DRAM.md §4; HAPPY, arXiv 1509.03740).
enum class PagePolicy : std::uint8_t {
  kOpen = 0,    ///< rows stay open until a conflict or low-power entry
  kClosed = 1,  ///< auto-precharge after every column command
  /// HAPPY-style hybrid: keep a row open iff a predictor keyed by the low
  /// `hybrid_addr_bits` bits of the row address says so (the degenerate
  /// address-indexed table: rows whose selected bits are all zero close).
  kHybrid = 2,
};

const char* to_string(DramStandard s);
const char* to_string(PagePolicy p);
/// Parse "ddr3-1600" / "ddr4-2400" / "lpddr4-3200" / "custom" (and the
/// page-policy spellings "open" / "closed" / "hybrid").  Return false and
/// leave `out` untouched on an unrecognized name.
bool parse_dram_standard(const std::string& name, DramStandard& out);
bool parse_page_policy(const std::string& name, PagePolicy& out);

/// DRAM low-power operating mode (docs/MEMORY_POWER.md).
enum class DramPowerMode : std::uint8_t {
  kOff = 0,      ///< always-active background power (legacy behavior)
  kTimeout = 1,  ///< controller-side idle timeouts drive PD / self-refresh
  /// The power-gating controller coordinates channel power-down with core
  /// gating: residency is accounted in GatingStats (src/pg/dram_coordinator.h)
  /// and the DRAM-side timeout machinery stays off, so the two accounting
  /// paths never overlap.
  kCoordinated = 2,
};

/// Low-power state parameters.  All timing in core cycles; defaults are
/// DDR3-1600 datasheet values (tCK 1.25 ns) seen from a 3 GHz core -- see the
/// per-standard parameter table in docs/DRAM.md §2 for the ns-level sources
/// (apply_dram_standard rewrites these fields per standard).
struct DramPowerConfig {
  DramPowerMode mode = DramPowerMode::kOff;

  Cycle t_pd = 8;    ///< CKE-low to low-power state established (tCPDED-class)
  Cycle t_xp = 18;   ///< power-down exit to first valid command (tXP, 6 ns)
  Cycle t_cke = 17;  ///< minimum CKE-low pulse width (tCKE(min), 5.625 ns)
  Cycle t_xs = 510;  ///< self-refresh exit to first command (tXS ~ tRFC+10 ns)

  /// Idle cycles before the timeout controller drops a channel into
  /// precharge power-down (0 disables the state).  Only used in kTimeout.
  Cycle powerdown_timeout = 192;
  /// Idle cycles before the timeout controller escalates an idle channel to
  /// self-refresh (0 disables the state).  Only used in kTimeout.
  Cycle selfrefresh_timeout = 0;

  bool enabled() const { return mode != DramPowerMode::kOff; }
  bool valid() const {
    if (mode == DramPowerMode::kOff) return true;
    if (t_pd == 0 || t_xp == 0 || t_cke == 0) return false;
    if (t_xs < t_xp) return false;
    if (powerdown_timeout > 0 && selfrefresh_timeout > 0 &&
        selfrefresh_timeout < powerdown_timeout)
      return false;
    return true;
  }
};

/// All timing in *core* cycles.  Defaults: DDR3-1600 (tCK 1.25 ns, CL 11)
/// seen from a 3 GHz core -- identical to apply_dram_standard(kDdr3_1600),
/// so a default-constructed config IS the DDR3-1600 preset.
struct DramConfig {
  std::uint32_t channels = 2;
  std::uint32_t banks_per_channel = 8;
  std::uint32_t line_bytes = 64;
  std::uint32_t row_bytes = 8192;  ///< row-buffer (page) size

  Cycle t_rcd = 41;   ///< ACT -> column command
  Cycle t_rp = 41;    ///< PRE -> ACT
  Cycle t_cl = 41;    ///< column command -> first data beat
  Cycle t_bl = 15;    ///< burst duration on the data bus (BL8)
  Cycle t_ras = 105;  ///< ACT -> earliest PRE
  Cycle t_rfc = 480;  ///< refresh duration
  Cycle t_refi = 23400;  ///< refresh interval

  /// Provenance label for the timing set above (set by apply_dram_standard
  /// and the `dram.standard` config key).  Informational plus part of the
  /// experiment identity; the cycle-level behavior is fully determined by
  /// the individual fields.
  DramStandard standard = DramStandard::kDdr3_1600;

  /// Page-management policy (docs/DRAM.md §4).
  PagePolicy page_policy = PagePolicy::kOpen;
  /// Row-address bits consulted by PagePolicy::kHybrid.
  std::uint32_t hybrid_addr_bits = 2;

  /// Per-channel FR-FCFS posted-write queue depth.  0 = legacy synchronous
  /// service (writes issue at arrival, bit-identical to the historical
  /// model).  >0 = victim/writeback writes are posted into a per-channel
  /// queue and scheduled row-hit-first, then oldest, around demand reads.
  std::uint32_t queue_depth = 0;
  /// A queued write older than this (cycles) issues ahead of everything at
  /// the next scheduling point on its channel -- the FR-FCFS starvation
  /// bound.  Must be >0 when queue_depth > 0.
  Cycle write_starve_limit = 512;

  DramPowerConfig power{};  ///< low-power states (off by default)

  /// Typical no-contention latency quoted by the controller as its enqueue
  /// estimate for requests whose service time is not yet committed.
  Cycle estimate_latency() const { return t_rcd + t_cl + t_bl; }

  std::uint32_t lines_per_row() const { return row_bytes / line_bytes; }
  bool valid() const;
};

/// Overwrite the timing-table fields of `cfg` (row_bytes, tRCD/tRP/tCL/tBL/
/// tRAS/tRFC/tREFI, and the low-power tPD/tXP/tCKE/tXS + powerdown timeout)
/// with the named standard's preset, and stamp cfg.standard.  Channel/bank
/// geometry, line size, page policy, queue knobs, the power MODE, and the
/// self-refresh timeout are left untouched (orthogonal axes).  kCustom only
/// stamps the label.  Cycle values assume a 3 GHz core; docs/DRAM.md §2
/// records the ns-level datasheet provenance.
void apply_dram_standard(DramConfig& cfg, DramStandard standard);

enum class RowBufferOutcome : std::uint8_t {
  kHit,       ///< open row matched
  kClosed,    ///< bank had no open row
  kConflict,  ///< different row open; precharge required
};

struct DramResult {
  Cycle completion = 0;  ///< last data beat has left the bus
  Cycle commit = 0;      ///< column-command issue: return time now exact
  Cycle estimate = 0;    ///< controller estimate at enqueue
  RowBufferOutcome outcome = RowBufferOutcome::kClosed;
  std::uint32_t channel = 0;
  std::uint32_t bank = 0;
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_closed = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t refresh_delays = 0;
  RunningStat read_latency;  ///< enqueue -> completion, reads only

  // FR-FCFS posted-write queue (all zero when DramConfig::queue_depth == 0).
  // Every queued write is eventually issued by exactly one of the three
  // issue causes, so
  //   writes_queued == writes_starved + writes_overflowed + writes_drained
  //                    + (writes issued by row-hit / read-order scheduling)
  // and writes (above) counts each write once, at issue.
  std::uint64_t writes_queued = 0;      ///< writes that entered the queue
  std::uint64_t writes_starved = 0;     ///< issued by the starvation bound
  std::uint64_t writes_overflowed = 0;  ///< issued because the queue was full
  std::uint64_t writes_drained = 0;     ///< issued by drain_writes()
  std::uint64_t write_queue_peak = 0;   ///< max per-channel occupancy seen
  std::uint64_t write_wait_cycles = 0;  ///< total enqueue -> issue wait
  std::uint64_t write_wait_max = 0;     ///< worst single enqueue -> issue wait

  // Low-power residency (channel-cycles; every accounted channel-cycle is in
  // exactly one of the four classes, so
  //   active + refresh + powerdown + selfrefresh == accounted
  // is an equality -- enforced by tests/test_dram_power.cpp).  All zero when
  // DramPowerConfig::mode != kTimeout.
  std::uint64_t active_cycles = 0;       ///< busy, idle-shallow, entry/exit
  std::uint64_t refresh_cycles = 0;      ///< in a refresh window (not in LP)
  std::uint64_t powerdown_cycles = 0;    ///< precharge power-down established
  std::uint64_t selfrefresh_cycles = 0;  ///< self-refresh established
  std::uint64_t powerdown_entries = 0;
  std::uint64_t selfrefresh_entries = 0;
  std::uint64_t lowpower_exit_delay = 0;  ///< total tXP/tXS cycles imposed

  std::uint64_t accounted_cycles() const {
    return active_cycles + refresh_cycles + powerdown_cycles +
           selfrefresh_cycles;
  }

  double row_hit_rate() const {
    const std::uint64_t n = row_hits + row_closed + row_conflicts;
    return n ? static_cast<double>(row_hits) / static_cast<double>(n) : 0.0;
  }
};

class Dram {
 public:
  /// Per-bank row-buffer and command-timing state.  Public because it is
  /// part of Dram::State (below).
  struct Bank {
    std::uint64_t open_row = ~0ULL;
    bool row_open = false;
    Cycle ready_at = 0;     ///< earliest next command dispatch
    Cycle activated_at = 0; ///< for the tRAS constraint
  };
  /// A posted write awaiting FR-FCFS issue (queue_depth > 0 only).
  struct PendingWrite {
    Addr line_addr = 0;
    Cycle enqueued = 0;  ///< controller arrival time
  };
  struct Channel {
    std::vector<Bank> banks;
    Cycle bus_free_at = 0;
    /// FR-FCFS posted-write queue, oldest first (empty when queue_depth==0).
    std::vector<PendingWrite> write_queue;
    // Low-power accounting (kTimeout mode only).
    Cycle idle_from = 0;        ///< cycle the channel last went idle
    Cycle accounted_until = 0;  ///< residency classified up to here
  };

  /// Complete mutable state: every bank's open row / ready / tRAS anchor,
  /// per-channel bus occupancy, the pending posted-write queue (a checkpoint
  /// taken with writes in flight must re-issue exactly those writes at
  /// exactly the deferred times a from-zero run would), and the per-channel
  /// low-power anchors (idle_from / accounted_until — the values
  /// power_exit_shift and settle_channel key off, so a restored channel
  /// still pays the exact tXP/tXS exit penalty and classifies residency
  /// identically), plus the statistics.  Refresh needs no explicit anchor:
  /// skip_refresh() is anchored in ABSOLUTE time (tREFI multiples), so
  /// restoring the clock restores refresh alignment (docs/MODEL.md §4c).
  /// import_state() requires a Dram constructed with the same DramConfig.
  struct State {
    std::vector<Channel> channels;
    DramStats stats;
  };

  explicit Dram(DramConfig config);
  ~Dram();  ///< flushes residency tallies into the obs registry

  State export_state() const;
  void import_state(const State& s);

  /// Service one line-granular request arriving at the controller at `now`.
  /// `now` must be monotonically non-decreasing across calls.  With
  /// queue_depth > 0, writes are posted (queued; the returned result is a
  /// placeholder whose completion==now — no caller consumes write
  /// completions, see MemoryHierarchy) and reads trigger FR-FCFS
  /// arbitration against the channel's queued writes.
  DramResult access(Addr line_addr, bool is_write, Cycle now);

  /// Issue every queued posted write at `now` (oldest first, per channel).
  /// Called from settle_power() so every stats snapshot point in the run
  /// loop flushes the write buffer; also available directly for tests.
  void drain_writes(Cycle now);

  /// Earliest cycle at which the controller could accept and serve a request
  /// to an idle bank (used by tests and the controller occupancy stats).
  Cycle bank_ready(std::uint32_t channel, std::uint32_t bank) const;

  /// Flush the posted-write queue, then fold idle time up to `now` into the
  /// low-power residency counters (kTimeout mode; residency is a no-op
  /// otherwise).  Idempotent; call with non-decreasing `now` before
  /// snapshotting stats so trailing idle is classified.  Does not disturb
  /// timing state beyond the flushed writes: a later access still sees the
  /// correct power-down / self-refresh exit penalty.
  void settle_power(Cycle now);

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DramStats{}; }

  /// Decompose an address for tests.
  void map_address(Addr line_addr, std::uint32_t& channel, std::uint32_t& bank,
                   std::uint64_t& row) const;

 private:
  Cycle skip_refresh(Cycle start);
  /// Refresh-window overlap with [begin, end) (closed form, same recurrence
  /// as power/interval_energy.h::refresh_window_overlap).
  Cycle refresh_overlap(Cycle begin, Cycle end) const;
  /// Classify channel-cycles [ch.accounted_until, upto) into
  /// active/refresh/powerdown/selfrefresh residency.
  void settle_channel(Channel& ch, Cycle upto);
  /// Settle the channel at a request arriving at `now`, close any low-power
  /// state it is in, and return the extra delay before the first command
  /// (tXP with the tCKE(min) hold, or tXS).  Precharge power-down closes the
  /// channel's open rows.
  Cycle power_exit_shift(Channel& ch, Cycle now);
  /// The single-request service path (the historical access() body): power
  /// exit, refresh, row outcome, bus contention, page-policy close, stats.
  DramResult service_request(Channel& ch, std::uint32_t ch_idx,
                             std::uint32_t bank_idx, std::uint64_t row,
                             bool is_write, Cycle now);
  /// Pop and service the write at queue position `pos` at time `now`.
  void issue_queued_write(Channel& ch, std::uint32_t ch_idx, std::size_t pos,
                          Cycle now);
  /// FR-FCFS arbitration ahead of a demand read to (bank_idx, row): first
  /// issue starved writes (oldest first), then — if the read itself would
  /// not row-hit — issue row-hitting writes (oldest first).
  void schedule_before_read(Channel& ch, std::uint32_t ch_idx,
                            std::uint32_t bank_idx, std::uint64_t row,
                            Cycle now);
  /// True when the page policy closes this row after a column command.
  bool policy_closes_row(std::uint64_t row) const;

  DramConfig config_;
  std::vector<Channel> channels_;
  DramStats stats_;
};

}  // namespace mapg
