// DDR3-class main-memory timing model.
//
// This is the substrate MAPG's early-wakeup mechanism depends on: once the
// controller issues the column command for a request, the data-return cycle
// is deterministic (tCL + burst + return path).  The model therefore reports,
// for every request, three timestamps:
//   estimate   -- the controller's latency estimate at enqueue time,
//   commit     -- the cycle at which the exact return time becomes known
//                 (column-command issue),
//   completion -- the cycle data leaves the DRAM data bus.
// The policy layer is only ever allowed to act on `estimate` before `commit`
// and on `completion` after it; the clairvoyant Oracle baseline may peek.
//
// Modeled: per-bank row buffers (open-page), activate/precharge/CAS timing,
// tRAS row-occupancy, per-channel data-bus contention, periodic refresh
// (tREFI/tRFC), and per-channel low-power states (precharge power-down and
// self-refresh; see DramPowerConfig and docs/MEMORY_POWER.md).
// Simplifications (documented in DESIGN.md): in-order request service per
// arrival (FR-FCFS reordering is approximated by the row-buffer state it
// would produce on a single in-order core), single rank per channel, and
// refresh checked at request start -- where "start" includes any low-power
// exit shift, so a self-refresh exit that lands inside a refresh window pays
// the remainder of that window instead of silently skipping it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mapg {

/// DRAM low-power operating mode (docs/MEMORY_POWER.md).
enum class DramPowerMode : std::uint8_t {
  kOff = 0,      ///< always-active background power (legacy behavior)
  kTimeout = 1,  ///< controller-side idle timeouts drive PD / self-refresh
  /// The power-gating controller coordinates channel power-down with core
  /// gating: residency is accounted in GatingStats (src/pg/dram_coordinator.h)
  /// and the DRAM-side timeout machinery stays off, so the two accounting
  /// paths never overlap.
  kCoordinated = 2,
};

/// Low-power state parameters.  All timing in core cycles; defaults are
/// DDR3-1600 datasheet values (tCK 1.25 ns) seen from a 3 GHz core -- see the
/// parameter table in docs/MEMORY_POWER.md for the ns-level sources.
struct DramPowerConfig {
  DramPowerMode mode = DramPowerMode::kOff;

  Cycle t_pd = 8;    ///< CKE-low to low-power state established (tCPDED-class)
  Cycle t_xp = 18;   ///< power-down exit to first valid command (tXP, 6 ns)
  Cycle t_cke = 17;  ///< minimum CKE-low pulse width (tCKE(min), 5.625 ns)
  Cycle t_xs = 510;  ///< self-refresh exit to first command (tXS ~ tRFC+10 ns)

  /// Idle cycles before the timeout controller drops a channel into
  /// precharge power-down (0 disables the state).  Only used in kTimeout.
  Cycle powerdown_timeout = 192;
  /// Idle cycles before the timeout controller escalates an idle channel to
  /// self-refresh (0 disables the state).  Only used in kTimeout.
  Cycle selfrefresh_timeout = 0;

  bool enabled() const { return mode != DramPowerMode::kOff; }
  bool valid() const {
    if (mode == DramPowerMode::kOff) return true;
    if (t_pd == 0 || t_xp == 0 || t_cke == 0) return false;
    if (t_xs < t_xp) return false;
    if (powerdown_timeout > 0 && selfrefresh_timeout > 0 &&
        selfrefresh_timeout < powerdown_timeout)
      return false;
    return true;
  }
};

/// All timing in *core* cycles.  Defaults: DDR3-1600 (tCK 1.25 ns, CL 11)
/// seen from a 3 GHz core.
struct DramConfig {
  std::uint32_t channels = 2;
  std::uint32_t banks_per_channel = 8;
  std::uint32_t line_bytes = 64;
  std::uint32_t row_bytes = 8192;  ///< open-page row-buffer size

  Cycle t_rcd = 41;   ///< ACT -> column command
  Cycle t_rp = 41;    ///< PRE -> ACT
  Cycle t_cl = 41;    ///< column command -> first data beat
  Cycle t_bl = 15;    ///< burst duration on the data bus (BL8)
  Cycle t_ras = 105;  ///< ACT -> earliest PRE
  Cycle t_rfc = 480;  ///< refresh duration
  Cycle t_refi = 23400;  ///< refresh interval

  DramPowerConfig power{};  ///< low-power states (off by default)

  /// Typical no-contention latency quoted by the controller as its enqueue
  /// estimate for requests whose service time is not yet committed.
  Cycle estimate_latency() const { return t_rcd + t_cl + t_bl; }

  std::uint32_t lines_per_row() const { return row_bytes / line_bytes; }
  bool valid() const;
};

enum class RowBufferOutcome : std::uint8_t {
  kHit,       ///< open row matched
  kClosed,    ///< bank had no open row
  kConflict,  ///< different row open; precharge required
};

struct DramResult {
  Cycle completion = 0;  ///< last data beat has left the bus
  Cycle commit = 0;      ///< column-command issue: return time now exact
  Cycle estimate = 0;    ///< controller estimate at enqueue
  RowBufferOutcome outcome = RowBufferOutcome::kClosed;
  std::uint32_t channel = 0;
  std::uint32_t bank = 0;
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_closed = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t refresh_delays = 0;
  RunningStat read_latency;  ///< enqueue -> completion, reads only

  // Low-power residency (channel-cycles; every accounted channel-cycle is in
  // exactly one of the four classes, so
  //   active + refresh + powerdown + selfrefresh == accounted
  // is an equality -- enforced by tests/test_dram_power.cpp).  All zero when
  // DramPowerConfig::mode != kTimeout.
  std::uint64_t active_cycles = 0;       ///< busy, idle-shallow, entry/exit
  std::uint64_t refresh_cycles = 0;      ///< in a refresh window (not in LP)
  std::uint64_t powerdown_cycles = 0;    ///< precharge power-down established
  std::uint64_t selfrefresh_cycles = 0;  ///< self-refresh established
  std::uint64_t powerdown_entries = 0;
  std::uint64_t selfrefresh_entries = 0;
  std::uint64_t lowpower_exit_delay = 0;  ///< total tXP/tXS cycles imposed

  std::uint64_t accounted_cycles() const {
    return active_cycles + refresh_cycles + powerdown_cycles +
           selfrefresh_cycles;
  }

  double row_hit_rate() const {
    const std::uint64_t n = row_hits + row_closed + row_conflicts;
    return n ? static_cast<double>(row_hits) / static_cast<double>(n) : 0.0;
  }
};

class Dram {
 public:
  /// Per-bank row-buffer and command-timing state.  Public because it is
  /// part of Dram::State (below).
  struct Bank {
    std::uint64_t open_row = ~0ULL;
    bool row_open = false;
    Cycle ready_at = 0;     ///< earliest next command dispatch
    Cycle activated_at = 0; ///< for the tRAS constraint
  };
  struct Channel {
    std::vector<Bank> banks;
    Cycle bus_free_at = 0;
    // Low-power accounting (kTimeout mode only).
    Cycle idle_from = 0;        ///< cycle the channel last went idle
    Cycle accounted_until = 0;  ///< residency classified up to here
  };

  /// Complete mutable state: every bank's open row / ready / tRAS anchor,
  /// per-channel bus occupancy and low-power anchors (idle_from /
  /// accounted_until — the values power_exit_shift and settle_channel key
  /// off, so a restored channel still pays the exact tXP/tXS exit penalty
  /// and classifies residency identically), plus the statistics.  Refresh
  /// needs no explicit anchor: skip_refresh() is anchored in ABSOLUTE time
  /// (tREFI multiples), so restoring the clock restores refresh alignment
  /// (docs/MODEL.md §4c).  import_state() requires a Dram constructed with
  /// the same DramConfig.
  struct State {
    std::vector<Channel> channels;
    DramStats stats;
  };

  explicit Dram(DramConfig config);
  ~Dram();  ///< flushes residency tallies into the obs registry

  State export_state() const;
  void import_state(const State& s);

  /// Service one line-granular request arriving at the controller at `now`.
  /// `now` must be monotonically non-decreasing across calls.
  DramResult access(Addr line_addr, bool is_write, Cycle now);

  /// Earliest cycle at which the controller could accept and serve a request
  /// to an idle bank (used by tests and the controller occupancy stats).
  Cycle bank_ready(std::uint32_t channel, std::uint32_t bank) const;

  /// Fold idle time up to `now` into the low-power residency counters
  /// (kTimeout mode; a no-op otherwise).  Idempotent; call with
  /// non-decreasing `now` before snapshotting stats so trailing idle is
  /// classified.  Does not disturb timing state: a later access still sees
  /// the correct power-down / self-refresh exit penalty.
  void settle_power(Cycle now);

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DramStats{}; }

  /// Decompose an address for tests.
  void map_address(Addr line_addr, std::uint32_t& channel, std::uint32_t& bank,
                   std::uint64_t& row) const;

 private:
  Cycle skip_refresh(Cycle start);
  /// Refresh-window overlap with [begin, end) (closed form, same recurrence
  /// as power/interval_energy.h::refresh_window_overlap).
  Cycle refresh_overlap(Cycle begin, Cycle end) const;
  /// Classify channel-cycles [ch.accounted_until, upto) into
  /// active/refresh/powerdown/selfrefresh residency.
  void settle_channel(Channel& ch, Cycle upto);
  /// Settle the channel at a request arriving at `now`, close any low-power
  /// state it is in, and return the extra delay before the first command
  /// (tXP with the tCKE(min) hold, or tXS).  Precharge power-down closes the
  /// channel's open rows.
  Cycle power_exit_shift(Channel& ch, Cycle now);

  DramConfig config_;
  std::vector<Channel> channels_;
  DramStats stats_;
};

}  // namespace mapg
