// DDR3-class main-memory timing model.
//
// This is the substrate MAPG's early-wakeup mechanism depends on: once the
// controller issues the column command for a request, the data-return cycle
// is deterministic (tCL + burst + return path).  The model therefore reports,
// for every request, three timestamps:
//   estimate   -- the controller's latency estimate at enqueue time,
//   commit     -- the cycle at which the exact return time becomes known
//                 (column-command issue),
//   completion -- the cycle data leaves the DRAM data bus.
// The policy layer is only ever allowed to act on `estimate` before `commit`
// and on `completion` after it; the clairvoyant Oracle baseline may peek.
//
// Modeled: per-bank row buffers (open-page), activate/precharge/CAS timing,
// tRAS row-occupancy, per-channel data-bus contention, periodic refresh
// (tREFI/tRFC).  Simplifications (documented in DESIGN.md): in-order request
// service per arrival (FR-FCFS reordering is approximated by the row-buffer
// state it would produce on a single in-order core), single rank per channel,
// and refresh checked at request start only.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mapg {

/// All timing in *core* cycles.  Defaults: DDR3-1600 (tCK 1.25 ns, CL 11)
/// seen from a 3 GHz core.
struct DramConfig {
  std::uint32_t channels = 2;
  std::uint32_t banks_per_channel = 8;
  std::uint32_t line_bytes = 64;
  std::uint32_t row_bytes = 8192;  ///< open-page row-buffer size

  Cycle t_rcd = 41;   ///< ACT -> column command
  Cycle t_rp = 41;    ///< PRE -> ACT
  Cycle t_cl = 41;    ///< column command -> first data beat
  Cycle t_bl = 15;    ///< burst duration on the data bus (BL8)
  Cycle t_ras = 105;  ///< ACT -> earliest PRE
  Cycle t_rfc = 480;  ///< refresh duration
  Cycle t_refi = 23400;  ///< refresh interval

  /// Typical no-contention latency quoted by the controller as its enqueue
  /// estimate for requests whose service time is not yet committed.
  Cycle estimate_latency() const { return t_rcd + t_cl + t_bl; }

  std::uint32_t lines_per_row() const { return row_bytes / line_bytes; }
  bool valid() const;
};

enum class RowBufferOutcome : std::uint8_t {
  kHit,       ///< open row matched
  kClosed,    ///< bank had no open row
  kConflict,  ///< different row open; precharge required
};

struct DramResult {
  Cycle completion = 0;  ///< last data beat has left the bus
  Cycle commit = 0;      ///< column-command issue: return time now exact
  Cycle estimate = 0;    ///< controller estimate at enqueue
  RowBufferOutcome outcome = RowBufferOutcome::kClosed;
  std::uint32_t channel = 0;
  std::uint32_t bank = 0;
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_closed = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t refresh_delays = 0;
  RunningStat read_latency;  ///< enqueue -> completion, reads only

  double row_hit_rate() const {
    const std::uint64_t n = row_hits + row_closed + row_conflicts;
    return n ? static_cast<double>(row_hits) / static_cast<double>(n) : 0.0;
  }
};

class Dram {
 public:
  explicit Dram(DramConfig config);

  /// Service one line-granular request arriving at the controller at `now`.
  /// `now` must be monotonically non-decreasing across calls.
  DramResult access(Addr line_addr, bool is_write, Cycle now);

  /// Earliest cycle at which the controller could accept and serve a request
  /// to an idle bank (used by tests and the controller occupancy stats).
  Cycle bank_ready(std::uint32_t channel, std::uint32_t bank) const;

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DramStats{}; }

  /// Decompose an address for tests.
  void map_address(Addr line_addr, std::uint32_t& channel, std::uint32_t& bank,
                   std::uint64_t& row) const;

 private:
  struct Bank {
    std::uint64_t open_row = ~0ULL;
    bool row_open = false;
    Cycle ready_at = 0;     ///< earliest next command dispatch
    Cycle activated_at = 0; ///< for the tRAS constraint
  };
  struct Channel {
    std::vector<Bank> banks;
    Cycle bus_free_at = 0;
  };

  Cycle skip_refresh(Cycle start);

  DramConfig config_;
  std::vector<Channel> channels_;
  DramStats stats_;
};

}  // namespace mapg
