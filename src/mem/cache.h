// Set-associative cache model (timestamp-driven, immediate-state-update).
//
// The simulator is trace-driven: an access updates tag state at the moment it
// is processed and the resulting latency is composed by MemoryHierarchy.
// This "resource reservation" style is the standard trade-off for
// single-core trace simulation — hit/miss streams are exact for the in-order
// access sequence, while fill timing is approximated as immediate (the MSHR
// table in MemoryHierarchy prevents double-counting of in-flight lines).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.h"
#include "common/types.h"

namespace mapg {

enum class ReplPolicy : std::uint8_t { kLru, kTreePlru, kRandom };

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t assoc = 8;
  std::uint32_t line_bytes = 64;
  Cycle hit_latency = 3;  ///< cycles from access to data for a hit
  ReplPolicy repl = ReplPolicy::kLru;
  bool write_back = true;  ///< write-back + write-allocate (vs write-through)

  std::uint64_t num_sets() const {
    const std::uint64_t lines = size_bytes / line_bytes;
    return lines / assoc;
  }
  bool valid() const;
};

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t evictions = 0;
  std::uint64_t prefetch_fills = 0;  ///< lines allocated via fill()

  std::uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  std::uint64_t misses() const { return read_misses + write_misses; }
  double miss_rate() const {
    const auto a = accesses();
    return a ? static_cast<double>(misses()) / static_cast<double>(a) : 0.0;
  }
};

class Cache {
 public:
  /// One cache line's tag state.  Public because it is part of Cache::State.
  struct Line {
    Addr tag = kNoAddr;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  ///< filled by fill(), not yet demand-touched
    std::uint64_t lru_stamp = 0;  ///< larger = more recently used
  };

  /// Complete mutable state: every line (tags, dirty/prefetch bits, LRU
  /// stamps), the tree-PLRU bits, the global stamp counter, the random-
  /// victim PRNG stream, and the statistics.  import_state() requires a
  /// Cache constructed with the same CacheConfig; round-trips bit-exactly
  /// (src/replay/checkpoint.h).
  struct State {
    std::vector<Line> lines;
    std::vector<std::uint8_t> plru_bits;
    std::uint64_t stamp = 0;
    Prng::State victim_prng{};
    CacheStats stats;
  };

  struct AccessResult {
    bool hit = false;
    bool writeback = false;   ///< a dirty victim must be written downstream
    Addr writeback_addr = kNoAddr;  ///< line address of the dirty victim
    /// First demand touch of a line brought in by fill(): the prefetch-bit
    /// was set and has now been consumed (prefetcher re-trigger signal).
    bool hit_on_prefetched = false;
  };

  explicit Cache(CacheConfig config);

  /// Access one address; on a miss the line is allocated (write-allocate).
  AccessResult access(Addr addr, bool is_write);

  /// Allocate a line WITHOUT demand-access accounting (prefetch fill):
  /// no hit/miss counters change, but evictions/writebacks are recorded and
  /// returned as usual.  A line already present is left untouched.
  AccessResult fill(Addr addr);

  /// Probe without modifying replacement or allocating.  For tests/debug.
  bool contains(Addr addr) const;

  /// Drop every line (used between experiment repetitions).
  void flush();

  State export_state() const;
  void import_state(const State& s);

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  Addr line_addr(Addr addr) const { return addr & ~line_mask_; }
  /// Scalar index/tag decode — the reference the batched decode is proven
  /// against (tests/test_trace_batch.cpp).
  std::uint64_t set_index(Addr addr) const;
  Addr tag_of(Addr addr) const;

  /// Batched address decode: compute line address, set index, and tag for
  /// `n` addresses in three mask/shift passes over contiguous arrays.  Each
  /// pass is a dependence-free loop over one output lane, so the compiler
  /// vectorizes it; results are elementwise identical to the scalar
  /// line_addr/set_index/tag_of.  The batched front-end uses this to decode
  /// a whole InstrBlock's address lane at once; any of the output pointers
  /// may be null to skip that lane.
  void decode_block(const Addr* addrs, std::size_t n, Addr* lines,
                    std::uint64_t* sets, Addr* tags) const;

 private:
  std::uint32_t choose_victim(std::uint64_t set);
  void touch(std::uint64_t set, std::uint32_t way);

  CacheConfig config_;
  std::uint64_t line_mask_;
  std::uint64_t set_mask_;
  std::uint32_t line_shift_;
  std::vector<Line> lines_;                 ///< sets * assoc, set-major
  std::vector<std::uint8_t> plru_bits_;     ///< assoc-1 tree bits per set
  std::uint64_t stamp_ = 0;
  Prng victim_prng_{0xC0FFEEULL};
  CacheStats stats_;
};

}  // namespace mapg
