// Two-level cache hierarchy + DRAM, composed for a single in-order core.
//
// Responsibilities: latency composition (L1 -> L2 -> memory controller ->
// DRAM -> fill return), write-back routing of dirty victims, and MSHR-style
// merging of accesses to lines whose fill is still in flight.  The hierarchy
// is also where MAPG's information boundary is enforced: the result exposes
// `estimate` / `commit` / `complete` exactly as a real memory controller
// could (see dram.h).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/prefetcher.h"

namespace mapg {

struct HierarchyConfig {
  CacheConfig l1d{.name = "L1D",
                  .size_bytes = 32 * 1024,
                  .assoc = 8,
                  .line_bytes = 64,
                  .hit_latency = 3};
  CacheConfig l2{.name = "L2",
                 .size_bytes = 1024 * 1024,
                 .assoc = 16,
                 .line_bytes = 64,
                 .hit_latency = 12};
  DramConfig dram{};
  /// L2-miss to memory-controller-enqueue latency (on-chip interconnect).
  Cycle mc_request_latency = 10;
  /// Last DRAM data beat to data-usable-by-core latency (fill return path).
  Cycle fill_return_latency = 15;
  /// Optional L2 stream prefetcher (off by default; R-Tab.5).
  PrefetcherConfig prefetch{};

  bool valid() const {
    return l1d.valid() && l2.valid() && dram.valid() && prefetch.valid() &&
           l1d.line_bytes == l2.line_bytes &&
           l2.line_bytes == dram.line_bytes;
  }
};

enum class ServedBy : std::uint8_t { kL1 = 0, kL2 = 1, kDram = 2 };

struct MemAccessResult {
  Cycle complete = 0;  ///< data usable by the core
  Cycle commit = 0;    ///< when `complete` became exactly known at the MC
  Cycle estimate = 0;  ///< MC estimate of `complete` at issue time
  ServedBy served_by = ServedBy::kL1;
  bool merged = false;      ///< satisfied by an already-in-flight fill
  bool prefetched = false;  ///< that fill was a prefetch
};

struct HierarchyStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t served_l1 = 0;
  std::uint64_t served_l2 = 0;
  std::uint64_t served_dram = 0;  ///< loads whose data came from DRAM
  std::uint64_t merged = 0;       ///< accesses satisfied by in-flight fills
  /// Demand fill reads actually issued to DRAM (loads + write-allocate
  /// stores, merged accesses excluded).  Together with prefetch_issued this
  /// equals the DRAM controller's read count contributed by this hierarchy.
  std::uint64_t dram_fills = 0;
  std::uint64_t prefetch_issued = 0;  ///< prefetch reads sent to DRAM
  std::uint64_t prefetch_merges = 0;  ///< demand accesses riding a prefetch
};

class MemoryHierarchy {
 public:
  /// Complete mutable state of an OWNING hierarchy: both cache tag arrays,
  /// DRAM bank/power anchors, the prefetcher table, the hierarchy counters,
  /// and the MSHR merge table (`inflight`).  The merge table must be in the
  /// checkpoint: whether a later load merges into an in-flight fill (and
  /// thus skips L1/L2 tag access entirely) depends on it, so dropping it
  /// would silently perturb both timing and tag state after a resume
  /// (docs/MODEL.md §4c).  import_state() requires a hierarchy constructed
  /// with the same HierarchyConfig; only the single-core owning form is
  /// supported (export asserts owns_l2_and_dram()).
  struct State {
    Cache::State l1;
    Cache::State l2;
    Dram::State dram;
    StreamPrefetcher::State prefetcher;
    HierarchyStats stats;
    std::unordered_map<Addr, MemAccessResult> inflight;
  };

  /// Single-core form: owns the L1, L2, and DRAM.
  explicit MemoryHierarchy(HierarchyConfig config);

  State export_state() const;
  void import_state(const State& s);

  /// Multi-core form: owns a private L1; L2 and DRAM are shared structures
  /// owned by the caller (see src/multicore).  All cores' accesses must be
  /// presented in globally non-decreasing time order.
  MemoryHierarchy(HierarchyConfig config, Cache& shared_l2,
                  Dram& shared_dram);

  /// Demand load; `now` must be non-decreasing across all calls.
  MemAccessResult load(Addr addr, Cycle now);

  /// Store; the core retires it through a write buffer and never blocks on
  /// the returned completion — it is reported for energy/occupancy stats.
  MemAccessResult store(Addr addr, Cycle now);

  /// True if a fill for this address's line is (or was recently) in flight.
  /// Used by the core's MLP-credit check: an access that will merge into an
  /// existing MSHR entry must not be charged a new miss credit.  May return
  /// true for a just-completed fill, which is safe — that access hits.
  bool line_in_flight(Addr addr) const {
    return inflight_.count(l1_.line_addr(addr)) != 0;
  }

  const HierarchyConfig& config() const { return config_; }
  const HierarchyStats& stats() const { return stats_; }
  const CacheStats& l1_stats() const { return l1_.stats(); }
  const CacheStats& l2_stats() const { return l2_->stats(); }
  const DramStats& dram_stats() const { return dram_->stats(); }
  const PrefetcherStats& prefetcher_stats() const {
    return prefetcher_.stats();
  }

  Cache& l1() { return l1_; }
  Cache& l2() { return *l2_; }
  Dram& dram() { return *dram_; }
  bool owns_l2_and_dram() const { return owned_l2_ != nullptr; }

  /// Zero this hierarchy's statistics (own counters + private L1) without
  /// touching tag/bank state; also resets the L2/DRAM stats when owned.
  /// With shared L2/DRAM, the owner resets those once for all cores.
  void reset_stats() {
    stats_ = HierarchyStats{};
    l1_.reset_stats();
    prefetcher_.reset_stats();
    if (owned_l2_) {
      l2_->reset_stats();
      dram_->reset_stats();
    }
  }

 private:
  MemAccessResult access(Addr addr, bool is_write, Cycle now);
  /// Route a dirty L1 victim into L2 (and, transitively, to DRAM).
  void handle_l1_writeback(Addr line_addr, Cycle now);
  /// Train the prefetcher on a demand L2 miss and launch its requests.
  void run_prefetcher(Addr miss_line, Cycle t_req);
  void prune_inflight(Cycle now);

  HierarchyConfig config_;
  Cache l1_;
  std::unique_ptr<Cache> owned_l2_;  ///< null when L2/DRAM are shared
  std::unique_ptr<Dram> owned_dram_;
  Cache* l2_;
  Dram* dram_;
  StreamPrefetcher prefetcher_;
  std::vector<Addr> prefetch_scratch_;
  HierarchyStats stats_;
  /// Line address -> in-flight fill result (MSHR merge table).
  std::unordered_map<Addr, MemAccessResult> inflight_;
};

}  // namespace mapg
