// Multicore MAPG: N cores with private L1s behind a shared L2 and shared
// DRAM, each with its own independent MAPG (or baseline) controller.
//
// This is the paper's natural scaling question (pursued by the same author
// group in the contemporaneous many-core power-gating work): shared-resource
// contention lengthens memory stalls and makes them *less* predictable at
// enqueue time (queueing behind other cores' requests), so per-core MAPG
// gains opportunity while relying more on the commit-point wakeup.
//
// Execution model: cores interleave in global time order — at every step the
// scheduler advances the core with the smallest local clock, so all shared
// L2/DRAM accesses are presented in non-decreasing time order (the contract
// those models require).  Each core runs its own synthetic workload in a
// disjoint address-space slice (multiprogrammed-mix methodology; no
// sharing, pure capacity/bandwidth contention).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sim.h"
#include "power/dram_energy.h"

namespace mapg {

struct MulticoreConfig {
  CoreConfig core{};
  /// Per-core L1 plus the SHARED L2/DRAM configuration.
  HierarchyConfig mem{};
  TechParams tech{};
  PgCircuitConfig pg{};
  DramEnergyParams dram_energy{};
  std::uint32_t num_cores = 4;
  std::uint64_t instructions_per_core = 1'000'000;
  std::uint64_t warmup_instructions = 100'000;  ///< per core
  std::uint64_t run_seed = 42;
  /// Address-space slice stride between cores (must exceed every profile's
  /// working set).
  Addr core_addr_stride = 1ULL << 40;
  /// Package di/dt budget: maximum concurrent per-core wakeup windows
  /// (0 = unlimited; see pg/wake_arbiter.h).
  std::uint32_t wake_arbiter_slots = 0;
  /// Stall-window stepping mode for every core and controller; same
  /// semantics and bit-identity contract as SimConfig::fast_forward.
  bool fast_forward = true;
  /// Scheduler implementation.  true (default): a min-heap over core clocks
  /// with a bulk-run horizon — the leading core retires instructions until
  /// the second-smallest clock would overtake it, amortizing dispatch from
  /// O(num_cores) per instruction to O(log num_cores) per lead change.
  /// false: the historical per-instruction linear min-scan.  Results are
  /// bit-identical either way (tests/test_differential.cpp).
  bool heap_scheduler = true;
};

/// Per-core outcome of a multicore run.
struct CoreSlotResult {
  std::string workload;
  /// false when the core's trace ended before the warmup target was reached:
  /// no uncontaminated measurement exists, so the statistics are zeroed
  /// (instrs == 0) rather than frozen with warmup traffic mixed in.  Only
  /// possible with externally supplied finite traces — generated traces
  /// never end.
  bool valid = true;
  CoreStats core;
  HierarchyStats hier;
  GatingStats gating;
  /// Core-domain energy only (dynamic + own leakage + idle clock + PG
  /// overhead); the shared L2/infrastructure leakage is accounted once at
  /// the MulticoreResult level.
  EnergyBreakdown energy;

  double mpki() const {
    return core.instrs ? 1000.0 * static_cast<double>(hier.served_dram) /
                             static_cast<double>(core.instrs)
                       : 0.0;
  }
  double gated_time_fraction() const {
    return core.cycles ? static_cast<double>(gating.activity.gated_cycles) /
                             static_cast<double>(core.cycles)
                       : 0.0;
  }
};

struct MulticoreResult {
  std::string policy;
  std::vector<CoreSlotResult> cores;
  CacheStats shared_l2;
  DramStats dram;
  Cycle makespan = 0;        ///< longest per-core measured time
  double shared_leak_j = 0;  ///< L2 + infrastructure leakage over makespan
  std::uint64_t wake_delayed_grants = 0;  ///< wakeups postponed by the arbiter
  std::uint64_t wake_delay_cycles = 0;    ///< total postponement
  double dram_j = 0;  ///< shared DRAM energy over the makespan

  double total_j() const {
    double j = shared_leak_j + dram_j;
    // Per-core: gated-domain energy plus the private L1 leakage (which is
    // the only ungated component left in per-core accounting).
    for (const auto& c : cores)
      j += c.energy.core_domain_j() + c.energy.ungated_leak_j;
    return j;
  }
  double total_core_domain_j() const {
    double j = 0;
    for (const auto& c : cores) j += c.energy.core_domain_j();
    return j;
  }
  double avg_gated_fraction() const {
    if (cores.empty()) return 0;
    double f = 0;
    for (const auto& c : cores) f += c.gated_time_fraction();
    return f / static_cast<double>(cores.size());
  }
};

class MulticoreSim {
 public:
  explicit MulticoreSim(MulticoreConfig config);

  /// Run `num_cores` cores; core i executes workloads[i % workloads.size()].
  /// Every core uses an independent instance of the given policy spec.
  MulticoreResult run(const std::vector<WorkloadProfile>& workloads,
                      const std::string& policy_spec) const;

  /// Same run, but core i consumes traces[i] instead of generating a stream
  /// from its profile (workloads still label the slots and must be sized
  /// num_cores or evenly cycled).  The caller owns the sources and their
  /// address-space layout; a source that ends before the warmup target
  /// yields an invalid slot (CoreSlotResult::valid == false).
  MulticoreResult run(const std::vector<WorkloadProfile>& workloads,
                      const std::string& policy_spec,
                      const std::vector<TraceSource*>& traces) const;

  const MulticoreConfig& config() const { return config_; }

 private:
  MulticoreResult run_impl(const std::vector<WorkloadProfile>& workloads,
                           const std::string& policy_spec,
                           const std::vector<TraceSource*>* ext_traces) const;

  MulticoreConfig config_;
};

}  // namespace mapg
