// Textual configuration -> simulator configs.
//
// One place maps "key=value" pairs (from config files or command lines) onto
// every knob in SimConfig / MulticoreConfig, so the CLI tool, examples, and
// scripts all speak the same dialect.  Unknown keys are reported, not
// silently ignored — config typos in experiments are a classic way to
// publish wrong numbers.
//
// Supported keys (defaults in parentheses are the DESIGN.md §7 platform):
//   instructions, warmup, seed
//   core.mlp_window (8), core.div_latency (20), core.mul_latency (3),
//   core.fp_latency (4), core.scoreboard (128)
//   l1.size_kib (32), l1.assoc (8), l1.latency (3)
//   l2.size_kib (1024), l2.assoc (16), l2.latency (12)
//   mem.mc_latency (10), mem.fill_latency (15), mem.line_bytes (64)
//   dram.channels (2), dram.banks (8), dram.row_bytes (8192),
//   dram.t_rcd (41), dram.t_rp (41), dram.t_cl (41), dram.t_bl (15),
//   dram.t_ras (105), dram.t_rfc (480), dram.t_refi (23400)
//   dram.power.mode (off | timeout | coordinated), dram.power.t_pd (8),
//   dram.power.t_xp (18), dram.power.t_cke (17), dram.power.t_xs (510),
//   dram.power.pd_timeout (192), dram.power.sr_timeout (0)
//   prefetch.enable (0), prefetch.degree (2), prefetch.table (16),
//   prefetch.confirm (1)
//   tech.freq_ghz (3.0), tech.vdd (1.0), tech.core_leakage_w (0.5),
//   tech.gated_fraction (0.95), tech.l1_leakage_w (0.05),
//   tech.l2_leakage_w (0.25), tech.other_leakage_w (0.08),
//   tech.idle_clock_w (0.10)
//   pg.c_vrail_nf (6), pg.rail_swing (0.9), pg.gate_charge_nj (2),
//   pg.stages (8), pg.stage_delay_ns (1), pg.settle_ns (2), pg.entry_ns (2),
//   pg.overhead_scale (1), pg.light_swing (0.25), pg.light_save (0.55),
//   pg.light_stages (2)
//   dram_energy.background_w (0.35), dram_energy.powerdown_w (0.12),
//   dram_energy.selfrefresh_w (0.045), dram_energy.activate_nj (12),
//   dram_energy.read_nj (10), dram_energy.write_nj (11),
//   dram_energy.refresh_nj (110)
//   thermal.enable (0), thermal.ambient_c (70), thermal.r_th (30),
//   thermal.tau_ms (1), thermal.t_ref_c (85), thermal.doubling_c (25),
//   thermal.epoch_instrs (20000)   [single-core run_thermal only]
// MulticoreConfig additionally:
//   cores (4), arbiter_slots (0), addr_stride_log2 (40)
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "core/sim.h"
#include "multicore/multicore.h"

namespace mapg {

/// Apply recognized keys onto `base`; unrecognized keys (outside the
/// reserved tool namespace "run.*") are appended to `unknown` when given.
SimConfig apply_sim_config(const KvConfig& kv, SimConfig base = {},
                           std::vector<std::string>* unknown = nullptr);

/// Multicore variant; shares all SimConfig keys plus the multicore ones.
MulticoreConfig apply_multicore_config(const KvConfig& kv,
                                       MulticoreConfig base = {},
                                       std::vector<std::string>* unknown =
                                           nullptr);

}  // namespace mapg
