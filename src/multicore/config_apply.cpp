#include "multicore/config_apply.h"

#include <set>

namespace mapg {
namespace {

/// Keys consumed by apply_sim_config.
const std::set<std::string>& sim_keys() {
  static const std::set<std::string> keys = {
      "instructions", "warmup", "seed", "fast_forward",
      "core.mlp_window", "core.div_latency", "core.mul_latency",
      "core.fp_latency", "core.scoreboard",
      "l1.size_kib", "l1.assoc", "l1.latency",
      "l2.size_kib", "l2.assoc", "l2.latency",
      "mem.mc_latency", "mem.fill_latency", "mem.line_bytes",
      "dram.channels", "dram.banks", "dram.row_bytes",
      "dram.standard", "dram.page_policy", "dram.hybrid_bits",
      "dram.queue_depth", "dram.write_starve",
      "dram.t_rcd", "dram.t_rp", "dram.t_cl", "dram.t_bl",
      "dram.t_ras", "dram.t_rfc", "dram.t_refi",
      "dram.power.mode", "dram.power.t_pd", "dram.power.t_xp",
      "dram.power.t_cke", "dram.power.t_xs", "dram.power.pd_timeout",
      "dram.power.sr_timeout",
      "prefetch.enable", "prefetch.degree", "prefetch.table",
      "prefetch.confirm",
      "tech.freq_ghz", "tech.vdd", "tech.core_leakage_w",
      "tech.gated_fraction", "tech.l1_leakage_w", "tech.l2_leakage_w",
      "tech.other_leakage_w", "tech.idle_clock_w",
      "pg.c_vrail_nf", "pg.rail_swing", "pg.gate_charge_nj", "pg.stages",
      "pg.stage_delay_ns", "pg.settle_ns", "pg.entry_ns",
      "pg.overhead_scale", "pg.light_swing", "pg.light_save",
      "pg.light_stages",
      "dram_energy.background_w", "dram_energy.powerdown_w",
      "dram_energy.selfrefresh_w", "dram_energy.activate_nj",
      "dram_energy.read_nj", "dram_energy.write_nj",
      "dram_energy.refresh_nj",
      "thermal.enable", "thermal.ambient_c", "thermal.r_th",
      "thermal.tau_ms", "thermal.t_ref_c", "thermal.doubling_c",
      "thermal.epoch_instrs",
  };
  return keys;
}

const std::set<std::string>& multicore_keys() {
  static const std::set<std::string> keys = {"cores", "arbiter_slots",
                                             "addr_stride_log2",
                                             "heap_scheduler"};
  return keys;
}

void collect_unknown(const KvConfig& kv, bool with_multicore,
                     std::vector<std::string>* unknown) {
  if (unknown == nullptr) return;
  // Keys owned by front-end tools, not by the platform configuration.
  static const std::set<std::string> tool_keys = {
      "config", "workload", "policy",   "csv",      "seeds", "list",
      "help",   "jobs",     "cache-dir", "no-cache", "progress", "runlog",
      "fast-forward", "dram-power", "dram-standard", "page-policy",
      "replay", "checkpoint-stride", "print-metrics", "metrics-out",
      "trace-out", "trace-buf", "trace", "trace-name", "sample-regions",
      "sample-clusters", "sample-warmup", "sample-seed", "sample-sig-cache"};
  for (const auto& [key, value] : kv.all()) {
    (void)value;
    if (key.rfind("run.", 0) == 0) continue;  // reserved for tools
    if (tool_keys.count(key) != 0) continue;
    if (sim_keys().count(key) != 0) continue;
    // The multicore keys are always recognized (a single-core front end
    // simply ignores them), so "--cores=1" never warns.
    if (multicore_keys().count(key) != 0) continue;
    (void)with_multicore;
    unknown->push_back(key);
  }
}

/// Everything except the run-length fields, shared by both entry points.
void apply_platform(const KvConfig& kv, CoreConfig& core,
                    HierarchyConfig& mem, TechParams& tech,
                    PgCircuitConfig& pg, DramEnergyParams& de) {
  core.mlp_window = static_cast<std::uint32_t>(
      kv.get_uint("core.mlp_window", core.mlp_window));
  core.div_latency = kv.get_uint("core.div_latency", core.div_latency);
  core.mul_latency = kv.get_uint("core.mul_latency", core.mul_latency);
  core.fp_latency = kv.get_uint("core.fp_latency", core.fp_latency);
  core.scoreboard_window = static_cast<std::uint32_t>(
      kv.get_uint("core.scoreboard", core.scoreboard_window));

  mem.l1d.size_bytes = kv.get_uint("l1.size_kib",
                                   mem.l1d.size_bytes / 1024) * 1024;
  mem.l1d.assoc =
      static_cast<std::uint32_t>(kv.get_uint("l1.assoc", mem.l1d.assoc));
  mem.l1d.hit_latency = kv.get_uint("l1.latency", mem.l1d.hit_latency);
  mem.l2.size_bytes = kv.get_uint("l2.size_kib",
                                  mem.l2.size_bytes / 1024) * 1024;
  mem.l2.assoc =
      static_cast<std::uint32_t>(kv.get_uint("l2.assoc", mem.l2.assoc));
  mem.l2.hit_latency = kv.get_uint("l2.latency", mem.l2.hit_latency);
  mem.mc_request_latency =
      kv.get_uint("mem.mc_latency", mem.mc_request_latency);
  mem.fill_return_latency =
      kv.get_uint("mem.fill_latency", mem.fill_return_latency);
  const auto line = static_cast<std::uint32_t>(
      kv.get_uint("mem.line_bytes", mem.l1d.line_bytes));
  mem.l1d.line_bytes = mem.l2.line_bytes = mem.dram.line_bytes = line;

  mem.dram.channels = static_cast<std::uint32_t>(
      kv.get_uint("dram.channels", mem.dram.channels));
  mem.dram.banks_per_channel = static_cast<std::uint32_t>(
      kv.get_uint("dram.banks", mem.dram.banks_per_channel));

  // The named standard is applied FIRST so every individual timing key below
  // can override its preset — that is the custom path (docs/DRAM.md §2).
  // "--dram-standard" is the front-end spelling (bench_util), "dram.standard"
  // the config-file key; the preset also swaps in the standard's IDD-class
  // energy set, again overridable by explicit dram_energy.* keys below.
  {
    const auto std_name = kv.get("dram.standard");
    const auto std_flag = kv.get("dram-standard");
    const std::string* name =
        std_name ? &*std_name : (std_flag ? &*std_flag : nullptr);
    if (name != nullptr) {
      DramStandard standard;
      if (parse_dram_standard(*name, standard)) {
        apply_dram_standard(mem.dram, standard);
        de = dram_energy_for_standard(standard);
      }
    }
  }
  if (const auto policy = kv.get("dram.page_policy")) {
    PagePolicy p;
    if (parse_page_policy(*policy, p)) mem.dram.page_policy = p;
  }
  if (const auto policy = kv.get("page-policy")) {
    PagePolicy p;
    if (parse_page_policy(*policy, p)) mem.dram.page_policy = p;
  }
  mem.dram.hybrid_addr_bits = static_cast<std::uint32_t>(
      kv.get_uint("dram.hybrid_bits", mem.dram.hybrid_addr_bits));
  mem.dram.queue_depth = static_cast<std::uint32_t>(
      kv.get_uint("dram.queue_depth", mem.dram.queue_depth));
  mem.dram.write_starve_limit =
      kv.get_uint("dram.write_starve", mem.dram.write_starve_limit);

  mem.dram.row_bytes = static_cast<std::uint32_t>(
      kv.get_uint("dram.row_bytes", mem.dram.row_bytes));
  mem.dram.t_rcd = kv.get_uint("dram.t_rcd", mem.dram.t_rcd);
  mem.dram.t_rp = kv.get_uint("dram.t_rp", mem.dram.t_rp);
  mem.dram.t_cl = kv.get_uint("dram.t_cl", mem.dram.t_cl);
  mem.dram.t_bl = kv.get_uint("dram.t_bl", mem.dram.t_bl);
  mem.dram.t_ras = kv.get_uint("dram.t_ras", mem.dram.t_ras);
  mem.dram.t_rfc = kv.get_uint("dram.t_rfc", mem.dram.t_rfc);
  mem.dram.t_refi = kv.get_uint("dram.t_refi", mem.dram.t_refi);

  // Low-power states (docs/MEMORY_POWER.md).  The mode is textual so config
  // files read naturally; anything unrecognized keeps the current mode.
  if (const auto mode = kv.get("dram.power.mode")) {
    if (*mode == "off") mem.dram.power.mode = DramPowerMode::kOff;
    else if (*mode == "timeout") mem.dram.power.mode = DramPowerMode::kTimeout;
    else if (*mode == "coordinated")
      mem.dram.power.mode = DramPowerMode::kCoordinated;
  }
  mem.dram.power.t_pd = kv.get_uint("dram.power.t_pd", mem.dram.power.t_pd);
  mem.dram.power.t_xp = kv.get_uint("dram.power.t_xp", mem.dram.power.t_xp);
  mem.dram.power.t_cke = kv.get_uint("dram.power.t_cke", mem.dram.power.t_cke);
  mem.dram.power.t_xs = kv.get_uint("dram.power.t_xs", mem.dram.power.t_xs);
  mem.dram.power.powerdown_timeout = kv.get_uint(
      "dram.power.pd_timeout", mem.dram.power.powerdown_timeout);
  mem.dram.power.selfrefresh_timeout = kv.get_uint(
      "dram.power.sr_timeout", mem.dram.power.selfrefresh_timeout);

  mem.prefetch.enable = kv.get_bool("prefetch.enable", mem.prefetch.enable);
  mem.prefetch.degree = static_cast<std::uint32_t>(
      kv.get_uint("prefetch.degree", mem.prefetch.degree));
  mem.prefetch.table_entries = static_cast<std::uint32_t>(
      kv.get_uint("prefetch.table", mem.prefetch.table_entries));
  mem.prefetch.confirm_after = static_cast<std::uint32_t>(
      kv.get_uint("prefetch.confirm", mem.prefetch.confirm_after));

  tech.freq_ghz = kv.get_double("tech.freq_ghz", tech.freq_ghz);
  tech.vdd = kv.get_double("tech.vdd", tech.vdd);
  tech.core_leakage_w =
      kv.get_double("tech.core_leakage_w", tech.core_leakage_w);
  tech.gated_fraction =
      kv.get_double("tech.gated_fraction", tech.gated_fraction);
  tech.l1_leakage_w = kv.get_double("tech.l1_leakage_w", tech.l1_leakage_w);
  tech.l2_leakage_w = kv.get_double("tech.l2_leakage_w", tech.l2_leakage_w);
  tech.other_leakage_w =
      kv.get_double("tech.other_leakage_w", tech.other_leakage_w);
  tech.idle_clock_w = kv.get_double("tech.idle_clock_w", tech.idle_clock_w);

  pg.c_vrail_nf = kv.get_double("pg.c_vrail_nf", pg.c_vrail_nf);
  pg.rail_swing_frac = kv.get_double("pg.rail_swing", pg.rail_swing_frac);
  pg.gate_charge_nj = kv.get_double("pg.gate_charge_nj", pg.gate_charge_nj);
  pg.wakeup_stages = static_cast<std::uint32_t>(
      kv.get_uint("pg.stages", pg.wakeup_stages));
  pg.stage_delay_ns = kv.get_double("pg.stage_delay_ns", pg.stage_delay_ns);
  pg.settle_ns = kv.get_double("pg.settle_ns", pg.settle_ns);
  pg.entry_ns = kv.get_double("pg.entry_ns", pg.entry_ns);
  pg.overhead_scale = kv.get_double("pg.overhead_scale", pg.overhead_scale);
  pg.light_swing_frac = kv.get_double("pg.light_swing", pg.light_swing_frac);
  pg.light_save_frac = kv.get_double("pg.light_save", pg.light_save_frac);
  pg.light_wakeup_stages = static_cast<std::uint32_t>(
      kv.get_uint("pg.light_stages", pg.light_wakeup_stages));

  de.background_w_per_channel =
      kv.get_double("dram_energy.background_w", de.background_w_per_channel);
  de.powerdown_w_per_channel =
      kv.get_double("dram_energy.powerdown_w", de.powerdown_w_per_channel);
  de.selfrefresh_w_per_channel = kv.get_double(
      "dram_energy.selfrefresh_w", de.selfrefresh_w_per_channel);
  de.activate_nj = kv.get_double("dram_energy.activate_nj", de.activate_nj);
  de.read_nj = kv.get_double("dram_energy.read_nj", de.read_nj);
  de.write_nj = kv.get_double("dram_energy.write_nj", de.write_nj);
  de.refresh_nj = kv.get_double("dram_energy.refresh_nj", de.refresh_nj);
}

}  // namespace

SimConfig apply_sim_config(const KvConfig& kv, SimConfig base,
                           std::vector<std::string>* unknown) {
  collect_unknown(kv, /*with_multicore=*/false, unknown);
  apply_platform(kv, base.core, base.mem, base.tech, base.pg,
                 base.dram_energy);
  base.thermal.enable = kv.get_bool("thermal.enable", base.thermal.enable);
  base.thermal.t_ambient_c =
      kv.get_double("thermal.ambient_c", base.thermal.t_ambient_c);
  base.thermal.r_th_k_per_w =
      kv.get_double("thermal.r_th", base.thermal.r_th_k_per_w);
  base.thermal.tau_ms = kv.get_double("thermal.tau_ms", base.thermal.tau_ms);
  base.thermal.t_ref_c =
      kv.get_double("thermal.t_ref_c", base.thermal.t_ref_c);
  base.thermal.leak_doubling_c =
      kv.get_double("thermal.doubling_c", base.thermal.leak_doubling_c);
  base.thermal.epoch_instructions =
      kv.get_uint("thermal.epoch_instrs", base.thermal.epoch_instructions);
  base.instructions = kv.get_uint("instructions", base.instructions);
  base.warmup_instructions = kv.get_uint("warmup", base.warmup_instructions);
  base.run_seed = kv.get_uint("seed", base.run_seed);
  // Both spellings: "fast-forward" is the front-end flag (bench_util),
  // "fast_forward" the config-file key.
  base.fast_forward = kv.get_bool(
      "fast_forward", kv.get_bool("fast-forward", base.fast_forward));
  return base;
}

MulticoreConfig apply_multicore_config(const KvConfig& kv,
                                       MulticoreConfig base,
                                       std::vector<std::string>* unknown) {
  collect_unknown(kv, /*with_multicore=*/true, unknown);
  apply_platform(kv, base.core, base.mem, base.tech, base.pg,
                 base.dram_energy);
  base.instructions_per_core =
      kv.get_uint("instructions", base.instructions_per_core);
  base.warmup_instructions = kv.get_uint("warmup", base.warmup_instructions);
  base.run_seed = kv.get_uint("seed", base.run_seed);
  // Both spellings: "fast-forward" is the front-end flag (bench_util),
  // "fast_forward" the config-file key.
  base.fast_forward = kv.get_bool(
      "fast_forward", kv.get_bool("fast-forward", base.fast_forward));
  base.num_cores =
      static_cast<std::uint32_t>(kv.get_uint("cores", base.num_cores));
  base.wake_arbiter_slots = static_cast<std::uint32_t>(
      kv.get_uint("arbiter_slots", base.wake_arbiter_slots));
  base.heap_scheduler =
      kv.get_bool("heap_scheduler", base.heap_scheduler);
  const auto stride_log2 = kv.get_uint("addr_stride_log2", 40);
  base.core_addr_stride = 1ULL << stride_log2;
  return base;
}

}  // namespace mapg
