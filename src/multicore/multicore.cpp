#include "multicore/multicore.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "trace/trace_io.h"

namespace mapg {
namespace {

/// Everything one core needs, bundled for the interleaving scheduler.
struct Slot {
  std::string workload;
  std::unique_ptr<TraceGenerator> gen;
  std::unique_ptr<OffsetTraceSource> trace;
  std::unique_ptr<MemoryHierarchy> mem;
  std::unique_ptr<PgPolicy> policy;
  std::unique_ptr<PgController> controller;
  std::unique_ptr<Core> core;
  std::uint64_t executed = 0;
  bool warmed = false;     ///< crossed the warmup instruction count
  bool done = false;       ///< crossed warmup + measurement; stats frozen
  bool exhausted = false;  ///< trace ended; core no longer schedulable
  // Stats frozen at the measurement crossing point.
  CoreStats final_core;
  HierarchyStats final_hier;
  GatingStats final_gating;
};

}  // namespace

MulticoreSim::MulticoreSim(MulticoreConfig config)
    : config_(std::move(config)) {
  assert(config_.num_cores > 0 && "need at least one core");
  assert(config_.mem.valid() && "invalid hierarchy configuration");
}

MulticoreResult MulticoreSim::run(
    const std::vector<WorkloadProfile>& workloads,
    const std::string& policy_spec) const {
  if (workloads.empty())
    throw std::invalid_argument("need at least one workload profile");
  for (const auto& w : workloads) {
    if (w.working_set_bytes > config_.core_addr_stride)
      throw std::invalid_argument("workload '" + w.name +
                                  "' exceeds the per-core address stride");
  }

  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);

  StallKernelParams kparams;
  kparams.mode = config_.fast_forward ? StepMode::kFastForward
                                      : StepMode::kCycleAccurate;
  kparams.t_refi = config_.mem.dram.t_refi;
  kparams.t_rfc = config_.mem.dram.t_rfc;
  kparams.rates = StallEnergyRates::make(
      config_.tech, circuit, config_.dram_energy, config_.mem.dram.channels);
  // kparams.dram_pd stays disabled: coordinated CPU–DRAM gating
  // (DramPowerMode::kCoordinated) assumes the gating core is the only
  // traffic source, which does not hold for a shared DRAM — another core
  // may hit a channel this core's closed form counted as parked.  Timeout
  // mode (kTimeout) needs no coordination and works here unchanged; a
  // "-dram" policy suffix is accepted but has no effect in multicore.

  Cache shared_l2(config_.mem.l2);
  Dram shared_dram(config_.mem.dram);
  WakeArbiter arbiter(config_.wake_arbiter_slots);
  WakeArbiter* arbiter_ptr =
      config_.wake_arbiter_slots > 0 ? &arbiter : nullptr;

  std::vector<Slot> slots(config_.num_cores);
  for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
    Slot& s = slots[i];
    const WorkloadProfile& w = workloads[i % workloads.size()];
    s.workload = w.name;
    // Distinct run seeds: cores running the same profile still draw
    // independent traces.
    s.gen = std::make_unique<TraceGenerator>(w, config_.run_seed + i);
    s.trace = std::make_unique<OffsetTraceSource>(
        *s.gen, config_.core_addr_stride * i);
    s.mem = std::make_unique<MemoryHierarchy>(config_.mem, shared_l2,
                                              shared_dram);
    s.policy = make_policy(policy_spec, ctx);
    if (!s.policy)
      throw std::invalid_argument("unknown policy spec: " + policy_spec);
    s.controller = std::make_unique<PgController>(*s.policy, circuit,
                                                  arbiter_ptr, kparams);
    s.core =
        std::make_unique<Core>(config_.core, *s.mem, s.controller.get());
    s.core->set_step_mode(kparams.mode);
  }

  // Interleaved execution, always stepping the core with the smallest local
  // clock so shared-L2/DRAM accesses stay in globally non-decreasing time
  // order.  Cores are NEVER paused at instruction barriers: a core that
  // crosses its warmup count resets its own statistics mid-run, and one
  // that crosses its measurement quota freezes a snapshot but keeps running
  // (loading the shared memory system realistically) until every core has
  // finished — the standard multiprogrammed-mix methodology.  Pausing fast
  // cores at a barrier would desynchronize core clocks and make their later
  // requests queue behind shared-resource state from the "future".
  const std::uint64_t warm_target = config_.warmup_instructions;
  const std::uint64_t total_target =
      config_.warmup_instructions + config_.instructions_per_core;
  std::uint32_t warmed_count = 0;
  std::uint32_t done_count = 0;

  auto warm_slot = [&](Slot& s) {
    s.warmed = true;
    s.core->reset_stats();
    s.mem->reset_stats();  // private L1 + own counters (L2/DRAM shared)
    s.controller->reset_stats();
    if (++warmed_count == config_.num_cores) {
      // Shared statistics reset once, when the last core exits warmup (an
      // aggregate approximation: earlier cores' first measured requests are
      // not in the shared counters).  Warmup idle is classified into the
      // power-residency counters first so the reset discards it cleanly.
      shared_dram.settle_power(s.core->now());
      shared_l2.reset_stats();
      shared_dram.reset_stats();
      arbiter.reset_stats();
    }
  };
  auto finish_slot = [&](Slot& s) {
    s.done = true;
    s.final_core = s.core->stats();
    s.final_hier = s.mem->stats();
    s.final_gating = s.controller->stats();
    ++done_count;
  };

  if (warm_target == 0)
    for (auto& s : slots) warm_slot(s);

  while (done_count < config_.num_cores) {
    Slot* next = nullptr;
    for (auto& s : slots) {
      if (s.exhausted) continue;
      if (next == nullptr || s.core->now() < next->core->now()) next = &s;
    }
    if (next == nullptr) break;  // every trace exhausted
    if (!next->core->step(*next->trace)) {
      next->exhausted = true;  // only finite traces end; generators do not
      if (!next->done) finish_slot(*next);
      continue;
    }
    ++next->executed;
    if (!next->warmed && next->executed >= warm_target) warm_slot(*next);
    if (!next->done && next->executed >= total_target) finish_slot(*next);
  }

  MulticoreResult result;
  result.policy = slots.front().policy->name();
  result.shared_l2 = shared_l2.stats();
  // Classify the trailing idle up to the latest core clock before the
  // snapshot, so timeout-mode residency covers the whole shared window.
  Cycle global_end = 0;
  for (const auto& s : slots)
    global_end = std::max(global_end, s.core->now());
  shared_dram.settle_power(global_end);
  result.dram = shared_dram.stats();

  // Per-core energy uses a tech variant with the shared components zeroed,
  // so only the private L1 remains in per-core ungated leakage; the shared
  // L2 + infrastructure leakage is charged once, over the makespan.
  TechParams per_core_tech = config_.tech;
  per_core_tech.l2_leakage_w = 0;
  per_core_tech.other_leakage_w = 0;

  for (auto& s : slots) {
    CoreSlotResult slot_result;
    slot_result.workload = s.workload;
    slot_result.core = s.final_core;
    slot_result.hier = s.final_hier;
    slot_result.gating = s.final_gating;
    slot_result.energy =
        compute_energy(per_core_tech, &circuit, slot_result.core,
                       slot_result.gating.activity);
    result.makespan = std::max(result.makespan, slot_result.core.cycles);
    result.cores.push_back(std::move(slot_result));
  }
  result.shared_leak_j =
      (config_.tech.l2_leakage_w + config_.tech.other_leakage_w) *
      config_.tech.cycles_to_seconds(static_cast<double>(result.makespan));
  result.wake_delayed_grants = arbiter.delayed_grants();
  result.wake_delay_cycles = arbiter.delay_cycles();
  result.dram_j =
      compute_dram_energy_j(result.dram, config_.mem.dram, config_.tech,
                            config_.dram_energy, result.makespan);
  return result;
}

}  // namespace mapg
