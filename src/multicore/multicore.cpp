#include "multicore/multicore.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "trace/trace_io.h"

namespace mapg {
namespace {

/// Everything one core needs, bundled for the interleaving scheduler.
struct Slot {
  std::string workload;
  std::unique_ptr<TraceGenerator> gen;        ///< null for external traces
  std::unique_ptr<OffsetTraceSource> trace;   ///< null for external traces
  TraceSource* src = nullptr;  ///< the source the core actually consumes
  std::unique_ptr<MemoryHierarchy> mem;
  std::unique_ptr<PgPolicy> policy;
  std::unique_ptr<PgController> controller;
  std::unique_ptr<Core> core;
  std::uint64_t executed = 0;
  bool warmed = false;     ///< crossed the warmup instruction count
  bool done = false;       ///< crossed warmup + measurement; stats frozen
  bool exhausted = false;  ///< trace ended; core no longer schedulable
  bool invalid = false;    ///< trace ended before warmup; stats zeroed
  // Stats frozen at the measurement crossing point.
  CoreStats final_core;
  HierarchyStats final_hier;
  GatingStats final_gating;
};

}  // namespace

MulticoreSim::MulticoreSim(MulticoreConfig config)
    : config_(std::move(config)) {
  assert(config_.num_cores > 0 && "need at least one core");
  assert(config_.mem.valid() && "invalid hierarchy configuration");
}

MulticoreResult MulticoreSim::run(
    const std::vector<WorkloadProfile>& workloads,
    const std::string& policy_spec) const {
  return run_impl(workloads, policy_spec, nullptr);
}

MulticoreResult MulticoreSim::run(
    const std::vector<WorkloadProfile>& workloads,
    const std::string& policy_spec,
    const std::vector<TraceSource*>& traces) const {
  if (traces.size() != config_.num_cores)
    throw std::invalid_argument("need one trace source per core");
  for (TraceSource* t : traces)
    if (t == nullptr)
      throw std::invalid_argument("null trace source");
  return run_impl(workloads, policy_spec, &traces);
}

MulticoreResult MulticoreSim::run_impl(
    const std::vector<WorkloadProfile>& workloads,
    const std::string& policy_spec,
    const std::vector<TraceSource*>* ext_traces) const {
  if (workloads.empty())
    throw std::invalid_argument("need at least one workload profile");
  // External traces carry their own address layout; the stride guard only
  // applies to the generated disjoint-slice scheme.
  if (ext_traces == nullptr) {
    for (const auto& w : workloads) {
      if (w.working_set_bytes > config_.core_addr_stride)
        throw std::invalid_argument("workload '" + w.name +
                                    "' exceeds the per-core address stride");
    }
  }

  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);

  StallKernelParams kparams;
  kparams.mode = config_.fast_forward ? StepMode::kFastForward
                                      : StepMode::kCycleAccurate;
  kparams.t_refi = config_.mem.dram.t_refi;
  kparams.t_rfc = config_.mem.dram.t_rfc;
  kparams.rates = StallEnergyRates::make(
      config_.tech, circuit, config_.dram_energy, config_.mem.dram.channels);
  // kparams.dram_pd stays disabled: coordinated CPU–DRAM gating
  // (DramPowerMode::kCoordinated) assumes the gating core is the only
  // traffic source, which does not hold for a shared DRAM — another core
  // may hit a channel this core's closed form counted as parked.  Timeout
  // mode (kTimeout) needs no coordination and works here unchanged; a
  // "-dram" policy suffix is accepted but has no effect in multicore.

  Cache shared_l2(config_.mem.l2);
  Dram shared_dram(config_.mem.dram);
  WakeArbiter arbiter(config_.wake_arbiter_slots);
  WakeArbiter* arbiter_ptr =
      config_.wake_arbiter_slots > 0 ? &arbiter : nullptr;

  std::vector<Slot> slots(config_.num_cores);
  for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
    Slot& s = slots[i];
    const WorkloadProfile& w = workloads[i % workloads.size()];
    s.workload = w.name;
    if (ext_traces != nullptr) {
      s.src = (*ext_traces)[i];
    } else {
      // Distinct run seeds: cores running the same profile still draw
      // independent traces.
      s.gen = std::make_unique<TraceGenerator>(w, config_.run_seed + i);
      s.trace = std::make_unique<OffsetTraceSource>(
          *s.gen, config_.core_addr_stride * i);
      s.src = s.trace.get();
    }
    s.mem = std::make_unique<MemoryHierarchy>(config_.mem, shared_l2,
                                              shared_dram);
    s.policy = make_policy(policy_spec, ctx);
    if (!s.policy)
      throw std::invalid_argument("unknown policy spec: " + policy_spec);
    s.controller = std::make_unique<PgController>(*s.policy, circuit,
                                                  arbiter_ptr, kparams);
    s.core =
        std::make_unique<Core>(config_.core, *s.mem, s.controller.get());
    s.core->set_step_mode(kparams.mode);
  }

  // Interleaved execution, always stepping the core with the smallest local
  // clock so shared-L2/DRAM accesses stay in globally non-decreasing time
  // order.  Cores are NEVER paused at instruction barriers: a core that
  // crosses its warmup count resets its own statistics mid-run, and one
  // that crosses its measurement quota freezes a snapshot but keeps running
  // (loading the shared memory system realistically) until every core has
  // finished — the standard multiprogrammed-mix methodology.  Pausing fast
  // cores at a barrier would desynchronize core clocks and make their later
  // requests queue behind shared-resource state from the "future".
  const std::uint64_t warm_target = config_.warmup_instructions;
  const std::uint64_t total_target =
      config_.warmup_instructions + config_.instructions_per_core;
  std::uint32_t warmed_count = 0;
  std::uint32_t done_count = 0;

  auto warm_slot = [&](Slot& s) {
    s.warmed = true;
    s.core->reset_stats();
    s.mem->reset_stats();  // private L1 + own counters (L2/DRAM shared)
    s.controller->reset_stats();
    if (++warmed_count == config_.num_cores) {
      // Shared statistics reset once, when the last core exits warmup (an
      // aggregate approximation: earlier cores' first measured requests are
      // not in the shared counters).  Warmup idle is classified into the
      // power-residency counters first so the reset discards it cleanly.
      shared_dram.settle_power(s.core->now());
      shared_l2.reset_stats();
      shared_dram.reset_stats();
      arbiter.reset_stats();
    }
  };
  auto finish_slot = [&](Slot& s) {
    s.done = true;
    s.final_core = s.core->stats();
    s.final_hier = s.mem->stats();
    s.final_gating = s.controller->stats();
    ++done_count;
  };
  // The trace ended (only possible for finite external sources).  If that
  // happened before the warmup target there is no uncontaminated
  // measurement: zero the statistics and flag the slot invalid instead of
  // freezing warmup traffic as if it were measured.
  auto exhaust_slot = [&](Slot& s) {
    s.exhausted = true;
    if (s.done) return;
    if (!s.warmed) {
      s.invalid = true;
      s.core->reset_stats();
      s.mem->reset_stats();
      s.controller->reset_stats();
    }
    finish_slot(s);
  };

  if (warm_target == 0)
    for (auto& s : slots) warm_slot(s);

  // Shared by both schedulers: retire one instruction on slot s, crossing
  // the warmup / measurement thresholds as they are reached.  Returns false
  // when the slot's trace ended.
  auto step_slot = [&](Slot& s) {
    if (!s.core->step(*s.src)) {
      exhaust_slot(s);
      return false;
    }
    ++s.executed;
    if (!s.warmed && s.executed >= warm_target) warm_slot(s);
    if (!s.done && s.executed >= total_target) finish_slot(s);
    return true;
  };

  if (config_.heap_scheduler) {
    // Min-heap of (local clock, slot index): pop the scheduling minimum and
    // let it retire instructions until the next entry would overtake it —
    // (clock, index) lexicographic order reproduces the linear scan's
    // lowest-index tie-break exactly, so the interleaving (and therefore
    // every shared-resource access order) is bit-identical to the scan.
    using Entry = std::pair<Cycle, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ready;
    for (std::uint32_t i = 0; i < config_.num_cores; ++i)
      ready.emplace(slots[i].core->now(), i);

    while (done_count < config_.num_cores && !ready.empty()) {
      const std::uint32_t idx = ready.top().second;
      ready.pop();
      Slot& s = slots[idx];
      Cycle h_clk = std::numeric_limits<Cycle>::max();
      std::uint32_t h_idx = 0;
      if (!ready.empty()) {
        h_clk = ready.top().first;
        h_idx = ready.top().second;
      }
      bool alive = true;
      do {
        if (!step_slot(s)) {
          alive = false;
          break;
        }
        // Re-check after every retired instruction: crossing the last
        // measurement threshold ends the run immediately, mid-horizon.
        if (done_count >= config_.num_cores) break;
      } while (s.core->now() < h_clk ||
               (s.core->now() == h_clk && idx < h_idx));
      if (alive) ready.emplace(s.core->now(), idx);
    }
  } else {
    // Historical per-instruction linear min-scan, kept for the differential
    // suite to prove the heap scheduler bit-identical.
    while (done_count < config_.num_cores) {
      Slot* next = nullptr;
      for (auto& s : slots) {
        if (s.exhausted) continue;
        if (next == nullptr || s.core->now() < next->core->now()) next = &s;
      }
      if (next == nullptr) break;  // every trace exhausted
      step_slot(*next);
    }
  }

  MulticoreResult result;
  result.policy = slots.front().policy->name();
  result.shared_l2 = shared_l2.stats();
  // Classify the trailing idle up to the latest core clock before the
  // snapshot, so timeout-mode residency covers the whole shared window.
  Cycle global_end = 0;
  for (const auto& s : slots)
    global_end = std::max(global_end, s.core->now());
  shared_dram.settle_power(global_end);
  result.dram = shared_dram.stats();

  // Per-core energy uses a tech variant with the shared components zeroed,
  // so only the private L1 remains in per-core ungated leakage; the shared
  // L2 + infrastructure leakage is charged once, over the makespan.
  TechParams per_core_tech = config_.tech;
  per_core_tech.l2_leakage_w = 0;
  per_core_tech.other_leakage_w = 0;

  for (auto& s : slots) {
    CoreSlotResult slot_result;
    slot_result.workload = s.workload;
    slot_result.valid = !s.invalid;
    slot_result.core = s.final_core;
    slot_result.hier = s.final_hier;
    slot_result.gating = s.final_gating;
    slot_result.energy =
        compute_energy(per_core_tech, &circuit, slot_result.core,
                       slot_result.gating.activity);
    result.makespan = std::max(result.makespan, slot_result.core.cycles);
    result.cores.push_back(std::move(slot_result));
  }
  result.shared_leak_j =
      (config_.tech.l2_leakage_w + config_.tech.other_leakage_w) *
      config_.tech.cycles_to_seconds(static_cast<double>(result.makespan));
  result.wake_delayed_grants = arbiter.delayed_grants();
  result.wake_delay_cycles = arbiter.delay_cycles();
  result.dram_j =
      compute_dram_energy_j(result.dram, config_.mem.dram, config_.tech,
                            config_.dram_energy, result.makespan);
  return result;
}

}  // namespace mapg
