// Compatibility shim: ExperimentRunner moved to the exec subsystem (it now
// executes on the parallel ExperimentEngine).  Link mapg_exec and prefer
// including "exec/runner.h" directly in new code.
#pragma once

#include "exec/runner.h"
