// ExperimentRunner: grids of (workload x policy) with baseline-relative
// metrics.  Every bench binary is a thin wrapper over this.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/sim.h"

namespace mapg {

/// A SimResult scored against the same-workload no-gating baseline.
struct Comparison {
  SimResult result;

  /// 1 - E_total(policy) / E_total(baseline).
  double total_energy_savings = 0;
  /// 1 - E_core_domain(policy) / E_core_domain(baseline) — the paper-style
  /// headline metric (always-on cache leakage excluded from both sides).
  double core_energy_savings = 0;
  /// Net gated-region leakage reduction: (leak saved - PG overhead) over the
  /// baseline gated-region leakage.
  double net_leakage_savings = 0;
  /// cycles(policy) / cycles(baseline) - 1.
  double runtime_overhead = 0;
};

/// Baseline-relative metrics aggregated over independent trace seeds:
/// mean / stdev / min / max per metric.  Replication quantifies how much of
/// any observed difference is workload-draw noise.
struct ReplicatedComparison {
  std::string workload;
  std::string policy;
  RunningStat core_energy_savings;
  RunningStat total_energy_savings;
  RunningStat net_leakage_savings;
  RunningStat runtime_overhead;
  RunningStat mpki;
  RunningStat ipc;

  std::uint64_t replicates() const { return core_energy_savings.count(); }
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SimConfig config) : sim_(std::move(config)) {}

  /// Run (or fetch from cache) the no-gating baseline for a workload.
  const SimResult& baseline(const WorkloadProfile& profile);

  /// Run one policy and score it against the cached baseline.
  Comparison compare_one(const WorkloadProfile& profile,
                         const std::string& policy_spec);

  /// Run a policy list (baseline included or not) against one workload.
  std::vector<Comparison> compare(const WorkloadProfile& profile,
                                  const std::vector<std::string>& specs);

  /// Run (workload, policy) under `n_seeds` independent trace draws
  /// (run_seed, run_seed+1, ...), each scored against its own same-seed
  /// baseline.  Does not touch this runner's baseline cache.
  ReplicatedComparison replicate(const WorkloadProfile& profile,
                                 const std::string& policy_spec,
                                 unsigned n_seeds);

  const Simulator& simulator() const { return sim_; }

 private:
  Simulator sim_;
  std::map<std::string, SimResult> baselines_;  ///< keyed by workload name
};

/// Score `result` against `base` (exposed for tests and custom harnesses).
Comparison score_against(const SimResult& base, SimResult result);

}  // namespace mapg
