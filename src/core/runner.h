// DEPRECATED compatibility shim — do not include in new code.
//
// ExperimentRunner moved to the exec subsystem in PR 1 (it now executes on
// the parallel ExperimentEngine with the persistent result cache); the
// implementation lives in src/exec/runner.{h,cpp} and the contract in
// docs/EXEC.md.  This header survives only so pre-move includes keep
// compiling; include "exec/runner.h" (and link mapg_exec) directly instead.
// Removal target: PR 6 (no in-tree callers remain; external users should
// have migrated by then).
#pragma once

#include "exec/runner.h"
