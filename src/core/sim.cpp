#include "core/sim.h"

#include <algorithm>
#include <stdexcept>

namespace mapg {
namespace {

/// Scalar-only snapshot of the stats the thermal epoch loop differences.
struct EpochSnap {
  Cycle cycles = 0;
  std::uint64_t idle = 0;
  std::uint64_t deep_gated = 0;
  std::uint64_t light_gated = 0;
  std::uint64_t deep_tr = 0;
  std::uint64_t light_tr = 0;
  std::uint64_t pg_phase = 0;  ///< entry + gated + wake cycles
  std::array<std::uint64_t, kNumOpClasses> instr{};

  static EpochSnap take(const Core& core, const PgController& pgc) {
    const CoreStats& c = core.stats();
    const GatingActivity& a = pgc.activity();
    EpochSnap s;
    s.cycles = c.cycles;
    s.idle = c.idle_cycles();
    s.deep_gated = a.deep_gated_cycles;
    s.light_gated = a.light_gated_cycles;
    s.deep_tr = a.deep_transitions;
    s.light_tr = a.light_transitions;
    s.pg_phase = a.gated_cycles + a.entry_cycles + a.wake_cycles;
    s.instr = c.instr_by_class;
    return s;
  }
};

}  // namespace

PolicyContext Simulator::policy_context() const {
  const PgCircuit circuit(config_.pg, config_.tech);
  return PgController::make_context(circuit);
}

SimResult Simulator::run(const WorkloadProfile& profile,
                         const std::string& policy_spec) const {
  TraceGenerator gen(profile, config_.run_seed);
  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  return run(gen, profile.name, *policy);
}

SimResult Simulator::run(TraceSource& trace, const std::string& workload_name,
                         PgPolicy& policy) const {
  const PgCircuit circuit(config_.pg, config_.tech);
  MemoryHierarchy mem(config_.mem);
  PgController controller(policy, circuit);
  Core core(config_.core, mem, &controller);

  // Warmup: populate caches, open DRAM rows, and let streams reach steady
  // state before measurement.  Gating runs during warmup too (so PG state is
  // realistic), but its statistics are discarded.
  if (config_.warmup_instructions > 0) {
    core.run(trace, config_.warmup_instructions);
    core.reset_stats();
    mem.reset_stats();
    controller.reset_stats();
  }

  core.run(trace, config_.instructions);

  SimResult result;
  result.workload = workload_name;
  result.policy = policy.name();
  result.ctx = policy.context();
  result.core = core.stats();
  result.hier = mem.stats();
  result.l1 = mem.l1_stats();
  result.l2 = mem.l2_stats();
  result.dram = mem.dram_stats();
  result.gating = controller.stats();
  result.energy = compute_energy(config_.tech, &circuit, result.core,
                                 result.gating.activity);
  result.energy.dram_j =
      compute_dram_energy_j(result.dram, config_.mem.dram, config_.tech,
                            config_.dram_energy, result.core.cycles);
  return result;
}

ThermalResult Simulator::run_thermal(const WorkloadProfile& profile,
                                     const std::string& policy_spec) const {
  TraceGenerator gen(profile, config_.run_seed);
  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  return run_thermal(gen, profile.name, *policy);
}

ThermalResult Simulator::run_thermal(TraceSource& trace,
                                     const std::string& workload_name,
                                     PgPolicy& policy) const {
  const PgCircuit circuit(config_.pg, config_.tech);
  MemoryHierarchy mem(config_.mem);
  PgController controller(policy, circuit);
  Core core(config_.core, mem, &controller);
  ThermalModel thermal(config_.thermal, config_.tech);
  const TechParams& tech = config_.tech;
  const double light_frac = circuit.save_fraction(SleepMode::kLight);

  // Per-epoch energy of the core hot-spot domain, at the CURRENT leakage
  // multiplier; also drives the thermal node.
  auto epoch_energy_j = [&](const EpochSnap& a, const EpochSnap& b,
                            double mult) {
    double dyn = 0;
    for (std::size_t c = 0; c < kNumOpClasses; ++c)
      dyn += static_cast<double>(b.instr[c] - a.instr[c]) *
             tech.dyn_energy_nj[c] * 1e-9;
    const double dt_cycles = static_cast<double>(b.cycles - a.cycles);
    const double eff_gated =
        static_cast<double>(b.deep_gated - a.deep_gated) +
        light_frac * static_cast<double>(b.light_gated - a.light_gated);
    const double leak =
        mult * (tech.core_leakage_w * tech.cycles_to_seconds(dt_cycles) -
                tech.savable_leakage_w() * tech.cycles_to_seconds(eff_gated));
    const double idle_ungated = static_cast<double>(
        (b.idle - a.idle) - (b.pg_phase - a.pg_phase));
    const double idle_clock =
        tech.idle_clock_w * tech.cycles_to_seconds(idle_ungated);
    const double ovh =
        circuit.overhead_energy_j(SleepMode::kDeep) *
            static_cast<double>(b.deep_tr - a.deep_tr) +
        circuit.overhead_energy_j(SleepMode::kLight) *
            static_cast<double>(b.light_tr - a.light_tr);
    return dyn + leak + idle_clock + ovh;
  };
  // The feedback-corrected leakage alone (for ThermalResult bookkeeping).
  auto epoch_leak_j = [&](const EpochSnap& a, const EpochSnap& b,
                          double mult) {
    const double dt_cycles = static_cast<double>(b.cycles - a.cycles);
    const double eff_gated =
        static_cast<double>(b.deep_gated - a.deep_gated) +
        light_frac * static_cast<double>(b.light_gated - a.light_gated);
    return mult *
           (tech.core_leakage_w * tech.cycles_to_seconds(dt_cycles) -
            tech.savable_leakage_w() * tech.cycles_to_seconds(eff_gated));
  };

  const std::uint64_t epoch = std::max<std::uint64_t>(
      config_.thermal.epoch_instructions, 1);

  // Run one phase (warmup or measurement) epoch by epoch, keeping the
  // thermal node integrated throughout.
  auto run_phase = [&](std::uint64_t instrs, ThermalResult* out) {
    std::uint64_t done = 0;
    EpochSnap prev = EpochSnap::take(core, controller);
    double weighted_t = 0, total_dt = 0, peak = thermal.temperature_c();
    while (done < instrs) {
      const std::uint64_t chunk = std::min(epoch, instrs - done);
      core.run(trace, chunk);
      done += chunk;
      const EpochSnap now = EpochSnap::take(core, controller);
      if (now.cycles == prev.cycles) break;  // trace exhausted
      const double mult = thermal.leakage_multiplier();
      const double dt_s = tech.cycles_to_seconds(
          static_cast<double>(now.cycles - prev.cycles));
      const double e_j = epoch_energy_j(prev, now, mult);
      thermal.step(e_j / dt_s, dt_s);
      if (out != nullptr) {
        out->thermal_core_leak_j += epoch_leak_j(prev, now, mult);
        weighted_t += thermal.temperature_c() * dt_s;
        total_dt += dt_s;
        peak = std::max(peak, thermal.temperature_c());
        ++out->epochs;
      }
      prev = now;
    }
    if (out != nullptr && total_dt > 0) {
      out->avg_temperature_c = weighted_t / total_dt;
      out->peak_temperature_c = peak;
    }
  };

  if (config_.warmup_instructions > 0) {
    run_phase(config_.warmup_instructions, nullptr);
    core.reset_stats();
    mem.reset_stats();
    controller.reset_stats();
  }

  ThermalResult result;
  run_phase(config_.instructions, &result);
  result.final_temperature_c = thermal.temperature_c();

  result.sim.workload = workload_name;
  result.sim.policy = policy.name();
  result.sim.ctx = policy.context();
  result.sim.core = core.stats();
  result.sim.hier = mem.stats();
  result.sim.l1 = mem.l1_stats();
  result.sim.l2 = mem.l2_stats();
  result.sim.dram = mem.dram_stats();
  result.sim.gating = controller.stats();
  result.sim.energy = compute_energy(tech, &circuit, result.sim.core,
                                     result.sim.gating.activity);
  result.sim.energy.dram_j =
      compute_dram_energy_j(result.sim.dram, config_.mem.dram, tech,
                            config_.dram_energy, result.sim.core.cycles);
  return result;
}

}  // namespace mapg
