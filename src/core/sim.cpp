#include "core/sim.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"
#include "power/interval_energy.h"

namespace mapg {
namespace {

#if MAPG_OBS_ENABLED
/// Run-level (cold-path) roll-up: overall run count plus per-policy gating
/// decision totals, so a sweep's metrics break down by policy without any
/// per-stall string handling on the hot path.
void record_run_metrics(const SimResult& r) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.counter("sim.runs").inc();
  const std::string prefix = "sim.policy." + r.policy;
  reg.counter(prefix + ".runs").inc();
  reg.counter(prefix + ".gated_events").inc(r.gating.gated_events);
  reg.counter(prefix + ".skipped_events").inc(r.gating.skipped_events);
  reg.counter(prefix + ".gated_cycles").inc(r.gating.activity.gated_cycles);
}
#endif

/// Scalar-only snapshot of the stats the thermal epoch loop differences.
struct EpochSnap {
  Cycle cycles = 0;
  std::uint64_t idle = 0;
  std::uint64_t deep_gated = 0;
  std::uint64_t light_gated = 0;
  std::uint64_t deep_tr = 0;
  std::uint64_t light_tr = 0;
  std::uint64_t pg_phase = 0;  ///< entry + gated + wake cycles
  std::array<std::uint64_t, kNumOpClasses> instr{};

  static EpochSnap take(const Core& core, const PgController& pgc) {
    const CoreStats& c = core.stats();
    const GatingActivity& a = pgc.activity();
    EpochSnap s;
    s.cycles = c.cycles;
    s.idle = c.idle_cycles();
    s.deep_gated = a.deep_gated_cycles;
    s.light_gated = a.light_gated_cycles;
    s.deep_tr = a.deep_transitions;
    s.light_tr = a.light_transitions;
    s.pg_phase = a.gated_cycles + a.entry_cycles + a.wake_cycles;
    s.instr = c.instr_by_class;
    return s;
  }
};

/// Single-pass recording source: materializes the generator's stream into a
/// buffer WHILE the core consumes it, instead of generating the full trace
/// up front and re-reading it.  The stream the core sees is byte-identical
/// to the generator's (each next() forwards one instruction verbatim), and
/// the buffer ends up holding exactly the consumed prefix — which is exactly
/// warmup + measured instructions, the complete stream every policy sees.
/// Saves one full generate-then-reread pass per recording (the dominant
/// recording overhead; see bench/micro_replay_speedup.cpp).
class TeeTraceSource final : public TraceSource {
 public:
  TeeTraceSource(TraceSource& inner, std::vector<Instr>& buf)
      : inner_(inner), buf_(buf) {}

  bool next(Instr& out) override {
    if (!inner_.next(out)) return false;
    buf_.push_back(out);
    return true;
  }
  void reset() override {
    // Single-pass by construction: run_impl never rewinds its source.
    buf_.clear();
    inner_.reset();
  }

  /// Bulk-fill from the inner source, then append the block to the buffer
  /// (SoA→AoS transpose) — the batched front-end records through the same
  /// tee without falling back to per-instruction forwarding.
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override {
    inner_.next_batch(out, max);
    for (std::size_t i = 0; i < out.count; ++i) buf_.push_back(out.get(i));
    return out.count;
  }

 private:
  TraceSource& inner_;
  std::vector<Instr>& buf_;
};

}  // namespace

StallKernelParams make_stall_kernel_params(const SimConfig& config,
                                           const PgCircuit& circuit) {
  StallKernelParams p;
  p.mode = config.fast_forward ? StepMode::kFastForward
                               : StepMode::kCycleAccurate;
  p.t_refi = config.mem.dram.t_refi;
  p.t_rfc = config.mem.dram.t_rfc;
  p.rates = StallEnergyRates::make(config.tech, circuit, config.dram_energy,
                                   config.mem.dram.channels);
  const DramPowerConfig& pw = config.mem.dram.power;
  if (pw.mode == DramPowerMode::kCoordinated) {
    p.dram_pd.enabled = true;
    p.dram_pd.t_pd = pw.t_pd;
    p.dram_pd.t_xp = pw.t_xp;
    p.dram_pd.t_cke = pw.t_cke;
    // All channels but the one serving the blocking request may park.
    p.dram_pd.idle_channels =
        config.mem.dram.channels > 0 ? config.mem.dram.channels - 1 : 0;
  }
  return p;
}

PolicyContext Simulator::policy_context() const {
  const PgCircuit circuit(config_.pg, config_.tech);
  return PgController::make_context(circuit);
}

SimResult Simulator::run(const WorkloadProfile& profile,
                         const std::string& policy_spec) const {
  TraceGenerator gen(profile, config_.run_seed);
  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  return run(gen, profile.name, *policy);
}

SimResult Simulator::run(TraceSource& trace, const std::string& workload_name,
                         PgPolicy& policy) const {
  return run_impl(trace, workload_name, policy, nullptr);
}

SimResult Simulator::run(TraceSource& trace, const std::string& workload_name,
                         const std::string& policy_spec) const {
  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  return run_impl(trace, workload_name, *policy, nullptr);
}

SimResult Simulator::run_recorded(const WorkloadProfile& profile,
                                  const std::string& policy_spec,
                                  RunRecord& record,
                                  const CheckpointHook& hook) const {
  // The trace is materialized in the same pass that runs it (TeeTraceSource
  // above): generation is a pure function of (profile, run_seed) and the
  // core consumes exactly warmup + measured instructions, so the buffer
  // ends the run holding the complete stream every policy sees.
  auto buf = std::make_shared<std::vector<Instr>>();
  buf->reserve(
      static_cast<std::size_t>(config_.warmup_instructions +
                               config_.instructions));
  record.warmup_stalls.clear();
  record.stalls.clear();

  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  TraceGenerator gen(profile, config_.run_seed);
  TeeTraceSource tee(gen, *buf);
  SimResult result = run_impl(tee, profile.name, *policy, &record, hook);
  record.trace = std::move(buf);
  return result;
}

SimResult Simulator::run_recorded(TraceSource& trace,
                                  const std::string& workload_name,
                                  const std::string& policy_spec,
                                  RunRecord& record,
                                  const CheckpointHook& hook) const {
  // Trace-source variant of the profile overload: same single-pass tee, but
  // the stream comes from an external source (a trace-file window in sampled
  // simulation) instead of a generator.
  auto buf = std::make_shared<std::vector<Instr>>();
  buf->reserve(
      static_cast<std::size_t>(config_.warmup_instructions +
                               config_.instructions));
  record.warmup_stalls.clear();
  record.stalls.clear();

  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  TeeTraceSource tee(trace, *buf);
  SimResult result = run_impl(tee, workload_name, *policy, &record, hook);
  record.trace = std::move(buf);
  return result;
}

SimResult Simulator::run_impl(TraceSource& trace,
                              const std::string& workload_name,
                              PgPolicy& policy, RunRecord* record,
                              const CheckpointHook& hook) const {
  MAPG_OBS_SCOPED_TIMER("sim.run.ns", "sim");
  const PgCircuit circuit(config_.pg, config_.tech);
  MemoryHierarchy mem(config_.mem);
  const StallKernelParams kparams = make_stall_kernel_params(config_, circuit);
  PgController controller(policy, circuit, nullptr, kparams);
  // When recording, tee every stall event through to the controller; the
  // recorder never alters the resume cycle, so results stay bit-identical.
  RecordingStallHandler recorder(controller);
  StallHandler* handler = &controller;
  if (record != nullptr) {
    recorder.set_sink(record->warmup_stalls);
    handler = &recorder;
  }
  Core core(config_.core, mem, handler);
  core.set_step_mode(kparams.mode);

  // Checkpointed recording chunks each phase's core.run at absolute-stride
  // boundaries and fires the hook between instructions.  core.run is a
  // plain resumable loop, so the chunked run is bit-identical to a single
  // call (run_thermal's epoch loop relies on the same property; the
  // checkpoint differential proves it per stride).
  const std::uint64_t stride =
      (record != nullptr && hook) ? config_.checkpoint_stride : 0;
  // Scalar vs batched front-end is a pure execution-strategy choice
  // (SimConfig::batched): both drive the same exec_one semantics, so every
  // path below is bit-identical under either.
  auto run_core = [&](std::uint64_t n) {
    if (config_.batched)
      core.run_batched(trace, n);
    else
      core.run(trace, n);
  };
  auto run_phase = [&](std::uint64_t phase_instrs, std::uint64_t phase_base,
                       bool in_warmup) {
    if (stride == 0) {
      run_core(phase_instrs);
      return;
    }
    std::uint64_t done = 0;
    while (done < phase_instrs) {
      const std::uint64_t abs = phase_base + done;
      const std::uint64_t next_mark = (abs / stride + 1) * stride;
      const std::uint64_t chunk =
          std::min(phase_instrs - done, next_mark - abs);
      const std::uint64_t before = core.stats().instrs;
      run_core(chunk);
      const std::uint64_t executed = core.stats().instrs - before;
      done += executed;
      if (executed < chunk) break;  // trace exhausted
      // Interior marks only: a mark at the phase end is either superseded
      // by the post-reset warmup-boundary capture or has nothing left to
      // resume into.
      if (phase_base + done == next_mark && done < phase_instrs)
        hook(core, mem, phase_base + done, in_warmup);
    }
  };

  // Warmup: populate caches, open DRAM rows, and let streams reach steady
  // state before measurement.  Gating runs during warmup too (so PG state is
  // realistic), but its statistics are discarded.
  if (config_.warmup_instructions > 0) {
    run_phase(config_.warmup_instructions, 0, true);
    // Classify warmup idle before the reset so the measured residency
    // counters cover exactly the measured window.
    mem.dram().settle_power(core.now());
    core.reset_stats();
    mem.reset_stats();
    controller.reset_stats();
    // The most valuable checkpoint: captured after the boundary resets, so
    // resuming from it skips the whole warmup for any policy penalized only
    // in the measured phase.
    if (stride > 0) hook(core, mem, config_.warmup_instructions, false);
  }
  if (record != nullptr) recorder.set_sink(record->stalls);

  run_phase(config_.instructions, config_.warmup_instructions, false);
  mem.dram().settle_power(core.now());

  SimResult result;
  result.workload = workload_name;
  result.policy = policy.name();
  result.ctx = policy.context();
  result.core = core.stats();
  result.hier = mem.stats();
  result.l1 = mem.l1_stats();
  result.l2 = mem.l2_stats();
  result.dram = mem.dram_stats();
  result.gating = controller.stats();
  result.energy = compute_energy(config_.tech, &circuit, result.core,
                                 result.gating.activity);
  const DramEnergyBreakdown dram_e = compute_dram_energy_breakdown(
      result.dram, config_.mem.dram, config_.tech, config_.dram_energy,
      result.core.cycles, result.gating.dram_pd_channel_cycles);
  result.energy.dram_j = dram_e.total_j();
  result.energy.dram_background_j = dram_e.background_j;
  result.energy.dram_lowpower_saved_j = dram_e.lowpower_saved_j;
  MAPG_OBS_ONLY(record_run_metrics(result);)
  return result;
}

ThermalResult Simulator::run_thermal(const WorkloadProfile& profile,
                                     const std::string& policy_spec) const {
  TraceGenerator gen(profile, config_.run_seed);
  const PgCircuit circuit(config_.pg, config_.tech);
  const PolicyContext ctx = PgController::make_context(circuit);
  std::unique_ptr<PgPolicy> policy = make_policy(policy_spec, ctx);
  if (!policy)
    throw std::invalid_argument("unknown policy spec: " + policy_spec);
  return run_thermal(gen, profile.name, *policy);
}

ThermalResult Simulator::run_thermal(TraceSource& trace,
                                     const std::string& workload_name,
                                     PgPolicy& policy) const {
  const PgCircuit circuit(config_.pg, config_.tech);
  MemoryHierarchy mem(config_.mem);
  const StallKernelParams kparams = make_stall_kernel_params(config_, circuit);
  PgController controller(policy, circuit, nullptr, kparams);
  Core core(config_.core, mem, &controller);
  core.set_step_mode(kparams.mode);
  ThermalModel thermal(config_.thermal, config_.tech);
  const TechParams& tech = config_.tech;

  // Difference two snapshots into the closed-form interval-energy input
  // (power/interval_energy.h does the joule conversion).
  auto delta = [](const EpochSnap& a, const EpochSnap& b) {
    IntervalActivity d;
    d.cycles = b.cycles - a.cycles;
    d.idle_cycles = b.idle - a.idle;
    d.pg_phase_cycles = b.pg_phase - a.pg_phase;
    d.deep_gated_cycles = b.deep_gated - a.deep_gated;
    d.light_gated_cycles = b.light_gated - a.light_gated;
    d.deep_transitions = b.deep_tr - a.deep_tr;
    d.light_transitions = b.light_tr - a.light_tr;
    for (std::size_t c = 0; c < kNumOpClasses; ++c)
      d.instrs[c] = b.instr[c] - a.instr[c];
    return d;
  };

  const std::uint64_t epoch = std::max<std::uint64_t>(
      config_.thermal.epoch_instructions, 1);

  // Run one phase (warmup or measurement) epoch by epoch, keeping the
  // thermal node integrated throughout.
  auto run_phase = [&](std::uint64_t instrs, ThermalResult* out) {
    std::uint64_t done = 0;
    EpochSnap prev = EpochSnap::take(core, controller);
    double weighted_t = 0, total_dt = 0, peak = thermal.temperature_c();
    while (done < instrs) {
      const std::uint64_t chunk = std::min(epoch, instrs - done);
      if (config_.batched)
        core.run_batched(trace, chunk);
      else
        core.run(trace, chunk);
      done += chunk;
      const EpochSnap now = EpochSnap::take(core, controller);
      if (now.cycles == prev.cycles) break;  // trace exhausted
      const double mult = thermal.leakage_multiplier();
      const double dt_s = tech.cycles_to_seconds(
          static_cast<double>(now.cycles - prev.cycles));
      const IntervalActivity d = delta(prev, now);
      const double e_j = interval_core_energy_j(tech, circuit, d, mult);
      thermal.step(e_j / dt_s, dt_s);
      if (out != nullptr) {
        out->thermal_core_leak_j +=
            interval_core_leakage_j(tech, circuit, d, mult);
        weighted_t += thermal.temperature_c() * dt_s;
        total_dt += dt_s;
        peak = std::max(peak, thermal.temperature_c());
        ++out->epochs;
      }
      prev = now;
    }
    if (out != nullptr && total_dt > 0) {
      out->avg_temperature_c = weighted_t / total_dt;
      out->peak_temperature_c = peak;
    }
  };

  if (config_.warmup_instructions > 0) {
    run_phase(config_.warmup_instructions, nullptr);
    mem.dram().settle_power(core.now());
    core.reset_stats();
    mem.reset_stats();
    controller.reset_stats();
  }

  ThermalResult result;
  run_phase(config_.instructions, &result);
  mem.dram().settle_power(core.now());
  result.final_temperature_c = thermal.temperature_c();

  result.sim.workload = workload_name;
  result.sim.policy = policy.name();
  result.sim.ctx = policy.context();
  result.sim.core = core.stats();
  result.sim.hier = mem.stats();
  result.sim.l1 = mem.l1_stats();
  result.sim.l2 = mem.l2_stats();
  result.sim.dram = mem.dram_stats();
  result.sim.gating = controller.stats();
  result.sim.energy = compute_energy(tech, &circuit, result.sim.core,
                                     result.sim.gating.activity);
  const DramEnergyBreakdown dram_e = compute_dram_energy_breakdown(
      result.sim.dram, config_.mem.dram, tech, config_.dram_energy,
      result.sim.core.cycles, result.sim.gating.dram_pd_channel_cycles);
  result.sim.energy.dram_j = dram_e.total_j();
  result.sim.energy.dram_background_j = dram_e.background_j;
  result.sim.energy.dram_lowpower_saved_j = dram_e.lowpower_saved_j;
  MAPG_OBS_ONLY(record_run_metrics(result.sim);)
  return result;
}

}  // namespace mapg
