#include "core/runner.h"

namespace mapg {

Comparison score_against(const SimResult& base, SimResult result) {
  Comparison c;
  const double e_base = base.energy.total_j();
  const double e_run = result.energy.total_j();
  if (e_base > 0) c.total_energy_savings = 1.0 - e_run / e_base;

  const double ec_base = base.energy.core_domain_j();
  const double ec_run = result.energy.core_domain_j();
  if (ec_base > 0) c.core_energy_savings = 1.0 - ec_run / ec_base;

  const double leak_base = base.energy.core_leak_baseline_j;
  if (leak_base > 0) {
    c.net_leakage_savings =
        (result.energy.core_leak_saved_j() - result.energy.pg_overhead_j) /
        leak_base;
  }

  if (base.core.cycles > 0) {
    c.runtime_overhead = static_cast<double>(result.core.cycles) /
                             static_cast<double>(base.core.cycles) -
                         1.0;
  }
  c.result = std::move(result);
  return c;
}

const SimResult& ExperimentRunner::baseline(const WorkloadProfile& profile) {
  auto it = baselines_.find(profile.name);
  if (it == baselines_.end())
    it = baselines_.emplace(profile.name, sim_.run(profile, "none")).first;
  return it->second;
}

Comparison ExperimentRunner::compare_one(const WorkloadProfile& profile,
                                         const std::string& policy_spec) {
  const SimResult& base = baseline(profile);
  return score_against(base, sim_.run(profile, policy_spec));
}

std::vector<Comparison> ExperimentRunner::compare(
    const WorkloadProfile& profile, const std::vector<std::string>& specs) {
  std::vector<Comparison> out;
  out.reserve(specs.size());
  for (const auto& spec : specs) out.push_back(compare_one(profile, spec));
  return out;
}

ReplicatedComparison ExperimentRunner::replicate(
    const WorkloadProfile& profile, const std::string& policy_spec,
    unsigned n_seeds) {
  ReplicatedComparison rep;
  rep.workload = profile.name;
  for (unsigned i = 0; i < n_seeds; ++i) {
    SimConfig cfg = sim_.config();
    cfg.run_seed += i;
    const Simulator sim(cfg);
    const SimResult base = sim.run(profile, "none");
    const Comparison c = score_against(base, sim.run(profile, policy_spec));
    rep.policy = c.result.policy;
    rep.core_energy_savings.add(c.core_energy_savings);
    rep.total_energy_savings.add(c.total_energy_savings);
    rep.net_leakage_savings.add(c.net_leakage_savings);
    rep.runtime_overhead.add(c.runtime_overhead);
    rep.mpki.add(c.result.mpki());
    rep.ipc.add(c.result.ipc());
  }
  return rep;
}

}  // namespace mapg
