// Simulator: wires trace -> core -> hierarchy -> PG controller -> energy.
//
// This is the library's main entry point.  A single call:
//
//   SimConfig cfg;                       // platform (defaults = DESIGN.md §7)
//   Simulator sim(cfg);
//   SimResult r = sim.run(*find_profile("mcf-like"), "mapg");
//
// runs warmup + measurement and returns every statistic the experiments
// consume.  Instances are independent; runs are deterministic functions of
// (config, profile, policy spec).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cpu/core.h"
#include "mem/hierarchy.h"
#include "pg/factory.h"
#include "pg/pg_controller.h"
#include "power/dram_energy.h"
#include "power/energy_model.h"
#include "power/pg_circuit.h"
#include "power/tech_params.h"
#include "power/thermal.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_io.h"

namespace mapg {

struct SimConfig {
  CoreConfig core{};
  HierarchyConfig mem{};
  TechParams tech{};
  PgCircuitConfig pg{};
  DramEnergyParams dram_energy{};
  /// Optional leakage-temperature feedback (run_thermal only).
  ThermalConfig thermal{};
  std::uint64_t instructions = 5'000'000;
  std::uint64_t warmup_instructions = 250'000;
  std::uint64_t run_seed = 42;
  /// true (default): resolve full-core stall windows in closed form
  /// (fast-forward); false: tick them cycle by cycle through the reference
  /// kernel.  Results are bit-identical either way (see docs/MODEL.md and
  /// tests/test_differential.cpp); the flag is part of the experiment
  /// identity so cached results never mix kernels silently.
  bool fast_forward = true;
  /// Instructions between architectural checkpoints captured while a
  /// reference timeline is being recorded (run_recorded with a hook;
  /// src/replay/checkpoint.h).  0 disables capture.  Checkpointed recording
  /// chunks the run at stride boundaries, which is bit-identical to a single
  /// run (core.run is a plain resumable loop; run_thermal relies on the same
  /// property).  Results are therefore identical for any stride — the knob
  /// still joins the experiment identity (exec schema v5), following the
  /// fast_forward precedent: equivalences stay falsifiable, never assumed
  /// by the cache.
  std::uint64_t checkpoint_stride = 1'000'000;
  /// true: the front-end pulls fixed-size SoA InstrBlocks through
  /// TraceSource::next_batch and executes them via Core::run_batched;
  /// false (default): scalar next()/step().  Bit-identical either way
  /// (micro_sim_throughput's identity gate and the batch property tests
  /// prove it), and unlike fast_forward/checkpoint_stride this knob is
  /// deliberately EXCLUDED from the experiment identity
  /// (exec/serialize.cpp): it is a pure execution-strategy choice, like
  /// `--jobs`, so cached results are shared across both modes.
  bool batched = false;
};

struct SimResult {
  std::string workload;
  std::string policy;
  PolicyContext ctx;

  CoreStats core;
  HierarchyStats hier;
  CacheStats l1;
  CacheStats l2;
  DramStats dram;
  GatingStats gating;
  EnergyBreakdown energy;

  /// DRAM-served loads per kilo-instruction (the LLC-miss MPKI analogue).
  double mpki() const {
    return core.instrs ? 1000.0 * static_cast<double>(hier.served_dram) /
                             static_cast<double>(core.instrs)
                       : 0.0;
  }
  double ipc() const { return core.ipc(); }
  /// Fraction of execution time the core spent fully gated.
  double gated_time_fraction() const {
    return core.cycles ? static_cast<double>(gating.activity.gated_cycles) /
                             static_cast<double>(core.cycles)
                       : 0.0;
  }
};

/// Result of a run with leakage-temperature feedback (power/thermal.h):
/// the usual SimResult (whose energy fields remain ISOTHERMAL, i.e.
/// leakage at T_ref), plus the temperature trajectory and the
/// feedback-corrected energy.
struct ThermalResult {
  SimResult sim;
  double final_temperature_c = 0;
  double peak_temperature_c = 0;
  double avg_temperature_c = 0;  ///< time-weighted over the measured run
  /// Gated-domain leakage actually paid, with the multiplier m(T) applied
  /// epoch by epoch.
  double thermal_core_leak_j = 0;
  std::uint64_t epochs = 0;

  /// Total energy with the feedback-corrected core leakage substituted.
  double thermal_total_j() const {
    return sim.energy.total_j() - sim.energy.core_leak_j +
           thermal_core_leak_j;
  }
};

/// Everything a reference run leaves behind for per-policy replay
/// (src/replay): the materialized trace (exactly warmup + measured
/// instructions, shareable across cells via SharedTraceView) and the ordered
/// full-core stall sequence, split at the warmup boundary.  Trace generation
/// is a pure function of (profile, run_seed) — it never consults core timing
/// — so the buffer is valid for every policy, including ones that perturb
/// timing and must fall back to direct simulation.
struct RunRecord {
  std::shared_ptr<const std::vector<Instr>> trace;
  StallSeries warmup_stalls;  ///< SoA (cpu/core.h): replay scans stream it
  StallSeries stalls;         ///< measured-phase stalls, in order
};

class Simulator {
 public:
  explicit Simulator(SimConfig config) : config_(std::move(config)) {}

  /// Run one (workload, policy) combination.  `policy_spec` is a factory
  /// spec (see pg/factory.h).  Throws std::invalid_argument on a bad spec.
  SimResult run(const WorkloadProfile& profile,
                const std::string& policy_spec) const;

  /// Run with an externally provided trace source and policy (library API
  /// for custom workloads/policies; see examples/custom_policy.cpp).
  SimResult run(TraceSource& trace, const std::string& workload_name,
                PgPolicy& policy) const;

  /// Spec-based variant of the trace-source overload: builds the policy from
  /// `policy_spec` exactly like run(profile, spec) does, but draws
  /// instructions from `trace`.  Feeding the same stream a TraceGenerator
  /// would produce gives a bit-identical result; the replay engine uses this
  /// to share one materialized trace across a sweep group's fallback cells.
  SimResult run(TraceSource& trace, const std::string& workload_name,
                const std::string& policy_spec) const;

  /// Called at each checkpoint boundary of a recording run: the core and
  /// hierarchy (frozen between instructions), the absolute number of trace
  /// instructions consumed so far (warmup included), and whether the warmup
  /// boundary has not yet been crossed.  The boundary invocation (instr_pos
  /// == warmup_instructions, in_warmup == false) happens AFTER the warmup
  /// settle/reset sequence, so a capture there reflects post-reset state.
  using CheckpointHook = std::function<void(
      const Core& core, const MemoryHierarchy& mem, std::uint64_t instr_pos,
      bool in_warmup)>;

  /// Like run(profile, policy_spec), but additionally materializes the trace
  /// into `record.trace` and captures every full-core StallEvent (warmup and
  /// measured phases separately).  The returned result is bit-identical to
  /// the unrecorded run — recording only tees, it never perturbs timing.
  /// With a non-null `hook` and config().checkpoint_stride > 0, the hook is
  /// invoked at every stride boundary and at the warmup boundary
  /// (src/replay/checkpoint.h captures SimCheckpoints there).
  SimResult run_recorded(const WorkloadProfile& profile,
                         const std::string& policy_spec, RunRecord& record,
                         const CheckpointHook& hook = nullptr) const;

  /// Trace-source variant of run_recorded: identical tee/record semantics,
  /// but instructions come from `trace` (e.g. a file-trace window in sampled
  /// simulation, src/sample) instead of the profile's generator.
  SimResult run_recorded(TraceSource& trace, const std::string& workload_name,
                         const std::string& policy_spec, RunRecord& record,
                         const CheckpointHook& hook = nullptr) const;

  /// Like run(), but integrates the core hot-spot temperature epoch by
  /// epoch and applies the leakage-temperature feedback (R-Tab.7).  Uses
  /// config().thermal for the RC node parameters.
  ThermalResult run_thermal(const WorkloadProfile& profile,
                            const std::string& policy_spec) const;
  ThermalResult run_thermal(TraceSource& trace,
                            const std::string& workload_name,
                            PgPolicy& policy) const;

  const SimConfig& config() const { return config_; }

  /// The circuit-derived context policies should be constructed with.
  PolicyContext policy_context() const;

 private:
  SimResult run_impl(TraceSource& trace, const std::string& workload_name,
                     PgPolicy& policy, RunRecord* record,
                     const CheckpointHook& hook = nullptr) const;

  SimConfig config_;
};

/// Stall-kernel inputs derived from the platform configuration: stepping
/// mode, DRAM refresh timing for the overlap meter, per-cycle energy rates
/// for the window-energy cross-check, coordinated-PD inputs.  Shared with
/// src/replay so a replayed controller resolves windows with byte-identical
/// parameters to the direct path.
StallKernelParams make_stall_kernel_params(const SimConfig& config,
                                           const PgCircuit& circuit);

}  // namespace mapg
