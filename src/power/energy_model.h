// Energy composition: turns (core activity, gating activity) into a joule
// breakdown.  Pure functions of the stats structs so every experiment and
// test accounts energy identically, and conservation can be asserted.
#pragma once

#include <cstdint>
#include <string>

#include "cpu/core.h"
#include "power/pg_circuit.h"
#include "power/tech_params.h"

namespace mapg {

/// What the power-gating controller did over a run, in cycles/events.
/// Maintained by PgController (src/pg/pg_controller.h).  The totals always
/// equal the sum of the per-mode splits (deep-only platforms leave the
/// light fields at zero).
struct GatingActivity {
  std::uint64_t transitions = 0;    ///< complete sleep+wake pairs
  std::uint64_t gated_cycles = 0;   ///< switches off: leakage saved
  std::uint64_t entry_cycles = 0;   ///< draining: idle, leakage NOT yet saved
  std::uint64_t wake_cycles = 0;    ///< recharging: idle, leakage NOT saved

  // Per-sleep-mode splits (see power/pg_circuit.h SleepMode).
  std::uint64_t deep_transitions = 0;
  std::uint64_t light_transitions = 0;
  std::uint64_t deep_gated_cycles = 0;
  std::uint64_t light_gated_cycles = 0;

  /// Record one transition uniformly (keeps totals and splits in sync).
  void add_transition(SleepMode mode, std::uint64_t gated,
                      std::uint64_t entry, std::uint64_t wake) {
    ++transitions;
    gated_cycles += gated;
    entry_cycles += entry;
    wake_cycles += wake;
    if (mode == SleepMode::kDeep) {
      ++deep_transitions;
      deep_gated_cycles += gated;
    } else {
      ++light_transitions;
      light_gated_cycles += gated;
    }
  }
};

struct EnergyBreakdown {
  double dynamic_j = 0;      ///< per-instruction switching energy
  double core_leak_j = 0;    ///< gated-region leakage actually paid
  double ungated_leak_j = 0; ///< L1 + L2 + other always-on leakage
  double idle_clock_j = 0;   ///< residual clocking while idle and ungated
  double pg_overhead_j = 0;  ///< sleep/wake transition energy
  /// Off-chip DRAM energy (filled by the Simulator from dram_energy.h;
  /// compute_energy itself leaves it zero).
  double dram_j = 0;
  /// Split of dram_j's background component (informational — dram_j stays
  /// the charged total): what always-active background power would have
  /// cost, and how much of it power-down / self-refresh residency removed.
  double dram_background_j = 0;
  double dram_lowpower_saved_j = 0;

  double total_j() const {
    return dynamic_j + core_leak_j + ungated_leak_j + idle_clock_j +
           pg_overhead_j + dram_j;
  }
  /// Energy attributable to the gated power domain (what the paper-style
  /// "core energy savings" metric compares): everything except the always-on
  /// cache/infrastructure leakage shared identically by all policies.
  double core_domain_j() const {
    return dynamic_j + core_leak_j + idle_clock_j + pg_overhead_j;
  }

  /// Gated-region leakage that WOULD have been paid with no gating at all.
  double core_leak_baseline_j = 0;
  /// Leakage energy eliminated by gating (before paying pg_overhead_j).
  double core_leak_saved_j() const {
    return core_leak_baseline_j - core_leak_j;
  }
};

/// Compose the breakdown.  `pg` may be null for a no-gating platform (then
/// `activity` must be all-zero).  Asserts internal cycle conservation:
///   idle_cycles >= gated + entry + wake.
EnergyBreakdown compute_energy(const TechParams& tech, const PgCircuit* pg,
                               const CoreStats& core,
                               const GatingActivity& activity);

/// Human-readable multi-line summary (used by examples).
std::string energy_to_string(const EnergyBreakdown& e);

}  // namespace mapg
