// Analytic power-gating circuit model.
//
// Substitutes for the paper's SPICE-characterized sleep-transistor network
// (DESIGN.md §3).  The architectural policy consumes exactly four circuit
// quantities, all derived here:
//
//   entry latency   -- isolate outputs + drain the virtual rail,
//   wakeup latency  -- staged sleep-transistor turn-on + rail settle,
//   overhead energy -- virtual-rail/decap recharge (C * dV * Vdd drawn from
//                      the supply) + sleep-transistor gate drive per on/off
//                      pair,
//   break-even time -- overhead energy divided by the leakage power saved.
//
// The rush-current model captures the architecture-visible trade-off: waking
// in N stages spreads the recharge charge over N stage windows, dividing the
// peak in-rush current by ~N at the cost of N * stage_delay wakeup latency.
// R-Fig.2 sweeps this trade-off.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "power/tech_params.h"

namespace mapg {

/// Sleep depth.  Deep sleep collapses the virtual rail fully (maximum
/// leakage savings, expensive recharge); light sleep is an intermediate
/// state that droops the rail only partially — it saves a fraction of the
/// leakage but costs far less to enter/exit, so it breaks even on shorter
/// stalls (multi-mode power gating, the classic intermediate-sleep-state
/// extension).
enum class SleepMode : std::uint8_t { kLight = 0, kDeep = 1 };

struct PgCircuitConfig {
  /// Virtual rail + local decap charged on wakeup (nF).  Sized for a
  /// ~1 mm^2 execution-core gating domain; MAPG's premise is a fine-grained
  /// domain whose recharge energy keeps the break-even time well below a
  /// single DRAM round trip (~60 ns).
  double c_vrail_nf = 6.0;
  /// Rail droop fraction after a full drain (how much of Vdd is recharged).
  double rail_swing_frac = 0.9;
  /// Gate-drive energy for the whole sleep-transistor bank, one off+on pair.
  double gate_charge_nj = 2.0;
  /// Number of wakeup stages (sleep-transistor bank partitions).
  std::uint32_t wakeup_stages = 8;
  /// Turn-on window per stage (ns).
  double stage_delay_ns = 1.0;
  /// Final rail-settle margin after the last stage (ns).
  double settle_ns = 2.0;
  /// Output isolation + rail drain time on entry (ns).
  double entry_ns = 2.0;
  /// Scale factor on overhead energy for sensitivity studies (R-Fig.5).
  double overhead_scale = 1.0;

  // --- Light (intermediate) sleep mode ---
  /// Rail droop fraction in light sleep (partial collapse).
  double light_swing_frac = 0.25;
  /// Fraction of the savable leakage actually eliminated in light sleep
  /// (the partially-drooped rail still suppresses most subthreshold paths).
  double light_save_frac = 0.55;
  /// Wakeup stages needed in light mode (less charge -> fewer stages for
  /// the same rush-current budget).
  std::uint32_t light_wakeup_stages = 2;

  bool valid() const {
    return c_vrail_nf > 0 && rail_swing_frac > 0 && rail_swing_frac <= 1 &&
           gate_charge_nj >= 0 && wakeup_stages > 0 && stage_delay_ns > 0 &&
           settle_ns >= 0 && entry_ns >= 0 && overhead_scale > 0 &&
           light_swing_frac > 0 && light_swing_frac <= rail_swing_frac &&
           light_save_frac > 0 && light_save_frac <= 1 &&
           light_wakeup_stages > 0;
  }
};

class PgCircuit {
 public:
  PgCircuit(const PgCircuitConfig& config, const TechParams& tech);

  /// Cycles from the gate decision until leakage saving begins (both modes:
  /// isolation dominates the entry time, not the drain depth).
  Cycle entry_latency_cycles() const { return entry_cycles_; }

  /// Cycles from wakeup initiation until the core may issue instructions.
  /// No-argument forms refer to deep sleep (the original MAPG mode).
  Cycle wakeup_latency_cycles() const { return wakeup_cycles_; }
  Cycle wakeup_latency_cycles(SleepMode mode) const {
    return mode == SleepMode::kDeep ? wakeup_cycles_ : light_wakeup_cycles_;
  }

  /// Energy drawn per complete sleep/wake transition (J).
  double overhead_energy_j() const { return overhead_j_; }
  double overhead_energy_j(SleepMode mode) const {
    return mode == SleepMode::kDeep ? overhead_j_ : light_overhead_j_;
  }

  /// Fraction of the savable leakage eliminated while gated in `mode`.
  double save_fraction(SleepMode mode) const {
    return mode == SleepMode::kDeep ? 1.0 : config_.light_save_frac;
  }

  /// Minimum gated time for a transition to pay for itself (cycles).
  Cycle break_even_cycles() const { return break_even_cycles_; }
  Cycle break_even_cycles(SleepMode mode) const {
    return mode == SleepMode::kDeep ? break_even_cycles_
                                    : light_break_even_cycles_;
  }

  /// Peak in-rush current during staged wakeup (A).  With N stages the
  /// recharge charge Q = C * dV is delivered as N packets of Q/N, each
  /// within one stage window.
  double rush_current_peak_a() const;

  /// Same, for a hypothetical stage count (for the R-Fig.2 sweep).
  double rush_current_peak_a(std::uint32_t stages) const;

  /// Wakeup latency for a hypothetical stage count (cycles).
  Cycle wakeup_latency_cycles(std::uint32_t stages) const;

  /// Smallest stage count whose peak rush current is <= imax_a; 0 if even
  /// the maximum supported staging (4096) cannot meet it.
  std::uint32_t min_stages_for_rush_limit(double imax_a) const;

  const PgCircuitConfig& config() const { return config_; }

 private:
  PgCircuitConfig config_;
  TechParams tech_;
  Cycle entry_cycles_ = 0;
  Cycle wakeup_cycles_ = 0;
  Cycle light_wakeup_cycles_ = 0;
  double overhead_j_ = 0.0;
  double light_overhead_j_ = 0.0;
  Cycle break_even_cycles_ = 0;
  Cycle light_break_even_cycles_ = 0;
};

}  // namespace mapg
