// Technology / platform power parameters (45 nm-class, 3 GHz, 1.0 V).
//
// Values are representative of a 2012-era high-performance core and are the
// substitution for the paper's foundry characterization (DESIGN.md §3).
// Every energy number in the repository derives from this struct, so
// sensitivity studies (R-Fig.5) scale these fields rather than hard-coding.
//
// The off-chip side has its own parameter struct: DRAM per-event energies
// and per-state background powers (active / precharge power-down /
// self-refresh) live in power/dram_energy.h::DramEnergyParams, with the
// DDR3 datasheet derivation in docs/MEMORY_POWER.md.  The two structs meet
// in StallEnergyRates::make (power/interval_energy.h), which converts both
// to per-core-cycle joule rates using this struct's clock.
#pragma once

#include <array>

#include "trace/instr.h"

namespace mapg {

struct TechParams {
  double freq_ghz = 3.0;
  double vdd = 1.0;

  // --- Leakage (W) ---
  /// Leakage of the power-gated region (execution core: datapath, register
  /// files, scheduler).  This is what MAPG can switch off.
  double core_leakage_w = 0.50;
  /// Fraction of core_leakage_w actually eliminated when gated (sleep
  /// transistors and always-on retention logic still leak a little).
  double gated_fraction = 0.95;
  /// Ungated leakage: L1 arrays (state must survive gating).
  double l1_leakage_w = 0.05;
  /// Ungated leakage: L2/LLC arrays.
  double l2_leakage_w = 0.25;
  /// Ungated leakage: clock spine, PG controller, wakeup logic, PLL.
  double other_leakage_w = 0.08;

  // --- Dynamic energy per committed instruction (nJ), by op class ---
  // Order must match OpClass: alu, mul, div, fp, load, store, branch.
  std::array<double, kNumOpClasses> dyn_energy_nj = {0.15, 0.30, 0.90, 0.35,
                                                     0.40, 0.35, 0.18};

  /// Dynamic power burned while the core idles ungated (residual clocking;
  /// fine-grained clock gating is assumed, hence well below active power).
  double idle_clock_w = 0.10;

  // --- Unit helpers ---
  double cycle_time_ns() const { return 1.0 / freq_ghz; }
  double cycles_to_seconds(double cycles) const {
    return cycles * 1e-9 / freq_ghz;
  }
  double ns_to_cycles(double ns) const { return ns * freq_ghz; }

  /// Leakage power removed while gated (W).
  double savable_leakage_w() const { return core_leakage_w * gated_fraction; }

  bool valid() const {
    if (freq_ghz <= 0 || vdd <= 0) return false;
    if (core_leakage_w < 0 || gated_fraction < 0 || gated_fraction > 1)
      return false;
    for (double e : dyn_energy_nj)
      if (e < 0) return false;
    return true;
  }
};

}  // namespace mapg
