#include "power/energy_model.h"

#include <cassert>
#include <sstream>

namespace mapg {

EnergyBreakdown compute_energy(const TechParams& tech, const PgCircuit* pg,
                               const CoreStats& core,
                               const GatingActivity& activity) {
  assert(tech.valid());
  const std::uint64_t idle = core.idle_cycles();
  const std::uint64_t pg_cycles =
      activity.gated_cycles + activity.entry_cycles + activity.wake_cycles;
  assert(pg_cycles <= idle &&
         "gating activity exceeds the core's idle time: accounting bug");
  (void)idle;

  EnergyBreakdown e;

  // Dynamic: per committed instruction, by op class.
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    e.dynamic_j += static_cast<double>(core.instr_by_class[c]) *
                   tech.dyn_energy_nj[c] * 1e-9;
  }

  assert(activity.deep_transitions + activity.light_transitions ==
             activity.transitions &&
         activity.deep_gated_cycles + activity.light_gated_cycles ==
             activity.gated_cycles &&
         "per-mode gating splits out of sync with totals");

  const double total_s = tech.cycles_to_seconds(
      static_cast<double>(core.cycles));

  // Gated-region leakage: paid everywhere except while actually gated, and
  // even then the non-savable fraction still leaks; light sleep only
  // eliminates save_fraction(kLight) of the savable component.
  const double light_frac =
      pg != nullptr ? pg->save_fraction(SleepMode::kLight) : 0.0;
  const double effective_gated_s = tech.cycles_to_seconds(
      static_cast<double>(activity.deep_gated_cycles) +
      light_frac * static_cast<double>(activity.light_gated_cycles));
  e.core_leak_baseline_j = tech.core_leakage_w * total_s;
  e.core_leak_j =
      e.core_leak_baseline_j - tech.savable_leakage_w() * effective_gated_s;

  // Always-on leakage.
  e.ungated_leak_j =
      (tech.l1_leakage_w + tech.l2_leakage_w + tech.other_leakage_w) * total_s;

  // Residual clocking while idle but NOT in any power-gating phase
  // (entry/gated/wake all have the clock stopped).
  const std::uint64_t idle_ungated = idle - pg_cycles;
  e.idle_clock_j =
      tech.idle_clock_w * tech.cycles_to_seconds(
                              static_cast<double>(idle_ungated));

  if (pg != nullptr) {
    e.pg_overhead_j =
        pg->overhead_energy_j(SleepMode::kDeep) *
            static_cast<double>(activity.deep_transitions) +
        pg->overhead_energy_j(SleepMode::kLight) *
            static_cast<double>(activity.light_transitions);
  } else {
    assert(activity.transitions == 0 && activity.gated_cycles == 0 &&
           "gating activity reported without a PG circuit");
  }
  return e;
}

std::string energy_to_string(const EnergyBreakdown& e) {
  std::ostringstream os;
  auto mj = [](double j) { return j * 1e3; };
  os << "energy breakdown (mJ):\n"
     << "  dynamic      " << mj(e.dynamic_j) << "\n"
     << "  core leak    " << mj(e.core_leak_j) << " (baseline "
     << mj(e.core_leak_baseline_j) << ", saved " << mj(e.core_leak_saved_j())
     << ")\n"
     << "  ungated leak " << mj(e.ungated_leak_j) << "\n"
     << "  idle clock   " << mj(e.idle_clock_j) << "\n"
     << "  pg overhead  " << mj(e.pg_overhead_j) << "\n"
     << "  dram         " << mj(e.dram_j) << " (background "
     << mj(e.dram_background_j) << ", low-power saved "
     << mj(e.dram_lowpower_saved_j) << ")\n"
     << "  TOTAL        " << mj(e.total_j()) << "\n";
  return os.str();
}

}  // namespace mapg
