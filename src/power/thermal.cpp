#include "power/thermal.h"

#include <cassert>
#include <cmath>

namespace mapg {

ThermalModel::ThermalModel(const ThermalConfig& config, const TechParams& tech)
    : config_(config), t_c_(config.t_ambient_c) {
  assert(config_.valid() && "invalid thermal configuration");
  assert(tech.valid());
  (void)tech;
}

double ThermalModel::step(double p_watts, double dt_s) {
  // Exact solution of dT/dt = (T_target - T) / tau over dt:
  //   T(dt) = T_target + (T - T_target) * exp(-dt / tau).
  const double t_target = steady_state_c(p_watts);
  const double tau_s = config_.tau_ms * 1e-3;
  const double decay = std::exp(-dt_s / tau_s);
  t_c_ = t_target + (t_c_ - t_target) * decay;
  return t_c_;
}

double ThermalModel::leakage_multiplier(double t_c) const {
  return std::exp2((t_c - config_.t_ref_c) / config_.leak_doubling_c);
}

double ThermalModel::leakage_multiplier() const {
  return leakage_multiplier(t_c_);
}

}  // namespace mapg
