#include "power/pg_circuit.h"

#include <cassert>
#include <cmath>

namespace mapg {

PgCircuit::PgCircuit(const PgCircuitConfig& config, const TechParams& tech)
    : config_(config), tech_(tech) {
  assert(config_.valid() && "invalid PG circuit configuration");
  assert(tech_.valid() && "invalid technology parameters");

  entry_cycles_ = static_cast<Cycle>(
      std::ceil(tech_.ns_to_cycles(config_.entry_ns)));
  wakeup_cycles_ = wakeup_latency_cycles(config_.wakeup_stages);
  light_wakeup_cycles_ = wakeup_latency_cycles(config_.light_wakeup_stages);

  // Supply energy to recharge the virtual rail: the supply delivers charge
  // Q = C * dV at potential Vdd (half stored, half dissipated in the sleep
  // transistors — all of it is drawn from the supply, which is what counts).
  // Light sleep droops the rail by a smaller dV, so its recharge scales
  // with light_swing_frac; the gate-drive term is common to both modes
  // (the whole sleep-transistor bank switches either way).
  const double gate_j = config_.gate_charge_nj * 1e-9;
  auto recharge_j = [&](double swing) {
    return config_.c_vrail_nf * 1e-9 * tech_.vdd * swing * tech_.vdd;
  };
  overhead_j_ =
      (recharge_j(config_.rail_swing_frac) + gate_j) * config_.overhead_scale;
  light_overhead_j_ =
      (recharge_j(config_.light_swing_frac) + gate_j) * config_.overhead_scale;

  auto bet = [&](double overhead, double p_saved) -> Cycle {
    if (p_saved <= 0) return kNoCycle;
    return static_cast<Cycle>(
        std::ceil(overhead / p_saved * tech_.freq_ghz * 1e9));
  };
  break_even_cycles_ = bet(overhead_j_, tech_.savable_leakage_w());
  light_break_even_cycles_ =
      bet(light_overhead_j_,
          tech_.savable_leakage_w() * config_.light_save_frac);
}

Cycle PgCircuit::wakeup_latency_cycles(std::uint32_t stages) const {
  const double ns = static_cast<double>(stages) * config_.stage_delay_ns +
                    config_.settle_ns;
  return static_cast<Cycle>(std::ceil(tech_.ns_to_cycles(ns)));
}

double PgCircuit::rush_current_peak_a(std::uint32_t stages) const {
  if (stages == 0) stages = 1;
  const double dv = tech_.vdd * config_.rail_swing_frac;
  const double q = config_.c_vrail_nf * 1e-9 * dv;  // coulombs
  const double q_per_stage = q / static_cast<double>(stages);
  return q_per_stage / (config_.stage_delay_ns * 1e-9);
}

double PgCircuit::rush_current_peak_a() const {
  return rush_current_peak_a(config_.wakeup_stages);
}

std::uint32_t PgCircuit::min_stages_for_rush_limit(double imax_a) const {
  if (imax_a <= 0) return 0;
  for (std::uint32_t n = 1; n <= 4096; n *= 2) {
    if (rush_current_peak_a(n) <= imax_a) {
      // Binary refinement between n/2 and n for the exact minimum.
      std::uint32_t lo = n / 2 + 1, hi = n;
      if (n == 1) return 1;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (rush_current_peak_a(mid) <= imax_a)
          hi = mid;
        else
          lo = mid + 1;
      }
      return lo;
    }
  }
  return 0;
}

}  // namespace mapg
