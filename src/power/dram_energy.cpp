#include "power/dram_energy.h"

#include <algorithm>
#include <cassert>

namespace mapg {

DramEnergyParams dram_energy_for_standard(DramStandard standard) {
  DramEnergyParams p;  // defaults == DDR3-1600 2 Gb x8 class
  switch (standard) {
    case DramStandard::kCustom:
    case DramStandard::kDdr3_1600:
      break;
    case DramStandard::kDdr4_2400:
      // 8 Gb x8 at 1.2 V: lower standby and per-bit event energy than DDR3,
      // but the bigger die makes each refresh event costlier.
      p.background_w_per_channel = 0.30;
      p.powerdown_w_per_channel = 0.09;
      p.selfrefresh_w_per_channel = 0.030;
      p.activate_nj = 10.0;
      p.read_nj = 8.0;
      p.write_nj = 9.0;
      p.refresh_nj = 130.0;
      break;
    case DramStandard::kLpddr4_3200:
      // 8 Gb x16 at 1.1 V with a 0.6 V VDDQ: mobile-class background draw
      // and aggressive low-power states (IDD2P/IDD6 an order of magnitude
      // below the DDR3 numbers), smaller 2 KiB pages so cheaper ACTs.
      p.background_w_per_channel = 0.10;
      p.powerdown_w_per_channel = 0.025;
      p.selfrefresh_w_per_channel = 0.008;
      p.activate_nj = 6.0;
      p.read_nj = 4.0;
      p.write_nj = 4.5;
      p.refresh_nj = 60.0;
      break;
  }
  return p;
}

DramEnergyBreakdown compute_dram_energy_breakdown(
    const DramStats& stats, const DramConfig& config, const TechParams& tech,
    const DramEnergyParams& params, Cycle duration,
    std::uint64_t coordinated_pd_channel_cycles) {
  assert(params.valid());
  const double seconds =
      tech.cycles_to_seconds(static_cast<double>(duration));

  DramEnergyBreakdown b;
  b.background_j =
      params.background_w_per_channel * config.channels * seconds;

  // Low-power residency reduces the background term: each channel-cycle in
  // power-down (timeout-driven or gating-coordinated) or self-refresh burns
  // the state's power instead of the active background power.
  const double pd_s = tech.cycles_to_seconds(static_cast<double>(
      stats.powerdown_cycles + coordinated_pd_channel_cycles));
  const double sr_s =
      tech.cycles_to_seconds(static_cast<double>(stats.selfrefresh_cycles));
  b.lowpower_saved_j =
      (params.background_w_per_channel - params.powerdown_w_per_channel) *
          pd_s +
      (params.background_w_per_channel - params.selfrefresh_w_per_channel) *
          sr_s;

  const double activations =
      static_cast<double>(stats.row_closed + stats.row_conflicts);
  b.events_j = (activations * params.activate_nj +
                static_cast<double>(stats.reads) * params.read_nj +
                static_cast<double>(stats.writes) * params.write_nj) *
               1e-9;

  if (config.t_refi > 0) {
    // Channel-cycles spent in self-refresh need no controller refresh: the
    // device refreshes itself (its energy is inside selfrefresh_w).
    const double refreshes = std::max(
        0.0, static_cast<double>(duration) /
                     static_cast<double>(config.t_refi) * config.channels -
                 static_cast<double>(stats.selfrefresh_cycles) /
                     static_cast<double>(config.t_refi));
    b.refresh_j = refreshes * params.refresh_nj * 1e-9;
  }
  return b;
}

double compute_dram_energy_j(const DramStats& stats, const DramConfig& config,
                             const TechParams& tech,
                             const DramEnergyParams& params, Cycle duration,
                             std::uint64_t coordinated_pd_channel_cycles) {
  return compute_dram_energy_breakdown(stats, config, tech, params, duration,
                                       coordinated_pd_channel_cycles)
      .total_j();
}

}  // namespace mapg
