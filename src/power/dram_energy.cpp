#include "power/dram_energy.h"

#include <cassert>

namespace mapg {

double compute_dram_energy_j(const DramStats& stats, const DramConfig& config,
                             const TechParams& tech,
                             const DramEnergyParams& params, Cycle duration) {
  assert(params.valid());
  const double seconds =
      tech.cycles_to_seconds(static_cast<double>(duration));

  const double background_j =
      params.background_w_per_channel * config.channels * seconds;

  const double activations =
      static_cast<double>(stats.row_closed + stats.row_conflicts);
  const double events_j =
      (activations * params.activate_nj +
       static_cast<double>(stats.reads) * params.read_nj +
       static_cast<double>(stats.writes) * params.write_nj) *
      1e-9;

  double refresh_j = 0;
  if (config.t_refi > 0) {
    const double refreshes =
        static_cast<double>(duration) / static_cast<double>(config.t_refi) *
        config.channels;
    refresh_j = refreshes * params.refresh_nj * 1e-9;
  }
  return background_j + events_j + refresh_j;
}

}  // namespace mapg
