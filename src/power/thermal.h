// Temperature-dependent leakage (extension): the feedback loop power-gating
// papers care about.
//
// Subthreshold leakage grows roughly exponentially with junction
// temperature (doubling every ~25 K), and temperature follows dissipated
// power through the package's thermal resistance.  Gating therefore pays
// twice: it removes leakage directly, AND the cooler die leaks less during
// the time it is NOT gated.  The isothermal accounting used everywhere else
// in this repository understates MAPG's savings by exactly this feedback
// term; R-Tab.7 measures it.
//
// Model: a single-node RC thermal circuit for the core hot-spot,
//   dT/dt = (P * R_th - (T - T_amb)) / tau,
// integrated per epoch with the leakage multiplier
//   m(T) = 2^((T - T_ref) / doubling),
// where TechParams' leakage numbers are characterized at T_ref.
#pragma once

#include <cstdint>

#include "power/tech_params.h"

namespace mapg {

struct ThermalConfig {
  bool enable = false;
  /// Package/board baseline at the hot-spot.  Sized so the UNGATED core
  /// settles near the 85 C leakage characterization point (the regime a
  /// worst-case-designed part actually runs in): an always-on hot-spot
  /// dissipating ~0.65 W across 30 K/W sits at ~90 C; gating then cools it
  /// 10-15 K below T_ref, where the exponential pays out.
  double t_ambient_c = 70.0;
  double r_th_k_per_w = 30.0;     ///< junction-to-ambient, small-domain scale
  double tau_ms = 1.0;            ///< thermal time constant
  double t_ref_c = 85.0;          ///< leakage characterization temperature
  double leak_doubling_c = 25.0;  ///< leakage doubles every this many kelvin
  std::uint64_t epoch_instructions = 20'000;  ///< integration granularity

  bool valid() const {
    return r_th_k_per_w > 0 && tau_ms > 0 && leak_doubling_c > 0 &&
           epoch_instructions > 0;
  }
};

class ThermalModel {
 public:
  ThermalModel(const ThermalConfig& config, const TechParams& tech);

  /// Advance the node by `dt_s` seconds under average power `p_watts`.
  /// Returns the temperature at the end of the step (exact exponential
  /// integration of the linear RC node, stable for any dt).
  double step(double p_watts, double dt_s);

  double temperature_c() const { return t_c_; }

  /// Leakage scale factor at the current temperature (1.0 at t_ref_c).
  double leakage_multiplier() const;
  double leakage_multiplier(double t_c) const;

  /// Steady-state temperature under constant power (for tests/sizing).
  double steady_state_c(double p_watts) const {
    return config_.t_ambient_c + p_watts * config_.r_th_k_per_w;
  }

  const ThermalConfig& config() const { return config_; }

 private:
  ThermalConfig config_;
  double t_c_;
};

}  // namespace mapg
