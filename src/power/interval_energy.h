// Closed-form interval accounting: energy and refresh-window occupancy of an
// execution interval expressed directly from its aggregate cycle counts, with
// no per-cycle loop.
//
// Two consumers:
//
//  1. The fast-forward stall kernel (src/pg/stall_kernel.h) charges a whole
//     stall window [start, resume) in one step.  The cycle-accurate reference
//     kernel integrates the same quantities one cycle at a time; the
//     differential tests compare the two (integer counts exactly, the energy
//     integral to floating-point tolerance).
//
//  2. The thermal epoch loop (src/core/sim.cpp) differences stats snapshots
//     per epoch and converts the delta to joules via interval_core_energy_j.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"
#include "power/dram_energy.h"
#include "power/pg_circuit.h"
#include "power/tech_params.h"

namespace mapg {

/// Cycles t in [0, bound) that overlap a DRAM refresh window, i.e. satisfy
/// (t % t_refi) < t_rfc.  Closed form: full periods contribute
/// min(t_rfc, t_refi) each, the trailing partial period contributes
/// min(bound % t_refi, t_rfc).  t_refi == 0 disables refresh (returns 0).
constexpr Cycle refresh_busy_cycles(Cycle bound, Cycle t_refi, Cycle t_rfc) {
  if (t_refi == 0 || t_rfc == 0) return 0;
  const Cycle per_period = t_rfc < t_refi ? t_rfc : t_refi;
  const Cycle partial = bound % t_refi;
  return (bound / t_refi) * per_period +
         (partial < per_period ? partial : per_period);
}

/// Cycles in [begin, end) that overlap a refresh window.
constexpr Cycle refresh_window_overlap(Cycle begin, Cycle end, Cycle t_refi,
                                       Cycle t_rfc) {
  return refresh_busy_cycles(end, t_refi, t_rfc) -
         refresh_busy_cycles(begin, t_refi, t_rfc);
}

/// Per-cycle energy rates (J/cycle) of everything that accrues during a
/// full-core stall window.  All-zero rates simply disable the energy
/// cross-check accumulator.
struct StallEnergyRates {
  double leak_j = 0;         ///< gated-domain leakage, ungated
  double deep_saved_j = 0;   ///< leakage removed per deep-gated cycle
  double light_saved_j = 0;  ///< leakage removed per light-gated cycle
  double idle_clock_j = 0;   ///< residual clocking while idle and ungated
  double dram_background_j = 0;  ///< DRAM background power, all channels
  /// Background power removed per channel-cycle of coordinated DRAM
  /// power-down (background minus the IDD2P-class power-down power).
  double dram_pd_saved_j = 0;

  double saved_j(SleepMode mode) const {
    return mode == SleepMode::kDeep ? deep_saved_j : light_saved_j;
  }

  static StallEnergyRates make(const TechParams& tech, const PgCircuit& pg,
                               const DramEnergyParams& dram_energy,
                               std::uint32_t dram_channels);
};

/// Phase decomposition of one stall window [start, resume):
///   window = idle_ungated + entry + gated + wake   (exact, in cycles).
struct StallPhaseCycles {
  std::uint64_t idle_ungated = 0;  ///< waiting ungated (timeout, or no gate)
  std::uint64_t entry = 0;
  std::uint64_t gated = 0;
  std::uint64_t wake = 0;
  /// DRAM channel-cycles parked in power-down by the coordinator during this
  /// window (not part of the window() identity: channel-cycles, not core
  /// cycles).
  std::uint64_t dram_pd = 0;
  SleepMode mode = SleepMode::kDeep;  ///< meaningful when gated > 0

  std::uint64_t window() const { return idle_ungated + entry + gated + wake; }
};

/// Closed-form energy of one stall window.  The cycle-accurate kernel
/// accumulates the same integrand per cycle; agreement is asserted to
/// floating-point tolerance by the differential tests.
double stall_window_energy_j(const StallEnergyRates& rates,
                             const StallPhaseCycles& phases);

/// Scalar activity deltas over an execution interval [a, b) (the thermal
/// epoch loop differences two stats snapshots into this).
struct IntervalActivity {
  Cycle cycles = 0;
  std::uint64_t idle_cycles = 0;
  std::uint64_t pg_phase_cycles = 0;  ///< entry + gated + wake cycles
  std::uint64_t deep_gated_cycles = 0;
  std::uint64_t light_gated_cycles = 0;
  std::uint64_t deep_transitions = 0;
  std::uint64_t light_transitions = 0;
  std::array<std::uint64_t, kNumOpClasses> instrs{};
};

/// Core hot-spot domain energy of the interval at leakage multiplier `mult`
/// (dynamic + leakage + idle clocking + PG transition overhead).
double interval_core_energy_j(const TechParams& tech, const PgCircuit& pg,
                              const IntervalActivity& d, double mult);

/// The feedback-corrected leakage term alone.
double interval_core_leakage_j(const TechParams& tech, const PgCircuit& pg,
                               const IntervalActivity& d, double mult);

}  // namespace mapg
