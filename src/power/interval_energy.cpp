#include "power/interval_energy.h"

namespace mapg {

StallEnergyRates StallEnergyRates::make(const TechParams& tech,
                                        const PgCircuit& pg,
                                        const DramEnergyParams& dram_energy,
                                        std::uint32_t dram_channels) {
  const double sec = tech.cycles_to_seconds(1.0);
  StallEnergyRates r;
  r.leak_j = tech.core_leakage_w * sec;
  r.deep_saved_j = tech.savable_leakage_w() * sec;
  r.light_saved_j =
      tech.savable_leakage_w() * pg.save_fraction(SleepMode::kLight) * sec;
  r.idle_clock_j = tech.idle_clock_w * sec;
  r.dram_background_j = dram_energy.background_w_per_channel *
                        static_cast<double>(dram_channels) * sec;
  r.dram_pd_saved_j = (dram_energy.background_w_per_channel -
                       dram_energy.powerdown_w_per_channel) *
                      sec;
  return r;
}

double stall_window_energy_j(const StallEnergyRates& rates,
                             const StallPhaseCycles& phases) {
  return (rates.leak_j + rates.dram_background_j) *
             static_cast<double>(phases.window()) +
         rates.idle_clock_j * static_cast<double>(phases.idle_ungated) -
         rates.saved_j(phases.mode) * static_cast<double>(phases.gated) -
         rates.dram_pd_saved_j * static_cast<double>(phases.dram_pd);
}

double interval_core_energy_j(const TechParams& tech, const PgCircuit& pg,
                              const IntervalActivity& d, double mult) {
  double dyn = 0;
  for (std::size_t c = 0; c < kNumOpClasses; ++c)
    dyn += static_cast<double>(d.instrs[c]) * tech.dyn_energy_nj[c] * 1e-9;
  const double idle_ungated =
      static_cast<double>(d.idle_cycles - d.pg_phase_cycles);
  const double idle_clock =
      tech.idle_clock_w * tech.cycles_to_seconds(idle_ungated);
  const double ovh =
      pg.overhead_energy_j(SleepMode::kDeep) *
          static_cast<double>(d.deep_transitions) +
      pg.overhead_energy_j(SleepMode::kLight) *
          static_cast<double>(d.light_transitions);
  return dyn + interval_core_leakage_j(tech, pg, d, mult) + idle_clock + ovh;
}

double interval_core_leakage_j(const TechParams& tech, const PgCircuit& pg,
                               const IntervalActivity& d, double mult) {
  const double dt_cycles = static_cast<double>(d.cycles);
  const double eff_gated =
      static_cast<double>(d.deep_gated_cycles) +
      pg.save_fraction(SleepMode::kLight) *
          static_cast<double>(d.light_gated_cycles);
  return mult *
         (tech.core_leakage_w * tech.cycles_to_seconds(dt_cycles) -
          tech.savable_leakage_w() * tech.cycles_to_seconds(eff_gated));
}

}  // namespace mapg
