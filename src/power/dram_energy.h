// DRAM energy model (substrate extension): turns the controller's event
// counts into joules so experiments can report full-system energy, not just
// the core domain.  Event energies are DDR3-1600 2 Gb x8 class (datasheet
// IDD-derived, per 64 B line burst); the background term covers standby,
// clocking and ODT averaged over activity.
//
// Policy relevance: gating the core does NOT change the DRAM access stream,
// but a policy that stretches runtime (reactive wakeups) pays extra DRAM
// background energy for the whole stretch — one more reason idle-timeout
// gating loses end-to-end.
#pragma once

#include "mem/dram.h"
#include "power/tech_params.h"

namespace mapg {

struct DramEnergyParams {
  double background_w_per_channel = 0.35;
  double activate_nj = 12.0;  ///< ACT + PRE pair, per row activation
  double read_nj = 10.0;      ///< per 64 B read burst
  double write_nj = 11.0;     ///< per 64 B write burst
  double refresh_nj = 110.0;  ///< per refresh event, per channel

  bool valid() const {
    return background_w_per_channel >= 0 && activate_nj >= 0 &&
           read_nj >= 0 && write_nj >= 0 && refresh_nj >= 0;
  }
};

/// Energy consumed by the DRAM subsystem over `duration` core cycles given
/// the observed controller statistics.  Row activations are the closed +
/// conflict accesses (each required an ACT); refresh events fire every
/// t_REFI per channel regardless of traffic.
double compute_dram_energy_j(const DramStats& stats, const DramConfig& config,
                             const TechParams& tech,
                             const DramEnergyParams& params, Cycle duration);

}  // namespace mapg
