// DRAM energy model (substrate extension): turns the controller's event
// counts into joules so experiments can report full-system energy, not just
// the core domain.  Event energies are DDR3-1600 2 Gb x8 class (datasheet
// IDD-derived, per 64 B line burst); the background term covers standby,
// clocking and ODT averaged over activity, with per-state reductions while a
// channel sits in precharge power-down or self-refresh (IDD2P / IDD6 class;
// parameter sources in docs/MEMORY_POWER.md).
//
// Policy relevance: gating the core does not change the DRAM *access stream*,
// but with low-power states enabled the DRAM's energy is no longer
// policy-independent — a policy that stretches runtime pays extra background
// energy for the whole stretch, and a coordinated policy that knows the
// data-return cycle can park idle channels in power-down during stalls
// (src/pg/dram_coordinator.h).
#pragma once

#include "mem/dram.h"
#include "power/tech_params.h"

namespace mapg {

struct DramEnergyParams {
  double background_w_per_channel = 0.35;
  /// Background power while a channel sits in precharge power-down
  /// (IDD2P-class; CKE low, DLL frozen).
  double powerdown_w_per_channel = 0.12;
  /// Background power while a channel sits in self-refresh (IDD6-class; the
  /// device refreshes itself, so no controller refresh events are charged
  /// for that residency).
  double selfrefresh_w_per_channel = 0.045;
  double activate_nj = 12.0;  ///< ACT + PRE pair, per row activation
  double read_nj = 10.0;      ///< per 64 B read burst
  double write_nj = 11.0;     ///< per 64 B write burst
  double refresh_nj = 110.0;  ///< per refresh event, per channel

  bool valid() const {
    return background_w_per_channel >= 0 && activate_nj >= 0 &&
           read_nj >= 0 && write_nj >= 0 && refresh_nj >= 0 &&
           selfrefresh_w_per_channel >= 0 &&
           selfrefresh_w_per_channel <= powerdown_w_per_channel &&
           powerdown_w_per_channel <= background_w_per_channel;
  }
};

/// IDD-class draw set for a named timing standard (docs/DRAM.md §5).  The
/// defaults above ARE the DDR3-1600 set; DDR4 trims every term and LPDDR4 is
/// the mobile part: much lower background and far deeper low-power states —
/// which is what moves MAPG's coordinated-gating crossover (R-Tab.9).
/// kCustom returns the defaults unchanged.
DramEnergyParams dram_energy_for_standard(DramStandard standard);

/// Component split of the DRAM energy over a run.  `total_j()` is what lands
/// in EnergyBreakdown::dram_j; the background / low-power split is reported
/// separately so experiments can show what residency bought.
struct DramEnergyBreakdown {
  double background_j = 0;      ///< all-channels-always-active background
  double lowpower_saved_j = 0;  ///< background removed by PD/SR residency
  double events_j = 0;          ///< ACT/PRE + read + write bursts
  double refresh_j = 0;         ///< controller refresh events (net of SR)

  double total_j() const {
    return background_j - lowpower_saved_j + events_j + refresh_j;
  }
};

/// Energy consumed by the DRAM subsystem over `duration` core cycles given
/// the observed controller statistics.  Row activations are the closed +
/// conflict accesses (each required an ACT); refresh events fire every
/// t_REFI per channel, minus the refreshes the devices performed internally
/// while in self-refresh.  `coordinated_pd_channel_cycles` is the extra
/// power-down residency accumulated by the gating-coordinated path
/// (GatingStats::dram_pd_channel_cycles) — the DRAM-side counters and the
/// coordinated counters are mutually exclusive by construction, so the sum
/// never double-counts.
DramEnergyBreakdown compute_dram_energy_breakdown(
    const DramStats& stats, const DramConfig& config, const TechParams& tech,
    const DramEnergyParams& params, Cycle duration,
    std::uint64_t coordinated_pd_channel_cycles = 0);

/// Total of the breakdown above (convenience wrapper).
double compute_dram_energy_j(const DramStats& stats, const DramConfig& config,
                             const TechParams& tech,
                             const DramEnergyParams& params, Cycle duration,
                             std::uint64_t coordinated_pd_channel_cycles = 0);

}  // namespace mapg
