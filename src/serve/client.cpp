#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mapg::serve {

ServeClient::~ServeClient() { close(); }

bool ServeClient::connect(const std::string& host, std::uint16_t port,
                          std::string* error) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                                   &res);
      rc != 0) {
    if (error) *error = std::string("resolve ") + host + ": " +
                        ::gai_strerror(rc);
    return false;
  }
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Frames are single writes of a full request; don't batch them.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      break;
    }
    last_error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) {
    if (error) *error = host + ":" + port_str + ": " + last_error;
    return false;
  }
  return true;
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ServeClient::send(FrameType type, const std::string& payload,
                       std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return false;
  }
  return write_frame(fd_, Frame{type, payload}, error);
}

bool ServeClient::recv(Frame* frame, std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return false;
  }
  if (read_frame(fd_, frame, error)) return true;
  if (error && error->empty()) *error = "server closed the connection";
  return false;
}

std::optional<Frame> ServeClient::roundtrip(FrameType type,
                                            const std::string& payload,
                                            std::string* error) {
  if (!send(type, payload, error)) return std::nullopt;
  Frame reply;
  if (!recv(&reply, error)) return std::nullopt;
  return reply;
}

std::optional<Json> ServeClient::roundtrip_json(FrameType type,
                                                const std::string& payload,
                                                std::string* error) {
  const std::optional<Frame> reply = roundtrip(type, payload, error);
  if (!reply) return std::nullopt;
  if (reply->type == FrameType::kReplyError) {
    if (error) {
      const std::optional<Json> doc = Json::parse(reply->payload);
      *error = doc ? doc->get("error").as_string() : reply->payload;
      if (error->empty()) *error = "server error";
    }
    return std::nullopt;
  }
  if (reply->type != FrameType::kReplyOk) {
    if (error) *error = "unexpected reply frame type";
    return std::nullopt;
  }
  std::string parse_error;
  std::optional<Json> doc = Json::parse(reply->payload, &parse_error);
  if (!doc) {
    if (error) *error = "bad reply payload: " + parse_error;
    return std::nullopt;
  }
  return doc;
}

bool ServeClient::ping(std::string* error) {
  const std::optional<Frame> reply =
      roundtrip(FrameType::kPing, {}, error);
  if (!reply) return false;
  if (reply->type != FrameType::kReplyOk) {
    if (error) *error = "ping rejected";
    return false;
  }
  return true;
}

std::optional<Json> ServeClient::stats(std::string* error) {
  return roundtrip_json(FrameType::kStats, {}, error);
}

bool ServeClient::shutdown_server(std::string* error) {
  const std::optional<Frame> reply =
      roundtrip(FrameType::kShutdown, {}, error);
  return reply && reply->type == FrameType::kReplyOk;
}

std::optional<Json> ServeClient::cell(const CellRequest& request,
                                      std::string* error) {
  return roundtrip_json(FrameType::kCell, cell_request_json(request).dump(),
                        error);
}

std::optional<Json> ServeClient::sweep(const SweepRequest& request,
                                       std::string* error) {
  return roundtrip_json(FrameType::kSweep,
                        sweep_request_json(request).dump(), error);
}

}  // namespace mapg::serve
