#include "serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace mapg::serve {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Read exactly n bytes.  1 = ok, 0 = clean EOF before the first byte,
/// -1 = error or EOF mid-read (truncation).
int read_exact(int fd, void* buf, std::size_t n, std::string* error) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return 0;
      if (error) *error = "truncated frame: peer closed mid-read";
      return -1;
    }
    if (errno == EINTR) continue;
    if (error) *error = std::string("read failed: ") + std::strerror(errno);
    return -1;
  }
  return 1;
}

bool write_exact(int fd, const char* buf, std::size_t n, std::string* error) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::write(fd, buf + sent, n - sent);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (error) *error = std::string("write failed: ") + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size());
  put_u32(out, kMagic);
  put_u32(out, kProtocolVersion);
  put_u32(out, static_cast<std::uint32_t>(frame.type));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

bool parse_header(const unsigned char header[kHeaderBytes], FrameType* type,
                  std::uint32_t* length, std::string* error) {
  if (get_u32(header) != kMagic) {
    if (error) *error = "bad magic";
    return false;
  }
  const std::uint32_t version = get_u32(header + 4);
  if (version != kProtocolVersion) {
    if (error) *error = "unsupported protocol version " +
                        std::to_string(version);
    return false;
  }
  const std::uint32_t len = get_u32(header + 12);
  if (len > kMaxPayload) {
    if (error) *error = "payload length " + std::to_string(len) +
                        " exceeds limit";
    return false;
  }
  *type = static_cast<FrameType>(get_u32(header + 8));
  *length = len;
  return true;
}

bool read_frame(int fd, Frame* frame, std::string* error) {
  if (error) error->clear();
  unsigned char header[kHeaderBytes];
  const int rc = read_exact(fd, header, kHeaderBytes, error);
  if (rc <= 0) return false;  // rc == 0: clean close, *error empty
  std::uint32_t length = 0;
  if (!parse_header(header, &frame->type, &length, error)) return false;
  frame->payload.resize(length);
  if (length > 0 &&
      read_exact(fd, frame->payload.data(), length, error) != 1)
    return false;
  return true;
}

bool write_frame(int fd, const Frame& frame, std::string* error) {
  if (frame.payload.size() > kMaxPayload) {
    if (error) *error = "payload exceeds kMaxPayload";
    return false;
  }
  const std::string bytes = encode_frame(frame);
  return write_exact(fd, bytes.data(), bytes.size(), error);
}

// --- Request/response documents -----------------------------------------

namespace {

Json config_json(const std::map<std::string, std::string>& config) {
  Json obj = Json::object();
  for (const auto& [k, v] : config) obj[k] = Json::string(v);
  return obj;
}

bool parse_config(const Json& doc, std::map<std::string, std::string>* out,
                  std::string* error) {
  out->clear();
  const Json* cfg = doc.find("config");
  if (cfg == nullptr) return true;  // empty config = platform defaults
  if (!cfg->is_object()) {
    if (error) *error = "'config' must be an object of string values";
    return false;
  }
  for (const auto& [k, v] : cfg->items()) {
    if (v.type() != Json::Type::kString) {
      if (error) *error = "config key '" + k + "' must be a string value";
      return false;
    }
    (*out)[k] = v.as_string();
  }
  return true;
}

bool parse_string_list(const Json& doc, const std::string& key,
                       std::vector<std::string>* out, std::string* error) {
  out->clear();
  const Json* arr = doc.find(key);
  if (arr == nullptr || !arr->is_array() || arr->size() == 0) {
    if (error) *error = "'" + key + "' must be a non-empty array";
    return false;
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const Json& item = arr->at(i);
    if (item.type() != Json::Type::kString || item.as_string().empty()) {
      if (error) *error = "'" + key + "' entries must be non-empty strings";
      return false;
    }
    out->push_back(item.as_string());
  }
  return true;
}

}  // namespace

Json cell_request_json(const CellRequest& req) {
  Json doc = Json::object();
  doc["config"] = config_json(req.config);
  doc["workload"] = Json::string(req.workload);
  doc["policy"] = Json::string(req.policy);
  return doc;
}

Json sweep_request_json(const SweepRequest& req) {
  Json doc = Json::object();
  doc["config"] = config_json(req.config);
  Json workloads = Json::array();
  for (const std::string& w : req.workloads) workloads.push(Json::string(w));
  doc["workloads"] = std::move(workloads);
  Json policies = Json::array();
  for (const std::string& p : req.policies) policies.push(Json::string(p));
  doc["policies"] = std::move(policies);
  doc["seeds"] = Json::number(req.seeds);
  return doc;
}

bool parse_cell_request(const Json& doc, CellRequest* req,
                        std::string* error) {
  if (!doc.is_object()) {
    if (error) *error = "cell request must be a JSON object";
    return false;
  }
  if (!parse_config(doc, &req->config, error)) return false;
  req->workload = doc.get("workload").as_string();
  req->policy = doc.get("policy").as_string();
  if (req->workload.empty()) {
    if (error) *error = "cell request needs a 'workload'";
    return false;
  }
  if (req->policy.empty()) req->policy = "none";
  return true;
}

bool parse_sweep_request(const Json& doc, SweepRequest* req,
                         std::string* error) {
  if (!doc.is_object()) {
    if (error) *error = "sweep request must be a JSON object";
    return false;
  }
  if (!parse_config(doc, &req->config, error)) return false;
  if (!parse_string_list(doc, "workloads", &req->workloads, error))
    return false;
  if (!parse_string_list(doc, "policies", &req->policies, error))
    return false;
  const std::uint64_t seeds = doc.get("seeds").as_u64(1);
  if (seeds == 0 || seeds > 4096) {
    if (error) *error = "'seeds' must be in [1, 4096]";
    return false;
  }
  req->seeds = static_cast<unsigned>(seeds);
  return true;
}

std::string error_payload(const std::string& text) {
  Json doc = Json::object();
  doc["error"] = Json::string(text);
  return doc.dump();
}

}  // namespace mapg::serve
