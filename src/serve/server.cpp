#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/config.h"
#include "common/log.h"
#include "exec/serialize.h"
#include "multicore/config_apply.h"
#include "obs/obs.h"
#include "trace/profile.h"

namespace mapg::serve {

namespace {

Frame ok_frame(std::string payload = {}) {
  return Frame{FrameType::kReplyOk, std::move(payload)};
}

Frame error_frame(const std::string& text) {
  return Frame{FrameType::kReplyError, error_payload(text)};
}

/// CellRequest -> ExperimentJob: apply the key=value config dialect onto
/// the platform defaults and resolve the builtin workload.  Unknown config
/// keys are request errors, not warnings — a typo must not silently serve
/// results for a different platform than the client asked about.
bool job_from_cell(const CellRequest& req, ExperimentJob* job,
                   std::string* error) {
  KvConfig kv;
  for (const auto& [k, v] : req.config) kv.set(k, v);
  std::vector<std::string> unknown;
  job->config = apply_sim_config(kv, SimConfig{}, &unknown);
  if (!unknown.empty()) {
    *error = "unknown config key '" + unknown.front() + "'";
    return false;
  }
  const WorkloadProfile* profile = find_profile(req.workload);
  if (profile == nullptr) {
    *error = "unknown workload '" + req.workload + "'";
    return false;
  }
  job->profile = *profile;
  job->policy_spec = req.policy;
  return true;
}

/// SweepRequest -> jobs in ExperimentEngine::expand order (workload outer,
/// policy mid, seed inner; one variant).
bool expand_sweep(const SweepRequest& req, std::vector<ExperimentJob>* jobs,
                  std::string* error) {
  KvConfig kv;
  for (const auto& [k, v] : req.config) kv.set(k, v);
  std::vector<std::string> unknown;
  const SimConfig base = apply_sim_config(kv, SimConfig{}, &unknown);
  if (!unknown.empty()) {
    *error = "unknown config key '" + unknown.front() + "'";
    return false;
  }
  if (req.policies.empty() || req.workloads.empty()) {
    *error = "sweep needs workloads and policies";
    return false;
  }
  jobs->clear();
  jobs->reserve(req.workloads.size() * req.policies.size() * req.seeds);
  for (const std::string& w : req.workloads) {
    const WorkloadProfile* profile = find_profile(w);
    if (profile == nullptr) {
      *error = "unknown workload '" + w + "'";
      return false;
    }
    for (const std::string& p : req.policies) {
      for (unsigned s = 0; s < req.seeds; ++s) {
        ExperimentJob job;
        job.config = base;
        job.config.run_seed += s;
        job.profile = *profile;
        job.policy_spec = p;
        jobs->push_back(std::move(job));
      }
    }
  }
  return true;
}

/// The response document for one resolved cell.  `result` embeds
/// result_to_json verbatim, so extracting and dumping it reproduces the
/// exact bytes a local engine run serializes to — the identity contract.
Json cell_response_json(const ServeOutcome& out) {
  Json doc = Json::object();
  doc["ok"] = Json::boolean(out.job.ok);
  doc["tier"] = Json::string(tier_name(out.tier));
  if (out.job.ok) {
    doc["cached"] = Json::boolean(out.job.from_cache);
    doc["replayed"] = Json::boolean(out.job.from_replay);
    doc["result"] = result_to_json(*out.job.result);
  } else {
    doc["error"] = Json::string(out.job.error);
  }
  return doc;
}

Json cell_transport_error_json(const std::string& text) {
  Json doc = Json::object();
  doc["ok"] = Json::boolean(false);
  doc["tier"] = Json::string("error");
  doc["error"] = Json::string(text);
  return doc;
}

}  // namespace

std::size_t shard_of(const std::string& cache_key, std::size_t n_shards) {
  // The key is 32 lowercase hex chars; its first 64 bits are already a
  // uniform content hash, so `mod N` is a consistent, balanced slot.
  const std::uint64_t hi =
      std::stoull(cache_key.substr(0, 16), nullptr, 16);
  return static_cast<std::size_t>(hi % n_shards);
}

ServeServer::ServeServer(ServerOptions options)
    : options_(std::move(options)),
      engine_(std::make_unique<ExperimentEngine>(options_.exec)),
      tiered_(std::make_unique<TieredExecutor>(*engine_, options_.tiered)) {
  MAPG_OBS_ONLY({
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("serve.requests");
    reg.counter("serve.connections");
    reg.gauge("serve.connections.open");
    reg.gauge("serve.queue.depth");
    reg.histogram("serve.request.wall_ns");
  })
}

ServeServer::~ServeServer() { stop(); }

bool ServeServer::start(std::string* error) {
  for (const std::string& spec : options_.shards) {
    const std::size_t colon = spec.rfind(':');
    unsigned long port = 0;
    if (colon == std::string::npos || colon == 0 ||
        (port = std::strtoul(spec.c_str() + colon + 1, nullptr, 10)) == 0 ||
        port > 65535) {
      if (error) *error = "bad shard address '" + spec + "' (host:port)";
      return false;
    }
    auto shard = std::make_unique<Shard>();
    shard->host = spec.substr(0, colon);
    shard->port = static_cast<std::uint16_t>(port);
    shards_.push_back(std::move(shard));
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(options_.port);
  if (const int rc = ::getaddrinfo(options_.bind_addr.c_str(),
                                   port_str.c_str(), &hints, &res);
      rc != 0) {
    if (error) *error = std::string("resolve ") + options_.bind_addr + ": " +
                        ::gai_strerror(rc);
    return false;
  }
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, options_.listen_backlog) == 0) {
      listen_fd_ = fd;
      break;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (listen_fd_ < 0) {
    if (error) *error = options_.bind_addr + ":" + port_str + ": " +
                        last_error;
    return false;
  }

  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET)
      port_ = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    else if (bound.ss_family == AF_INET6)
      port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread(&ServeServer::accept_loop, this);
  return true;
}

void ServeServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) {
        ::close(fd);
        break;
      }
      conns_.insert(conn);
      ++active_conns_;
    }
    MAPG_OBS_COUNTER_INC("serve.connections");
    MAPG_OBS_ONLY(MAPG_OBS_GAUGE_ADD("serve.connections.open", 1);)
    std::thread(&ServeServer::handle_connection, this, std::move(conn))
        .detach();
  }
}

void ServeServer::deliver(const std::shared_ptr<Conn>& conn,
                          std::uint64_t seq, Frame reply) {
  std::lock_guard<std::mutex> lk(conn->mu);
  conn->ready.emplace(seq, std::move(reply));
  auto it = conn->ready.begin();
  while (it != conn->ready.end() && it->first == conn->next_write) {
    if (!conn->broken) {
      std::string error;
      if (!write_frame(conn->fd, it->second, &error)) {
        conn->broken = true;  // client gone; keep draining silently
      }
    }
    it = conn->ready.erase(it);
    ++conn->next_write;
    --conn->outstanding;
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  }
  MAPG_OBS_ONLY(MAPG_OBS_GAUGE_SET(
      "serve.queue.depth", queue_depth_.load(std::memory_order_relaxed));)
  conn->cv.notify_all();
}

void ServeServer::handle_connection(std::shared_ptr<Conn> conn) {
  std::uint64_t next_seq = 0;
  Frame request;
  std::string error;
  while (read_frame(conn->fd, &request, &error)) {
    const std::uint64_t seq = next_seq++;
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      ++conn->outstanding;
    }
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    MAPG_OBS_COUNTER_INC("serve.requests");

    if (request.type == FrameType::kShutdown) {
      deliver(conn, seq, ok_frame());
      {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_requested_ = true;
      }
      state_cv_.notify_all();
      continue;
    }
    if (request.type == FrameType::kPing ||
        request.type == FrameType::kStats) {
      deliver(conn, seq,
              request.type == FrameType::kPing ? ok_frame() : handle_stats());
      continue;
    }
    // Compute requests ride the engine's worker pool; the sequencer keeps
    // the response order regardless of completion order.
    engine_->submit_detached([this, conn, seq,
                              req = std::move(request)]() mutable {
      [[maybe_unused]] std::uint64_t ts = 0;
      MAPG_OBS_ONLY(obs::EventTracer& tracer = obs::EventTracer::instance();
                    if (tracer.enabled()) ts = tracer.now_ns();)
      const auto t0 = std::chrono::steady_clock::now();
      Frame reply = process(req);
      const auto dur_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      MAPG_OBS_ONLY(
          MAPG_OBS_HIST_RECORD("serve.request.wall_ns",
                               static_cast<std::uint64_t>(dur_ns));
          if (tracer.enabled()) {
            tracer.complete(
                "request", "serve", ts, tracer.now_ns() - ts,
                obs::TraceArgs()
                    .add("type",
                         std::uint64_t{static_cast<std::uint32_t>(req.type)})
                    .add("ok", reply.type == FrameType::kReplyOk)
                    .json());
          })
      (void)dur_ns;
      deliver(conn, seq, std::move(reply));
    });
    request = Frame{};  // moved-from; reset for the next read
  }
  if (!error.empty())
    log_warn() << "serve: connection error: " << error;

  // Drain: every assigned response must be written (or dropped on a broken
  // pipe) before the fd closes.
  {
    std::unique_lock<std::mutex> lk(conn->mu);
    conn->cv.wait(lk, [&] { return conn->outstanding == 0; });
  }
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns_.erase(conn);
    --active_conns_;
  }
  MAPG_OBS_ONLY(MAPG_OBS_GAUGE_ADD("serve.connections.open", -1);)
  state_cv_.notify_all();
}

Frame ServeServer::process(const Frame& request) {
  try {
    switch (request.type) {
      case FrameType::kCell:
        return handle_cell(request.payload);
      case FrameType::kSweep:
        return handle_sweep(request.payload);
      default:
        return error_frame("unexpected frame type " +
                           std::to_string(static_cast<std::uint32_t>(
                               request.type)));
    }
  } catch (const std::exception& e) {
    return error_frame(std::string("internal error: ") + e.what());
  }
}

Frame ServeServer::handle_cell(const std::string& payload) {
  std::string error;
  const std::optional<Json> doc = Json::parse(payload, &error);
  if (!doc) return error_frame("bad cell request: " + error);
  CellRequest req;
  if (!parse_cell_request(*doc, &req, &error)) return error_frame(error);
  if (shard_front()) return forward_cell(req);
  ExperimentJob job;
  if (!job_from_cell(req, &job, &error)) return error_frame(error);
  return ok_frame(cell_response_json(tiered_->run_cell(job)).dump());
}

Frame ServeServer::handle_sweep(const std::string& payload) {
  std::string error;
  const std::optional<Json> doc = Json::parse(payload, &error);
  if (!doc) return error_frame("bad sweep request: " + error);
  SweepRequest req;
  if (!parse_sweep_request(*doc, &req, &error)) return error_frame(error);
  if (shard_front()) return forward_sweep(req);
  std::vector<ExperimentJob> jobs;
  if (!expand_sweep(req, &jobs, &error)) return error_frame(error);

  const std::vector<ServeOutcome> outcomes = tiered_->run_cells(
      jobs, req.workloads.size(), req.policies.size(), req.seeds);
  Json reply = Json::object();
  reply["n_workloads"] = Json::number(req.workloads.size());
  reply["n_policies"] = Json::number(req.policies.size());
  reply["n_seeds"] = Json::number(req.seeds);
  Json cells = Json::array();
  for (const ServeOutcome& out : outcomes)
    cells.push(cell_response_json(out));
  reply["cells"] = std::move(cells);
  return ok_frame(reply.dump());
}

Frame ServeServer::handle_stats() {
  const ServeStats ss = tiered_->stats();
  const EngineStats es = engine_->stats();
  const CacheStatsSnapshot cs = engine_->cache().stats();
  const HotCacheStats hs = tiered_->hot_cache().stats();

  Json doc = Json::object();
  Json serve = Json::object();
  serve["requests"] = Json::number(requests_.load());
  serve["cells"] = Json::number(ss.cells);
  serve["hot_hits"] = Json::number(ss.hot_hits);
  serve["cache_hits"] = Json::number(ss.cache_hits);
  serve["replayed"] = Json::number(ss.replayed);
  serve["computed"] = Json::number(ss.computed);
  serve["coalesced"] = Json::number(ss.coalesced);
  serve["errors"] = Json::number(ss.errors);
  serve["timelines_recorded"] = Json::number(ss.timelines_recorded);
  serve["timelines_reused"] = Json::number(ss.timelines_reused);
  serve["replay_fallbacks"] = Json::number(ss.replay_fallbacks);
  serve["replay_prefix_resumes"] = Json::number(ss.replay_prefix_resumes);
  serve["timelines_cached"] = Json::number(tiered_->timelines_cached());
  serve["shards"] = Json::number(shards_.size());
  doc["serve"] = std::move(serve);

  Json engine = Json::object();
  engine["jobs_run"] = Json::number(es.jobs_run);
  engine["jobs_cached"] = Json::number(es.jobs_cached);
  engine["jobs_failed"] = Json::number(es.jobs_failed);
  engine["jobs_replayed"] = Json::number(es.jobs_replayed);
  doc["engine"] = std::move(engine);

  Json cache = Json::object();
  cache["memory_hits"] = Json::number(cs.memory_hits);
  cache["disk_hits"] = Json::number(cs.disk_hits);
  cache["misses"] = Json::number(cs.misses);
  cache["stores"] = Json::number(cs.stores);
  cache["disk_errors"] = Json::number(cs.disk_errors);
  doc["cache"] = std::move(cache);

  Json hot = Json::object();
  hot["hits"] = Json::number(hs.hits);
  hot["misses"] = Json::number(hs.misses);
  hot["insertions"] = Json::number(hs.insertions);
  hot["evictions"] = Json::number(hs.evictions);
  hot["size"] = Json::number(tiered_->hot_cache().size());
  doc["hot"] = std::move(hot);

  return ok_frame(doc.dump());
}

Frame ServeServer::forward_cell(const CellRequest& request) {
  // Validate locally first so malformed requests fail fast with the same
  // error text a non-sharded server produces.
  ExperimentJob job;
  std::string error;
  if (!job_from_cell(request, &job, &error)) return error_frame(error);
  const std::string key =
      cache_key(job.config, job.profile, job.policy_spec);
  const std::size_t si = shard_of(key, shards_.size());
  std::vector<Json> responses(1);
  forward_batch(si, {{0, request}}, responses);
  return ok_frame(responses[0].dump());
}

Frame ServeServer::forward_sweep(const SweepRequest& request) {
  std::vector<ExperimentJob> jobs;
  std::string error;
  if (!expand_sweep(request, &jobs, &error)) return error_frame(error);

  std::vector<std::vector<std::pair<std::size_t, CellRequest>>> per_shard(
      shards_.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ExperimentJob& job = jobs[i];
    const std::string key =
        cache_key(job.config, job.profile, job.policy_spec);
    CellRequest cell;
    cell.config = request.config;
    // The expanded seed must ride in the cell's config so the shard keys
    // the exact same experiment identity.
    cell.config["seed"] = std::to_string(job.config.run_seed);
    cell.workload = job.profile.name;
    cell.policy = job.policy_spec;
    per_shard[shard_of(key, shards_.size())].emplace_back(i,
                                                          std::move(cell));
  }

  std::vector<Json> responses(jobs.size());
  for (std::size_t si = 0; si < per_shard.size(); ++si)
    if (!per_shard[si].empty()) forward_batch(si, per_shard[si], responses);

  Json reply = Json::object();
  reply["n_workloads"] = Json::number(request.workloads.size());
  reply["n_policies"] = Json::number(request.policies.size());
  reply["n_seeds"] = Json::number(request.seeds);
  Json cells = Json::array();
  for (Json& r : responses) cells.push(std::move(r));
  reply["cells"] = std::move(cells);
  return ok_frame(reply.dump());
}

void ServeServer::forward_batch(
    std::size_t si,
    const std::vector<std::pair<std::size_t, CellRequest>>& cells,
    std::vector<Json>& responses) {
  Shard& shard = *shards_[si];
  std::lock_guard<std::mutex> lk(shard.mu);
  std::string error;
  if (!shard.client.connected() &&
      !shard.client.connect(shard.host, shard.port, &error)) {
    for (const auto& [idx, cell] : cells)
      responses[idx] = cell_transport_error_json("shard " +
                                                 std::to_string(si) + ": " +
                                                 error);
    return;
  }
  // Pipeline the whole batch: write every request, then read the replies
  // in order (the per-connection sequencing contract makes this safe).
  std::size_t sent = 0;
  for (const auto& [idx, cell] : cells) {
    (void)idx;
    if (!shard.client.send(FrameType::kCell,
                           cell_request_json(cell).dump(), &error))
      break;
    ++sent;
  }
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const std::size_t idx = cells[k].first;
    if (k >= sent) {
      responses[idx] = cell_transport_error_json(
          "shard " + std::to_string(si) + ": " + error);
      continue;
    }
    Frame reply;
    if (!shard.client.recv(&reply, &error)) {
      responses[idx] = cell_transport_error_json(
          "shard " + std::to_string(si) + ": " + error);
      sent = k;  // everything after this is lost too
      continue;
    }
    if (reply.type == FrameType::kReplyError) {
      const std::optional<Json> err = Json::parse(reply.payload);
      responses[idx] = cell_transport_error_json(
          err ? err->get("error").as_string() : "shard error");
      continue;
    }
    std::optional<Json> doc = Json::parse(reply.payload, &error);
    responses[idx] = doc ? std::move(*doc)
                         : cell_transport_error_json(
                               "shard reply unparseable: " + error);
  }
  if (sent < cells.size()) shard.client.close();  // resync on next batch
}

void ServeServer::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  state_cv_.wait(lk, [&] { return shutdown_requested_ || stopping_; });
}

void ServeServer::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || stopping_) {
      stopping_ = true;
      state_cv_.notify_all();
      return;
    }
    stopping_ = true;
  }
  state_cv_.notify_all();

  // Closing the listen socket pops accept() out of its block.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // Wake every connection reader; they drain their in-flight responses and
  // deregister themselves.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const std::shared_ptr<Conn>& conn : conns_)
      ::shutdown(conn->fd, SHUT_RDWR);
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    state_cv_.wait(lk, [&] { return active_conns_ == 0; });
  }
}

}  // namespace mapg::serve
