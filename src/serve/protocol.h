// Wire protocol for the resident experiment server (docs/SERVE.md).
//
// A connection carries a sequence of length-prefixed frames, each a 16-byte
// little-endian header followed by `length` payload bytes:
//
//   offset  size  field
//        0     4  magic    0x4750414D ("MAPG" read as bytes)
//        4     4  version  kProtocolVersion
//        8     4  type     FrameType
//       12     4  length   payload bytes that follow (<= kMaxPayload)
//
// Payloads are canonical exec/json.h documents (the same dialect the result
// cache persists), so a cell response body can be compared byte-for-byte
// against result_to_json() of a local ExperimentEngine run — the identity
// the serve tests and CI smoke assert.  Responses on one connection come
// back in request order; there is no request id.
//
// Robustness contract (tests/test_serve_protocol.cpp): a reader must reject
// bad magic, unknown versions, and over-limit lengths WITHOUT consuming the
// payload (the connection is then unrecoverable and should be closed), and
// must report truncation — a peer closing mid-frame — as an error, never as
// a short success.  A malformed frame kills one connection, never the
// server.
//
// Layering: serve -> exec (Json, engine types); nothing below serve may
// depend on it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/json.h"

namespace mapg::serve {

inline constexpr std::uint32_t kMagic = 0x4750414D;  // "MAPG" little-endian
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Hard payload bound: a 12-workload x 16-policy x 8-seed sweep response is
/// ~25 MB of result JSON, so 64 MiB leaves headroom while still rejecting
/// hostile or corrupt lengths immediately.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;
inline constexpr std::size_t kHeaderBytes = 16;

enum class FrameType : std::uint32_t {
  kPing = 1,      ///< empty payload; reply is kReplyOk with empty payload
  kCell = 2,      ///< one experiment cell (CellRequest JSON)
  kSweep = 3,     ///< a SweepSpec grid (SweepRequest JSON)
  kStats = 4,     ///< server/engine/cache counters as JSON
  kShutdown = 5,  ///< stop accepting, drain, exit the serve loop
  kReplyOk = 100,
  kReplyError = 101,  ///< payload {"error": "..."}
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Header + payload as raw bytes, ready to write.
std::string encode_frame(const Frame& frame);

/// Parse a 16-byte header; on success fills type/length.  Rejects bad
/// magic/version and length > kMaxPayload.
bool parse_header(const unsigned char header[kHeaderBytes], FrameType* type,
                  std::uint32_t* length, std::string* error);

/// Blocking full-frame read from a socket/pipe fd.  Returns false on EOF
/// before the first header byte (clean close: *error stays empty) and on
/// any malformed or truncated frame (*error says why).
bool read_frame(int fd, Frame* frame, std::string* error);

/// Blocking full write; false + error on a closed/failed peer.
bool write_frame(int fd, const Frame& frame, std::string* error);

// --- Request/response documents -----------------------------------------

/// One experiment cell.  `config` is the textual key=value dialect of
/// multicore/config_apply.h (the same keys mapg_sim accepts); the trace
/// seed rides in config["seed"].  The workload must name a builtin profile.
struct CellRequest {
  std::map<std::string, std::string> config;
  std::string workload;
  std::string policy = "none";
};

/// A (workload x policy x seed) grid over one base config — the wire form
/// of exec's SweepSpec (no variants axis: variants are client-side sugar
/// for distinct configs).  Cells expand workload-outer / policy-mid /
/// seed-inner, matching ExperimentEngine::expand.
struct SweepRequest {
  std::map<std::string, std::string> config;
  std::vector<std::string> workloads;
  std::vector<std::string> policies;
  unsigned seeds = 1;
};

Json cell_request_json(const CellRequest& req);
Json sweep_request_json(const SweepRequest& req);
bool parse_cell_request(const Json& doc, CellRequest* req,
                        std::string* error);
bool parse_sweep_request(const Json& doc, SweepRequest* req,
                         std::string* error);

/// {"error": text} for kReplyError payloads.
std::string error_payload(const std::string& text);

}  // namespace mapg::serve
