#include "serve/tiered.h"

#include <chrono>
#include <utility>

#include "exec/serialize.h"
#include "obs/obs.h"

namespace mapg::serve {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kHot: return "hot";
    case Tier::kCache: return "cache";
    case Tier::kReplay: return "replay";
    case Tier::kCompute: return "compute";
    case Tier::kCoalesced: return "coalesced";
    case Tier::kError: return "error";
  }
  return "unknown";
}

TieredExecutor::TieredExecutor(ExperimentEngine& engine,
                               TieredOptions options)
    : engine_(engine), options_(options), hot_(options.hot_entries) {
  // Pre-register the serve counter set (same rationale as the engine's:
  // every snapshot carries the full set, zeros included).
  MAPG_OBS_ONLY({
    auto& reg = obs::MetricsRegistry::instance();
    for (const char* name :
         {"serve.cells", "serve.coalesced", "serve.hit.hot",
          "serve.hit.cache", "serve.hit.replay", "serve.compute",
          "serve.errors", "serve.timeline.recorded",
          "serve.timeline.reused", "serve.replay.fallbacks",
          "serve.replay.prefix_resumes"})
      reg.counter(name);
  })
}

ServeStats TieredExecutor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t TieredExecutor::timelines_cached() const {
  std::lock_guard<std::mutex> lk(mu_);
  return timeline_lru_.size();
}

TieredExecutor::TimelinePtr TieredExecutor::timeline_get(
    const std::string& ref_key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = timeline_index_.find(ref_key);
  if (it == timeline_index_.end()) return nullptr;
  timeline_lru_.splice(timeline_lru_.begin(), timeline_lru_, it->second);
  return it->second->second;
}

void TieredExecutor::timeline_put(const std::string& ref_key,
                                  TimelinePtr timeline) {
  if (options_.timeline_entries == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = timeline_index_.find(ref_key);
  if (it != timeline_index_.end()) {
    it->second->second = std::move(timeline);
    timeline_lru_.splice(timeline_lru_.begin(), timeline_lru_, it->second);
    return;
  }
  timeline_lru_.emplace_front(ref_key, std::move(timeline));
  timeline_index_[ref_key] = timeline_lru_.begin();
  if (timeline_lru_.size() > options_.timeline_entries) {
    timeline_index_.erase(timeline_lru_.back().first);
    timeline_lru_.pop_back();
  }
}

TieredExecutor::TimelinePtr TieredExecutor::ensure_timeline(
    const ExperimentJob& group_job, const std::string& ref_key) {
  if (!engine_.options().use_replay) return nullptr;
  if (TimelinePtr cached = timeline_get(ref_key)) return cached;
  TimelinePtr timeline;
  try {
    timeline = std::make_shared<const StallTimeline>(
        record_timeline(group_job.config, group_job.profile));
  } catch (...) {
    // A config the simulator rejects: per-cell direct execution reproduces
    // the exact error, so recording failure is silent here.
    return nullptr;
  }
  // The recording run IS the group's `none` cell; publish it so that cell
  // (and any later request for it) is a cache hit, exactly like
  // ExperimentEngine::run_group does.
  engine_.cache().store(ref_key, SimResult(*timeline->reference));
  timeline_put(ref_key, timeline);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.timelines_recorded;
  }
  MAPG_OBS_COUNTER_INC("serve.timeline.recorded");
  return timeline;
}

ServeOutcome TieredExecutor::resolve(const ExperimentJob& job,
                                     const std::string& key) {
  ServeOutcome out;
  if (std::shared_ptr<const SimResult> hit = engine_.cache().get(key)) {
    out.job.result = std::move(hit);
    out.job.ok = true;
    out.job.from_cache = true;
    out.tier = Tier::kCache;
    return out;
  }

  // Between the engine cache and a fresh simulation: a reference timeline
  // for this cell's (config, workload, seed) group may already be cached
  // from an earlier request.
  if (engine_.options().use_replay) {
    const std::string ref_key =
        cache_key(job.config, job.profile, "none");
    if (TimelinePtr timeline = timeline_get(ref_key)) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.timelines_reused;
      }
      MAPG_OBS_COUNTER_INC("serve.timeline.reused");
      const double t0 = now_ms();
      if (job.policy_spec == "none") {
        out.job.result =
            engine_.cache().store(key, SimResult(*timeline->reference));
        out.job.ok = true;
        out.job.from_replay = true;
        out.job.wall_ms = now_ms() - t0;
        out.tier = Tier::kReplay;
        return out;
      }
      ReplayOutcome replayed;
      bool replay_threw = false;
      try {
        replayed = replay_policy(*timeline, job.policy_spec);
      } catch (...) {
        replay_threw = true;  // bad spec — the direct path reports it
      }
      if (replayed.ok) {
        out.job.result =
            engine_.cache().store(key, std::move(replayed.result));
        out.job.ok = true;
        out.job.from_replay = true;
        out.job.wall_ms = now_ms() - t0;
        out.tier = Tier::kReplay;
        return out;
      }
      // Penalized window: resume direct simulation from the latest
      // checkpoint before it (replay/checkpoint.h) when one exists.
      if (!replay_threw && !timeline->checkpoints.empty() &&
          replayed.windows > 0) {
        ResumeOutcome resumed =
            resume_policy(*timeline, job.policy_spec, replayed.windows - 1);
        if (resumed.ok) {
          {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.replay_prefix_resumes;
          }
          MAPG_OBS_COUNTER_INC("serve.replay.prefix_resumes");
          out.job.result =
              engine_.cache().store(key, std::move(resumed.result));
          out.job.ok = true;
          out.job.from_resume = true;
          out.job.wall_ms = now_ms() - t0;
          out.tier = Tier::kCompute;  // a (shortened) simulation, not a replay
          return out;
        }
      }
      if (!replay_threw) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          ++stats_.replay_fallbacks;
        }
        MAPG_OBS_COUNTER_INC("serve.replay.fallbacks");
      }
      // Full fallback (or bad spec): direct simulation from cycle 0 over
      // the shared trace buffer — bit-identical to a generator-fed run.
      out.job = engine_.run_one_traced(job, timeline->record.trace);
      out.tier = out.job.ok ? Tier::kCompute : Tier::kError;
      return out;
    }
  }

  out.job = engine_.run_one(job);
  if (!out.job.ok)
    out.tier = Tier::kError;
  else if (out.job.from_cache)
    out.tier = Tier::kCache;  // raced with a concurrent store
  else
    out.tier = Tier::kCompute;
  return out;
}

ServeOutcome TieredExecutor::run_cell(const ExperimentJob& job) {
  const std::string key =
      cache_key(job.config, job.profile, job.policy_spec);

  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.cells;
  }
  MAPG_OBS_COUNTER_INC("serve.cells");

  if (std::shared_ptr<const SimResult> hit = hot_.get(key)) {
    ServeOutcome out;
    out.job.result = std::move(hit);
    out.job.ok = true;
    out.job.from_cache = true;
    out.tier = Tier::kHot;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.hot_hits;
    }
    MAPG_OBS_COUNTER_INC("serve.hit.hot");
    return out;
  }

  ServeOutcome leader_out;
  bool coalesced = false;
  JobOutcome job_out = coalescer_.run(
      key, [&] {
        leader_out = resolve(job, key);
        return leader_out.job;
      },
      &coalesced);

  ServeOutcome out;
  out.job = std::move(job_out);
  if (!out.job.ok)
    out.tier = Tier::kError;
  else if (coalesced)
    out.tier = Tier::kCoalesced;
  else
    out.tier = leader_out.tier;

  if (out.job.ok) hot_.put(key, out.job.result);

  {
    std::lock_guard<std::mutex> lk(mu_);
    switch (out.tier) {
      case Tier::kCache: ++stats_.cache_hits; break;
      case Tier::kReplay: ++stats_.replayed; break;
      case Tier::kCompute: ++stats_.computed; break;
      case Tier::kCoalesced: ++stats_.coalesced; break;
      case Tier::kError: ++stats_.errors; break;
      case Tier::kHot: break;  // handled above
    }
  }
  MAPG_OBS_ONLY(switch (out.tier) {
    case Tier::kCache: MAPG_OBS_COUNTER_INC("serve.hit.cache"); break;
    case Tier::kReplay: MAPG_OBS_COUNTER_INC("serve.hit.replay"); break;
    case Tier::kCompute: MAPG_OBS_COUNTER_INC("serve.compute"); break;
    case Tier::kCoalesced: MAPG_OBS_COUNTER_INC("serve.coalesced"); break;
    case Tier::kError: MAPG_OBS_COUNTER_INC("serve.errors"); break;
    case Tier::kHot: break;
  })
  return out;
}

std::vector<ServeOutcome> TieredExecutor::run_cells(
    const std::vector<ExperimentJob>& jobs, std::size_t n_workloads,
    std::size_t n_policies, std::size_t n_seeds) {
  std::vector<ServeOutcome> outcomes(jobs.size());
  if (jobs.size() != n_workloads * n_policies * n_seeds) {
    // Shape mismatch is a server-side programming error; resolve cells
    // individually rather than guessing at groups.
    for (std::size_t i = 0; i < jobs.size(); ++i)
      outcomes[i] = run_cell(jobs[i]);
    return outcomes;
  }

  for (std::size_t wi = 0; wi < n_workloads; ++wi) {
    for (std::size_t si = 0; si < n_seeds; ++si) {
      // The (workload, seed) group shares one reference timeline across
      // its policy axis (expansion index (wi * n_policies + pi) * n_seeds
      // + si).  Recording costs one full `none` simulation, so it only
      // happens when >= 2 group cells would otherwise simulate.
      if (n_policies >= 2 && engine_.options().use_replay) {
        std::size_t would_compute = 0;
        for (std::size_t pi = 0; pi < n_policies; ++pi) {
          const ExperimentJob& job =
              jobs[(wi * n_policies + pi) * n_seeds + si];
          const std::string key =
              cache_key(job.config, job.profile, job.policy_spec);
          if (hot_.peek(key) == nullptr &&
              engine_.cache().get(key) == nullptr)
            ++would_compute;
        }
        if (would_compute >= 2) {
          const ExperimentJob& first = jobs[(wi * n_policies) * n_seeds + si];
          ensure_timeline(first,
                          cache_key(first.config, first.profile, "none"));
        }
      }
      for (std::size_t pi = 0; pi < n_policies; ++pi) {
        const std::size_t i = (wi * n_policies + pi) * n_seeds + si;
        outcomes[i] = run_cell(jobs[i]);
      }
    }
  }
  return outcomes;
}

}  // namespace mapg::serve
