// In-memory hot tier: LRU-bounded shared_ptr results.
//
// The engine's ResultCache memory tier is unbounded by design — a batch
// sweep touches each key once and exits.  A resident server does neither:
// it lives for days and its working set follows request traffic, so the
// hot tier must be bounded (LRU) and sit IN FRONT of the engine cache.  A
// hot hit costs one mutex + map lookup and never touches the engine, the
// disk, or the coalescer; an eviction costs nothing but the map entry,
// because results are shared_ptr — in-flight responses keep theirs alive,
// and a re-miss falls through to the engine's memory/disk tiers.
//
// Thread-safe; sized in entries (a SimResult is a few KB, so the default
// 4096 entries ~ tens of MB).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/sim.h"

namespace mapg::serve {

struct HotCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

class HotCache {
 public:
  /// `capacity` == 0 disables the tier (every get misses, puts are dropped).
  explicit HotCache(std::size_t capacity);

  /// Look up and touch (move to most-recent); nullptr on miss.
  std::shared_ptr<const SimResult> get(const std::string& key);

  /// Stats-neutral, recency-neutral lookup (group planning probes).
  std::shared_ptr<const SimResult> peek(const std::string& key) const;

  /// Insert or refresh; evicts the least-recently-used entry past capacity.
  void put(const std::string& key, std::shared_ptr<const SimResult> result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  HotCacheStats stats() const;

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const SimResult>>>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recent
  std::map<std::string, LruList::iterator> index_;
  HotCacheStats stats_;
};

}  // namespace mapg::serve
