// Client library for the resident experiment server (docs/SERVE.md).
//
// A ServeClient owns one TCP connection and speaks the length-prefixed
// frame protocol (serve/protocol.h).  The server answers a connection's
// requests strictly in request order, which gives two usage modes:
//
//   * one-shot RPCs — ping() / cell() / sweep() / stats() /
//     shutdown_server(): write one frame, read one frame;
//   * pipelining — send() K requests back-to-back, then recv() K replies.
//     The shard front and the load-generator bench use this to keep a
//     connection's full round-trip budget doing work.
//
// Not thread-safe: one connection, one thread (the load bench opens a
// client per closed-loop worker; the shard front serializes per shard).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "exec/json.h"
#include "serve/protocol.h"

namespace mapg::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  bool connect(const std::string& host, std::uint16_t port,
               std::string* error);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Round-trip an empty kPing; true on kReplyOk.
  bool ping(std::string* error);

  /// Server/engine/cache counters as a JSON document.
  std::optional<Json> stats(std::string* error);

  /// Ask the server to drain and exit; true once the server acknowledges.
  bool shutdown_server(std::string* error);

  /// Resolve one cell; returns the response document
  /// {"ok","tier","cached","replayed","result"} or nullopt + error (both
  /// transport failures and server-side kReplyError land in *error).
  std::optional<Json> cell(const CellRequest& request, std::string* error);

  /// Run a sweep; response {"cells":[...],"n_workloads",...}.
  std::optional<Json> sweep(const SweepRequest& request, std::string* error);

  // --- Pipelining primitives ---
  bool send(FrameType type, const std::string& payload, std::string* error);
  bool recv(Frame* frame, std::string* error);

 private:
  std::optional<Frame> roundtrip(FrameType type, const std::string& payload,
                                 std::string* error);
  /// kReplyOk payload parsed as JSON; kReplyError routed into *error.
  std::optional<Json> roundtrip_json(FrameType type,
                                     const std::string& payload,
                                     std::string* error);

  int fd_ = -1;
};

}  // namespace mapg::serve
