#include "serve/hot_cache.h"

namespace mapg::serve {

HotCache::HotCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const SimResult> HotCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

std::shared_ptr<const SimResult> HotCache::peek(
    const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : it->second->second;
}

void HotCache::put(const std::string& key,
                   std::shared_ptr<const SimResult> result) {
  if (capacity_ == 0 || result == nullptr) return;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result));
  index_[key] = lru_.begin();
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t HotCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

HotCacheStats HotCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace mapg::serve
