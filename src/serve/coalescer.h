// Request coalescing: identical in-flight cache keys compute once.
//
// The server's tiered lookup ends in a simulation that can take seconds.
// When N concurrent requests carry the same v4 cache key — the thundering
// herd a popular cell produces — running N identical simulations is pure
// waste: the engine's result cache would deduplicate the *next* request,
// but not the ones already past the lookup.  The coalescer closes that
// window: the first caller for a key becomes the leader and runs the
// compute; every caller that arrives while the leader is in flight blocks
// on its condition variable and receives the leader's outcome (a cheap
// copy — JobOutcome carries the result by shared_ptr).
//
// Guarantees (tests/test_serve.cpp):
//   * among concurrent callers of the same key, `compute` runs exactly once;
//   * callers of distinct keys never block each other;
//   * a leader whose compute throws still releases its followers (the
//     outcome then carries ok == false with the exception text), and the
//     key is removed so a later retry computes afresh.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exec/engine.h"

namespace mapg::serve {

class RequestCoalescer {
 public:
  /// Run `compute` for `key`, or wait for the in-flight computation of the
  /// same key and share its outcome.  `coalesced` (optional) reports
  /// whether this call waited instead of computing.
  JobOutcome run(const std::string& key,
                 const std::function<JobOutcome()>& compute,
                 bool* coalesced = nullptr);

  /// Total calls that were answered by another caller's compute.
  std::uint64_t coalesced_total() const;
  /// Keys currently computing (for the serve.inflight gauge).
  std::size_t inflight() const;

 private:
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    JobOutcome outcome;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::uint64_t coalesced_ = 0;
};

}  // namespace mapg::serve
