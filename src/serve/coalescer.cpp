#include "serve/coalescer.h"

namespace mapg::serve {

JobOutcome RequestCoalescer::run(const std::string& key,
                                 const std::function<JobOutcome()>& compute,
                                 bool* coalesced) {
  std::shared_ptr<Inflight> entry;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      entry = std::make_shared<Inflight>();
      inflight_.emplace(key, entry);
      leader = true;
    } else {
      entry = it->second;
      ++coalesced_;
    }
  }
  if (coalesced) *coalesced = !leader;

  if (!leader) {
    std::unique_lock<std::mutex> lk(entry->mu);
    entry->cv.wait(lk, [&] { return entry->done; });
    return entry->outcome;
  }

  JobOutcome out;
  try {
    out = compute();
  } catch (const std::exception& e) {
    out = JobOutcome{};
    out.error = e.what();
  } catch (...) {
    out = JobOutcome{};
    out.error = "unknown exception in coalesced compute";
  }
  {
    // Unpublish first so a caller arriving after `done` flips starts a
    // fresh computation instead of racing the notification.
    std::lock_guard<std::mutex> lk(mu_);
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lk(entry->mu);
    entry->outcome = out;
    entry->done = true;
  }
  entry->cv.notify_all();
  return out;
}

std::uint64_t RequestCoalescer::coalesced_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return coalesced_;
}

std::size_t RequestCoalescer::inflight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inflight_.size();
}

}  // namespace mapg::serve
