// Tiered cell resolution for the resident server (docs/SERVE.md).
//
// Every request cell funnels through one path:
//
//   hot LRU  ->  engine ResultCache (memory, then disk)  ->  replay from a
//   cached reference timeline  ->  compute (ExperimentEngine)
//
// with request coalescing wrapped around everything below the hot tier, so
// N concurrent identical keys cost one computation, and a timeline cache
// that persists ACROSS requests: a sweep records one `none` reference per
// (config, workload, seed) group (exactly like ExperimentEngine::run_sweep
// does within a batch), keeps it in a small LRU, and any later request
// whose cell belongs to the same group — tomorrow's query for a new policy
// on a known platform — replays instead of simulating.  Cells whose replay
// hits a penalized window resume direct simulation from the timeline's
// latest architectural checkpoint before that window (replay/checkpoint.h),
// falling back to a from-zero run over the shared trace buffer
// (exec::run_one_traced) when no checkpoint is eligible — either way
// preserving the bit-identity contract: every tier returns the same bytes a
// batch ExperimentEngine run would (tests/test_serve.cpp, CI serve smoke).
//
// Thread-safe; shared by all server connections.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "replay/replay.h"
#include "serve/coalescer.h"
#include "serve/hot_cache.h"

namespace mapg::serve {

enum class Tier : std::uint8_t {
  kHot,        ///< serve-layer LRU hit
  kCache,      ///< engine ResultCache hit (memory or disk)
  kReplay,     ///< reconstituted from a cached reference timeline
  kCompute,    ///< simulated (includes replay fallbacks)
  kCoalesced,  ///< shared another caller's in-flight computation
  kError,      ///< job failed; outcome.error says why
};

/// Wire name ("hot", "cache", "replay", "compute", "coalesced", "error").
const char* tier_name(Tier tier);

struct ServeOutcome {
  JobOutcome job;
  Tier tier = Tier::kError;
};

struct ServeStats {
  std::uint64_t cells = 0;
  std::uint64_t hot_hits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t replayed = 0;
  std::uint64_t computed = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t errors = 0;
  std::uint64_t timelines_recorded = 0;
  std::uint64_t timelines_reused = 0;
  /// Replays abandoned on a penalized window that fell back to a FULL
  /// direct simulation from cycle 0.
  std::uint64_t replay_fallbacks = 0;
  /// Replays abandoned on a penalized window that instead resumed direct
  /// simulation from an architectural checkpoint (replay/checkpoint.h).
  std::uint64_t replay_prefix_resumes = 0;
};

struct TieredOptions {
  /// Hot-tier entries (results, a few KB each); 0 disables the tier.
  std::size_t hot_entries = 4096;
  /// Reference timelines kept across requests.  Timelines are the
  /// expensive tier to hold (each owns the materialized trace, ~20 bytes
  /// per instruction), so the default is small.
  std::size_t timeline_entries = 8;
};

class TieredExecutor {
 public:
  TieredExecutor(ExperimentEngine& engine, TieredOptions options = {});

  /// Resolve one cell through the full tier path.
  ServeOutcome run_cell(const ExperimentJob& job);

  /// Resolve a sweep expansion (workload-outer / policy-mid / seed-inner
  /// over one base config, ExperimentEngine::expand order).  Groups cells
  /// by (workload, seed); any group about to compute >= 2 cells records
  /// its reference timeline first so the policy axis replays — the serve
  /// counterpart of ExperimentEngine::run_sweep's record-once path.
  std::vector<ServeOutcome> run_cells(const std::vector<ExperimentJob>& jobs,
                                      std::size_t n_workloads,
                                      std::size_t n_policies,
                                      std::size_t n_seeds);

  ServeStats stats() const;
  ExperimentEngine& engine() { return engine_; }
  const HotCache& hot_cache() const { return hot_; }
  std::size_t timelines_cached() const;

 private:
  using TimelinePtr = std::shared_ptr<const StallTimeline>;

  /// Timeline LRU lookup by the group's reference key
  /// (cache_key(config, profile, "none")).
  TimelinePtr timeline_get(const std::string& ref_key);
  void timeline_put(const std::string& ref_key, TimelinePtr timeline);

  /// Record (or fetch) the reference timeline for a group; nullptr when
  /// recording fails or replay is disabled.  Also publishes the reference
  /// result under `ref_key` so the group's `none` cell is a cache hit.
  TimelinePtr ensure_timeline(const ExperimentJob& group_job,
                              const std::string& ref_key);

  /// The below-hot-tier path run by the coalescing leader.
  ServeOutcome resolve(const ExperimentJob& job, const std::string& key);

  ExperimentEngine& engine_;
  const TieredOptions options_;
  HotCache hot_;
  RequestCoalescer coalescer_;

  mutable std::mutex mu_;  ///< guards stats_ and the timeline LRU
  ServeStats stats_;
  std::list<std::pair<std::string, TimelinePtr>> timeline_lru_;
  std::map<std::string,
           std::list<std::pair<std::string, TimelinePtr>>::iterator>
      timeline_index_;
};

}  // namespace mapg::serve
