// ServeServer: the resident experiment server (docs/SERVE.md).
//
// One process, one listening TCP socket, one ExperimentEngine.  An accept
// loop hands each connection to a reader thread; every request the reader
// parses is assigned a per-connection sequence number and fed to the
// engine's ThreadPool (exec::submit_detached), so simulation work from all
// connections shares one bounded worker set — `--jobs` is the server's
// whole compute budget.  A per-connection sequencer writes responses back
// in request order regardless of which worker finished first, which is
// what makes client-side pipelining (serve/client.h) legal.
//
// Cells resolve through the TieredExecutor: hot LRU -> engine result cache
// -> cached-timeline replay -> compute, with request coalescing across
// connections (serve/tiered.h).  Responses are byte-identical to a batch
// ExperimentEngine run of the same cells — the contract tests/test_serve.cpp
// and the CI serve smoke assert.
//
// Shard-front mode: constructed with a non-empty `shards` list, the server
// computes each cell's v4 cache key, forwards it to the owning worker
// (consistent slot: first 64 key bits mod N, pipelined per shard) and
// reassembles the sweep response — no local simulation.  See docs/SERVE.md
// §Sharding.
//
// Lifecycle: start() binds and returns; wait() blocks until a kShutdown
// request (or stop()); stop() closes the listen socket, wakes every
// connection, drains in-flight work, and joins.  SIGTERM handling lives in
// tools/mapg_served.cpp (self-pipe), not here — the library stays
// signal-free for in-process embedding (tests, load bench).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/tiered.h"

namespace mapg::serve {

struct ServerOptions {
  std::string bind_addr = "127.0.0.1";
  /// 0 = ephemeral; the bound port is ServeServer::port() after start().
  std::uint16_t port = 0;
  /// Engine knobs: jobs (the server's compute budget), cache_dir (the
  /// content-addressed disk tier), use_replay.
  ExecOptions exec;
  TieredOptions tiered;
  /// Non-empty => shard-front mode: forward cells to these "host:port"
  /// workers by key instead of simulating locally.
  std::vector<std::string> shards;
  int listen_backlog = 64;
};

/// Consistent shard slot for a v4 cache key: its first 64 bits mod n.
std::size_t shard_of(const std::string& cache_key, std::size_t n_shards);

class ServeServer {
 public:
  explicit ServeServer(ServerOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Bind + listen + start accepting.  False + *error on failure.
  bool start(std::string* error);

  /// Block until a client sends kShutdown or stop() is called.
  void wait();

  /// Stop accepting, wake all connections, drain in-flight requests, join.
  /// Idempotent; called by the destructor.
  void stop();

  std::uint16_t port() const { return port_; }
  bool shard_front() const { return !options_.shards.empty(); }

  ExperimentEngine& engine() { return *engine_; }
  TieredExecutor& tiered() { return *tiered_; }
  std::uint64_t requests_served() const { return requests_.load(); }

 private:
  /// Per-connection state shared by the reader thread and pool tasks.
  struct Conn {
    int fd = -1;
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t next_write = 0;  ///< next sequence number to write
    std::map<std::uint64_t, Frame> ready;  ///< finished, awaiting their turn
    std::uint64_t outstanding = 0;  ///< assigned but not yet written
    bool broken = false;            ///< write failed; drop, don't write
  };

  /// One downstream worker in shard-front mode; the mutex serializes the
  /// pipelined batches of concurrent requests.
  struct Shard {
    std::string host;
    std::uint16_t port = 0;
    std::mutex mu;
    ServeClient client;
  };

  void accept_loop();
  void handle_connection(std::shared_ptr<Conn> conn);
  /// Publish `reply` as response `seq` on `conn`; writes every
  /// consecutively-ready response in order.
  void deliver(const std::shared_ptr<Conn>& conn, std::uint64_t seq,
               Frame reply);

  Frame process(const Frame& request);  ///< everything except shutdown
  Frame handle_cell(const std::string& payload);
  Frame handle_sweep(const std::string& payload);
  Frame handle_stats();

  Frame forward_cell(const CellRequest& request);
  Frame forward_sweep(const SweepRequest& request);
  /// Forward one batch of (index, request) cells to shard `si`; fills
  /// `responses[index]` per cell (error documents on transport failure).
  void forward_batch(
      std::size_t si,
      const std::vector<std::pair<std::size_t, CellRequest>>& cells,
      std::vector<Json>& responses);

  ServerOptions options_;
  std::unique_ptr<ExperimentEngine> engine_;
  std::unique_ptr<TieredExecutor> tiered_;
  std::vector<std::unique_ptr<Shard>> shards_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable state_cv_;
  std::set<std::shared_ptr<Conn>> conns_;
  std::size_t active_conns_ = 0;
  bool started_ = false;
  bool stopping_ = false;
  bool shutdown_requested_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::int64_t> queue_depth_{0};
};

}  // namespace mapg::serve
