// Report sinks for the observability layer: metrics as JSON or as an
// aligned human-readable table, and trace finalization/writing.  These are
// the cold end of the pipeline — tools/benches call them once per process
// (`--metrics-out`, `--print-metrics`, `--trace-out`).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace mapg::obs {

/// `{"counters":{...},"gauges":{...},"histograms":{...}}` — keys sorted,
/// integers exact, parseable by exec/json.h (tests verify the round trip).
std::string metrics_json(const MetricsSnapshot& snapshot);

/// metrics_json of the live registry.
std::string metrics_json_string();

/// Write metrics_json_string() to `path`; false + warning log on failure.
bool write_metrics_file(const std::string& path);

/// Sorted, aligned `metric | type | value | details` table (the
/// `mapg_sim --print-metrics` output).
void print_metrics_table(std::ostream& os, const MetricsSnapshot& snapshot);
void print_metrics_table(std::ostream& os);

/// Append one counter ('C') trace event per registry counter — a final
/// sample so counter tracks (cache hits/misses, job totals) exist even for
/// runs whose hot loop emitted none — then write the Chrome trace JSON to
/// `path`.  False + warning log on failure.
bool finalize_and_write_trace(const std::string& path);

}  // namespace mapg::obs
