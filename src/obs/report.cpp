#include "obs/report.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/log.h"
#include "common/table.h"
#include "obs/event_tracer.h"
#include "obs/obs.h"

namespace mapg::obs {

namespace {

std::string u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string i64(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string hist_json(const HistogramSnapshot& h) {
  std::string out = "{\"count\":" + u64(h.count) + ",\"sum\":" + u64(h.sum) +
                    ",\"min\":" + u64(h.min) + ",\"max\":" + u64(h.max);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", h.mean());
  out += ",\"mean\":";
  out += buf;
  out += ",\"p50\":" + u64(h.quantile(0.5)) + ",\"p95\":" +
         u64(h.quantile(0.95));
  // Non-empty buckets only, as [lo, count] pairs — compact and lossless
  // given the fixed log2 layout.
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[' + u64(hist_bucket_lo(i)) + ',' + u64(h.buckets[i]) + ']';
  }
  out += "]}";
  return out;
}

/// Human-readable ns: raw below 10us, else us/ms/s with 2 decimals.
std::string fmt_ns(double ns) {
  char buf[32];
  if (ns < 10e3)
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  else if (ns < 10e6)
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  else if (ns < 10e9)
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  else
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  return buf;
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& s) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ":" + u64(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ":" + i64(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ":" + hist_json(h);
  }
  out += "}}";
  return out;
}

std::string metrics_json_string() {
  return metrics_json(MetricsRegistry::instance().snapshot());
}

bool write_metrics_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    log_warn() << "obs: cannot write metrics file '" << path << "'";
    return false;
  }
  os << metrics_json_string() << "\n";
  return os.good();
}

void print_metrics_table(std::ostream& os, const MetricsSnapshot& s) {
  Table t({"metric", "type", "value", "details"});
  // Merge the three sorted kind lists back into one name-sorted table.
  std::size_t ci = 0, gi = 0, hi = 0;
  auto next_name = [&]() -> const std::string* {
    const std::string* best = nullptr;
    if (ci < s.counters.size()) best = &s.counters[ci].first;
    if (gi < s.gauges.size() &&
        (best == nullptr || s.gauges[gi].first < *best))
      best = &s.gauges[gi].first;
    if (hi < s.histograms.size() &&
        (best == nullptr || s.histograms[hi].first < *best))
      best = &s.histograms[hi].first;
    return best;
  };
  while (const std::string* name = next_name()) {
    if (ci < s.counters.size() && &s.counters[ci].first == name) {
      t.begin_row().cell(*name).cell("counter").cell(s.counters[ci].second)
          .cell("");
      ++ci;
    } else if (gi < s.gauges.size() && &s.gauges[gi].first == name) {
      t.begin_row().cell(*name).cell("gauge").cell(s.gauges[gi].second)
          .cell("");
      ++gi;
    } else {
      const HistogramSnapshot& h = s.histograms[hi].second;
      t.begin_row()
          .cell(*name)
          .cell("histogram")
          .cell(h.count)
          .cell("mean=" + fmt_ns(h.mean()) + " p50=" +
                fmt_ns(static_cast<double>(h.quantile(0.5))) + " p95=" +
                fmt_ns(static_cast<double>(h.quantile(0.95))) + " max=" +
                fmt_ns(static_cast<double>(h.max)));
      ++hi;
    }
  }
  if (t.rows() == 0) {
    os << "(no metrics recorded"
       << (kCompiledIn ? ")" : "; built with MAPG_OBS=OFF)") << "\n";
    return;
  }
  t.print(os);
}

void print_metrics_table(std::ostream& os) {
  print_metrics_table(os, MetricsRegistry::instance().snapshot());
}

bool finalize_and_write_trace(const std::string& path) {
  EventTracer& tracer = EventTracer::instance();
  if (tracer.enabled()) {
    const MetricsSnapshot s = MetricsRegistry::instance().snapshot();
    for (const auto& [name, v] : s.counters)
      tracer.counter(name, TraceArgs().add("value", v).json());
  }
  return tracer.write_file(path);
}

}  // namespace mapg::obs
