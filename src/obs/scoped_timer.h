// ScopedTimer: RAII wall-clock span.  On destruction it records the elapsed
// nanoseconds into a histogram metric (when given one) and, if the tracer is
// active, emits a complete ('X') event on the calling thread's track.
//
// Prefer the MAPG_OBS_SCOPED_TIMER macro (obs/obs.h): it resolves the
// histogram once per call site and vanishes entirely in MAPG_OBS=OFF builds.
#pragma once

#include <chrono>

#include "obs/event_tracer.h"
#include "obs/metrics.h"

namespace mapg::obs {

class ScopedTimer {
 public:
  /// `hist` may be null (trace-only span).  `name`/`cat` label the trace
  /// event and must outlive the timer (string literals at macro sites).
  ScopedTimer(HistogramMetric* hist, const char* name, const char* cat)
      : hist_(hist),
        name_(name),
        cat_(cat),
        tracing_(EventTracer::instance().enabled()),
        trace_ts_(tracing_ ? EventTracer::instance().now_ns() : 0),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (hist_ != nullptr) hist_->record(ns);
    if (tracing_)
      EventTracer::instance().complete(name_, cat_, trace_ts_, ns);
  }

 private:
  HistogramMetric* hist_;
  const char* name_;
  const char* cat_;
  bool tracing_;
  std::uint64_t trace_ts_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mapg::obs
