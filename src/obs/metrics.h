// MetricsRegistry: named counters / gauges / histograms for the whole stack.
//
// Design constraints (docs/OBSERVABILITY.md is the user-facing contract):
//
//  * Hot-path writes are lock-free and contention-free: every metric is
//    sharded across kShards cache-line-aligned slots, each thread writes the
//    slot picked by its stable thread index with relaxed atomics, and shards
//    are merged only at snapshot/report time.  An increment is one relaxed
//    fetch_add on a line no other running thread touches.
//  * Registration is cold: call sites obtain a stable `Counter&` once
//    (the MAPG_OBS_* macros cache it in a function-local static) and never
//    take the registry lock again.  Metrics are never removed, so references
//    stay valid for the process lifetime; reset_values() zeroes values
//    without invalidating them (tests rely on this).
//  * This library compiles identically whether or not instrumentation is
//    enabled; the MAPG_OBS=OFF build simply compiles no call sites (see
//    obs/obs.h), so the layer costs nothing when disabled.
//
// Layering: obs sits beside common at the bottom of the stack (it depends
// only on mapg_common) so every subsystem — pg, core, exec, tools — may
// instrument itself without cycles.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mapg::obs {

/// Shards per metric.  More shards = less false sharing under heavy
/// multi-thread write load; 16 covers the engine's default worker counts.
inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index, assigned round-robin on first use.
inline std::size_t shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    shards_[shard_slot()].v.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-written level (queue depth, bytes resident, ...).  A single atomic:
/// gauges are set at synchronization points, not in per-cycle loops.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t by) { v_.fetch_add(by, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Buckets of the fixed log2 histogram layout: bucket 0 holds exact zeros,
/// bucket i >= 1 holds [2^(i-1), 2^i).  Covers the full uint64 range so no
/// sample is ever out of range (durations in ns, cycle counts, sizes).
inline constexpr std::size_t kHistBuckets = 65;

inline std::size_t hist_bucket_of(std::uint64_t x) {
  return x == 0 ? 0 : static_cast<std::size_t>(std::bit_width(x));
}
inline std::uint64_t hist_bucket_lo(std::size_t i) {
  return i <= 1 ? 0 : std::uint64_t{1} << (i - 1);
}

/// Merged, point-in-time view of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when empty
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  /// Upper bound of the bucket containing quantile q (clamped to [min, max]).
  std::uint64_t quantile(double q) const;
};

/// Fixed-bucket log2 histogram, sharded like Counter.
class HistogramMetric {
 public:
  void record(std::uint64_t x) {
    Shard& s = shards_[shard_slot()];
    s.counts[hist_bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(x, std::memory_order_relaxed);
    std::uint64_t cur = s.min.load(std::memory_order_relaxed);
    while (x < cur && !s.min.compare_exchange_weak(
                          cur, x, std::memory_order_relaxed)) {
    }
    cur = s.max.load(std::memory_order_relaxed);
    while (x > cur && !s.max.compare_exchange_weak(
                          cur, x, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> counts{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Everything the registry knows, merged and sorted by name (std::map order).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create.  Returned references are valid for the process
  /// lifetime.  Takes a lock — resolve once per call site, not per event
  /// (the MAPG_OBS_* macros do this via function-local statics).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zero every metric's value; registered metrics (and outstanding
  /// references to them) stay valid.  For tests and repeated in-process runs.
  void reset_values();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
};

}  // namespace mapg::obs
