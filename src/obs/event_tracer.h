// EventTracer: bounded ring buffer of timeline events, emitted as Chrome
// trace-format JSON (the `traceEvents` array understood by Perfetto and
// chrome://tracing).
//
// The tracer is a process-global singleton that is OFF until start() is
// called (the `--trace-out=FILE` flag in tools/benches does this).  Every
// recording call first checks one relaxed atomic, so an idle tracer costs a
// load+branch at instrumented sites and nothing else.  When active, events
// go into a mutex-guarded ring of fixed capacity; overflow drops the OLDEST
// event and increments the `trace.dropped` counter in the MetricsRegistry,
// so a long run degrades to "most recent window" rather than unbounded
// memory or a torn file.
//
// Timestamps are nanoseconds on the steady clock, relative to start();
// write_json() converts to the microsecond floats the trace format wants.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>

namespace mapg::obs {

/// Escape + quote a string for direct inclusion in JSON output.
std::string json_quote(std::string_view s);

/// Builder for the `args` object attached to an event; values are encoded
/// eagerly so the hot path stores one ready string.
class TraceArgs {
 public:
  TraceArgs& add(std::string_view key, std::string_view value);
  TraceArgs& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  TraceArgs& add(std::string_view key, std::uint64_t value);
  TraceArgs& add(std::string_view key, std::int64_t value);
  TraceArgs& add(std::string_view key, unsigned value) {
    return add(key, std::uint64_t{value});
  }
  TraceArgs& add(std::string_view key, int value) {
    return add(key, std::int64_t{value});
  }
  TraceArgs& add(std::string_view key, double value);
  TraceArgs& add(std::string_view key, bool value);

  /// The finished JSON object text, e.g. `{"workload":"mcf-like","ok":true}`.
  std::string json() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'i';  ///< 'X' complete, 'i' instant, 'C' counter
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< complete events only
  std::uint32_t tid = 0;
  std::string args_json;  ///< empty or a JSON object text
};

class EventTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 18;  // 262144 events

  static EventTracer& instance();

  /// Enable recording with the given ring capacity; clears prior events and
  /// resets the time base.
  void start(std::size_t capacity = kDefaultCapacity);
  void stop();  ///< disable recording; buffered events stay for write_json
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since start() on the steady clock (0 when never started).
  std::uint64_t now_ns() const;

  /// A span [ts, ts+dur) on the calling thread's track ('X' event).
  void complete(std::string_view name, std::string_view cat,
                std::uint64_t ts_ns, std::uint64_t dur_ns,
                std::string args_json = {});
  /// A point-in-time marker on the calling thread's track.
  void instant(std::string_view name, std::string_view cat,
               std::string args_json = {});
  /// A counter-track sample; every numeric arg becomes one series.
  void counter(std::string_view name, std::string args_json);

  std::size_t size() const;
  std::uint64_t dropped() const;

  /// Emit `{"traceEvents":[...]}`; valid (possibly empty) JSON always.
  void write_json(std::ostream& os) const;
  /// write_json to a file; false (with a warning log) on I/O failure.
  bool write_file(const std::string& path) const;

  void clear();

 private:
  EventTracer() = default;
  void push(TraceEvent ev);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::deque<TraceEvent> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace mapg::obs
