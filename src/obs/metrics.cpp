#include "obs/metrics.h"

namespace mapg::obs {

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q <= 0.0) return min;
  const std::uint64_t target = static_cast<std::uint64_t>(
      q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    seen += buckets[i];
    if (seen > target) {
      // Upper edge of bucket i, clamped into the observed range.
      const std::uint64_t hi =
          i >= 64 ? max : (std::uint64_t{1} << i) - (i == 0 ? 0 : 1);
      return std::min(std::max(hi, min), max);
    }
  }
  return max;
}

HistogramSnapshot HistogramMetric::snapshot() const {
  HistogramSnapshot s;
  std::uint64_t min_seen = ~std::uint64_t{0};
  for (const Shard& sh : shards_) {
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      const std::uint64_t c = sh.counts[i].load(std::memory_order_relaxed);
      s.buckets[i] += c;
      s.count += c;
    }
    s.sum += sh.sum.load(std::memory_order_relaxed);
    min_seen = std::min(min_seen, sh.min.load(std::memory_order_relaxed));
    s.max = std::max(s.max, sh.max.load(std::memory_order_relaxed));
  }
  s.min = s.count ? min_seen : 0;
  return s;
}

void HistogramMetric::reset() {
  for (Shard& sh : shards_) {
    for (auto& c : sh.counts) c.store(0, std::memory_order_relaxed);
    sh.sum.store(0, std::memory_order_relaxed);
    sh.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    sh.max.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramMetric>())
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace_back(name, h->snapshot());
  return s;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

}  // namespace mapg::obs
