// Umbrella header + the instrumentation macros.
//
// Every call site in the simulator / engine / tools goes through these
// macros so the whole layer can be compiled out: configure with
// `-DMAPG_OBS=OFF` and MAPG_OBS_ENABLED becomes 0, every macro expands to
// nothing, and the instrumented hot paths are byte-identical to
// uninstrumented code.  The obs classes themselves always compile (tests
// and the CLI `--print-metrics` path use them directly either way).
//
// With MAPG_OBS=ON (the default) the cost model is:
//   * counter/gauge/histogram macros — one function-local-static lookup on
//     first execution, then one relaxed atomic op per event on a per-thread
//     shard;
//   * trace macros — one relaxed load + branch while no tracer is attached.
// That is what keeps `micro_sim_throughput` within noise of the OFF build
// (the acceptance bound in docs/OBSERVABILITY.md).
#pragma once

#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

#ifndef MAPG_OBS_ENABLED
#define MAPG_OBS_ENABLED 1
#endif

namespace mapg::obs {
/// True when this build carries instrumentation (CMake option MAPG_OBS).
inline constexpr bool kCompiledIn = MAPG_OBS_ENABLED != 0;
}  // namespace mapg::obs

#define MAPG_OBS_CONCAT_IMPL_(a, b) a##b
#define MAPG_OBS_CONCAT_(a, b) MAPG_OBS_CONCAT_IMPL_(a, b)

#if MAPG_OBS_ENABLED

/// Compile the enclosed statements only in instrumented builds.
#define MAPG_OBS_ONLY(...) __VA_ARGS__

#define MAPG_OBS_COUNTER_INC(name) MAPG_OBS_COUNTER_ADD(name, 1)

#define MAPG_OBS_COUNTER_ADD(name, by)                          \
  do {                                                          \
    static ::mapg::obs::Counter& mapg_obs_counter_ =            \
        ::mapg::obs::MetricsRegistry::instance().counter(name); \
    mapg_obs_counter_.inc(by);                                  \
  } while (0)

#define MAPG_OBS_GAUGE_SET(name, value)                       \
  do {                                                        \
    static ::mapg::obs::Gauge& mapg_obs_gauge_ =              \
        ::mapg::obs::MetricsRegistry::instance().gauge(name); \
    mapg_obs_gauge_.set(static_cast<std::int64_t>(value));    \
  } while (0)

#define MAPG_OBS_GAUGE_ADD(name, by)                          \
  do {                                                        \
    static ::mapg::obs::Gauge& mapg_obs_gauge_ =              \
        ::mapg::obs::MetricsRegistry::instance().gauge(name); \
    mapg_obs_gauge_.add(static_cast<std::int64_t>(by));       \
  } while (0)

#define MAPG_OBS_HIST_RECORD(name, value)                         \
  do {                                                            \
    static ::mapg::obs::HistogramMetric& mapg_obs_hist_ =         \
        ::mapg::obs::MetricsRegistry::instance().histogram(name); \
    mapg_obs_hist_.record(static_cast<std::uint64_t>(value));     \
  } while (0)

/// RAII span for the rest of the scope: `name` lands in the histogram
/// metric of the same name (ns) and, when tracing, as an 'X' trace event.
#define MAPG_OBS_SCOPED_TIMER(name, cat)                                     \
  static ::mapg::obs::HistogramMetric& MAPG_OBS_CONCAT_(mapg_obs_timer_h_,   \
                                                        __LINE__) =          \
      ::mapg::obs::MetricsRegistry::instance().histogram(name);              \
  ::mapg::obs::ScopedTimer MAPG_OBS_CONCAT_(mapg_obs_timer_, __LINE__)(      \
      &MAPG_OBS_CONCAT_(mapg_obs_timer_h_, __LINE__), name, cat)

#else  // !MAPG_OBS_ENABLED — every macro is a no-op; arguments are never
       // evaluated, so disabled instrumentation has zero cost.

#define MAPG_OBS_ONLY(...)
#define MAPG_OBS_COUNTER_INC(name) \
  do {                             \
  } while (0)
#define MAPG_OBS_COUNTER_ADD(name, by) \
  do {                                 \
  } while (0)
#define MAPG_OBS_GAUGE_SET(name, value) \
  do {                                  \
  } while (0)
#define MAPG_OBS_GAUGE_ADD(name, by) \
  do {                               \
  } while (0)
#define MAPG_OBS_HIST_RECORD(name, value) \
  do {                                    \
  } while (0)
#define MAPG_OBS_SCOPED_TIMER(name, cat) \
  do {                                   \
  } while (0)

#endif  // MAPG_OBS_ENABLED
