#include "obs/event_tracer.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/log.h"
#include "obs/metrics.h"

namespace mapg::obs {

namespace {

/// Sequential id per thread — compact track names instead of opaque
/// std::thread::id hashes.
std::uint32_t trace_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void TraceArgs::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += json_quote(k);
  body_ += ':';
}

TraceArgs& TraceArgs::add(std::string_view k, std::string_view value) {
  key(k);
  body_ += json_quote(value);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view k, std::uint64_t value) {
  key(k);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  body_ += buf;
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view k, std::int64_t value) {
  key(k);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  body_ += buf;
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view k, double value) {
  key(k);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  body_ += buf;
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

EventTracer& EventTracer::instance() {
  static EventTracer tracer;
  return tracer;
}

void EventTracer::start(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  dropped_ = 0;
  capacity_ = capacity > 0 ? capacity : 1;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void EventTracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

std::uint64_t EventTracer::now_ns() const {
  if (epoch_ == std::chrono::steady_clock::time_point{}) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void EventTracer::push(TraceEvent ev) {
  // Resolved once; the registry guarantees the reference stays valid.
  static Counter& dropped_counter =
      MetricsRegistry::instance().counter("trace.dropped");
  std::lock_guard<std::mutex> lk(mu_);
  ring_.push_back(std::move(ev));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
    dropped_counter.inc();
  }
}

void EventTracer::complete(std::string_view name, std::string_view cat,
                           std::uint64_t ts_ns, std::uint64_t dur_ns,
                           std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.phase = 'X';
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.tid = trace_tid();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

void EventTracer::instant(std::string_view name, std::string_view cat,
                          std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.phase = 'i';
  ev.ts_ns = now_ns();
  ev.tid = trace_tid();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

void EventTracer::counter(std::string_view name, std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = "counter";
  ev.phase = 'C';
  ev.ts_ns = now_ns();
  ev.tid = trace_tid();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

std::size_t EventTracer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

std::uint64_t EventTracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void EventTracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  dropped_ = 0;
}

void EventTracer::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& ev : ring_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(ev.name)
       << ",\"cat\":" << json_quote(ev.cat) << ",\"ph\":\"" << ev.phase
       << "\"";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ev.ts_ns) / 1000.0);
    os << ",\"ts\":" << buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      os << ",\"dur\":" << buf;
    }
    os << ",\"pid\":1,\"tid\":" << ev.tid;
    if (!ev.args_json.empty()) os << ",\"args\":" << ev.args_json;
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool EventTracer::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    log_warn() << "obs: cannot write trace file '" << path << "'";
    return false;
  }
  write_json(os);
  return os.good();
}

}  // namespace mapg::obs
