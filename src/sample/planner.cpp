#include "sample/planner.h"

#include <limits>

#include "obs/obs.h"

namespace mapg {

std::uint64_t SamplePlan::sampled_instructions() const {
  if (exhaustive) return total_instructions;
  std::uint64_t n = 0;
  for (const SampleCluster& c : clusters)
    n += regions[c.representative].length;
  return n;
}

namespace {

/// Everything downstream of the signature pass: deterministic in
/// (signatures, config) so the cached and scanned paths converge here.
SamplePlan plan_from_signatures(std::vector<RegionSignature> regions,
                                const SampleConfig& config) {
  SamplePlan plan;
  plan.config = config;
  plan.regions = std::move(regions);
  for (const RegionSignature& r : plan.regions)
    plan.total_instructions += r.length;
  MAPG_OBS_COUNTER_ADD("sim.sample.regions", plan.regions.size());
  if (plan.regions.empty()) {
    plan.exhaustive = true;
    return plan;
  }

  if (config.clusters >= plan.regions.size()) {
    // Nothing to save: every region would be its own representative.  Flag
    // exhaustive so the runner does one continuous full run — projection
    // must never cost accuracy when it saves no work.
    plan.exhaustive = true;
    plan.assignment.resize(plan.regions.size());
    plan.clusters.resize(plan.regions.size());
    for (std::size_t i = 0; i < plan.regions.size(); ++i) {
      plan.assignment[i] = i;
      plan.clusters[i].representative = i;
      plan.clusters[i].weight = 1.0;
      plan.clusters[i].members = {i};
    }
    MAPG_OBS_COUNTER_ADD("sim.sample.clusters", plan.clusters.size());
    return plan;
  }

  const KMeansResult km = kmeans_cluster(
      plan.regions, static_cast<std::size_t>(config.clusters), config.seed);
  plan.assignment = km.assignment;
  plan.clusters.resize(km.centroids.size());
  for (std::size_t i = 0; i < plan.regions.size(); ++i)
    plan.clusters[km.assignment[i]].members.push_back(i);

  for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
    SampleCluster& cl = plan.clusters[c];
    // Representative: the member closest to the centroid in the clustering
    // metric; lowest index on ties (determinism).
    double best = std::numeric_limits<double>::infinity();
    std::uint64_t cluster_len = 0;
    for (std::size_t m : cl.members) {
      cluster_len += plan.regions[m].length;
      double d = 0;
      for (std::size_t dim = 0; dim < kSignatureDims; ++dim) {
        const double t = plan.regions[m].v[dim] - km.centroids[c][dim];
        d += t * t;
      }
      if (d < best) {
        best = d;
        cl.representative = m;
      }
    }
    cl.weight = static_cast<double>(cluster_len) /
                static_cast<double>(plan.regions[cl.representative].length);
  }
  MAPG_OBS_COUNTER_ADD("sim.sample.clusters", plan.clusters.size());
  return plan;
}

}  // namespace

SamplePlan build_sample_plan(TraceSource& trace,
                             const SampleConfig& config) {
  return plan_from_signatures(
      compute_region_signatures(trace, config.region_instructions), config);
}

SamplePlan build_sample_plan(FileTraceSource& trace,
                             const SampleConfig& config) {
  constexpr std::uint64_t kLineBytes = 64;  // compute_region_signatures default
  const std::uint64_t digest = trace.info().stream_digest;
  if (!config.signature_cache.empty()) {
    if (auto cached =
            load_region_signatures(config.signature_cache, digest,
                                   config.region_instructions, kLineBytes)) {
      return plan_from_signatures(std::move(*cached), config);
    }
  }
  trace.seek(0);
  std::vector<RegionSignature> sigs =
      compute_region_signatures(trace, config.region_instructions, kLineBytes);
  if (!config.signature_cache.empty()) {
    // Best-effort refresh: a failed write costs the NEXT run a rescan, never
    // correctness — the load path re-verifies digest and slicing anyway.
    save_region_signatures(config.signature_cache, digest,
                           config.region_instructions, kLineBytes, sigs);
  }
  return plan_from_signatures(std::move(sigs), config);
}

}  // namespace mapg
