// Deterministic seeded k-means over region signatures.
//
// Sampled simulation needs the same (trace, config) to produce the same
// plan on every machine and thread count — a cached projection must never
// silently pair with a different clustering.  So: k-means++ seeding drawn
// from the repo's portable Prng (common/prng.h; no std:: distributions, no
// ambient entropy), Lloyd iterations in a fixed single-threaded order, and
// every tie broken by lowest index.  tests/test_sampling.cpp pins run-to-run
// and thread-count invariance.
#pragma once

#include <cstdint>
#include <vector>

#include "sample/signature.h"

namespace mapg {

struct KMeansResult {
  /// assignment[i] = cluster of sigs[i]; clusters are indexed 0..k-1 and
  /// every cluster is non-empty.
  std::vector<std::size_t> assignment;
  std::vector<std::array<double, kSignatureDims>> centroids;
  std::size_t iterations = 0;  ///< Lloyd iterations until convergence/cap
};

/// Cluster the signatures into min(k, sigs.size()) groups.  Deterministic
/// function of (sigs, k, seed).  Distance is squared-Euclidean for the
/// k-means objective (signature_l1 is the *plan-level* dispersion metric,
/// not the clustering metric).
KMeansResult kmeans_cluster(const std::vector<RegionSignature>& sigs,
                            std::size_t k, std::uint64_t seed,
                            std::size_t max_iterations = 64);

}  // namespace mapg
