// Per-region memory-access-vector signatures.
//
// Sampled simulation (planner.h) clusters fixed-size trace regions by
// behaviour; the signature is the feature vector that makes "behaviour"
// concrete.  Following the memory-access-vector idea (PAPERS.md,
// arXiv 2506.02344), each region is summarized by normalized histograms of
// exactly the stream properties that determine stall structure in this
// model (trace/instr.h): what the ops are, how soon loads block, where the
// addresses go, and how much of the footprint is re-touched.
//
//   dims  0..6   op-class mix        fraction of region instructions
//   dims  7..14  load dep_dist       log2 buckets (0, 1, 2-3, …, 64+),
//                                    normalized by load count
//   dims 15..23  mem-op line stride  successive line-address deltas:
//                                    {0, +1..2, +3..16, +17..256, +257+,
//                                     and the four negative mirrors},
//                                    normalized by delta count
//   dims 24..31  line reuse distance mem-ops since the line's previous
//                                    touch WITHIN the region, log2 buckets
//                                    (1, 2-3, 4-7, …, 128+), normalized by
//                                    mem-op count; first touches carry no
//                                    bucket (their mass is the remainder)
//
// Reuse state is cleared at every region boundary, so signature extraction
// streams with O(region footprint) memory and regions are position-
// independent.  Auxiliary raw counts (mem ops, distinct lines, first-touch
// fraction) ride along for the projection's dispersion model (runner.h).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace_io.h"

namespace mapg {

inline constexpr std::size_t kSignatureDims = 32;

struct RegionSignature {
  std::uint64_t start = 0;   ///< absolute instruction index of first instr
  std::uint64_t length = 0;  ///< instructions in the region
  std::array<double, kSignatureDims> v{};  ///< normalized feature vector

  // Auxiliary per-region counts for the projection dispersion model.
  std::uint64_t mem_ops = 0;
  std::uint64_t distinct_lines = 0;
  double first_touch_fraction = 0;  ///< of mem ops (cold-miss proxy)

  /// Scalar work-intensity proxy: how much distinct memory traffic the
  /// region generates per instruction.  Used by the runner's CI model to
  /// score how far a region sits from its cluster representative.
  double aux_intensity() const {
    return length == 0
               ? 0.0
               : (static_cast<double>(distinct_lines) +
                  0.1 * static_cast<double>(mem_ops) + 1.0) /
                     static_cast<double>(length);
  }
};

/// Slice `trace` (from its current position to its end) into consecutive
/// regions of `region_instructions` and compute each region's signature.
/// The final region may be short; a trailing region shorter than 1% of the
/// nominal size is merged into its predecessor so degenerate slivers never
/// become cluster representatives.  `line_bytes` sets the address
/// granularity for stride/reuse features.
std::vector<RegionSignature> compute_region_signatures(
    TraceSource& trace, std::uint64_t region_instructions,
    std::uint64_t line_bytes = 64);

/// L1 distance between two signature vectors (the clustering metric).
double signature_l1(const std::array<double, kSignatureDims>& a,
                    const std::array<double, kSignatureDims>& b);

// --- signature cache (MAPGSIG1) -------------------------------------------
//
// Signatures depend only on trace CONTENT (stream digest) and the slicing
// parameters — not on cluster count, seed, or policy — so they are computed
// once per trace and reused across every sampled run, SimPoint-BBV style.
// The cache file is little-endian binary:
//
//   offset  size  field
//   0       8     magic "MAPGSIG1"
//   8       8     u64 trace stream digest (FNV-1a64, trace_file.h)
//   16      8     u64 region_instructions
//   24      8     u64 line_bytes
//   32      8     u64 region count N
//   40      96*N  per region: u64 start, u64 length, u64 mem_ops,
//                 u64 distinct_lines, f64 first_touch_fraction,
//                 f64 v[32]  (IEEE-754 bit patterns — reload is exact)
//
// Loaders REJECT (return nullopt) on any mismatch of magic, digest, or
// slicing parameters, so a stale cache can never silently shape a plan.

/// Write `sigs` to `path`.  Returns false (with `*error` set) on I/O error.
bool save_region_signatures(const std::string& path, std::uint64_t digest,
                            std::uint64_t region_instructions,
                            std::uint64_t line_bytes,
                            const std::vector<RegionSignature>& sigs,
                            std::string* error = nullptr);

/// Load signatures from `path` if it exists and its header matches the
/// given digest and slicing parameters exactly; nullopt otherwise (missing
/// file, stale digest, different slicing, or truncation).
std::optional<std::vector<RegionSignature>> load_region_signatures(
    const std::string& path, std::uint64_t digest,
    std::uint64_t region_instructions, std::uint64_t line_bytes);

}  // namespace mapg
