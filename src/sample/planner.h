// SamplePlanner: slice a trace into regions, cluster by signature, pick
// representatives.
//
// The plan is the static half of sampled simulation (the dynamic half is
// runner.h): a deterministic function of (trace content, SampleConfig) that
// decides WHICH instruction windows get simulated and how much whole-trace
// weight each one carries.  docs/TRACE.md §Sampling derives the math;
// MODEL.md §4d states what the result does and does not claim.
//
// Degenerate guard: when the requested cluster count reaches the region
// count there is nothing to save, and approximating would only cost
// accuracy — the plan is flagged `exhaustive` and the runner simulates the
// whole trace in one continuous run (bit-identical to full simulation,
// pinned by tests/test_sampling.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sample/kmeans.h"
#include "sample/signature.h"
#include "trace/trace_file.h"

namespace mapg {

struct SampleConfig {
  /// Region granularity in instructions.
  std::uint64_t region_instructions = 1'000'000;
  /// Target number of clusters (capped at the region count).
  std::uint64_t clusters = 8;
  /// Warmup instructions simulated before each representative region
  /// (clamped to the trace prefix actually available before the region).
  std::uint64_t warmup_instructions = 200'000;
  /// Seed for k-means++ (part of the plan identity).
  std::uint64_t seed = 42;
  /// Optional signature-cache file (signature.h, MAPGSIG1).  Empty: always
  /// scan.  Non-empty (file-trace overload only): load when the header
  /// matches the trace digest + slicing exactly, else scan and refresh.
  /// The plan is byte-for-byte independent of whether the cache hit.
  std::string signature_cache;
};

struct SampleCluster {
  std::size_t representative = 0;  ///< region index
  /// Whole-trace instructions this cluster accounts for, divided by the
  /// representative's length: the factor that scales the representative's
  /// extensive metrics up to the cluster's share of the full run.
  double weight = 0;
  std::vector<std::size_t> members;  ///< region indices, ascending
};

struct SamplePlan {
  SampleConfig config;
  std::uint64_t total_instructions = 0;
  std::vector<RegionSignature> regions;
  std::vector<std::size_t> assignment;  ///< region -> cluster
  std::vector<SampleCluster> clusters;
  /// true when clusters >= regions: the runner must run the whole trace in
  /// one continuous pass instead of projecting.
  bool exhaustive = false;

  /// Instructions the runner will actually simulate (sum of representative
  /// lengths; the whole trace when exhaustive).  Warmup excluded.
  std::uint64_t sampled_instructions() const;
};

/// Build a plan from the trace's current position to its end.  Consumes the
/// trace once (signature pass); callers seek/reset before simulating.
/// `config.signature_cache` is ignored on this overload (no content digest
/// is available to key it).
SamplePlan build_sample_plan(TraceSource& trace, const SampleConfig& config);

/// File-trace overload: plans the WHOLE trace (seeks to 0 first) and honours
/// `config.signature_cache` — signatures depend only on trace content and
/// slicing, so a matching cache skips the full-trace scan entirely, which is
/// where steady-state sampled runs get their speedup (bench/micro_sampling).
SamplePlan build_sample_plan(FileTraceSource& trace,
                             const SampleConfig& config);

}  // namespace mapg
