#include "sample/signature.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iterator>

namespace mapg {
namespace {

/// Open-addressing line -> last-mem-op-index map.  The reuse-distance
/// feature touches this once per memory op, which makes it the hot path of
/// the whole signature scan; a flat linear-probe table with O(1)
/// epoch-based clearing is severalfold faster than node-based hashing and
/// is why planning a 50M-instruction trace stays in scan-bound territory.
class LineMap {
 public:
  LineMap() { rehash(1 << 12); }

  void clear() {
    size_ = 0;
    if (++epoch_ == 0) {  // epoch wrapped: invalidate every slot for real
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  std::size_t size() const { return size_; }

  /// Insert `line -> idx`; if the line was already present, store the
  /// previous index in `*prev` and return false (not a first touch).
  bool touch(std::uint64_t line, std::uint64_t idx, std::uint64_t* prev) {
    if (size_ * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
    std::size_t i = hash(line) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.key = line;
        s.val = idx;
        s.epoch = epoch_;
        ++size_;
        return true;
      }
      if (s.key == line) {
        *prev = s.val;
        s.val = idx;
        return false;
      }
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t val = 0;
    std::uint32_t epoch = 0;  ///< occupied iff == current epoch
  };

  static std::size_t hash(std::uint64_t k) {
    k *= 0x9E3779B97F4A7C15ULL;  // Fibonacci multiplier, then fold high bits
    return static_cast<std::size_t>(k ^ (k >> 32));
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    const std::uint32_t live = epoch_;
    epoch_ = 1;
    size_ = 0;
    std::uint64_t ignored;
    for (const Slot& s : old)
      if (s.epoch == live) touch(s.key, s.val, &ignored);
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;
};

constexpr std::size_t kOpBase = 0;      // 7 dims
constexpr std::size_t kDepBase = 7;     // 8 dims
constexpr std::size_t kStrideBase = 15; // 9 dims
constexpr std::size_t kReuseBase = 24;  // 8 dims

std::size_t log2_bucket(std::uint64_t value, std::size_t buckets) {
  // value >= 1 -> floor(log2(value)) clamped to the last bucket.
  std::size_t b = 0;
  while (value > 1 && b + 1 < buckets) {
    value >>= 1;
    ++b;
  }
  return b;
}

/// dep_dist buckets: 0 (no consumer in window), then log2 classes of the
/// distance (1, 2-3, 4-7, 8-15, 16-31, 32-63, 64+).
std::size_t dep_bucket(std::uint16_t dep) {
  if (dep == 0) return 0;
  return 1 + log2_bucket(dep, 7);
}

/// Stride buckets over successive mem-op line deltas: 0, then four
/// magnitude classes per direction (|d| in 1-2, 3-16, 17-256, 257+).
std::size_t stride_bucket(std::int64_t delta) {
  if (delta == 0) return 0;
  const std::uint64_t mag =
      delta > 0 ? static_cast<std::uint64_t>(delta)
                : static_cast<std::uint64_t>(-delta);
  std::size_t cls;
  if (mag <= 2)
    cls = 0;
  else if (mag <= 16)
    cls = 1;
  else if (mag <= 256)
    cls = 2;
  else
    cls = 3;
  return delta > 0 ? 1 + cls : 5 + cls;
}

/// Reuse buckets over mem-ops-since-last-touch (>= 1): log2 classes
/// (1, 2-3, 4-7, 8-15, 16-31, 32-63, 64-127, 128+).
std::size_t reuse_bucket(std::uint64_t dist) { return log2_bucket(dist, 8); }

struct RegionAccum {
  std::array<std::uint64_t, kNumOpClasses> ops{};
  std::array<std::uint64_t, 8> dep{};
  std::array<std::uint64_t, 9> stride{};
  std::array<std::uint64_t, 8> reuse{};
  std::uint64_t loads = 0, mem_ops = 0, deltas = 0, first_touches = 0;
  LineMap last_seen;  ///< line -> mem-op idx of last touch
  bool have_prev_line = false;
  std::uint64_t prev_line = 0;

  void reset() {
    ops.fill(0);
    dep.fill(0);
    stride.fill(0);
    reuse.fill(0);
    loads = mem_ops = deltas = first_touches = 0;
    last_seen.clear();
    have_prev_line = false;
    prev_line = 0;
  }

  void add(const Instr& instr, std::uint64_t line_shift) {
    ops[static_cast<std::size_t>(instr.op)]++;
    if (instr.op == OpClass::kLoad) {
      ++loads;
      dep[dep_bucket(instr.dep_dist)]++;
    }
    const bool is_mem = (instr.op == OpClass::kLoad ||
                         instr.op == OpClass::kStore) &&
                        instr.addr != kNoAddr;
    if (!is_mem) return;
    const std::uint64_t line = instr.addr >> line_shift;
    if (have_prev_line) {
      ++deltas;
      stride[stride_bucket(static_cast<std::int64_t>(line) -
                           static_cast<std::int64_t>(prev_line))]++;
    }
    prev_line = line;
    have_prev_line = true;
    std::uint64_t prev = 0;
    if (last_seen.touch(line, mem_ops, &prev)) {
      ++first_touches;
    } else {
      reuse[reuse_bucket(mem_ops - prev)]++;
    }
    ++mem_ops;
  }

  RegionSignature finish(std::uint64_t start, std::uint64_t length) const {
    RegionSignature sig;
    sig.start = start;
    sig.length = length;
    const double n = length ? static_cast<double>(length) : 1.0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(kNumOpClasses); ++i)
      sig.v[kOpBase + i] = static_cast<double>(ops[i]) / n;
    const double nl = loads ? static_cast<double>(loads) : 1.0;
    for (std::size_t i = 0; i < dep.size(); ++i)
      sig.v[kDepBase + i] = static_cast<double>(dep[i]) / nl;
    const double nd = deltas ? static_cast<double>(deltas) : 1.0;
    for (std::size_t i = 0; i < stride.size(); ++i)
      sig.v[kStrideBase + i] = static_cast<double>(stride[i]) / nd;
    const double nm = mem_ops ? static_cast<double>(mem_ops) : 1.0;
    for (std::size_t i = 0; i < reuse.size(); ++i)
      sig.v[kReuseBase + i] = static_cast<double>(reuse[i]) / nm;
    sig.mem_ops = mem_ops;
    sig.distinct_lines = last_seen.size();
    sig.first_touch_fraction =
        mem_ops ? static_cast<double>(first_touches) / nm : 0.0;
    return sig;
  }
};

}  // namespace

std::vector<RegionSignature> compute_region_signatures(
    TraceSource& trace, std::uint64_t region_instructions,
    std::uint64_t line_bytes) {
  if (region_instructions == 0) region_instructions = 1;
  std::uint64_t line_shift = 0;
  while ((1ULL << line_shift) < line_bytes) ++line_shift;

  std::vector<RegionSignature> out;
  RegionAccum acc;
  std::uint64_t region_start = 0, in_region = 0, consumed = 0;
  Instr instr;
  while (trace.next(instr)) {
    acc.add(instr, line_shift);
    ++in_region;
    ++consumed;
    if (in_region == region_instructions) {
      out.push_back(acc.finish(region_start, in_region));
      acc.reset();
      region_start = consumed;
      in_region = 0;
    }
  }
  if (in_region > 0) {
    // A trailing sliver (< 1% of nominal) would make a meaningless
    // representative; fold it into the signature of nothing rather than
    // emit it only when there is a predecessor to absorb its weight.
    if (!out.empty() && in_region < region_instructions / 100) {
      out.back().length += in_region;
    } else {
      out.push_back(acc.finish(region_start, in_region));
    }
  }
  return out;
}

double signature_l1(const std::array<double, kSignatureDims>& a,
                    const std::array<double, kSignatureDims>& b) {
  double d = 0;
  for (std::size_t i = 0; i < kSignatureDims; ++i) d += std::abs(a[i] - b[i]);
  return d;
}

namespace {

constexpr char kSigMagic[8] = {'M', 'A', 'P', 'G', 'S', 'I', 'G', '1'};

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

bool get_u64(const std::string& in, std::size_t& pos, std::uint64_t* v) {
  if (pos + 8 > in.size()) return false;
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i)
    r |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(in[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos += 8;
  *v = r;
  return true;
}

bool get_f64(const std::string& in, std::size_t& pos, double* v) {
  std::uint64_t bits;
  if (!get_u64(in, pos, &bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

}  // namespace

bool save_region_signatures(const std::string& path, std::uint64_t digest,
                            std::uint64_t region_instructions,
                            std::uint64_t line_bytes,
                            const std::vector<RegionSignature>& sigs,
                            std::string* error) {
  std::string buf;
  buf.reserve(40 + sigs.size() * (8 * 4 + 8 + kSignatureDims * 8));
  buf.append(kSigMagic, sizeof(kSigMagic));
  put_u64(buf, digest);
  put_u64(buf, region_instructions);
  put_u64(buf, line_bytes);
  put_u64(buf, sigs.size());
  for (const RegionSignature& s : sigs) {
    put_u64(buf, s.start);
    put_u64(buf, s.length);
    put_u64(buf, s.mem_ops);
    put_u64(buf, s.distinct_lines);
    put_f64(buf, s.first_touch_fraction);
    for (double d : s.v) put_f64(buf, d);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out.flush();
  if (!out) {
    if (error) *error = "cannot write signature cache '" + path + "'";
    return false;
  }
  return true;
}

std::optional<std::vector<RegionSignature>> load_region_signatures(
    const std::string& path, std::uint64_t digest,
    std::uint64_t region_instructions, std::uint64_t line_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (buf.size() < 40 ||
      std::memcmp(buf.data(), kSigMagic, sizeof(kSigMagic)) != 0)
    return std::nullopt;
  std::size_t pos = sizeof(kSigMagic);
  std::uint64_t got_digest, got_region, got_line, count;
  if (!get_u64(buf, pos, &got_digest) || !get_u64(buf, pos, &got_region) ||
      !get_u64(buf, pos, &got_line) || !get_u64(buf, pos, &count))
    return std::nullopt;
  // Any header mismatch means the cache describes a DIFFERENT slicing of a
  // DIFFERENT stream: reject, never adapt.
  if (got_digest != digest || got_region != region_instructions ||
      got_line != line_bytes)
    return std::nullopt;
  std::vector<RegionSignature> sigs;
  sigs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RegionSignature s;
    if (!get_u64(buf, pos, &s.start) || !get_u64(buf, pos, &s.length) ||
        !get_u64(buf, pos, &s.mem_ops) ||
        !get_u64(buf, pos, &s.distinct_lines) ||
        !get_f64(buf, pos, &s.first_touch_fraction))
      return std::nullopt;
    for (double& d : s.v)
      if (!get_f64(buf, pos, &d)) return std::nullopt;
    sigs.push_back(s);
  }
  if (pos != buf.size()) return std::nullopt;  // trailing garbage
  return sigs;
}

}  // namespace mapg
