#include "sample/runner.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace mapg {
namespace {

/// 95% normal quantile used for every reported interval.
constexpr double kZ95 = 1.96;

struct Extensive {
  const char* name;
  double (*get)(const SimResult&);
};

double get_cycles(const SimResult& r) {
  return static_cast<double>(r.core.cycles);
}
double get_gated(const SimResult& r) {
  return static_cast<double>(r.gating.activity.gated_cycles);
}
double get_dram_loads(const SimResult& r) {
  return static_cast<double>(r.hier.served_dram);
}
double get_energy_total(const SimResult& r) { return r.energy.total_j(); }
double get_energy_core_leak(const SimResult& r) {
  return r.energy.core_leak_j;
}

/// Extensive metrics scale with instruction count and project as weighted
/// sums; the intensive metrics users actually read (ipc, mpki, gated time
/// fraction) are derived as ratios of these below.
constexpr Extensive kExtensive[] = {
    {"cycles", get_cycles},
    {"gated_cycles", get_gated},
    {"dram_loads", get_dram_loads},
    {"energy_total_j", get_energy_total},
    {"energy_core_leak_j", get_energy_core_leak},
};

MetricEstimate make_estimate(std::string name, double value, double se) {
  MetricEstimate e;
  e.name = std::move(name);
  e.value = value;
  e.stderr_ = se;
  e.ci_lo = value - kZ95 * se;
  e.ci_hi = value + kZ95 * se;
  return e;
}

/// Ratio estimate a/b with first-order error propagation (independent
/// numerator/denominator approximation).
MetricEstimate make_ratio(std::string name, const MetricEstimate& a,
                          const MetricEstimate& b, double scale = 1.0) {
  if (b.value == 0) return make_estimate(std::move(name), 0, 0);
  const double value = scale * a.value / b.value;
  const double ra = a.value != 0 ? a.stderr_ / std::abs(a.value) : 0;
  const double rb = b.stderr_ / std::abs(b.value);
  return make_estimate(std::move(name), value,
                       std::abs(value) * std::sqrt(ra * ra + rb * rb));
}

}  // namespace

const MetricEstimate* SampledResult::find(const std::string& name) const {
  for (const MetricEstimate& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

SampledRunner::SampledRunner(const SimConfig& base, SeekableTraceSource& trace,
                             SamplePlan plan, std::string workload_name)
    : base_(base),
      trace_(trace),
      plan_(std::move(plan)),
      workload_(std::move(workload_name)) {
  timelines_.resize(plan_.exhaustive ? 1 : plan_.clusters.size());
}

const StallTimeline& SampledRunner::timeline_for(std::size_t cluster) {
  if (timelines_[cluster].has_value()) return *timelines_[cluster];

  SimConfig cfg = base_;
  if (plan_.exhaustive) {
    // One continuous cold run over the whole trace: the reference
    // semantics full simulation is compared against (warmup 0, every
    // instruction measured).
    cfg.warmup_instructions = 0;
    cfg.instructions = plan_.total_instructions;
    trace_.seek(0);
  } else {
    const RegionSignature& rep =
        plan_.regions[plan_.clusters[cluster].representative];
    const std::uint64_t warmup =
        std::min<std::uint64_t>(plan_.config.warmup_instructions, rep.start);
    cfg.warmup_instructions = warmup;
    cfg.instructions = rep.length;
    trace_.seek(rep.start - warmup);
  }
  LimitedTraceSource window(trace_,
                            cfg.warmup_instructions + cfg.instructions);
  timelines_[cluster] =
      record_timeline_traced(cfg, window, workload_);
  MAPG_OBS_COUNTER_ADD("sim.sample.simulated", cfg.instructions);
  return *timelines_[cluster];
}

SimResult SampledRunner::simulate_cell(const StallTimeline& timeline,
                                       const std::string& policy_spec) const {
  // Same tier ladder as the experiment engine's replay groups: exact replay
  // first, checkpoint prefix-resume second, direct simulation over the
  // materialized window last.  Every tier is bit-identical to direct.
  const ReplayOutcome replayed = replay_policy(timeline, policy_spec);
  if (replayed.ok) return replayed.result;
  if (!timeline.checkpoints.empty() && replayed.windows > 0) {
    const ResumeOutcome resumed =
        resume_policy(timeline, policy_spec, replayed.windows - 1);
    if (resumed.ok) return resumed.result;
  }
  SharedTraceView view(timeline.record.trace);
  return Simulator(timeline.config)
      .run(view, timeline.profile.name, policy_spec);
}

SampledResult SampledRunner::run(const std::string& policy_spec) {
  SampledResult out;
  out.workload = workload_;
  out.regions = plan_.regions.size();
  out.clusters = plan_.exhaustive ? plan_.regions.size()
                                  : plan_.clusters.size();
  out.instructions_projected = plan_.total_instructions;

  if (plan_.exhaustive) {
    const SimResult full = simulate_cell(timeline_for(0), policy_spec);
    out.policy = full.policy;
    out.exact = true;
    out.full = full;
    out.instructions_simulated = plan_.total_instructions;
    for (const Extensive& m : kExtensive)
      out.metrics.push_back(make_estimate(m.name, m.get(full), 0));
    out.metrics.push_back(
        make_estimate("instructions",
                      static_cast<double>(plan_.total_instructions), 0));
    out.metrics.push_back(make_estimate("ipc", full.ipc(), 0));
    out.metrics.push_back(make_estimate("mpki", full.mpki(), 0));
    out.metrics.push_back(make_estimate("gated_time_fraction",
                                        full.gated_time_fraction(), 0));
    MAPG_OBS_COUNTER_ADD("sim.sample.projected", plan_.total_instructions);
    return out;
  }

  // Per-cluster representative results (each bit-identical to directly
  // simulating its window).
  std::vector<SimResult> reps;
  reps.reserve(plan_.clusters.size());
  for (std::size_t c = 0; c < plan_.clusters.size(); ++c) {
    reps.push_back(simulate_cell(timeline_for(c), policy_spec));
    out.instructions_simulated +=
        plan_.regions[plan_.clusters[c].representative].length;
  }
  out.policy = reps.empty() ? policy_spec : reps.front().policy;
  out.representative_results = reps;

  // Projection + model-based dispersion.  For metric m with representative
  // value m_k: every member region r of cluster k contributes a predicted
  // share m_k * len_r / len_rep and an error term proportional to that
  // share times the region's distance from its representative (signature
  // L1 plus relative auxiliary work-intensity deviation).  The
  // representative itself contributes zero, so a plan whose clusters are
  // singletons — or whose members are signature-identical — reports a
  // zero-width interval.
  constexpr double kDispersion = 0.5;  ///< calibrated: see docs/TRACE.md
  for (const Extensive& m : kExtensive) {
    double value = 0, var = 0;
    for (std::size_t c = 0; c < plan_.clusters.size(); ++c) {
      const SampleCluster& cl = plan_.clusters[c];
      const RegionSignature& rep = plan_.regions[cl.representative];
      const double m_k = m.get(reps[c]);
      const double rep_len = static_cast<double>(rep.length);
      value += cl.weight * m_k;
      for (std::size_t r : cl.members) {
        if (r == cl.representative) continue;
        const RegionSignature& reg = plan_.regions[r];
        const double share =
            m_k * static_cast<double>(reg.length) / rep_len;
        const double aux_rep = std::max(rep.aux_intensity(), 1e-12);
        const double delta =
            std::abs(reg.aux_intensity() - aux_rep) / aux_rep +
            0.5 * signature_l1(reg.v, rep.v);
        const double err = kDispersion * share * delta;
        var += err * err;
      }
    }
    out.metrics.push_back(make_estimate(m.name, value, std::sqrt(var)));
  }
  const MetricEstimate instrs = make_estimate(
      "instructions", static_cast<double>(plan_.total_instructions), 0);
  const MetricEstimate cycles = *out.find("cycles");
  const MetricEstimate dram = *out.find("dram_loads");
  const MetricEstimate gated = *out.find("gated_cycles");
  out.metrics.push_back(instrs);
  out.metrics.push_back(make_ratio("ipc", instrs, cycles));
  out.metrics.push_back(make_ratio("mpki", dram, instrs, 1000.0));
  out.metrics.push_back(make_ratio("gated_time_fraction", gated, cycles));
  MAPG_OBS_COUNTER_ADD("sim.sample.projected", plan_.total_instructions);
  return out;
}

}  // namespace mapg
