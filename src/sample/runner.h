// SampledRunner: simulate representatives, project whole-trace results.
//
// The dynamic half of sampled simulation (the static half is planner.h).
// For every cluster representative the runner records one reference
// timeline over the representative's trace window — warmup clamped to the
// prefix available before the region — and then serves each requested
// policy through the SAME three tiers the experiment engine uses for
// generated workloads (replay exact -> checkpoint prefix-resume -> direct
// fallback over the materialized window).  Per-representative results are
// therefore bit-identical to directly simulating that window; approximation
// enters ONLY in the projection step, where extensive metrics are scaled by
// cluster weights and summed:
//
//   m_hat = sum_k w_k * m_k,   w_k = (sum_{r in k} len_r) / len_{rep_k}
//
// The confidence interval is model-based (one representative per cluster
// leaves no within-cluster samples to take a classical variance from): each
// member region contributes a deviation term proportional to its predicted
// share times how far it sits from its representative in signature space
// and auxiliary work intensity.  Zero dispersion (every member identical to
// its representative — in particular the degenerate plan) yields a
// zero-width interval; the bracket's empirical coverage is pinned by
// tests/test_sampling.cpp and its honesty limits are spelled out in
// docs/TRACE.md.
//
// Exhaustive plans short-circuit: one continuous full-trace run (warmup 0,
// all instructions measured), reported verbatim with exact == true —
// sampling must never cost accuracy when it saves no work.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "replay/replay.h"
#include "sample/planner.h"

namespace mapg {

struct MetricEstimate {
  std::string name;
  double value = 0;
  double stderr_ = 0;  ///< model-based standard error (0 => exact)
  double ci_lo = 0;    ///< value -/+ 1.96 * stderr_
  double ci_hi = 0;
};

struct SampledResult {
  std::string workload;
  std::string policy;
  /// true: `full` holds a whole-trace SimResult bit-identical to direct
  /// simulation (exhaustive plan); the metric list is derived from it with
  /// zero-width intervals.
  bool exact = false;
  std::optional<SimResult> full;
  std::vector<SimResult> representative_results;  ///< per cluster, in order
  std::vector<MetricEstimate> metrics;

  std::uint64_t regions = 0;             ///< plan regions
  std::uint64_t clusters = 0;            ///< representatives simulated
  std::uint64_t instructions_simulated = 0;  ///< measured instrs actually run
  std::uint64_t instructions_projected = 0;  ///< whole-trace instrs claimed

  const MetricEstimate* find(const std::string& name) const;
};

class SampledRunner {
 public:
  /// `base` supplies the platform (core/mem/tech/pg); its instruction and
  /// warmup counts are overridden per window.  `trace` must outlive the
  /// runner and is repositioned freely.
  SampledRunner(const SimConfig& base, SeekableTraceSource& trace,
                SamplePlan plan, std::string workload_name);

  /// Project the whole trace under one policy.  Timelines are recorded
  /// lazily on first use and shared across run() calls, so sweeping P
  /// policies costs one recording + P replays per representative.
  SampledResult run(const std::string& policy_spec);

  const SamplePlan& plan() const { return plan_; }

 private:
  const StallTimeline& timeline_for(std::size_t cluster);
  SimResult simulate_cell(const StallTimeline& timeline,
                          const std::string& policy_spec) const;

  SimConfig base_;
  SeekableTraceSource& trace_;
  SamplePlan plan_;
  std::string workload_;
  std::vector<std::optional<StallTimeline>> timelines_;  ///< per cluster
};

}  // namespace mapg
