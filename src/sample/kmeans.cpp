#include "sample/kmeans.h"

#include <limits>

#include "common/prng.h"

namespace mapg {
namespace {

double dist2(const std::array<double, kSignatureDims>& a,
             const std::array<double, kSignatureDims>& b) {
  double d = 0;
  for (std::size_t i = 0; i < kSignatureDims; ++i) {
    const double t = a[i] - b[i];
    d += t * t;
  }
  return d;
}

}  // namespace

KMeansResult kmeans_cluster(const std::vector<RegionSignature>& sigs,
                            std::size_t k, std::uint64_t seed,
                            std::size_t max_iterations) {
  KMeansResult res;
  const std::size_t n = sigs.size();
  if (n == 0) return res;
  if (k == 0) k = 1;
  if (k > n) k = n;

  // k-means++ seeding: first centroid uniform, then proportional to the
  // squared distance from the nearest chosen centroid.  The Prng draw order
  // is fixed, so the seeding is a pure function of (sigs, k, seed).
  Prng prng(seed);
  res.centroids.reserve(k);
  res.centroids.push_back(sigs[prng.below(n)].v);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (res.centroids.size() < k) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = dist2(sigs[i].v, res.centroids.back());
      if (d < d2[i]) d2[i] = d;
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total > 0) {
      double r = prng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        r -= d2[i];
        if (r <= 0) {
          chosen = i;
          break;
        }
        chosen = i;  // numeric slack: fall through to the last index
      }
    } else {
      // All remaining points coincide with a centroid; duplicates are
      // harmless (empty clusters are repaired below).
      chosen = prng.below(n);
    }
    res.centroids.push_back(sigs[chosen].v);
  }

  res.assignment.assign(n, 0);
  std::vector<std::array<double, kSignatureDims>> sums(k);
  std::vector<std::size_t> counts(k);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++res.iterations;
    bool changed = iter == 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = dist2(sigs[i].v, res.centroids[c]);
        if (d < best_d) {  // strict: ties keep the lowest cluster index
          best_d = d;
          best = c;
        }
      }
      if (res.assignment[i] != best) {
        res.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed) break;

    for (auto& s : sums) s.fill(0);
    counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = res.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < kSignatureDims; ++d)
        sums[c][d] += sigs[i].v[d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // repaired below
      for (std::size_t d = 0; d < kSignatureDims; ++d)
        res.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
    // Empty-cluster repair: steal the point farthest from its centroid
    // (lowest index on ties), so every cluster ends non-empty.
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) continue;
      std::size_t far = 0;
      double far_d = -1;
      for (std::size_t i = 0; i < n; ++i) {
        if (counts[res.assignment[i]] <= 1) continue;
        const double d = dist2(sigs[i].v, res.centroids[res.assignment[i]]);
        if (d > far_d) {
          far_d = d;
          far = i;
        }
      }
      --counts[res.assignment[far]];
      res.assignment[far] = c;
      counts[c] = 1;
      res.centroids[c] = sigs[far].v;
    }
  }
  return res;
}

}  // namespace mapg
