// MAPGTRC2: chunked, streamable binary traces + the streaming file reader.
//
// MAPGTRC1 (trace_io.h) is a flat record dump: fine for the few-million-
// instruction traces the generator benches freeze, hopeless for the
// 50 M+-instruction captures sampled simulation ingests — a reader either
// materializes the whole file or loses random access.  MAPGTRC2 keeps the
// record encoding (11 bytes: u8 op, u16 dep_dist, u64 addr, little-endian)
// but adds a chunk index so a reader can stream with a one-chunk buffer,
// seek to any instruction in O(1), and detect payload corruption per chunk:
//
//   offset 0   8 bytes   magic "MAPGTRC2"
//          8   u64       total record count
//         16   u64       chunk_size (records per chunk; last may be short)
//         24   u64       n_chunks (== ceil(count / chunk_size))
//         32   u64       stream digest: FNV-1a64 over ALL record payload
//                        bytes in stream order (format/chunking independent —
//                        a converted MAPGTRC1 file keeps its digest)
//         40   index     n_chunks x { u64 payload_offset (absolute),
//                                     u64 record_count,
//                                     u64 chunk digest (FNV-1a64 over the
//                                         chunk's payload bytes) }
//          …   payloads  records, contiguous within each chunk
//
// A writer that cannot know the true record count up front (short source)
// reserves index space for the requested count and backpatches the header
// and index at the end; payload offsets are explicit, so readers never
// assume the payload region starts right after the valid index entries.
//
// The stream digest is the trace's *content identity*: the result cache
// keys trace-driven experiment cells by it (exec schema v7), so renaming or
// re-chunking a file never splits the cache, and editing one record always
// does.  See docs/TRACE.md for the full wire spec and error contract.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace_io.h"

namespace mapg {

/// Parsed header of an on-disk trace, either format version.
struct TraceFileInfo {
  int version = 0;               ///< 1 (MAPGTRC1) or 2 (MAPGTRC2)
  std::uint64_t records = 0;     ///< total instruction count
  std::uint64_t chunk_size = 0;  ///< records per chunk (v1: == records)
  std::uint64_t n_chunks = 0;    ///< v1: 1
  std::uint64_t stream_digest = 0;
  /// 16 lowercase hex chars of stream_digest — the cache-identity form.
  std::string digest_hex() const;
};

/// Default records per chunk (~704 KiB of payload): small enough that the
/// streaming buffer stays cache-friendly, large enough that the index is
/// negligible (24 bytes per ~64 K records).
inline constexpr std::uint64_t kTraceChunkRecords = 64 * 1024;

/// Serialize `count` instructions from `source` in MAPGTRC2 framing.
/// Returns the number actually written (short if the source ends early; the
/// header and index are backpatched to the true length).  The stream must
/// be seekable (a file, not a pipe).
std::uint64_t write_trace_v2(std::ostream& os, TraceSource& source,
                             std::uint64_t count,
                             std::uint64_t chunk_size = kTraceChunkRecords);

/// File wrapper; false + `error` on I/O failure.
bool write_trace_file_v2(const std::string& path, TraceSource& source,
                         std::uint64_t count, std::string* error = nullptr,
                         std::uint64_t chunk_size = kTraceChunkRecords);

/// Streaming reader for both on-disk formats.  Never materializes the
/// trace: v2 files are read one chunk at a time (each chunk's digest is
/// verified as it is loaded); v1 files are read through a fixed-size block
/// buffer (their stream digest is computed by a single scan at open, since
/// the v1 header carries none).
///
/// Error contract (documented field-for-field in docs/TRACE.md):
///  - the constructor throws std::runtime_error on open failure, bad magic,
///    a header that promises more payload than the file holds, or a
///    malformed/overflowing chunk index;
///  - next() returns false exactly at clean end-of-trace (info().records
///    instructions served) and throws std::runtime_error on a short read or
///    a chunk whose payload digest does not match its index entry;
///  - seek() past the end clamps to the end (next() then returns false),
///    matching SharedTraceView::seek.
class FileTraceSource final : public SeekableTraceSource {
 public:
  explicit FileTraceSource(const std::string& path);

  bool next(Instr& out) override;
  void reset() override { seek(0); }
  void seek(std::uint64_t pos) override;
  std::uint64_t pos() const override { return pos_; }
  std::uint64_t size() const override { return info_.records; }

  /// Bulk read: decodes records straight out of the chunk buffer into the
  /// block's SoA lanes (no per-record Instr round-trip), crossing chunk
  /// boundaries as needed.  Identical stream + error contract to next().
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override;

  const TraceFileInfo& info() const { return info_; }
  const std::string& path() const { return path_; }

 private:
  struct ChunkMeta {
    std::uint64_t offset = 0;   ///< absolute payload offset
    std::uint64_t records = 0;
    std::uint64_t digest = 0;
  };

  void load_chunk(std::uint64_t chunk_index);

  std::string path_;
  std::ifstream is_;
  TraceFileInfo info_;
  std::vector<ChunkMeta> chunks_;

  std::vector<char> buf_;            ///< current chunk payload
  std::uint64_t buf_chunk_ = ~0ULL;  ///< chunk index held in buf_
  std::uint64_t buf_first_ = 0;      ///< absolute record index of buf_[0]
  std::uint64_t pos_ = 0;            ///< next record to serve
  /// Per-chunk "digest already verified" memo: a chunk is verified the
  /// first time it is loaded and trusted on every later reload, so
  /// seek-back patterns (sampled simulation revisiting warmup windows,
  /// sample/runner.cpp) pay the FNV scan once per chunk, not per visit.
  /// The file is assumed immutable while open — the same assumption the
  /// resident chunk buffer already makes.
  std::vector<char> verified_;
};

/// Zero-copy mmap variant of FileTraceSource: maps the whole file and
/// decodes records directly from the mapping, so multi-GB traces feed
/// batches without copying chunk payloads through a buffer (and without
/// ever faulting in chunks the cursor skips over).  Same formats, same
/// stream, same error contract:
///  - the constructor performs exactly FileTraceSource's header/index
///    validation (identical error messages) plus the v1 digest scan;
///  - each chunk's payload digest is verified the first time the cursor
///    enters it (memoized thereafter), so a corrupted chunk throws at the
///    same record index as the buffered reader;
///  - seek() clamps past-the-end, next() returns false at clean EOF.
class MmapTraceSource final : public SeekableTraceSource {
 public:
  explicit MmapTraceSource(const std::string& path);
  ~MmapTraceSource() override;

  MmapTraceSource(const MmapTraceSource&) = delete;
  MmapTraceSource& operator=(const MmapTraceSource&) = delete;

  bool next(Instr& out) override;
  void reset() override { seek(0); }
  void seek(std::uint64_t pos) override;
  std::uint64_t pos() const override { return pos_; }
  std::uint64_t size() const override { return info_.records; }

  /// Bulk read decoding straight from the mapping — the zero-copy fast
  /// path the batched front-end rides for on-disk traces.
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override;

  const TraceFileInfo& info() const { return info_; }
  const std::string& path() const { return path_; }

 private:
  struct ChunkMeta {
    std::uint64_t offset = 0;
    std::uint64_t records = 0;
    std::uint64_t digest = 0;
  };

  /// Digest-check `chunk_index` on first entry (throws on mismatch).
  void verify_chunk(std::uint64_t chunk_index);
  const char* chunk_payload(std::uint64_t chunk_index) const;

  std::string path_;
  const char* data_ = nullptr;  ///< whole-file mapping
  std::uint64_t map_len_ = 0;
  TraceFileInfo info_;
  std::vector<ChunkMeta> chunks_;
  std::vector<char> verified_;  ///< per-chunk digest memo (see above)
  std::uint64_t pos_ = 0;
};

/// Compute the stream digest of an on-disk trace (either version) without
/// keeping it in memory: v2 answers from the header, v1 scans the payload.
/// False + `error` on unreadable/malformed input.
bool trace_file_digest(const std::string& path, std::uint64_t& digest,
                       std::string* error = nullptr);

/// FNV-1a64 over a byte range — the digest primitive shared by the writer,
/// the reader's per-chunk verification, and trace_file_digest.  `seed`
/// chains calls so a digest can be computed incrementally.
std::uint64_t trace_digest_update(const char* data, std::size_t len,
                                  std::uint64_t seed);
inline constexpr std::uint64_t kTraceDigestSeed = 14695981039346656037ULL;

/// 16-lowercase-hex-char rendering shared by TraceFileInfo::digest_hex and
/// everything that prints digests.
std::string trace_digest_hex(std::uint64_t digest);

}  // namespace mapg
