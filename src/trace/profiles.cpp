#include <array>

#include "trace/profile.h"

namespace mapg {
namespace {

// Profile parameters are tuned against the default hierarchy in
// src/core/sim_config.h (32 KiB L1D, 1 MiB L2) so that LLC MPKI spans the
// published SPEC-2006 range: ~60 for mcf down to <1 for gamess/povray.
// The tuning target is the *stall-interval distribution* (R-Fig.1), not any
// microarchitectural detail of the original applications.
std::vector<WorkloadProfile> make_profiles() {
  std::vector<WorkloadProfile> p;

  {
    // Pointer-chasing over a huge sparse graph: serialized DRAM misses,
    // near-zero MLP, long full-core stalls.  The MAPG headline workload.
    WorkloadProfile w;
    w.name = "mcf-like";
    w.description = "pointer-chasing, serialized DRAM misses, MLP ~1";
    w.f_load = 0.32;
    w.f_store = 0.09;
    w.working_set_bytes = 512ULL << 20;
    w.hot_set_bytes = 64ULL << 10;
    w.p_stream = 0.05;
    w.p_cold = 0.05;
    w.p_pointer_chase = 0.20;
    w.dep_dist_mean = 3.0;
    w.seed = 101;
    p.push_back(w);
  }
  {
    // Lattice-Boltzmann: long unit-stride sweeps with heavy store traffic.
    WorkloadProfile w;
    w.name = "lbm-like";
    w.description = "streaming sweeps, store-heavy, high row-buffer locality";
    w.f_load = 0.26;
    w.f_store = 0.20;
    w.working_set_bytes = 256ULL << 20;
    w.hot_set_bytes = 32ULL << 10;
    w.num_streams = 8;
    w.stream_stride_bytes = 8;
    w.p_stream = 0.78;
    w.p_cold = 0.02;
    w.dep_dist_mean = 10.0;
    w.seed = 102;
    p.push_back(w);
  }
  {
    // Lattice QCD: large strided accesses, one touch per cache line.
    WorkloadProfile w;
    w.name = "milc-like";
    w.description = "line-strided sweeps, every stream touch misses L1";
    w.f_load = 0.30;
    w.f_store = 0.12;
    w.f_fp = 0.20;
    w.working_set_bytes = 384ULL << 20;
    w.hot_set_bytes = 64ULL << 10;
    w.num_streams = 6;
    w.stream_stride_bytes = 16;
    w.p_stream = 0.30;
    w.p_cold = 0.004;
    w.dep_dist_mean = 6.0;
    w.seed = 103;
    p.push_back(w);
  }
  {
    // Quantum simulation: two long dense streams, loose dependencies.
    WorkloadProfile w;
    w.name = "libquantum-like";
    w.description = "pure streaming, loose dependencies, high MLP";
    w.f_load = 0.28;
    w.f_store = 0.14;
    w.working_set_bytes = 256ULL << 20;
    w.hot_set_bytes = 16ULL << 10;
    w.num_streams = 2;
    w.stream_stride_bytes = 8;
    w.p_stream = 0.85;
    w.p_cold = 0.002;
    w.dep_dist_mean = 12.0;
    w.seed = 104;
    p.push_back(w);
  }
  {
    // LP solver: mixed sweeps over large matrices plus scattered updates.
    WorkloadProfile w;
    w.name = "soplex-like";
    w.description = "mixed streaming + scattered updates over a large matrix";
    w.f_load = 0.30;
    w.f_store = 0.10;
    w.f_fp = 0.18;
    w.working_set_bytes = 128ULL << 20;
    w.hot_set_bytes = 256ULL << 10;
    w.num_streams = 4;
    w.p_stream = 0.40;
    w.p_cold = 0.015;
    w.dep_dist_mean = 5.0;
    w.seed = 105;
    p.push_back(w);
  }
  {
    // Discrete-event simulation: irregular heap traffic in a medium
    // footprint; moderate MPKI with poor spatial locality.
    WorkloadProfile w;
    w.name = "omnetpp-like";
    w.description = "irregular heap accesses, medium footprint";
    w.f_load = 0.31;
    w.f_store = 0.13;
    w.working_set_bytes = 96ULL << 20;
    w.hot_set_bytes = 512ULL << 10;
    w.p_stream = 0.10;
    w.p_cold = 0.025;
    w.p_pointer_chase = 0.035;
    w.dep_dist_mean = 4.0;
    w.seed = 106;
    p.push_back(w);
  }
  {
    // Compiler: large but cache-friendly footprint, bursty cold misses.
    WorkloadProfile w;
    w.name = "gcc-like";
    w.description = "cache-friendly hot set with bursty cold misses";
    w.f_load = 0.28;
    w.f_store = 0.12;
    w.working_set_bytes = 32ULL << 20;
    w.hot_set_bytes = 512ULL << 10;
    w.p_stream = 0.12;
    w.p_cold = 0.008;
    w.dep_dist_mean = 5.0;
    w.seed = 107;
    p.push_back(w);
  }
  {
    // Path search: light pointer chasing over a medium graph.
    WorkloadProfile w;
    w.name = "astar-like";
    w.description = "light pointer chasing, medium graph";
    w.f_load = 0.30;
    w.f_store = 0.08;
    w.working_set_bytes = 64ULL << 20;
    w.hot_set_bytes = 256ULL << 10;
    w.p_stream = 0.10;
    w.p_cold = 0.010;
    w.p_pointer_chase = 0.030;
    w.dep_dist_mean = 4.0;
    w.seed = 108;
    p.push_back(w);
  }
  {
    // Compression: hot tables slightly exceeding the LLC.
    WorkloadProfile w;
    w.name = "bzip2-like";
    w.description = "hot tables slightly exceeding the LLC";
    w.f_load = 0.29;
    w.f_store = 0.11;
    w.working_set_bytes = 8ULL << 20;
    w.hot_set_bytes = 768ULL << 10;
    w.p_stream = 0.10;
    w.p_cold = 0.004;
    w.dep_dist_mean = 5.0;
    w.seed = 109;
    p.push_back(w);
  }
  {
    // Sequence profile search: tight inner loops over L1/L2-resident data.
    WorkloadProfile w;
    w.name = "hmmer-like";
    w.description = "L2-resident tables, very low MPKI";
    w.f_load = 0.36;
    w.f_store = 0.12;
    w.working_set_bytes = 16ULL << 20;
    w.hot_set_bytes = 64ULL << 10;
    w.p_stream = 0.02;
    w.p_cold = 0.0012;
    w.dep_dist_mean = 7.0;
    w.seed = 110;
    p.push_back(w);
  }
  {
    // Quantum chemistry: FP-dominated, L1-resident working set.
    WorkloadProfile w;
    w.name = "gamess-like";
    w.description = "compute-bound FP, L1-resident data";
    w.f_load = 0.24;
    w.f_store = 0.08;
    w.f_fp = 0.28;
    w.f_mul = 0.05;
    w.working_set_bytes = 4ULL << 20;
    w.hot_set_bytes = 24ULL << 10;
    w.p_stream = 0.008;
    w.p_cold = 0.0003;
    w.dep_dist_mean = 8.0;
    w.seed = 111;
    p.push_back(w);
  }
  {
    // Ray tracing: FP/divide heavy, tiny data footprint.
    WorkloadProfile w;
    w.name = "povray-like";
    w.description = "compute-bound FP with divides, tiny footprint";
    w.f_load = 0.26;
    w.f_store = 0.07;
    w.f_fp = 0.30;
    w.f_div = 0.010;
    w.working_set_bytes = 4ULL << 20;
    w.hot_set_bytes = 32ULL << 10;
    w.p_stream = 0.010;
    w.p_cold = 0.0005;
    w.dep_dist_mean = 8.0;
    w.seed = 112;
    p.push_back(w);
  }

  return p;
}

}  // namespace

const std::vector<WorkloadProfile>& builtin_profiles() {
  static const std::vector<WorkloadProfile> profiles = make_profiles();
  return profiles;
}

const WorkloadProfile* find_profile(const std::string& name) {
  for (const auto& p : builtin_profiles())
    if (p.name == name) return &p;
  return nullptr;
}

std::vector<WorkloadProfile> representative_profiles() {
  std::vector<WorkloadProfile> out;
  for (const char* name :
       {"mcf-like", "libquantum-like", "omnetpp-like", "gamess-like"}) {
    if (const WorkloadProfile* p = find_profile(name)) out.push_back(*p);
  }
  return out;
}

}  // namespace mapg
