#include "trace/trace_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace mapg {
namespace {

constexpr std::array<char, 8> kMagic = {'M', 'A', 'P', 'G',
                                        'T', 'R', 'C', '1'};
constexpr std::size_t kRecordSize = 1 + 2 + 8;

void put_u16(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}

void put_u64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<unsigned char>(p[1]) << 8));
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

}  // namespace

std::uint64_t write_trace(std::ostream& os, TraceSource& source,
                          std::uint64_t count) {
  os.write(kMagic.data(), kMagic.size());
  const auto count_pos = os.tellp();
  char header[8];
  put_u64(header, count);
  os.write(header, 8);

  std::uint64_t written = 0;
  char rec[kRecordSize];
  Instr instr;
  while (written < count && source.next(instr)) {
    rec[0] = static_cast<char>(instr.op);
    put_u16(rec + 1, instr.dep_dist);
    put_u64(rec + 3, instr.addr);
    os.write(rec, kRecordSize);
    ++written;
  }
  if (written != count && count_pos != std::streampos(-1)) {
    // Source ended early: rewrite the count header to the true length.
    os.seekp(count_pos);
    put_u64(header, written);
    os.write(header, 8);
    os.seekp(0, std::ios::end);
  }
  return written;
}

bool read_trace(std::istream& is, std::vector<Instr>& out, std::string* error) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  if (!is || magic != kMagic) {
    if (error) *error = "bad magic";
    return false;
  }
  char header[8];
  is.read(header, 8);
  if (!is) {
    if (error) *error = "truncated header";
    return false;
  }
  const std::uint64_t count = get_u64(header);
  // Defensive cap: refuse absurd headers rather than bad_alloc.
  if (count > (1ULL << 32)) {
    if (error) *error = "record count too large";
    return false;
  }
  out.clear();
  out.reserve(count);
  char rec[kRecordSize];
  for (std::uint64_t i = 0; i < count; ++i) {
    is.read(rec, kRecordSize);
    if (!is) {
      if (error) *error = "truncated at record " + std::to_string(i);
      return false;
    }
    Instr instr;
    const auto op = static_cast<unsigned char>(rec[0]);
    if (op >= kNumOpClasses) {
      if (error) *error = "bad op class at record " + std::to_string(i);
      return false;
    }
    instr.op = static_cast<OpClass>(op);
    instr.dep_dist = get_u16(rec + 1);
    instr.addr = get_u64(rec + 3);
    out.push_back(instr);
  }
  return true;
}

bool write_trace_file(const std::string& path, TraceSource& source,
                      std::uint64_t count, std::string* error) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  write_trace(os, source, count);
  os.flush();
  if (!os) {
    if (error) *error = "write failure on " + path;
    return false;
  }
  return true;
}

bool read_trace_file(const std::string& path, std::vector<Instr>& out,
                     std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  return read_trace(is, out, error);
}

}  // namespace mapg
