// Synthetic trace generator: turns a WorkloadProfile into a deterministic,
// unbounded instruction stream (see profile.h for the substitution rationale).
#pragma once

#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "trace/instr.h"
#include "trace/profile.h"

namespace mapg {

class TraceGenerator final : public TraceSource {
 public:
  /// `run_seed` is mixed with the profile's own seed so repeated experiments
  /// can draw independent traces from the same profile.
  explicit TraceGenerator(WorkloadProfile profile, std::uint64_t run_seed = 0);

  bool next(Instr& out) override;  ///< Always returns true (unbounded).
  void reset() override;

  /// Bulk draw: fills the block in one tight loop over the same PRNG
  /// sequence next() consumes, so batch and scalar streams are identical.
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override;

  const WorkloadProfile& profile() const { return profile_; }

 private:
  struct Stream {
    Addr base = 0;    ///< region start
    Addr length = 0;  ///< wrap length in bytes
    Addr pos = 0;     ///< next offset
  };

  void init_streams();
  Addr next_stream_addr();
  Addr random_hot_addr();
  Addr random_cold_addr();
  std::uint16_t draw_dep_dist();

  WorkloadProfile profile_;
  std::uint64_t run_seed_;
  Prng prng_;
  std::vector<Stream> streams_;
  std::size_t next_stream_ = 0;

  // Address-space layout: [0, hot) hot set, [hot, hot+stream) stream arena,
  // cold accesses may touch the entire working set.
  Addr hot_base_ = 0;
  Addr stream_base_ = 0;
};

/// Non-stationary workload: alternates between two profiles every
/// `phase_instructions`, modeling SPEC-like phase behaviour (e.g. a
/// pointer-chasing phase followed by a compute phase).  Stationary profiles
/// make stall lengths trivially learnable; phased ones are where
/// estimate-driven MAPG and history-driven prediction genuinely differ
/// (R-Tab.6).
class PhasedTraceGenerator final : public TraceSource {
 public:
  PhasedTraceGenerator(WorkloadProfile a, WorkloadProfile b,
                       std::uint64_t phase_instructions,
                       std::uint64_t run_seed = 0);

  bool next(Instr& out) override;  ///< Always returns true (unbounded).
  void reset() override;

  /// Bulk draw clamped to the current phase's remaining instructions, so
  /// phase switches land on exactly the same instruction as scalar next().
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override;

  /// Name of the profile currently generating ("a" phase first).
  const std::string& current_phase_name() const;
  std::uint64_t phase_switches() const { return switches_; }

 private:
  TraceGenerator gen_a_;
  TraceGenerator gen_b_;
  std::uint64_t phase_instructions_;
  std::uint64_t emitted_in_phase_ = 0;
  std::uint64_t switches_ = 0;
  bool in_a_ = true;
};

}  // namespace mapg
