// Parametric workload profiles.
//
// SPEC CPU2006 traces are not redistributable, so the reproduction drives the
// simulator with synthetic instruction streams whose *memory behaviour* is
// shaped to match the published characteristics of the benchmark classes
// (LLC MPKI, memory-level parallelism, dependency tightness, spatial
// locality).  Those four quantities fully determine the distribution of
// full-core memory-stall intervals — which is the only workload property the
// MAPG policy ever observes.  See DESIGN.md §3 for the substitution argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mapg {

struct WorkloadProfile {
  std::string name;         ///< e.g. "mcf-like"
  std::string description;  ///< one-line behavioural summary

  // --- Instruction mix (fractions must sum to <= 1; remainder is kAlu) ---
  double f_load = 0.25;
  double f_store = 0.10;
  double f_branch = 0.15;
  double f_mul = 0.02;
  double f_div = 0.002;
  double f_fp = 0.05;

  // --- Address-stream structure ---
  /// Total data footprint in bytes; cold random accesses land anywhere here.
  std::uint64_t working_set_bytes = 64ULL << 20;
  /// Hot subset in bytes; should usually fit (or nearly fit) in the LLC.
  std::uint64_t hot_set_bytes = 128ULL << 10;
  /// Number of concurrent sequential streams (array sweeps).
  int num_streams = 4;
  /// Stream advance in bytes per touch (8 = dense double-precision sweep).
  std::uint64_t stream_stride_bytes = 8;

  /// Load/store address pattern mixture; must sum to <= 1.
  /// Remainder of the probability mass goes to `hot` accesses.
  double p_stream = 0.30;  ///< next element of a sequential stream
  double p_cold = 0.05;    ///< uniform random in the full working set
  /// Fraction of *loads* that are pointer-chasing: random cold address AND
  /// dep_dist forced to 1 (the next instruction consumes the pointer), which
  /// serializes misses and produces long, MLP-free stalls (mcf's signature).
  double p_pointer_chase = 0.0;

  // --- Dependency structure ---
  /// Mean of the geometric dep_dist for ordinary loads (higher = looser
  /// schedules = more latency hiding before the core stalls).
  double dep_dist_mean = 6.0;
  /// Fraction of ordinary loads with no in-window consumer (dep_dist = 0).
  double p_no_consumer = 0.05;
  /// Maximum dep_dist emitted (ties to the core's scoreboard window).
  std::uint16_t dep_dist_max = 64;

  /// Generator seed; combined with the trace-level seed so two profiles
  /// never share an address stream by accident.
  std::uint64_t seed = 1;
};

/// The 12 built-in SPEC-2006-class profiles (memory-bound -> compute-bound).
/// Names carry a "-like" suffix to make the synthetic nature explicit.
const std::vector<WorkloadProfile>& builtin_profiles();

/// Lookup by name ("mcf-like"); returns nullptr if unknown.
const WorkloadProfile* find_profile(const std::string& name);

/// The subset used by the sweep figures (memory-bound, streaming, mixed,
/// compute-bound representative).
std::vector<WorkloadProfile> representative_profiles();

}  // namespace mapg
