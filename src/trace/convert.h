// Text-trace ingestion + capture-side cache filtering.
//
// Externally captured traces usually arrive as text: one memory access per
// line in ChampSim/Dinero-style notation.  The converters here turn those
// into Instr streams that write_trace_v2 can freeze, so a public trace
// becomes a first-class workload next to the synthetic generators.  Three
// dialects are recognized (docs/TRACE.md has examples):
//
//   rw:       `R <addr>` / `W <addr>` — addr parsed with base auto-detection
//             (0x… hex, 0… octal, else decimal); case-insensitive op letter.
//   dinero:   `<label> <addr>` — label 0 = read, 1 = write, 2 = ifetch
//             (dropped: the model has no I-side), addr always hex.
//   champsim: `<ip> <addr> <L|S>` — ChampSim-style text (CRC2 notation):
//             instruction pointer first (parsed for validation, then dropped
//             — no I-side), data address, then L (load) / S (store),
//             case-insensitive; both addresses hex with optional 0x prefix.
//
// Both skip blank lines and `#` comments and reject anything else with a
// line-numbered error.  Loads get a configurable dep_dist and each memory
// op can be padded with ALU filler to approximate a realistic memory-op
// density (text traces carry only the memory accesses).
//
// CacheFilter models a small capture-side L1: accesses that hit are
// rewritten to kAlu filler instead of being dropped, so the instruction
// count — and therefore region boundaries in sampled simulation — is
// preserved while the downstream model only sees the miss stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace_io.h"

namespace mapg {

/// Options shared by the text-format parsers.
struct ConvertOptions {
  /// dep_dist stamped on converted loads (how soon a consumer blocks).
  std::uint16_t dep_dist = 1;
  /// ALU filler instructions inserted after each converted memory op.
  std::uint64_t pad = 0;
};

/// Parse a text trace (dialect "rw", "dinero", or "champsim") into `out`.
/// Returns false with a line-numbered `error` on the first malformed line or
/// an unknown dialect name.
bool convert_text_trace(std::istream& is, const std::string& dialect,
                        const ConvertOptions& options,
                        std::vector<Instr>& out,
                        std::string* error = nullptr);

/// File wrapper around convert_text_trace.
bool convert_text_trace_file(const std::string& path,
                             const std::string& dialect,
                             const ConvertOptions& options,
                             std::vector<Instr>& out,
                             std::string* error = nullptr);

/// Set-associative LRU filter cache (capture-side L1 stand-in).
class CacheFilter {
 public:
  /// `size_bytes` must be a multiple of `line_bytes * ways`; rounded up to
  /// at least one set.
  CacheFilter(std::uint64_t size_bytes, std::uint64_t line_bytes,
              std::uint64_t ways);

  /// Look up (and install) a byte address.  Returns true on hit.
  bool access(Addr addr);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< access stamp; smallest is victim
    bool valid = false;
  };

  std::uint64_t line_shift_;
  std::uint64_t set_mask_;
  std::uint64_t ways_;
  std::vector<Way> ways_storage_;  ///< sets * ways, row-major by set
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Wraps a source and rewrites filter-cache hits to ALU filler (addr
/// cleared, dep_dist zeroed) so only the miss stream keeps its addresses.
/// Instruction count is preserved exactly — sampling region boundaries on a
/// filtered trace line up with the unfiltered capture.
class FilteredTraceSource final : public TraceSource {
 public:
  FilteredTraceSource(TraceSource& inner, CacheFilter& filter)
      : inner_(inner), filter_(filter) {}

  bool next(Instr& out) override;
  void reset() override { inner_.reset(); }

  /// Bulk-fill from the inner source, then apply the filter rewrite in
  /// place.  The filter is consulted in stream order, so its LRU state (and
  /// therefore the rewritten stream) matches scalar next() exactly.
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override;

 private:
  TraceSource& inner_;
  CacheFilter& filter_;
};

}  // namespace mapg
