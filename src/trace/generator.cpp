#include "trace/generator.h"

#include <algorithm>
#include <cassert>

namespace mapg {
namespace {

constexpr Addr kAccessAlign = 8;  // all accesses are 8-byte aligned

Addr align_down(Addr a) { return a & ~(kAccessAlign - 1); }

}  // namespace

TraceGenerator::TraceGenerator(WorkloadProfile profile, std::uint64_t run_seed)
    : profile_(std::move(profile)), run_seed_(run_seed) {
  reset();
}

void TraceGenerator::reset() {
  // Mix the profile seed and run seed through SplitMix so that distinct
  // (profile, run) pairs land in unrelated xoshiro subsequences.
  SplitMix64 mixer(profile_.seed * 0x9e3779b97f4a7c15ULL + run_seed_);
  prng_.reseed(mixer.next());
  init_streams();
}

void TraceGenerator::init_streams() {
  streams_.clear();
  next_stream_ = 0;

  hot_base_ = 0;
  stream_base_ = profile_.hot_set_bytes;

  const int n = std::max(1, profile_.num_streams);
  // The stream arena is everything between the hot set and the end of the
  // working set; each stream sweeps its own slice so sweeps never collide.
  const Addr arena = profile_.working_set_bytes > stream_base_
                         ? profile_.working_set_bytes - stream_base_
                         : (1ULL << 20);
  const Addr slice = std::max<Addr>(arena / static_cast<Addr>(n), 4096);
  for (int i = 0; i < n; ++i) {
    Stream s;
    s.base = stream_base_ + slice * static_cast<Addr>(i);
    s.length = slice;
    // Start each stream at a random phase so they do not miss in lockstep.
    s.pos = align_down(prng_.below(slice));
    streams_.push_back(s);
  }
}

Addr TraceGenerator::next_stream_addr() {
  Stream& s = streams_[next_stream_];
  next_stream_ = (next_stream_ + 1) % streams_.size();
  const Addr a = s.base + s.pos;
  s.pos += profile_.stream_stride_bytes;
  if (s.pos >= s.length) s.pos = 0;
  return align_down(a);
}

Addr TraceGenerator::random_hot_addr() {
  const Addr span = std::max<Addr>(profile_.hot_set_bytes, kAccessAlign);
  return hot_base_ + align_down(prng_.below(span));
}

Addr TraceGenerator::random_cold_addr() {
  const Addr span = std::max<Addr>(profile_.working_set_bytes, kAccessAlign);
  return align_down(prng_.below(span));
}

std::uint16_t TraceGenerator::draw_dep_dist() {
  if (prng_.bernoulli(profile_.p_no_consumer)) return 0;
  const double mean = std::max(1.0, profile_.dep_dist_mean);
  // Geometric with mean `mean`: success probability 1/mean, support {1, ...}.
  const std::uint64_t d = 1 + prng_.geometric(1.0 / mean);
  return static_cast<std::uint16_t>(
      std::min<std::uint64_t>(d, profile_.dep_dist_max));
}

bool TraceGenerator::next(Instr& out) {
  const double u = prng_.uniform();
  double acc = profile_.f_load;
  if (u < acc) {
    out.op = OpClass::kLoad;
    if (prng_.bernoulli(profile_.p_pointer_chase)) {
      // Pointer chase: the loaded value is the next address, so the very
      // next instruction depends on it and misses serialize.
      out.addr = random_cold_addr();
      out.dep_dist = 1;
      return true;
    }
    const double r = prng_.uniform();
    if (r < profile_.p_stream) {
      out.addr = next_stream_addr();
    } else if (r < profile_.p_stream + profile_.p_cold) {
      out.addr = random_cold_addr();
    } else {
      out.addr = random_hot_addr();
    }
    out.dep_dist = draw_dep_dist();
    return true;
  }
  acc += profile_.f_store;
  if (u < acc) {
    out.op = OpClass::kStore;
    const double r = prng_.uniform();
    if (r < profile_.p_stream) {
      out.addr = next_stream_addr();
    } else if (r < profile_.p_stream + profile_.p_cold) {
      out.addr = random_cold_addr();
    } else {
      out.addr = random_hot_addr();
    }
    out.dep_dist = 0;
    return true;
  }
  out.addr = kNoAddr;
  out.dep_dist = 0;
  acc += profile_.f_branch;
  if (u < acc) {
    out.op = OpClass::kBranch;
    return true;
  }
  acc += profile_.f_mul;
  if (u < acc) {
    out.op = OpClass::kMul;
    return true;
  }
  acc += profile_.f_div;
  if (u < acc) {
    out.op = OpClass::kDiv;
    return true;
  }
  acc += profile_.f_fp;
  out.op = u < acc ? OpClass::kFp : OpClass::kAlu;
  return true;
}

std::size_t TraceGenerator::next_batch(InstrBlock& out, std::size_t max) {
  if (max > InstrBlock::kCapacity) max = InstrBlock::kCapacity;
  // next() is non-virtual here (the class is final), so the whole draw
  // inlines into one loop; the PRNG sequence is the scalar one verbatim.
  // Lanes are written through a local index and the count stored once —
  // an out.count read-modify-write per record would have to be reloaded
  // around every next() call the compiler cannot prove alias-free.
  Instr instr;
  for (std::size_t i = 0; i < max; ++i) {
    next(instr);
    out.op[i] = instr.op;
    out.dep_dist[i] = instr.dep_dist;
    out.addr[i] = instr.addr;
  }
  out.count = max;
  return max;
}

PhasedTraceGenerator::PhasedTraceGenerator(WorkloadProfile a,
                                           WorkloadProfile b,
                                           std::uint64_t phase_instructions,
                                           std::uint64_t run_seed)
    : gen_a_(std::move(a), run_seed),
      gen_b_(std::move(b), run_seed + 0x9e37),
      phase_instructions_(phase_instructions) {
  assert(phase_instructions_ > 0 && "phases must have positive length");
}

void PhasedTraceGenerator::reset() {
  gen_a_.reset();
  gen_b_.reset();
  emitted_in_phase_ = 0;
  switches_ = 0;
  in_a_ = true;
}

const std::string& PhasedTraceGenerator::current_phase_name() const {
  return (in_a_ ? gen_a_ : gen_b_).profile().name;
}

bool PhasedTraceGenerator::next(Instr& out) {
  if (emitted_in_phase_ >= phase_instructions_) {
    emitted_in_phase_ = 0;
    in_a_ = !in_a_;
    ++switches_;
  }
  ++emitted_in_phase_;
  return (in_a_ ? gen_a_ : gen_b_).next(out);
}

std::size_t PhasedTraceGenerator::next_batch(InstrBlock& out,
                                             std::size_t max) {
  if (max > InstrBlock::kCapacity) max = InstrBlock::kCapacity;
  std::size_t n = 0;
  while (n < max) {
    if (emitted_in_phase_ >= phase_instructions_) {
      emitted_in_phase_ = 0;
      in_a_ = !in_a_;
      ++switches_;
    }
    TraceGenerator& gen = in_a_ ? gen_a_ : gen_b_;
    const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
        max - n, phase_instructions_ - emitted_in_phase_));
    Instr instr;
    for (std::size_t i = 0; i < want; ++i) {
      gen.next(instr);
      out.op[n + i] = instr.op;
      out.dep_dist[n + i] = instr.dep_dist;
      out.addr[n + i] = instr.addr;
    }
    n += want;
    emitted_in_phase_ += want;
  }
  out.count = n;
  return n;
}

}  // namespace mapg
