// Binary trace persistence + in-memory trace sources.
//
// Two on-disk format versions, both little-endian, both built from the same
// 11-byte record { u8 op, u16 dep_dist, u64 addr }:
//
//   MAPGTRC1 (this file):
//     8 bytes   magic "MAPGTRC1"
//     u64       record count
//     records   packed, contiguous, no index
//   MAPGTRC2 (trace_file.h):
//     chunked framing — magic "MAPGTRC2", header with total count, chunk
//     size, per-chunk record counts and payload digests, and a whole-stream
//     content digest used as the trace's cache identity.  Streamable and
//     seekable; the record encoding is unchanged, so converting between
//     versions preserves the instruction stream byte-for-byte.
//
// Error contract for v1 readers here (v2's streaming contract is documented
// on FileTraceSource in trace_file.h):
//   - read_trace / read_trace_file return false (with `error` filled when
//     given) on bad magic, a truncated header, a header count so large it
//     could only be corruption, an out-of-range op class, or a payload that
//     ends before the promised record count — a SHORT READ is malformed
//     input, never a silent short trace;
//   - end-of-trace is only ever signaled by TraceSource::next() returning
//     false after exactly the header's record count instructions; a v1 file
//     that parses successfully always yields its full count.
//   - write_trace backpatches the count header if the source ends early, so
//     a written file is always internally consistent.
//
// Used to freeze generator output for exact cross-run replay and to feed the
// simulator from externally captured traces (docs/TRACE.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/instr.h"

namespace mapg {

/// A bounded trace source with random access: the sampled-simulation layer
/// (src/sample) positions these at region starts, so both the in-memory
/// SharedTraceView and the streaming FileTraceSource (trace_file.h) qualify.
class SeekableTraceSource : public TraceSource {
 public:
  /// Position the cursor at an absolute instruction index; past-the-end
  /// clamps to the end (next() then returns false).
  virtual void seek(std::uint64_t pos) = 0;
  virtual std::uint64_t pos() const = 0;
  virtual std::uint64_t size() const = 0;
};

/// Serves instructions from an in-memory vector (bounded trace).
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<Instr> instrs)
      : instrs_(std::move(instrs)) {}

  bool next(Instr& out) override {
    if (pos_ >= instrs_.size()) return false;
    out = instrs_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }

  /// AoS→SoA transpose straight from the backing vector.
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override {
    if (max > InstrBlock::kCapacity) max = InstrBlock::kCapacity;
    const std::size_t take =
        std::min<std::size_t>(max, instrs_.size() - pos_);
    for (std::size_t i = 0; i < take; ++i) {
      const Instr& in = instrs_[pos_ + i];
      out.op[i] = in.op;
      out.dep_dist[i] = in.dep_dist;
      out.addr[i] = in.addr;
    }
    out.count = take;
    pos_ += take;
    return take;
  }

  std::size_t size() const { return instrs_.size(); }

 private:
  std::vector<Instr> instrs_;
  std::size_t pos_ = 0;
};

/// Wraps any source and caps it at `limit` instructions.
class LimitedTraceSource final : public TraceSource {
 public:
  LimitedTraceSource(TraceSource& inner, std::uint64_t limit)
      : inner_(inner), limit_(limit) {}

  bool next(Instr& out) override {
    if (count_ >= limit_) return false;
    if (!inner_.next(out)) return false;
    ++count_;
    return true;
  }
  void reset() override {
    inner_.reset();
    count_ = 0;
  }

  /// Clamp to the remaining allowance, then let the inner source bulk-fill.
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override {
    if (max > InstrBlock::kCapacity) max = InstrBlock::kCapacity;
    const std::uint64_t left = limit_ - std::min(count_, limit_);
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, left));
    if (want == 0) {
      out.clear();
      return 0;
    }
    inner_.next_batch(out, want);
    count_ += out.count;
    return out.count;
  }

 private:
  TraceSource& inner_;
  std::uint64_t limit_;
  std::uint64_t count_ = 0;
};

/// Serves instructions from an immutable shared buffer.  Many sources can
/// view the same materialized trace concurrently (each view carries its own
/// cursor), which is how the replay engine (src/replay) shares one trace
/// across every policy cell of a sweep group without copying it.
class SharedTraceView final : public SeekableTraceSource {
 public:
  explicit SharedTraceView(std::shared_ptr<const std::vector<Instr>> instrs)
      : instrs_(std::move(instrs)) {}

  bool next(Instr& out) override {
    if (pos_ >= instrs_->size()) return false;
    out = (*instrs_)[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }

  /// AoS→SoA transpose straight from the shared buffer.
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override {
    if (max > InstrBlock::kCapacity) max = InstrBlock::kCapacity;
    const std::vector<Instr>& v = *instrs_;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, v.size() - pos_));
    const std::size_t base = static_cast<std::size_t>(pos_);
    for (std::size_t i = 0; i < take; ++i) {
      const Instr& in = v[base + i];
      out.op[i] = in.op;
      out.dep_dist[i] = in.dep_dist;
      out.addr[i] = in.addr;
    }
    out.count = take;
    pos_ += take;
    return take;
  }

  /// Position the cursor at an absolute instruction index (clamped to the
  /// buffer end).  Prefix-resume (src/replay/checkpoint.h) uses this to
  /// continue a run from a checkpoint's trace position instead of replaying
  /// the prefix through the core.
  void seek(std::uint64_t pos) override {
    pos_ = pos < instrs_->size() ? pos : instrs_->size();
  }
  std::uint64_t pos() const override { return pos_; }

  std::uint64_t size() const override { return instrs_->size(); }

 private:
  std::shared_ptr<const std::vector<Instr>> instrs_;
  std::uint64_t pos_ = 0;
};

/// Rebases every memory address by a fixed offset.  The multicore simulator
/// uses this to give each core a disjoint address-space slice so workloads
/// contend for L2/DRAM *capacity and bandwidth* without aliasing lines
/// (multiprogrammed-mix methodology).
class OffsetTraceSource final : public TraceSource {
 public:
  OffsetTraceSource(TraceSource& inner, Addr offset)
      : inner_(inner), offset_(offset) {}

  bool next(Instr& out) override {
    if (!inner_.next(out)) return false;
    if (out.addr != kNoAddr) out.addr += offset_;
    return true;
  }
  void reset() override { inner_.reset(); }

  /// Bulk-fill from the inner source, then rebase the address lane in place
  /// (a single predicated pass over one contiguous array).
  std::size_t next_batch(InstrBlock& out,
                         std::size_t max = InstrBlock::kCapacity) override {
    inner_.next_batch(out, max);
    for (std::size_t i = 0; i < out.count; ++i)
      if (out.addr[i] != kNoAddr) out.addr[i] += offset_;
    return out.count;
  }

 private:
  TraceSource& inner_;
  Addr offset_;
};

/// Serialize `count` instructions pulled from `source`.  Returns the number
/// actually written (short if the source ends early).
std::uint64_t write_trace(std::ostream& os, TraceSource& source,
                          std::uint64_t count);

/// Deserialize a full trace.  Returns false on malformed input; on success
/// `out` holds the instructions.
bool read_trace(std::istream& is, std::vector<Instr>& out,
                std::string* error = nullptr);

/// Convenience file wrappers.
bool write_trace_file(const std::string& path, TraceSource& source,
                      std::uint64_t count, std::string* error = nullptr);
bool read_trace_file(const std::string& path, std::vector<Instr>& out,
                     std::string* error = nullptr);

}  // namespace mapg
