#include "trace/trace_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace mapg {
namespace {

constexpr std::array<char, 8> kMagicV1 = {'M', 'A', 'P', 'G',
                                          'T', 'R', 'C', '1'};
constexpr std::array<char, 8> kMagicV2 = {'M', 'A', 'P', 'G',
                                          'T', 'R', 'C', '2'};
constexpr std::size_t kRecordSize = 1 + 2 + 8;
constexpr std::size_t kV2HeaderSize = 8 + 4 * 8;  ///< magic + 4 u64 fields
constexpr std::size_t kIndexEntrySize = 3 * 8;
constexpr std::size_t kV1HeaderSize = 8 + 8;
/// Same defensive cap as the v1 reader: refuse absurd headers, not OOM.
constexpr std::uint64_t kMaxRecords = 1ULL << 40;

void put_u16(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}

void put_u64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<unsigned char>(p[1]) << 8));
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

void pack_record(char* rec, const Instr& instr) {
  rec[0] = static_cast<char>(instr.op);
  put_u16(rec + 1, instr.dep_dist);
  put_u64(rec + 3, instr.addr);
}

/// Decode one record; throws on an out-of-range op class (corruption the
/// chunk digest cannot catch when the digest entry itself was forged).
Instr unpack_record(const char* rec, std::uint64_t index) {
  const auto op = static_cast<unsigned char>(rec[0]);
  if (op >= kNumOpClasses)
    throw std::runtime_error("trace record " + std::to_string(index) +
                             ": bad op class " + std::to_string(op));
  Instr instr;
  instr.op = static_cast<OpClass>(op);
  instr.dep_dist = get_u16(rec + 1);
  instr.addr = get_u64(rec + 3);
  return instr;
}

/// Decode `n` packed records starting at `rec` into the block's SoA lanes —
/// the shared bulk path of FileTraceSource::next_batch and
/// MmapTraceSource::next_batch.  Same op-class validation (and message) as
/// unpack_record; `first_index` is the absolute index of rec[0].
void decode_records(const char* rec, std::uint64_t first_index, std::size_t n,
                    InstrBlock& out) {
  for (std::size_t i = 0; i < n; ++i, rec += kRecordSize) {
    const auto op = static_cast<unsigned char>(rec[0]);
    if (op >= kNumOpClasses)
      throw std::runtime_error("trace record " + std::to_string(first_index + i) +
                               ": bad op class " + std::to_string(op));
    out.op[out.count] = static_cast<OpClass>(op);
    out.dep_dist[out.count] = get_u16(rec + 1);
    out.addr[out.count] = get_u64(rec + 3);
    ++out.count;
  }
}

}  // namespace

std::uint64_t trace_digest_update(const char* data, std::size_t len,
                                  std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string trace_digest_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string TraceFileInfo::digest_hex() const {
  return trace_digest_hex(stream_digest);
}

std::uint64_t write_trace_v2(std::ostream& os, TraceSource& source,
                             std::uint64_t count, std::uint64_t chunk_size) {
  if (chunk_size == 0) chunk_size = kTraceChunkRecords;
  const std::uint64_t reserved_chunks =
      count == 0 ? 0 : (count + chunk_size - 1) / chunk_size;
  const std::streampos base = os.tellp();

  // Placeholder header + index; backpatched once the true chunk layout is
  // known (the source may end early).  Payload offsets are explicit, so the
  // reserved-but-unused index tail is dead space, not a format violation.
  std::vector<char> zeros(kV2HeaderSize + reserved_chunks * kIndexEntrySize,
                          0);
  os.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));

  struct Meta {
    std::uint64_t offset, records, digest;
  };
  std::vector<Meta> metas;
  metas.reserve(reserved_chunks);
  std::vector<char> payload;
  payload.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_size, count) * kRecordSize));

  std::uint64_t written = 0;
  std::uint64_t stream_digest = kTraceDigestSeed;
  Instr instr;
  char rec[kRecordSize];
  while (written < count) {
    payload.clear();
    const std::uint64_t want = std::min(chunk_size, count - written);
    std::uint64_t got = 0;
    while (got < want && source.next(instr)) {
      pack_record(rec, instr);
      payload.insert(payload.end(), rec, rec + kRecordSize);
      ++got;
    }
    if (got == 0) break;
    Meta m;
    m.offset = static_cast<std::uint64_t>(os.tellp() - base) +
               static_cast<std::uint64_t>(base);
    m.records = got;
    m.digest =
        trace_digest_update(payload.data(), payload.size(), kTraceDigestSeed);
    stream_digest =
        trace_digest_update(payload.data(), payload.size(), stream_digest);
    metas.push_back(m);
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    written += got;
    if (got < want) break;  // source ended early
  }

  // Backpatch header + valid index entries.
  os.seekp(base);
  char header[kV2HeaderSize];
  std::copy(kMagicV2.begin(), kMagicV2.end(), header);
  put_u64(header + 8, written);
  put_u64(header + 16, chunk_size);
  put_u64(header + 24, metas.size());
  put_u64(header + 32, stream_digest);
  os.write(header, kV2HeaderSize);
  char entry[kIndexEntrySize];
  for (const Meta& m : metas) {
    put_u64(entry, m.offset);
    put_u64(entry + 8, m.records);
    put_u64(entry + 16, m.digest);
    os.write(entry, kIndexEntrySize);
  }
  os.seekp(0, std::ios::end);
  return written;
}

bool write_trace_file_v2(const std::string& path, TraceSource& source,
                         std::uint64_t count, std::string* error,
                         std::uint64_t chunk_size) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  write_trace_v2(os, source, count, chunk_size);
  os.flush();
  if (!os) {
    if (error) *error = "write failure on " + path;
    return false;
  }
  return true;
}

FileTraceSource::FileTraceSource(const std::string& path)
    : path_(path), is_(path, std::ios::binary) {
  if (!is_) throw std::runtime_error("cannot open trace file " + path);
  is_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is_.tellg());
  is_.seekg(0);

  std::array<char, 8> magic{};
  is_.read(magic.data(), magic.size());
  if (!is_) throw std::runtime_error(path + ": truncated magic");

  if (magic == kMagicV1) {
    char header[8];
    is_.read(header, 8);
    if (!is_) throw std::runtime_error(path + ": truncated MAPGTRC1 header");
    info_.version = 1;
    info_.records = get_u64(header);
    if (info_.records > kMaxRecords)
      throw std::runtime_error(path + ": record count too large");
    if (file_size < kV1HeaderSize + info_.records * kRecordSize)
      throw std::runtime_error(
          path + ": file shorter than the header's record count");
    info_.chunk_size = std::max<std::uint64_t>(info_.records, 1);
    info_.n_chunks = info_.records > 0 ? 1 : 0;
    // v1 carries no digest: one streaming scan computes it (and is the only
    // whole-file pass this reader ever makes).
    std::vector<char> block(1 << 20);
    std::uint64_t left = info_.records * kRecordSize;
    std::uint64_t digest = kTraceDigestSeed;
    while (left > 0) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(left, block.size()));
      is_.read(block.data(), static_cast<std::streamsize>(take));
      if (!is_) throw std::runtime_error(path + ": short read scanning v1");
      digest = trace_digest_update(block.data(), take, digest);
      left -= take;
    }
    info_.stream_digest = digest;
    ChunkMeta meta;
    meta.offset = kV1HeaderSize;
    meta.records = info_.records;
    meta.digest = digest;
    if (info_.records > 0) chunks_.push_back(meta);
    // The open scan just digested the whole payload, so the single v1
    // chunk is already verified.
    verified_.assign(chunks_.size(), 1);
    return;
  }

  if (magic != kMagicV2)
    throw std::runtime_error(path + ": not a MAPGTRC1/MAPGTRC2 trace");
  char header[kV2HeaderSize - 8];
  is_.read(header, sizeof header);
  if (!is_) throw std::runtime_error(path + ": truncated MAPGTRC2 header");
  info_.version = 2;
  info_.records = get_u64(header);
  info_.chunk_size = get_u64(header + 8);
  info_.n_chunks = get_u64(header + 16);
  info_.stream_digest = get_u64(header + 24);
  if (info_.records > kMaxRecords || info_.chunk_size == 0 ||
      info_.n_chunks > (info_.records / info_.chunk_size) + 1)
    throw std::runtime_error(path + ": malformed MAPGTRC2 header");

  chunks_.resize(info_.n_chunks);
  std::vector<char> index(info_.n_chunks * kIndexEntrySize);
  is_.read(index.data(), static_cast<std::streamsize>(index.size()));
  if (!is_) throw std::runtime_error(path + ": truncated chunk index");
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < info_.n_chunks; ++i) {
    const char* e = index.data() + i * kIndexEntrySize;
    chunks_[i].offset = get_u64(e);
    chunks_[i].records = get_u64(e + 8);
    chunks_[i].digest = get_u64(e + 16);
    if (chunks_[i].records == 0 || chunks_[i].records > info_.chunk_size)
      throw std::runtime_error(path + ": malformed chunk index entry " +
                               std::to_string(i));
    if (chunks_[i].offset + chunks_[i].records * kRecordSize > file_size)
      throw std::runtime_error(path + ": chunk " + std::to_string(i) +
                               " extends past end of file");
    total += chunks_[i].records;
  }
  if (total != info_.records)
    throw std::runtime_error(
        path + ": chunk index records disagree with header count");
  verified_.assign(chunks_.size(), 0);
}

void FileTraceSource::load_chunk(std::uint64_t chunk_index) {
  const ChunkMeta& m = chunks_.at(chunk_index);
  buf_.resize(static_cast<std::size_t>(m.records * kRecordSize));
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(m.offset));
  is_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  if (!is_)
    throw std::runtime_error(path_ + ": short read in chunk " +
                             std::to_string(chunk_index));
  // Digest-check each chunk once: revisits (sampled simulation seeking back
  // into warmup windows) reload the bytes but skip the FNV scan.
  if (!verified_[chunk_index]) {
    const std::uint64_t digest =
        trace_digest_update(buf_.data(), buf_.size(), kTraceDigestSeed);
    if (digest != m.digest)
      throw std::runtime_error(path_ + ": chunk " +
                               std::to_string(chunk_index) +
                               " payload digest mismatch (corrupt trace)");
    verified_[chunk_index] = 1;
  }
  buf_chunk_ = chunk_index;
  // Chunks are full except possibly the last, so the first absolute record
  // of chunk i is i * chunk_size.
  buf_first_ = chunk_index * info_.chunk_size;
}

bool FileTraceSource::next(Instr& out) {
  if (pos_ >= info_.records) return false;
  const std::uint64_t chunk =
      info_.version == 1 ? 0 : pos_ / info_.chunk_size;
  if (chunk != buf_chunk_) load_chunk(chunk);
  const std::uint64_t local = pos_ - buf_first_;
  out = unpack_record(buf_.data() + local * kRecordSize, pos_);
  ++pos_;
  return true;
}

std::size_t FileTraceSource::next_batch(InstrBlock& out, std::size_t max) {
  out.clear();
  if (max > InstrBlock::kCapacity) max = InstrBlock::kCapacity;
  while (out.count < max && pos_ < info_.records) {
    const std::uint64_t chunk =
        info_.version == 1 ? 0 : pos_ / info_.chunk_size;
    if (chunk != buf_chunk_) load_chunk(chunk);
    const std::uint64_t chunk_end = buf_first_ + chunks_[chunk].records;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(max - out.count, chunk_end - pos_));
    decode_records(buf_.data() + (pos_ - buf_first_) * kRecordSize, pos_,
                   take, out);
    pos_ += take;
  }
  return out.count;
}

void FileTraceSource::seek(std::uint64_t pos) {
  pos_ = std::min(pos, info_.records);
}

MmapTraceSource::MmapTraceSource(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open trace file " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot open trace file " + path);
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size > 0) {
    void* m = ::mmap(nullptr, static_cast<std::size_t>(file_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    if (m == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("cannot open trace file " + path);
    }
    data_ = static_cast<const char*>(m);
    map_len_ = file_size;
  }
  ::close(fd);  // the mapping keeps the file content reachable

  // Header/index validation below mirrors FileTraceSource check-for-check
  // (same error messages); on throw the partially constructed object's
  // destructor does not run, so unmap manually.
  try {
    if (file_size < 8) throw std::runtime_error(path + ": truncated magic");
    if (std::memcmp(data_, kMagicV1.data(), 8) == 0) {
      if (file_size < kV1HeaderSize)
        throw std::runtime_error(path + ": truncated MAPGTRC1 header");
      info_.version = 1;
      info_.records = get_u64(data_ + 8);
      if (info_.records > kMaxRecords)
        throw std::runtime_error(path + ": record count too large");
      if (file_size < kV1HeaderSize + info_.records * kRecordSize)
        throw std::runtime_error(
            path + ": file shorter than the header's record count");
      info_.chunk_size = std::max<std::uint64_t>(info_.records, 1);
      info_.n_chunks = info_.records > 0 ? 1 : 0;
      // v1 carries no digest: one pass over the mapping computes it, and
      // doubles as the single chunk's verification.
      info_.stream_digest = trace_digest_update(
          data_ + kV1HeaderSize,
          static_cast<std::size_t>(info_.records * kRecordSize),
          kTraceDigestSeed);
      if (info_.records > 0) {
        ChunkMeta meta;
        meta.offset = kV1HeaderSize;
        meta.records = info_.records;
        meta.digest = info_.stream_digest;
        chunks_.push_back(meta);
      }
      verified_.assign(chunks_.size(), 1);
      return;
    }
    if (std::memcmp(data_, kMagicV2.data(), 8) != 0)
      throw std::runtime_error(path + ": not a MAPGTRC1/MAPGTRC2 trace");
    if (file_size < kV2HeaderSize)
      throw std::runtime_error(path + ": truncated MAPGTRC2 header");
    info_.version = 2;
    info_.records = get_u64(data_ + 8);
    info_.chunk_size = get_u64(data_ + 16);
    info_.n_chunks = get_u64(data_ + 24);
    info_.stream_digest = get_u64(data_ + 32);
    if (info_.records > kMaxRecords || info_.chunk_size == 0 ||
        info_.n_chunks > (info_.records / info_.chunk_size) + 1)
      throw std::runtime_error(path + ": malformed MAPGTRC2 header");
    if (file_size < kV2HeaderSize + info_.n_chunks * kIndexEntrySize)
      throw std::runtime_error(path + ": truncated chunk index");

    chunks_.resize(info_.n_chunks);
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < info_.n_chunks; ++i) {
      const char* e = data_ + kV2HeaderSize + i * kIndexEntrySize;
      chunks_[i].offset = get_u64(e);
      chunks_[i].records = get_u64(e + 8);
      chunks_[i].digest = get_u64(e + 16);
      if (chunks_[i].records == 0 || chunks_[i].records > info_.chunk_size)
        throw std::runtime_error(path + ": malformed chunk index entry " +
                                 std::to_string(i));
      if (chunks_[i].offset + chunks_[i].records * kRecordSize > file_size)
        throw std::runtime_error(path + ": chunk " + std::to_string(i) +
                                 " extends past end of file");
      total += chunks_[i].records;
    }
    if (total != info_.records)
      throw std::runtime_error(
          path + ": chunk index records disagree with header count");
    verified_.assign(chunks_.size(), 0);
  } catch (...) {
    if (data_ != nullptr)
      ::munmap(const_cast<char*>(data_), static_cast<std::size_t>(map_len_));
    throw;
  }
}

MmapTraceSource::~MmapTraceSource() {
  if (data_ != nullptr)
    ::munmap(const_cast<char*>(data_), static_cast<std::size_t>(map_len_));
}

void MmapTraceSource::verify_chunk(std::uint64_t chunk_index) {
  if (verified_[static_cast<std::size_t>(chunk_index)]) return;
  const ChunkMeta& m = chunks_[static_cast<std::size_t>(chunk_index)];
  const std::uint64_t digest = trace_digest_update(
      data_ + m.offset, static_cast<std::size_t>(m.records * kRecordSize),
      kTraceDigestSeed);
  if (digest != m.digest)
    throw std::runtime_error(path_ + ": chunk " + std::to_string(chunk_index) +
                             " payload digest mismatch (corrupt trace)");
  verified_[static_cast<std::size_t>(chunk_index)] = 1;
}

const char* MmapTraceSource::chunk_payload(std::uint64_t chunk_index) const {
  return data_ + chunks_[static_cast<std::size_t>(chunk_index)].offset;
}

bool MmapTraceSource::next(Instr& out) {
  if (pos_ >= info_.records) return false;
  const std::uint64_t chunk =
      info_.version == 1 ? 0 : pos_ / info_.chunk_size;
  verify_chunk(chunk);
  const std::uint64_t first = chunk * info_.chunk_size;
  out = unpack_record(chunk_payload(chunk) + (pos_ - first) * kRecordSize,
                      pos_);
  ++pos_;
  return true;
}

std::size_t MmapTraceSource::next_batch(InstrBlock& out, std::size_t max) {
  out.clear();
  if (max > InstrBlock::kCapacity) max = InstrBlock::kCapacity;
  while (out.count < max && pos_ < info_.records) {
    const std::uint64_t chunk =
        info_.version == 1 ? 0 : pos_ / info_.chunk_size;
    verify_chunk(chunk);
    const std::uint64_t first = chunk * info_.chunk_size;
    const std::uint64_t chunk_end =
        first + chunks_[static_cast<std::size_t>(chunk)].records;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(max - out.count, chunk_end - pos_));
    decode_records(chunk_payload(chunk) + (pos_ - first) * kRecordSize, pos_,
                   take, out);
    pos_ += take;
  }
  return out.count;
}

void MmapTraceSource::seek(std::uint64_t pos) {
  pos_ = std::min(pos, info_.records);
}

bool trace_file_digest(const std::string& path, std::uint64_t& digest,
                       std::string* error) {
  try {
    const FileTraceSource src(path);
    digest = src.info().stream_digest;
    return true;
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return false;
  }
}

}  // namespace mapg
