#include "trace/convert.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mapg {
namespace {

bool parse_addr(const std::string& tok, int base, Addr& out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, base);
  if (errno != 0 || end == tok.c_str() || *end != '\0') return false;
  out = static_cast<Addr>(v);
  return true;
}

void emit(std::vector<Instr>& out, OpClass op, Addr addr,
          const ConvertOptions& options) {
  Instr instr;
  instr.op = op;
  instr.addr = addr;
  instr.dep_dist = op == OpClass::kLoad ? options.dep_dist : 0;
  out.push_back(instr);
  for (std::uint64_t i = 0; i < options.pad; ++i) out.push_back(Instr{});
}

bool fail(std::string* error, std::uint64_t line_no, const std::string& why) {
  if (error)
    *error = "line " + std::to_string(line_no) + ": " + why;
  return false;
}

}  // namespace

bool convert_text_trace(std::istream& is, const std::string& dialect,
                        const ConvertOptions& options,
                        std::vector<Instr>& out, std::string* error) {
  const bool rw = dialect == "rw";
  const bool champsim = dialect == "champsim";
  if (!rw && !champsim && dialect != "dinero") {
    if (error) *error = "unknown trace dialect '" + dialect + "'";
    return false;
  }
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string op_tok, addr_tok;
    if (!(ls >> op_tok)) continue;  // blank line
    if (op_tok[0] == '#') continue;
    if (!(ls >> addr_tok))
      return fail(error, line_no, "missing address after '" + op_tok + "'");

    if (champsim) {
      // `<ip> <addr> <L|S>`: the IP is validated, then dropped (no I-side).
      std::string type_tok;
      if (!(ls >> type_tok))
        return fail(error, line_no,
                    "missing access type after '" + addr_tok + "'");
      std::string extra;
      if (ls >> extra && extra[0] != '#')
        return fail(error, line_no, "trailing token '" + extra + "'");
      Addr ip = 0;
      Addr addr = 0;
      if (!parse_addr(op_tok, 16, ip))
        return fail(error, line_no,
                    "bad hex instruction pointer '" + op_tok + "'");
      if (!parse_addr(addr_tok, 16, addr))
        return fail(error, line_no, "bad hex address '" + addr_tok + "'");
      if (type_tok.size() != 1)
        return fail(error, line_no,
                    "access type must be L or S, got '" + type_tok + "'");
      const char t = static_cast<char>(
          std::toupper(static_cast<unsigned char>(type_tok[0])));
      if (t != 'L' && t != 'S')
        return fail(error, line_no,
                    "access type must be L or S, got '" + type_tok + "'");
      emit(out, t == 'L' ? OpClass::kLoad : OpClass::kStore, addr, options);
      continue;
    }

    std::string extra;
    if (ls >> extra && extra[0] != '#')
      return fail(error, line_no, "trailing token '" + extra + "'");

    Addr addr = 0;
    if (rw) {
      if (op_tok.size() != 1)
        return fail(error, line_no, "op must be R or W, got '" + op_tok + "'");
      const char op = static_cast<char>(
          std::toupper(static_cast<unsigned char>(op_tok[0])));
      if (op != 'R' && op != 'W')
        return fail(error, line_no, "op must be R or W, got '" + op_tok + "'");
      if (!parse_addr(addr_tok, 0, addr))
        return fail(error, line_no, "bad address '" + addr_tok + "'");
      emit(out, op == 'R' ? OpClass::kLoad : OpClass::kStore, addr, options);
    } else {
      if (op_tok != "0" && op_tok != "1" && op_tok != "2")
        return fail(error, line_no,
                    "label must be 0, 1, or 2, got '" + op_tok + "'");
      if (!parse_addr(addr_tok, 16, addr))
        return fail(error, line_no, "bad hex address '" + addr_tok + "'");
      if (op_tok == "2") continue;  // ifetch: no I-side in the model
      emit(out, op_tok == "0" ? OpClass::kLoad : OpClass::kStore, addr,
           options);
    }
  }
  return true;
}

bool convert_text_trace_file(const std::string& path,
                             const std::string& dialect,
                             const ConvertOptions& options,
                             std::vector<Instr>& out, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  return convert_text_trace(is, dialect, options, out, error);
}

CacheFilter::CacheFilter(std::uint64_t size_bytes, std::uint64_t line_bytes,
                         std::uint64_t ways)
    : line_shift_(0), ways_(ways == 0 ? 1 : ways) {
  if (line_bytes < 1) line_bytes = 1;
  while ((1ULL << line_shift_) < line_bytes) ++line_shift_;
  std::uint64_t sets = size_bytes / ((1ULL << line_shift_) * ways_);
  std::uint64_t pow2_sets = 1;
  while (pow2_sets < sets) pow2_sets <<= 1;
  set_mask_ = pow2_sets - 1;
  ways_storage_.resize(pow2_sets * ways_);
}

bool CacheFilter::access(Addr addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line & set_mask_;
  Way* base = &ways_storage_[set * ways_];
  ++stamp_;
  for (std::uint64_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == line) {
      base[w].lru = stamp_;
      ++hits_;
      return true;
    }
  }
  Way* victim = base;
  for (std::uint64_t w = 1; w < ways_; ++w) {
    if (!victim->valid) break;
    if (!base[w].valid || base[w].lru < victim->lru) victim = &base[w];
  }
  victim->valid = true;
  victim->tag = line;
  victim->lru = stamp_;
  ++misses_;
  return false;
}

bool FilteredTraceSource::next(Instr& out) {
  if (!inner_.next(out)) return false;
  if (out.addr != kNoAddr &&
      (out.op == OpClass::kLoad || out.op == OpClass::kStore) &&
      filter_.access(out.addr)) {
    out.op = OpClass::kAlu;
    out.addr = kNoAddr;
    out.dep_dist = 0;
  }
  return true;
}

std::size_t FilteredTraceSource::next_batch(InstrBlock& out, std::size_t max) {
  inner_.next_batch(out, max);
  for (std::size_t i = 0; i < out.count; ++i) {
    if (out.addr[i] != kNoAddr &&
        (out.op[i] == OpClass::kLoad || out.op[i] == OpClass::kStore) &&
        filter_.access(out.addr[i])) {
      out.op[i] = OpClass::kAlu;
      out.addr[i] = kNoAddr;
      out.dep_dist[i] = 0;
    }
  }
  return out.count;
}

}  // namespace mapg
