// The dynamic-instruction record consumed by the core model.
//
// MAPG's gating opportunities are created by loads that miss to DRAM while
// the core has no independent work left, so the trace format carries exactly
// what determines stall structure: the op class (execution latency), the
// memory address (cache/DRAM behaviour), and the dependency distance (how
// soon a consumer blocks on a load's data).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace mapg {

enum class OpClass : std::uint8_t {
  kAlu = 0,     ///< 1-cycle integer op.
  kMul = 1,     ///< pipelined multiply, 3-cycle latency.
  kDiv = 2,     ///< unpipelined divide, 20-cycle latency.
  kFp = 3,      ///< pipelined FP op, 4-cycle latency.
  kLoad = 4,    ///< memory read; latency from the hierarchy.
  kStore = 5,   ///< memory write; retires via the write buffer.
  kBranch = 6,  ///< 1-cycle; mispredictions are folded into the ALU mix.
};

inline constexpr int kNumOpClasses = 7;

constexpr std::string_view op_class_name(OpClass op) {
  switch (op) {
    case OpClass::kAlu:
      return "alu";
    case OpClass::kMul:
      return "mul";
    case OpClass::kDiv:
      return "div";
    case OpClass::kFp:
      return "fp";
    case OpClass::kLoad:
      return "load";
    case OpClass::kStore:
      return "store";
    case OpClass::kBranch:
      return "branch";
  }
  return "?";
}

struct Instr {
  OpClass op = OpClass::kAlu;
  /// Byte address touched by kLoad/kStore; kNoAddr otherwise.
  Addr addr = kNoAddr;
  /// For kLoad: number of instructions after this one at which the first
  /// consumer of the loaded value appears (1 = the very next instruction).
  /// 0 means no consumer inside the scheduling window (prefetch-like).
  std::uint16_t dep_dist = 0;
};

/// A trace is a (possibly unbounded) stream of instructions.  Sources must
/// be deterministic under reset(): replaying yields the identical stream.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// Produce the next instruction.  Returns false at end-of-trace.
  virtual bool next(Instr& out) = 0;
  /// Rewind to the beginning of the stream.
  virtual void reset() = 0;
};

}  // namespace mapg
