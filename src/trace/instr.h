// The dynamic-instruction record consumed by the core model.
//
// MAPG's gating opportunities are created by loads that miss to DRAM while
// the core has no independent work left, so the trace format carries exactly
// what determines stall structure: the op class (execution latency), the
// memory address (cache/DRAM behaviour), and the dependency distance (how
// soon a consumer blocks on a load's data).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace mapg {

enum class OpClass : std::uint8_t {
  kAlu = 0,     ///< 1-cycle integer op.
  kMul = 1,     ///< pipelined multiply, 3-cycle latency.
  kDiv = 2,     ///< unpipelined divide, 20-cycle latency.
  kFp = 3,      ///< pipelined FP op, 4-cycle latency.
  kLoad = 4,    ///< memory read; latency from the hierarchy.
  kStore = 5,   ///< memory write; retires via the write buffer.
  kBranch = 6,  ///< 1-cycle; mispredictions are folded into the ALU mix.
};

inline constexpr int kNumOpClasses = 7;

constexpr std::string_view op_class_name(OpClass op) {
  switch (op) {
    case OpClass::kAlu:
      return "alu";
    case OpClass::kMul:
      return "mul";
    case OpClass::kDiv:
      return "div";
    case OpClass::kFp:
      return "fp";
    case OpClass::kLoad:
      return "load";
    case OpClass::kStore:
      return "store";
    case OpClass::kBranch:
      return "branch";
  }
  return "?";
}

struct Instr {
  OpClass op = OpClass::kAlu;
  /// Byte address touched by kLoad/kStore; kNoAddr otherwise.
  Addr addr = kNoAddr;
  /// For kLoad: number of instructions after this one at which the first
  /// consumer of the loaded value appears (1 = the very next instruction).
  /// 0 means no consumer inside the scheduling window (prefetch-like).
  std::uint16_t dep_dist = 0;
};

/// Fixed-capacity structure-of-arrays instruction block: the bulk-transfer
/// unit of TraceSource::next_batch.  Each field lives in its own contiguous
/// array so batch consumers (the batched core loop, vectorized cache index
/// math) stream one attribute at a time instead of striding through 11-byte
/// records — the compiler can keep the per-field loops branch-light and
/// vectorizable.  The capacity is sized so a whole block (≈2.8 KiB) stays
/// resident in L1 while it is consumed.
struct InstrBlock {
  static constexpr std::size_t kCapacity = 256;

  OpClass op[kCapacity];
  std::uint16_t dep_dist[kCapacity];
  Addr addr[kCapacity];
  std::size_t count = 0;

  void clear() { count = 0; }
  void push(const Instr& in) {
    op[count] = in.op;
    dep_dist[count] = in.dep_dist;
    addr[count] = in.addr;
    ++count;
  }
  Instr get(std::size_t i) const { return Instr{op[i], addr[i], dep_dist[i]}; }
};

/// A trace is a (possibly unbounded) stream of instructions.  Sources must
/// be deterministic under reset(): replaying yields the identical stream.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// Produce the next instruction.  Returns false at end-of-trace.
  virtual bool next(Instr& out) = 0;
  /// Rewind to the beginning of the stream.
  virtual void reset() = 0;

  /// Bulk variant of next(): fill `out` with up to `max` instructions
  /// (clamped to InstrBlock::kCapacity) and return the count stored, which
  /// is also left in out.count.  The contract is exactly "repeated next()":
  /// the concatenation of batches equals the scalar stream, a short batch
  /// (count < max) means end-of-trace, and batches interleave freely with
  /// scalar next() calls because both advance the same cursor.  The default
  /// loops over next(); implementations override it to fill the block
  /// without per-instruction virtual dispatch (docs/TRACE.md §4).
  virtual std::size_t next_batch(InstrBlock& out,
                                 std::size_t max = InstrBlock::kCapacity) {
    out.clear();
    if (max > InstrBlock::kCapacity) max = InstrBlock::kCapacity;
    Instr instr;
    while (out.count < max && next(instr)) out.push(instr);
    return out.count;
  }
};

}  // namespace mapg
