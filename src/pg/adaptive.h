// History-based adaptive MAPG (extension feature).
//
// Plain MAPG relies on the memory controller exporting a residual-latency
// estimate at stall onset.  Some integrations cannot provide that signal
// (e.g. an off-package controller).  This variant replaces the estimate with
// an exponentially weighted moving average (EWMA) of recently observed
// DRAM-stall lengths, learned online through the PgPolicy::observe feedback
// hook: gate when the *predicted* stall length clears the profitability
// threshold.  Early wakeup still uses the commit-point signal (a wake wire
// is far cheaper to route than a latency estimate bus).
#pragma once

#include <cstdint>

#include "pg/policies.h"
#include "pg/policy.h"

namespace mapg {

class HistoryMapgPolicy final : public PgPolicy {
 public:
  struct Options {
    double ewma_weight = 0.125;  ///< weight of the newest observation
    double alpha = 1.0;          ///< break-even margin scale (as MapgPolicy)
    /// Optimistic start: assume DRAM stalls are profitable until history
    /// proves otherwise (a pessimistic start of 0 would never bootstrap,
    /// since the policy only observes stalls — gated or not — via observe).
    Cycle initial_prediction = 200;
  };

  HistoryMapgPolicy(const PolicyContext& ctx, Options opt)
      : PgPolicy(ctx), opt_(opt),
        prediction_(static_cast<double>(opt.initial_prediction)) {}

  std::string name() const override { return "mapg-history"; }
  bool should_gate(const StallEvent& ev) override;
  WakeMode wake_mode() const override { return WakeMode::kEarly; }
  void observe(const StallEvent& ev) override;

  /// Current learned stall-length prediction (cycles).  Exposed for tests.
  double prediction() const { return prediction_; }

 private:
  Options opt_;
  double prediction_;
};

/// Hybrid estimate+history MAPG (extension): gate only when BOTH signals
/// clear the profitability threshold.
///
/// The two pure policies fail in opposite directions (R-Tab.6): the memory
/// controller's estimate is the no-contention closed-row latency, biased
/// HIGH on row-hit-heavy phases (stateless MAPG gates unprofitably there),
/// while the EWMA predictor is unbiased in steady state but stale across
/// phase changes.  Requiring agreement blocks the estimate's bias with the
/// history veto and blocks stale-history gating with the estimate veto, at
/// the cost of missing some profitable stalls right after a switch into a
/// long-stall phase.
class HybridMapgPolicy final : public PgPolicy {
 public:
  HybridMapgPolicy(const PolicyContext& ctx,
                   HistoryMapgPolicy::Options opt = {})
      : PgPolicy(ctx), estimate_rule_(ctx, MapgPolicy::Options{}),
        history_(ctx, opt) {}

  std::string name() const override { return "mapg-hybrid"; }
  bool should_gate(const StallEvent& ev) override {
    // Both vetoes: the estimate-driven rule AND the learned prediction.
    return estimate_rule_.should_gate(ev) && history_.should_gate(ev);
  }
  WakeMode wake_mode() const override { return WakeMode::kEarly; }
  void observe(const StallEvent& ev) override { history_.observe(ev); }

  double prediction() const { return history_.prediction(); }

 private:
  MapgPolicy estimate_rule_;  ///< stock conservative MAPG decision
  HistoryMapgPolicy history_;
};

}  // namespace mapg
