#include "pg/pg_controller.h"

#include "obs/obs.h"

namespace mapg {

PgController::PgController(PgPolicy& policy, const PgCircuit& circuit,
                           WakeArbiter* arbiter, StallKernelParams params)
    : policy_(policy),
      circuit_(circuit),
      arbiter_(arbiter),
      params_(params) {
  if (params_.mode == StepMode::kCycleAccurate)
    stepped_ = std::make_unique<SteppedStallKernel>(policy_, circuit_,
                                                    arbiter_, params_);
}

PgController::~PgController() {
#if MAPG_OBS_ENABLED
  // Per-stall tallies are plain members (the controller is single-threaded
  // within a run); they reach the shared registry once, here, so the stall
  // path pays no atomics or TLS lookups.
  auto& reg = obs::MetricsRegistry::instance();
  if (obs_windows_ > 0)
    reg.counter(stepped_ != nullptr ? "sim.stall.stepped" : "sim.stall.fast")
        .inc(obs_windows_);
  if (obs_refresh_windows_ > 0)
    reg.counter("sim.stall.refresh_windows").inc(obs_refresh_windows_);
  if (obs_dram_pd_windows_ > 0) {
    reg.counter("sim.dram.coordinated_pd_windows").inc(obs_dram_pd_windows_);
    reg.counter("sim.dram.coordinated_pd_cycles").inc(obs_dram_pd_cycles_);
  }
#endif
}

Cycle PgController::on_stall(const StallEvent& ev) {
  ++stats_.eligible_stalls;
  MAPG_OBS_ONLY(++obs_windows_;)
  // Feedback for adaptive policies: the controller timestamps stall onset
  // and the data-arrival event, so the true length is always observable.
  policy_.observe(ev);

  // The decision is resolved up front so both kernels see the identical
  // decision and stateful policies are queried in the identical order.
  GateDecision decision;
  decision.gate = policy_.should_gate(ev);
  if (decision.gate)
    decision.gate_start = cycle_add(ev.start, policy_.gate_delay());

  const StallWindowOutcome out =
      stepped_ != nullptr
          ? stepped_->resolve(ev, decision)
          : resolve_stall_fast(policy_, circuit_, arbiter_, params_, ev,
                               decision);

  if (!out.gated) {
    if (out.timeout_missed)
      ++stats_.timeout_missed;
    else
      ++stats_.skipped_events;
  } else {
    ++stats_.gated_events;
    stats_.activity.add_transition(out.mode, out.gated_cycles,
                                   out.entry_cycles, out.wake_cycles);
    stats_.penalty_cycles += out.resume - ev.data_ready;
    stats_.gated_len_hist.add(static_cast<double>(out.gated_cycles));

    // entry_end = gate_start + entry latency; both kernels report the full
    // entry phase, so the edge conditions reconstruct exactly.
    if (ev.data_ready <= decision.gate_start + out.entry_cycles)
      ++stats_.aborted_entries;
    if (out.gated_cycles < circuit_.break_even_cycles(out.mode))
      ++stats_.unprofitable_events;
  }

  if (out.dram_pd_cycles > 0) {
    ++stats_.dram_pd_windows;
    stats_.dram_pd_channel_cycles += out.dram_pd_cycles;
    MAPG_OBS_ONLY(++obs_dram_pd_windows_;
                  obs_dram_pd_cycles_ += out.dram_pd_cycles;)
  }

  stats_.idle_ungated_cycles += out.idle_ungated_cycles;
  stats_.refresh_window_cycles += out.refresh_overlap_cycles;
  MAPG_OBS_ONLY(obs_refresh_windows_ +=
                    static_cast<std::uint64_t>(out.refresh_overlap_cycles > 0);)
  stall_energy_j_ += out.window_energy_j;

  return out.resume;
}

}  // namespace mapg
