#include "pg/pg_controller.h"

#include <algorithm>

namespace mapg {

Cycle PgController::on_stall(const StallEvent& ev) {
  ++stats_.eligible_stalls;
  // Feedback for adaptive policies: the controller timestamps stall onset
  // and the data-arrival event, so the true length is always observable.
  policy_.observe(ev);

  if (!policy_.should_gate(ev)) {
    ++stats_.skipped_events;
    return ev.data_ready;
  }

  const Cycle gate_start = cycle_add(ev.start, policy_.gate_delay());
  if (gate_start >= ev.data_ready) {
    // The idle-timeout wait consumed the whole stall: no transition happens.
    ++stats_.timeout_missed;
    return ev.data_ready;
  }

  const SleepMode mode = policy_.sleep_mode(ev);
  const Cycle entry_lat = circuit_.entry_latency_cycles();
  const Cycle wake_lat = circuit_.wakeup_latency_cycles(mode);
  const Cycle entry_end = gate_start + entry_lat;

  Cycle wake_start = 0;
  switch (policy_.wake_mode()) {
    case WakeMode::kOracle:
      wake_start = cycle_sub_sat(ev.data_ready, wake_lat);
      break;
    case WakeMode::kEarly:
      // The MC can schedule the wakeup `wake_lat` ahead of the return, but
      // not before the return time is exactly known (the commit point).
      wake_start = std::max(ev.commit, cycle_sub_sat(ev.data_ready, wake_lat));
      break;
    case WakeMode::kReactive:
      wake_start = ev.data_ready;
      break;
  }
  // The sleep sequence is not interruptible: wakeup waits for entry to end.
  wake_start = std::max(wake_start, entry_end);

  // Shared di/dt budget: the wakeup window may be postponed until a slot
  // frees up (the core simply stays gated while it waits).
  if (arbiter_ != nullptr)
    wake_start = arbiter_->reserve(wake_start, wake_lat, ev.start);

  const Cycle resume = std::max(ev.data_ready, wake_start + wake_lat);
  const Cycle gated = wake_start - entry_end;

  ++stats_.gated_events;
  stats_.activity.add_transition(mode, gated, entry_lat, wake_lat);
  stats_.penalty_cycles += resume - ev.data_ready;
  stats_.gated_len_hist.add(static_cast<double>(gated));

  if (ev.data_ready <= entry_end) ++stats_.aborted_entries;
  if (gated < circuit_.break_even_cycles(mode)) ++stats_.unprofitable_events;

  return resume;
}

}  // namespace mapg
