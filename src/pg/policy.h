// Power-gating policy interface.
//
// A policy is a pure decision function over full-core stall events; all
// timing/energy mechanics live in PgController so every policy is accounted
// identically.  The information boundary (DESIGN.md, dram.h) is enforced by
// convention here: non-clairvoyant policies must derive their residual-stall
// estimate through `known_residual`, which only reveals the exact stall end
// when the memory controller has committed it (ev.commit <= ev.start);
// otherwise it returns the controller's estimate.  Only OraclePolicy reads
// ev.data_ready directly.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "cpu/core.h"
#include "power/pg_circuit.h"

namespace mapg {

/// How the wakeup is initiated once the core is gated.
enum class WakeMode : std::uint8_t {
  /// Wake begins when the blocking data arrives: the full wakeup latency is
  /// exposed as a performance penalty (conventional idle-driven PG).
  kReactive,
  /// MAPG: the memory controller initiates wakeup `wakeup_latency` cycles
  /// before the scheduled data return — but no earlier than the commit
  /// point, because before that the return time is not exactly known.
  kEarly,
  /// Clairvoyant: wakeup lands exactly on data arrival (upper bound).
  kOracle,
};

/// Static circuit facts policies may use in their decision rule.  The
/// unqualified fields describe deep sleep (the original MAPG mode); the
/// light_* fields describe the optional intermediate sleep state and are
/// zero when the platform has no light mode.
struct PolicyContext {
  Cycle entry_latency = 6;
  Cycle wakeup_latency = 30;
  Cycle break_even = 47;
  Cycle light_wakeup_latency = 0;
  Cycle light_break_even = 0;
  double light_save_frac = 0;  ///< leakage-savings rate relative to deep
};

/// Residual stall length the platform may legitimately claim to know at the
/// moment of the gating decision (stall onset).
inline Cycle known_residual(const StallEvent& ev) {
  if (ev.commit <= ev.start)  // return time already committed: exact
    return cycle_sub_sat(ev.data_ready, ev.start);
  return cycle_sub_sat(ev.estimate, ev.start);  // controller estimate
}

class PgPolicy {
 public:
  explicit PgPolicy(const PolicyContext& ctx) : ctx_(ctx) {}
  virtual ~PgPolicy() = default;
  PgPolicy(const PgPolicy&) = delete;
  PgPolicy& operator=(const PgPolicy&) = delete;

  virtual std::string name() const = 0;
  /// Decide, at stall onset, whether to gate for this stall.  Non-const so
  /// adaptive policies may carry state (e.g. learned stall predictors).
  virtual bool should_gate(const StallEvent& ev) = 0;
  virtual WakeMode wake_mode() const = 0;
  /// Idle cycles to wait before starting entry (idle-timeout policies).
  virtual Cycle gate_delay() const { return 0; }
  /// Sleep depth for a stall the policy chose to gate.  Default: deep
  /// (single-mode platforms ignore the light state entirely).
  virtual SleepMode sleep_mode(const StallEvent& /*ev*/) {
    return SleepMode::kDeep;
  }
  /// Feedback hook: called by the controller once per stall after the stall
  /// has resolved, whether or not it was gated.  (In hardware, the PG
  /// controller timestamps stall onset and the wake/data-arrival event, so
  /// the true length is observable even while gated.)
  virtual void observe(const StallEvent& /*ev*/) {}
  /// True when the policy opts into coordinated CPU–DRAM gating: while the
  /// core is gated for a stall, idle DRAM channels are parked in precharge
  /// power-down and woken hidden under the known data-return cycle.  Takes
  /// effect only when the platform enables DramPowerMode::kCoordinated —
  /// see pg/dram_coordinator.h.  Policies gain it via the "-dram" spec
  /// suffix (pg/factory.h), which wraps them in DramCoordinatedPolicy.
  virtual bool coordinate_dram() const { return false; }

  const PolicyContext& context() const { return ctx_; }

 protected:
  PolicyContext ctx_;
};

}  // namespace mapg
