#include "pg/wake_arbiter.h"

#include <algorithm>
#include <cassert>

namespace mapg {

WakeArbiter::WakeArbiter(std::uint32_t slots) : lanes_(slots) {}

Cycle WakeArbiter::earliest_fit(const Lane& lane, Cycle requested,
                                Cycle duration) {
  Cycle start = requested;
  // Intervals are sorted by start and disjoint: walk forward, sliding the
  // candidate window past every reservation it overlaps.
  for (const Interval& iv : lane) {
    if (iv.end <= start) continue;          // entirely before the candidate
    if (iv.start >= start + duration) break;  // candidate fits before it
    start = iv.end;                         // collide: slide past
  }
  return start;
}

void WakeArbiter::prune(Cycle floor) {
  // A future request never starts before its own floor, and floors are
  // non-decreasing, so reservations ending at or before `floor` can no
  // longer collide with anything.
  for (Lane& lane : lanes_) {
    lane.erase(std::remove_if(lane.begin(), lane.end(),
                              [floor](const Interval& iv) {
                                return iv.end <= floor;
                              }),
               lane.end());
  }
}

Cycle WakeArbiter::reserve(Cycle requested, Cycle duration, Cycle floor) {
  if (lanes_.empty() || duration == 0) return requested;  // unlimited
  prune(floor);

  Lane* best_lane = nullptr;
  Cycle best_start = kNoCycle;
  for (Lane& lane : lanes_) {
    const Cycle start = earliest_fit(lane, requested, duration);
    if (start < best_start) {
      best_start = start;
      best_lane = &lane;
      if (start == requested) break;  // cannot do better
    }
  }
  assert(best_lane != nullptr);

  const Interval iv{best_start, best_start + duration};
  // Insert keeping the lane sorted by start.
  const auto pos = std::upper_bound(
      best_lane->begin(), best_lane->end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  best_lane->insert(pos, iv);

  if (best_start > requested) {
    ++delayed_grants_;
    delay_cycles_ += best_start - requested;
  }
  return best_start;
}

}  // namespace mapg
