#include "pg/stall_kernel.h"

#include <algorithm>
#include <cassert>

namespace mapg {

// ---------------------------------------------------------------------------
// Fast-forward (closed-form) kernel
// ---------------------------------------------------------------------------

StallWindowOutcome resolve_stall_fast(PgPolicy& policy,
                                      const PgCircuit& circuit,
                                      WakeArbiter* arbiter,
                                      const StallKernelParams& params,
                                      const StallEvent& ev,
                                      const GateDecision& decision) {
  StallWindowOutcome out;

  if (!decision.gate) {
    out.resume = ev.data_ready;
    out.idle_ungated_cycles = ev.data_ready - ev.start;
  } else if (decision.gate_start >= ev.data_ready) {
    // The idle-timeout wait consumed the whole stall: no transition happens.
    out.timeout_missed = true;
    out.resume = ev.data_ready;
    out.idle_ungated_cycles = ev.data_ready - ev.start;
  } else {
    const SleepMode mode = policy.sleep_mode(ev);
    const Cycle entry_lat = circuit.entry_latency_cycles();
    const Cycle wake_lat = circuit.wakeup_latency_cycles(mode);
    const Cycle entry_end = decision.gate_start + entry_lat;

    Cycle wake_start = 0;
    switch (policy.wake_mode()) {
      case WakeMode::kOracle:
        wake_start = cycle_sub_sat(ev.data_ready, wake_lat);
        break;
      case WakeMode::kEarly:
        // The MC can schedule the wakeup `wake_lat` ahead of the return, but
        // not before the return time is exactly known (the commit point).
        wake_start =
            std::max(ev.commit, cycle_sub_sat(ev.data_ready, wake_lat));
        break;
      case WakeMode::kReactive:
        wake_start = ev.data_ready;
        break;
    }
    // The sleep sequence is not interruptible: wakeup waits for entry to end.
    wake_start = std::max(wake_start, entry_end);

    // Shared di/dt budget: the wakeup window may be postponed until a slot
    // frees up (the core simply stays gated while it waits).
    if (arbiter != nullptr)
      wake_start = arbiter->reserve(wake_start, wake_lat, ev.start);

    // All wake modes request the wakeup no later than data_ready - wake_lat
    // is feasible, so the wake always covers the data return:
    assert(wake_start + wake_lat >= ev.data_ready);

    out.resume = std::max(ev.data_ready, wake_start + wake_lat);
    out.gated = true;
    out.mode = mode;
    out.entry_cycles = entry_lat;
    out.gated_cycles = wake_start - entry_end;
    out.wake_cycles = wake_lat;
    out.idle_ungated_cycles = decision.gate_start - ev.start;
  }

  // Coordinated CPU–DRAM gating: a gated stall parks the idle channels in
  // power-down for the closed-form window (pg/dram_coordinator.h).
  if (out.gated && params.dram_pd.enabled && policy.coordinate_dram()) {
    const PdWindow w = coordinated_pd_window(
        params.dram_pd, decision.gate_start, ev.data_ready);
    out.dram_pd_cycles =
        static_cast<std::uint64_t>(w.per_channel_cycles()) *
        params.dram_pd.idle_channels;
  }

  out.refresh_overlap_cycles = refresh_window_overlap(
      ev.start, out.resume, params.t_refi, params.t_rfc);
  out.window_energy_j = stall_window_energy_j(
      params.rates, StallPhaseCycles{.idle_ungated = out.idle_ungated_cycles,
                                     .entry = out.entry_cycles,
                                     .gated = out.gated_cycles,
                                     .wake = out.wake_cycles,
                                     .dram_pd = out.dram_pd_cycles,
                                     .mode = out.mode});
  return out;
}

// ---------------------------------------------------------------------------
// Cycle-accurate reference kernel
// ---------------------------------------------------------------------------

namespace {
/// What the core was doing during the cycle just ticked (drives metering).
enum class Phase : std::uint8_t {
  kWaiting,   ///< stalled, clock running, no gating in effect yet
  kEntry,     ///< isolating outputs / draining the virtual rail
  kGated,     ///< rail collapsed: leakage being saved
  kWake,      ///< staged turn-on + settle
  kResolved,  ///< window over; no further cycles belong to this stall
};
}  // namespace

/// Per-cycle gating FSM.  Evaluates the timeout edge, the entry/gated/wake
/// phase boundaries, and the mode-specific wake condition at each cycle, and
/// performs the policy/arbiter calls at the first cycle the corresponding
/// condition holds — exactly where the closed-form kernel places them.
class SteppedStallKernel::PhaseFsm final : public ClockedComponent {
 public:
  PhaseFsm(PgPolicy& policy, const PgCircuit& circuit, WakeArbiter* arbiter)
      : policy_(policy), circuit_(circuit), arbiter_(arbiter) {}

  void reset(const StallEvent& ev, const GateDecision& decision,
             StallWindowOutcome* out) {
    ev_ = ev;
    decision_ = decision;
    out_ = out;
    phase_ = Phase::kWaiting;
    ticked_phase_ = Phase::kWaiting;
    entry_left_ = 0;
    wake_left_ = 0;
    wake_lat_ = 0;
    wake_mode_ = WakeMode::kReactive;
    wake_requested_ = false;
    grant_ = 0;
  }

  bool resolved() const { return phase_ == Phase::kResolved; }
  /// Phase the core occupied during the cycle just dispatched (kResolved if
  /// that cycle lies past the window and was not consumed).
  Phase ticked_phase() const { return ticked_phase_; }

  void tick(Cycle t) override {
    ticked_phase_ = Phase::kResolved;
    switch (phase_) {
      case Phase::kWaiting:
        if (t >= ev_.data_ready) {
          // Data arrived before any gating took hold.  If the policy wanted
          // to gate, its timeout outlasted the stall (the `>=` edge).
          out_->timeout_missed = decision_.gate;
          out_->resume = ev_.data_ready;
          phase_ = Phase::kResolved;
          break;
        }
        if (decision_.gate && t >= decision_.gate_start) {
          // Entry begins this cycle; the policy commits to a sleep mode now,
          // in the same call order as the closed-form kernel.
          out_->gated = true;
          out_->mode = policy_.sleep_mode(ev_);
          wake_mode_ = policy_.wake_mode();
          entry_left_ = circuit_.entry_latency_cycles();
          wake_lat_ = circuit_.wakeup_latency_cycles(out_->mode);
          phase_ = Phase::kEntry;
          tick_entry(t);
          break;
        }
        ++out_->idle_ungated_cycles;
        ticked_phase_ = Phase::kWaiting;
        break;
      case Phase::kEntry:
        tick_entry(t);
        break;
      case Phase::kGated:
        tick_gated(t);
        break;
      case Phase::kWake:
        tick_wake(t);
        break;
      case Phase::kResolved:
        break;
    }
  }

 private:
  void tick_entry(Cycle t) {
    if (entry_left_ == 0) {  // entry_ns rounds to zero cycles
      phase_ = Phase::kGated;
      tick_gated(t);
      return;
    }
    ++out_->entry_cycles;
    ticked_phase_ = Phase::kEntry;
    if (--entry_left_ == 0) phase_ = Phase::kGated;
  }

  void tick_gated(Cycle t) {
    if (!wake_requested_ && wake_due(t)) {
      wake_requested_ = true;
      // Same arbiter call, same arguments, same call point as the closed
      // form: the first cycle the wake condition holds.
      grant_ = arbiter_ != nullptr ? arbiter_->reserve(t, wake_lat_, ev_.start)
                                   : t;
      wake_left_ = wake_lat_;
    }
    if (wake_requested_ && t >= grant_) {
      phase_ = Phase::kWake;
      tick_wake(t);
      return;
    }
    ++out_->gated_cycles;
    ticked_phase_ = Phase::kGated;
  }

  void tick_wake(Cycle t) {
    if (wake_left_ == 0) {  // degenerate zero-latency wake
      out_->resume = std::max(ev_.data_ready, t);
      phase_ = Phase::kResolved;
      return;
    }
    ++out_->wake_cycles;
    ticked_phase_ = Phase::kWake;
    if (--wake_left_ == 0) {
      out_->resume = std::max(ev_.data_ready, t + 1);
      phase_ = Phase::kResolved;
    }
  }

  /// Mode-specific wake condition at cycle t, evaluated only while gated.
  /// Monotone in t, so the first satisfying cycle equals the closed-form
  /// wake_start (pre-arbiter).
  bool wake_due(Cycle t) const {
    switch (wake_mode_) {
      case WakeMode::kOracle:
        return cycle_add(t, wake_lat_) >= ev_.data_ready;
      case WakeMode::kEarly:
        return t >= ev_.commit && cycle_add(t, wake_lat_) >= ev_.data_ready;
      case WakeMode::kReactive:
        return t >= ev_.data_ready;
    }
    return true;
  }

  PgPolicy& policy_;
  const PgCircuit& circuit_;
  WakeArbiter* arbiter_;

  StallEvent ev_{};
  GateDecision decision_{};
  StallWindowOutcome* out_ = nullptr;
  Phase phase_ = Phase::kResolved;
  Phase ticked_phase_ = Phase::kResolved;
  Cycle entry_left_ = 0;
  Cycle wake_left_ = 0;
  Cycle wake_lat_ = 0;
  WakeMode wake_mode_ = WakeMode::kReactive;
  bool wake_requested_ = false;
  Cycle grant_ = 0;
};

/// Meters coordinated DRAM power-down residency one cycle at a time — the
/// brute-force evaluation of coordinated_pd_window().  The window bounds are
/// precomputed at reset (they are a pure function of the decision and the
/// event, exactly what the closed form consumes), but membership is decided
/// per cycle so the stepped kernel never skips time.
class SteppedStallKernel::PowerDownMeter final : public ClockedComponent {
 public:
  PowerDownMeter(const PhaseFsm& fsm, const PgPolicy& policy,
                 const DramCoordinationParams& params,
                 const StallEnergyRates& rates)
      : fsm_(fsm), policy_(policy), params_(params), rates_(rates) {}

  void reset(const StallEvent& ev, const GateDecision& decision,
             StallWindowOutcome* out) {
    out_ = out;
    window_ = PdWindow{};
    if (decision.gate && params_.enabled && policy_.coordinate_dram())
      window_ = coordinated_pd_window(params_, decision.gate_start,
                                      ev.data_ready);
  }

  void tick(Cycle t) override {
    if (!window_.eligible) return;
    if (fsm_.ticked_phase() == Phase::kResolved) return;
    if (t < window_.established || t >= window_.exit_initiate) return;
    out_->dram_pd_cycles += params_.idle_channels;
    out_->window_energy_j -= rates_.dram_pd_saved_j * params_.idle_channels;
  }

 private:
  const PhaseFsm& fsm_;
  const PgPolicy& policy_;
  DramCoordinationParams params_;
  StallEnergyRates rates_;
  StallWindowOutcome* out_ = nullptr;
  PdWindow window_{};
};

/// Counts window cycles that overlap a DRAM refresh window, by per-cycle
/// modulo — the brute-force evaluation of refresh_busy_cycles().
class SteppedStallKernel::RefreshMeter final : public ClockedComponent {
 public:
  RefreshMeter(const PhaseFsm& fsm, Cycle t_refi, Cycle t_rfc)
      : fsm_(fsm), t_refi_(t_refi), t_rfc_(t_rfc) {}

  void reset(StallWindowOutcome* out) { out_ = out; }

  void tick(Cycle t) override {
    if (fsm_.ticked_phase() == Phase::kResolved) return;
    if (t_refi_ != 0 && (t % t_refi_) < t_rfc_)
      ++out_->refresh_overlap_cycles;
  }

 private:
  const PhaseFsm& fsm_;
  Cycle t_refi_;
  Cycle t_rfc_;
  StallWindowOutcome* out_ = nullptr;
};

/// Integrates the stall-window energy one cycle at a time — the brute-force
/// evaluation of stall_window_energy_j().
class SteppedStallKernel::EnergyMeter final : public ClockedComponent {
 public:
  EnergyMeter(const PhaseFsm& fsm, const StallEnergyRates& rates)
      : fsm_(fsm), rates_(rates) {}

  void reset(StallWindowOutcome* out) { out_ = out; }

  void tick(Cycle) override {
    double e;
    switch (fsm_.ticked_phase()) {
      case Phase::kResolved:
        return;
      case Phase::kWaiting:
        e = rates_.leak_j + rates_.dram_background_j + rates_.idle_clock_j;
        break;
      case Phase::kGated:
        e = rates_.leak_j + rates_.dram_background_j -
            rates_.saved_j(out_->mode);
        break;
      case Phase::kEntry:
      case Phase::kWake:
        e = rates_.leak_j + rates_.dram_background_j;
        break;
    }
    out_->window_energy_j += e;
  }

 private:
  const PhaseFsm& fsm_;
  StallEnergyRates rates_;
  StallWindowOutcome* out_ = nullptr;
};

SteppedStallKernel::SteppedStallKernel(PgPolicy& policy,
                                       const PgCircuit& circuit,
                                       WakeArbiter* arbiter,
                                       const StallKernelParams& params)
    : fsm_(std::make_unique<PhaseFsm>(policy, circuit, arbiter)),
      powerdown_(std::make_unique<PowerDownMeter>(*fsm_, policy,
                                                  params.dram_pd,
                                                  params.rates)),
      refresh_(
          std::make_unique<RefreshMeter>(*fsm_, params.t_refi, params.t_rfc)),
      energy_(std::make_unique<EnergyMeter>(*fsm_, params.rates)) {
  // FSM first: the meters classify cycle t by the phase it just recorded.
  components_ = {fsm_.get(), powerdown_.get(), refresh_.get(), energy_.get()};
}

SteppedStallKernel::~SteppedStallKernel() = default;

StallWindowOutcome SteppedStallKernel::resolve(const StallEvent& ev,
                                               const GateDecision& decision) {
  StallWindowOutcome out;
  fsm_->reset(ev, decision, &out);
  powerdown_->reset(ev, decision, &out);
  refresh_->reset(&out);
  energy_->reset(&out);
  for (Cycle t = ev.start; !fsm_->resolved(); ++t)
    for (ClockedComponent* c : components_) c->tick(t);
  return out;
}

}  // namespace mapg
