#include "pg/multimode.h"

namespace mapg {

double MultiModeMapgPolicy::expected_net(Cycle residual,
                                         SleepMode mode) const {
  // Net energy (in deep-rate cycle units): rate * gated_time - overhead,
  // where overhead = rate * BET by definition of the break-even time and
  // gated_time = residual - entry - wakeup (clamped at zero: the overhead
  // is paid even when nothing is gated).
  const double rate =
      mode == SleepMode::kDeep ? 1.0 : ctx_.light_save_frac;
  const Cycle wake = mode == SleepMode::kDeep ? ctx_.wakeup_latency
                                              : ctx_.light_wakeup_latency;
  const Cycle bet = mode == SleepMode::kDeep ? ctx_.break_even
                                             : ctx_.light_break_even;
  const Cycle gated =
      cycle_sub_sat(residual, ctx_.entry_latency + wake);
  return rate * (static_cast<double>(gated) - static_cast<double>(bet));
}

bool MultiModeMapgPolicy::pick(const StallEvent& ev,
                               SleepMode& mode_out) const {
  if (!ev.dram) return false;
  if (ctx_.light_save_frac <= 0) {  // platform has no light mode
    mode_out = SleepMode::kDeep;
    return expected_net(known_residual(ev), SleepMode::kDeep) > 0;
  }
  const Cycle residual = known_residual(ev);
  const double net_deep = expected_net(residual, SleepMode::kDeep);
  const double net_light = expected_net(residual, SleepMode::kLight);
  if (net_deep <= 0 && net_light <= 0) return false;
  mode_out = net_deep >= net_light ? SleepMode::kDeep : SleepMode::kLight;
  return true;
}

bool MultiModeMapgPolicy::should_gate(const StallEvent& ev) {
  SleepMode mode;
  return pick(ev, mode);
}

SleepMode MultiModeMapgPolicy::sleep_mode(const StallEvent& ev) {
  SleepMode mode = SleepMode::kDeep;
  pick(ev, mode);
  return mode;
}

}  // namespace mapg
