// Coordinated CPU–DRAM gating (docs/MEMORY_POWER.md §5).
//
// MAPG's controller knows, for every gated stall, both when the core went to
// sleep and the exact (or committed) cycle the blocking data returns.  That
// same notice window is exactly what a DRAM low-power controller lacks: a
// timeout policy must burn `powerdown_timeout` idle cycles before dropping
// CKE, and then eats tXP on the next request.  Here the gating decision
// doubles as the channel power-down command — the idle (non-serving)
// channels drop CKE when core entry begins and are woken tXP ahead of the
// scheduled data return, so the exit is hidden and the residency starts a
// full timeout earlier than any reactive scheme.  This is the crossover the
// R-Tab.8 experiment measures.
//
// The model is deliberately kernel-friendly: given the gate decision and the
// stall event, the power-down window is a pure closed form
// (coordinated_pd_window), evaluated in one step by the fast-forward kernel
// and one cycle at a time by the stepped reference — the differential suite
// holds the two bit-identical.  Residency lands in
// GatingStats::dram_pd_channel_cycles, never in DramStats, so it can never
// double-count against the DRAM-side timeout machinery (which is off in
// kCoordinated mode; see mem/dram.h).
//
// Scope: single-core only.  With shared DRAM, no per-core controller can
// guarantee a channel stays idle for the window, so src/multicore keeps
// coordination disabled and uses the timeout machinery instead.
#pragma once

#include <memory>
#include <string>

#include "common/types.h"
#include "pg/policy.h"

namespace mapg {

/// Static inputs of the coordination closed form (derived from
/// DramPowerConfig by core/sim.h::make_stall_kernel_params).
struct DramCoordinationParams {
  bool enabled = false;  ///< DramPowerMode::kCoordinated selected
  Cycle t_pd = 0;        ///< CKE-low to power-down established
  Cycle t_xp = 0;        ///< exit ramp hidden before the data return
  Cycle t_cke = 0;       ///< minimum CKE-low residency
  /// Channels that can park during a stall: all but the one serving the
  /// blocking request (channels - 1).
  std::uint32_t idle_channels = 0;
};

/// The power-down window one gated stall earns the idle channels.
struct PdWindow {
  bool eligible = false;
  Cycle established = 0;    ///< gate_start + t_pd
  Cycle exit_initiate = 0;  ///< data_ready - t_xp (exit fully hidden)

  /// Residency per parked channel (core cycles); eligible implies >= t_cke.
  Cycle per_channel_cycles() const {
    return eligible ? exit_initiate - established : 0;
  }
};

/// Closed form of the coordinated window: the idle channels drop CKE at
/// `gate_start`, are established after t_pd, must hold CKE low for t_cke,
/// and must complete the tXP exit ramp by `data_ready`.  Not eligible when
/// that chain does not fit inside the stall.
PdWindow coordinated_pd_window(const DramCoordinationParams& params,
                               Cycle gate_start, Cycle data_ready);

/// Decorator that opts any policy into coordinated CPU–DRAM gating.  All
/// decisions are forwarded to the inner policy unchanged — coordination
/// alters no core timing, only DRAM channel residency — so "mapg-dram"
/// gates exactly like "mapg".  Produced by the "-dram" suffix in
/// pg/factory.cpp.
class DramCoordinatedPolicy final : public PgPolicy {
 public:
  explicit DramCoordinatedPolicy(std::unique_ptr<PgPolicy> inner)
      : PgPolicy(inner->context()), inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name() + "-dram"; }
  bool should_gate(const StallEvent& ev) override {
    return inner_->should_gate(ev);
  }
  WakeMode wake_mode() const override { return inner_->wake_mode(); }
  Cycle gate_delay() const override { return inner_->gate_delay(); }
  SleepMode sleep_mode(const StallEvent& ev) override {
    return inner_->sleep_mode(ev);
  }
  void observe(const StallEvent& ev) override { inner_->observe(ev); }
  bool coordinate_dram() const override { return true; }

 private:
  std::unique_ptr<PgPolicy> inner_;
};

}  // namespace mapg
