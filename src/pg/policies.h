// Concrete power-gating policies: the MAPG contribution, its ablations, and
// the reconstructed baselines (see DESIGN.md §2).
#pragma once

#include <memory>
#include <string>

#include "pg/policy.h"

namespace mapg {

/// Baseline: never gate.  Defines the energy/runtime reference point.
class NoGatingPolicy final : public PgPolicy {
 public:
  using PgPolicy::PgPolicy;
  std::string name() const override { return "no-gating"; }
  bool should_gate(const StallEvent&) override { return false; }
  WakeMode wake_mode() const override { return WakeMode::kReactive; }
};

/// Conventional idle-driven PG: after `timeout` consecutive idle cycles the
/// core gates, with no knowledge of why it is idle or when work returns;
/// wakeup is reactive (data arrival starts the wakeup, paying its latency).
///
/// The `early_wake` variant ("idle-timeout-early") keeps the blind timeout
/// entry but borrows MAPG's memory-controller-initiated wakeup.  It
/// decomposes MAPG's advantage into its two mechanisms: immediate
/// cause-driven entry vs. schedulable wakeup (R-Tab.3).
class IdleTimeoutPolicy final : public PgPolicy {
 public:
  IdleTimeoutPolicy(const PolicyContext& ctx, Cycle timeout,
                    bool early_wake = false)
      : PgPolicy(ctx), timeout_(timeout), early_wake_(early_wake) {}

  std::string name() const override {
    return std::string("idle-timeout-") + (early_wake_ ? "early-" : "") +
           std::to_string(timeout_);
  }
  bool should_gate(const StallEvent&) override { return true; }
  WakeMode wake_mode() const override {
    return early_wake_ ? WakeMode::kEarly : WakeMode::kReactive;
  }
  Cycle gate_delay() const override { return timeout_; }

 private:
  Cycle timeout_;
  bool early_wake_;
};

/// Clairvoyant upper bound: knows the true stall length, gates exactly the
/// profitable stalls, and lands the wakeup on the data-arrival cycle.
class OraclePolicy final : public PgPolicy {
 public:
  using PgPolicy::PgPolicy;
  std::string name() const override { return "oracle"; }
  bool should_gate(const StallEvent& ev) override {
    // Profitable iff the gated portion (length minus entry and wakeup)
    // exceeds the break-even time.
    const Cycle len = ev.length();  // clairvoyant access is the point here
    return len >= ctx_.entry_latency + ctx_.wakeup_latency + ctx_.break_even;
  }
  WakeMode wake_mode() const override { return WakeMode::kOracle; }
};

/// MAPG: gate on full-core DRAM stalls whose *known or estimated* residual
/// clears the profitability threshold; wake early via the memory controller.
///
/// `alpha` scales the break-even margin in the threshold
///   residual >= entry + wakeup + alpha * BET
/// (alpha > 1 gates more conservatively, alpha < 1 more eagerly).
class MapgPolicy final : public PgPolicy {
 public:
  struct Options {
    double alpha = 1.0;
    bool aggressive = false;   ///< gate on ANY dram stall (skip threshold)
    bool early_wake = true;    ///< ablation: false = reactive wakeup
    bool dram_only = true;     ///< ablation: false = gate on every stall
  };

  MapgPolicy(const PolicyContext& ctx, Options opt)
      : PgPolicy(ctx), opt_(opt) {}

  std::string name() const override;
  bool should_gate(const StallEvent& ev) override;
  WakeMode wake_mode() const override {
    return opt_.early_wake ? WakeMode::kEarly : WakeMode::kReactive;
  }
  const Options& options() const { return opt_; }

 private:
  Options opt_;
};

}  // namespace mapg
