// Policy construction from textual specs, used by examples and benches:
//   "none"                      NoGatingPolicy
//   "idle-timeout:<N>"          IdleTimeoutPolicy with an N-cycle timeout
//   "oracle"                    OraclePolicy
//   "mapg"                      MapgPolicy, conservative defaults
//   "mapg:alpha=<f>"            conservative with a scaled margin
//   "mapg-aggressive"           gate on every DRAM stall
//   "mapg-noearly"              ablation: reactive wakeup
//   "mapg-unfiltered"           ablation: gate on every stall, even non-DRAM
//   "mapg-history[:ewma=<f>]"   EWMA stall predictor (no MC estimate bus)
//   "mapg-hybrid[:ewma=<f>]"    estimate AND history must agree
//   "mapg-multimode"            per-stall light/deep sleep selection
//   "idle-timeout-early:<N>"    timeout entry + MC-initiated wakeup
//   "<spec>-dram"               any of the above + coordinated CPU–DRAM
//                               gating: idle channels park in power-down
//                               during gated stalls (pg/dram_coordinator.h;
//                               needs DramPowerMode::kCoordinated)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pg/policies.h"

namespace mapg {

/// Returns nullptr on an unrecognized spec.
std::unique_ptr<PgPolicy> make_policy(const std::string& spec,
                                      const PolicyContext& ctx);

/// The policy set used by the headline comparison (R-Tab.1).
std::vector<std::string> standard_policy_specs();

/// The full set including ablation variants (R-Tab.3).
std::vector<std::string> ablation_policy_specs();

}  // namespace mapg
