// PgController: the one place where gating decisions become cycles.
//
// Implements the core's StallHandler.  For each full-core stall it asks the
// policy for a decision, then applies the circuit timing uniformly:
//
//   stall.start                                   data_ready       resume
//     |---(gate_delay)---|--entry--|----gated----|--wakeup--|........|
//                     gate_start  entry_end   wake_start
//
//   wake_start = data_ready - wakeup        (oracle)
//              = max(commit, data_ready - wakeup)  (early / MAPG)
//              = data_ready                 (reactive)
//   and never before entry_end.
//   resume     = max(data_ready, wake_start + wakeup).
//
// Everything after the decision — degenerate gating when the data arrives
// during entry, penalties when the wakeup cannot be hidden, break-even
// bookkeeping — is handled here so all policies are scored identically.
//
// The timing itself is resolved by one of two interchangeable kernels
// (pg/stall_kernel.h): the closed-form fast-forward kernel (default) or the
// cycle-accurate stepped reference, selected by StallKernelParams::mode.
// Both produce bit-identical statistics; tests/test_differential.cpp proves
// it.
#pragma once

#include <memory>

#include "common/stats.h"
#include "cpu/core.h"
#include "pg/policy.h"
#include "pg/stall_kernel.h"
#include "pg/wake_arbiter.h"
#include "power/energy_model.h"
#include "power/pg_circuit.h"

namespace mapg {

struct GatingStats {
  GatingActivity activity;
  std::uint64_t eligible_stalls = 0;   ///< stalls presented to the policy
  std::uint64_t gated_events = 0;      ///< decisions that led to a transition
  std::uint64_t skipped_events = 0;    ///< policy declined
  std::uint64_t timeout_missed = 0;    ///< gate_delay outlasted the stall
  std::uint64_t aborted_entries = 0;   ///< data arrived by end of entry
  std::uint64_t unprofitable_events = 0;  ///< gated interval < break-even
  std::uint64_t penalty_cycles = 0;    ///< resume beyond data_ready, summed
  /// Stall cycles spent idle but NOT in any gating phase (waiting out a
  /// timeout, or a skipped/missed stall).  Makes cycle conservation exact:
  ///   entry + gated + wake + idle_ungated == core idle cycles.
  std::uint64_t idle_ungated_cycles = 0;
  /// Stall-window cycles overlapping a DRAM refresh window (t_rfc out of
  /// every t_refi); counted closed-form by the fast kernel, per-cycle by the
  /// reference.  0 when refresh metering is not configured.
  std::uint64_t refresh_window_cycles = 0;
  /// Coordinated CPU–DRAM gating (pg/dram_coordinator.h): DRAM channel-
  /// cycles parked in power-down under gated stalls, and the gated windows
  /// that earned any.  Mutually exclusive with DramStats' timeout-driven
  /// residency counters, so energy accounting sums both without overlap.
  std::uint64_t dram_pd_channel_cycles = 0;
  std::uint64_t dram_pd_windows = 0;
  Histogram gated_len_hist{0.0, 1024.0, 64};

  double gate_rate() const {
    return eligible_stalls ? static_cast<double>(gated_events) /
                                 static_cast<double>(eligible_stalls)
                           : 0.0;
  }
};

class PgController final : public StallHandler {
 public:
  /// `arbiter` (optional, shared across cores) rations concurrent wakeup
  /// windows against the package di/dt budget; null = unlimited.  `params`
  /// selects the stall kernel (fast-forward by default) and carries the
  /// refresh-timing / energy-rate inputs for the window meters.
  PgController(PgPolicy& policy, const PgCircuit& circuit,
               WakeArbiter* arbiter = nullptr, StallKernelParams params = {});
  ~PgController();

  Cycle on_stall(const StallEvent& ev) override;

  const GatingStats& stats() const { return stats_; }
  const GatingActivity& activity() const { return stats_.activity; }
  void reset_stats() {
    stats_ = GatingStats{};
    stall_energy_j_ = 0;
  }

  StepMode step_mode() const { return params_.mode; }

  /// Accumulated stall-window energy (J): closed-form per window in
  /// fast-forward mode, per-cycle integral in cycle-accurate mode.  A
  /// cross-check channel (Ghose-style "what is your model not telling you"),
  /// deliberately NOT part of SimResult so the two modes stay bit-identical.
  double stall_window_energy_j() const { return stall_energy_j_; }

  /// Derive the PolicyContext a policy should be constructed with so its
  /// thresholds match this circuit.
  static PolicyContext make_context(const PgCircuit& circuit) {
    return PolicyContext{
        .entry_latency = circuit.entry_latency_cycles(),
        .wakeup_latency = circuit.wakeup_latency_cycles(),
        .break_even = circuit.break_even_cycles(),
        .light_wakeup_latency =
            circuit.wakeup_latency_cycles(SleepMode::kLight),
        .light_break_even = circuit.break_even_cycles(SleepMode::kLight),
        .light_save_frac = circuit.save_fraction(SleepMode::kLight)};
  }

 private:
  PgPolicy& policy_;
  const PgCircuit& circuit_;
  WakeArbiter* arbiter_;
  StallKernelParams params_;
  /// Non-null iff params_.mode == kCycleAccurate.
  std::unique_ptr<SteppedStallKernel> stepped_;
  GatingStats stats_;
  double stall_energy_j_ = 0;
#if MAPG_OBS_ENABLED
  /// Plain per-controller tallies flushed to the MetricsRegistry in the
  /// destructor — keeps the per-stall path free of atomics and TLS lookups.
  std::uint64_t obs_windows_ = 0;
  std::uint64_t obs_refresh_windows_ = 0;
  std::uint64_t obs_dram_pd_windows_ = 0;
  std::uint64_t obs_dram_pd_cycles_ = 0;
#endif
};

}  // namespace mapg
