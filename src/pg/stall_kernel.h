// The two stall-resolution kernels behind PgController.
//
// A full-core stall window [start, resume) is fully determined at onset: the
// data-return cycle is known (StallEvent), the policy's decision is a pure
// function of the event, and the circuit latencies are constants.  The
// fast-forward kernel (resolve_stall_fast) therefore resolves the whole
// window in closed form — timeout edge, entry, gated phase, wake request,
// arbiter grant, resume — without ever iterating a cycle.
//
// SteppedStallKernel is the cycle-accurate reference: a per-cycle loop that
// dispatches tick(t) to clocked components (the gating-phase FSM, a DRAM
// refresh-occupancy meter, an energy integrator) and advances one cycle at a
// time, the way a naive cycle-driven simulator is written.  It fires the
// timeout/break-even/wakeup edges at the exact cycle the condition first
// holds and calls the policy and the wake arbiter at the same logical points
// as the fast path.
//
// Contract (enforced by tests/test_differential.cpp): both kernels produce
// identical StallWindowOutcome integer fields and identical policy/arbiter
// call sequences for every event; window_energy_j agrees to floating-point
// tolerance (closed-form products vs per-cycle summation).
//
// Checkpoint anchor contract (src/replay/checkpoint.h, docs/MODEL.md §4c):
// neither kernel carries mutable state ACROSS windows — each resolution is a
// pure function of (StallEvent, GateDecision, StallKernelParams).  In
// particular the refresh-occupancy meter is anchored in ABSOLUTE time
// (windows at multiples of t_refi, same recurrence as Dram::skip_refresh),
// never in elapsed-since-last-window time.  This is what makes a
// prefix-resumed controller exact: rebuilding it by feeding the recorded
// event prefix reproduces byte-identical state, with no hidden phase to
// restore.  tests/test_checkpoint.cpp falsifies this window by window.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "cpu/core.h"
#include "pg/dram_coordinator.h"
#include "pg/policy.h"
#include "pg/wake_arbiter.h"
#include "power/interval_energy.h"
#include "power/pg_circuit.h"

namespace mapg {

/// The policy's decision at stall onset, resolved before either kernel runs
/// so both see the identical decision (and stateful policies are queried in
/// the identical order).
struct GateDecision {
  bool gate = false;
  Cycle gate_start = 0;  ///< stall.start + gate_delay; valid when gate
};

/// Everything one stall window resolves to.  PgController applies this to
/// its statistics uniformly, so both kernels are scored identically.
struct StallWindowOutcome {
  Cycle resume = 0;            ///< cycle the core may issue again
  bool gated = false;          ///< a sleep/wake transition happened
  bool timeout_missed = false; ///< gate_delay consumed the whole stall
  SleepMode mode = SleepMode::kDeep;  ///< meaningful when gated
  std::uint64_t entry_cycles = 0;
  std::uint64_t gated_cycles = 0;
  std::uint64_t wake_cycles = 0;
  std::uint64_t idle_ungated_cycles = 0;   ///< stalled, clock on, not gating
  std::uint64_t refresh_overlap_cycles = 0;  ///< window cycles inside t_rfc
  /// DRAM channel-cycles parked in coordinated power-down during this window
  /// (pg/dram_coordinator.h); 0 unless coordination is enabled, the policy
  /// opted in, and the window was eligible.
  std::uint64_t dram_pd_cycles = 0;
  double window_energy_j = 0;  ///< stall-window energy (cross-check only)
};

/// Static inputs shared by both kernels beyond (policy, circuit, arbiter).
struct StallKernelParams {
  StepMode mode = StepMode::kFastForward;
  Cycle t_refi = 0;  ///< DRAM refresh interval; 0 disables overlap metering
  Cycle t_rfc = 0;
  StallEnergyRates rates{};  ///< all-zero disables the energy cross-check
  /// Coordinated CPU–DRAM gating inputs; disabled unless the platform runs
  /// DramPowerMode::kCoordinated (and then only policies with
  /// coordinate_dram() actually park channels).
  DramCoordinationParams dram_pd{};
};

/// Closed-form resolution.  This is the production path; its arithmetic is
/// the original event-driven controller logic and must stay byte-identical
/// to it (the golden tests pin end-to-end results through here).
StallWindowOutcome resolve_stall_fast(PgPolicy& policy,
                                      const PgCircuit& circuit,
                                      WakeArbiter* arbiter,
                                      const StallKernelParams& params,
                                      const StallEvent& ev,
                                      const GateDecision& decision);

/// One per-cycle-ticked model in the reference kernel.  tick(t) accounts for
/// cycle t (the interval [t, t+1)); components are dispatched in a fixed
/// order each cycle, FSM first.
class ClockedComponent {
 public:
  virtual ~ClockedComponent() = default;
  virtual void tick(Cycle t) = 0;
};

/// The cycle-accurate reference kernel.  Construct once per controller;
/// resolve() walks one stall window cycle by cycle.
class SteppedStallKernel {
 public:
  SteppedStallKernel(PgPolicy& policy, const PgCircuit& circuit,
                     WakeArbiter* arbiter, const StallKernelParams& params);
  ~SteppedStallKernel();

  StallWindowOutcome resolve(const StallEvent& ev,
                             const GateDecision& decision);

 private:
  class PhaseFsm;
  class PowerDownMeter;
  class RefreshMeter;
  class EnergyMeter;

  std::unique_ptr<PhaseFsm> fsm_;
  std::unique_ptr<PowerDownMeter> powerdown_;
  std::unique_ptr<RefreshMeter> refresh_;
  std::unique_ptr<EnergyMeter> energy_;
  std::vector<ClockedComponent*> components_;
};

}  // namespace mapg
