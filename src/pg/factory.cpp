#include "pg/factory.h"

#include <cstdlib>
#include <string_view>

#include "pg/adaptive.h"
#include "pg/dram_coordinator.h"
#include "pg/multimode.h"

namespace mapg {
namespace {

/// Parse "key=value" after "name:"; returns value or dflt.
double spec_param(const std::string& spec, const std::string& key,
                  double dflt) {
  const auto pos = spec.find(key + "=");
  if (pos == std::string::npos) return dflt;
  return std::strtod(spec.c_str() + pos + key.size() + 1, nullptr);
}

}  // namespace

std::unique_ptr<PgPolicy> make_policy(const std::string& spec,
                                      const PolicyContext& ctx) {
  // A "-dram" suffix on the policy name opts it into coordinated CPU–DRAM
  // gating (pg/dram_coordinator.h): "mapg-dram", "oracle-dram",
  // "mapg-history-dram:ewma=0.2", ...  Checked first because several base
  // names are matched by prefix below.
  {
    const auto colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    constexpr std::string_view kSuffix = "-dram";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      std::string inner = name.substr(0, name.size() - kSuffix.size());
      if (colon != std::string::npos) inner += spec.substr(colon);
      auto wrapped = make_policy(inner, ctx);
      if (wrapped == nullptr) return nullptr;
      return std::make_unique<DramCoordinatedPolicy>(std::move(wrapped));
    }
  }

  if (spec == "none" || spec == "no-gating")
    return std::make_unique<NoGatingPolicy>(ctx);

  if (spec.rfind("idle-timeout", 0) == 0) {
    Cycle timeout = 64;
    const auto colon = spec.find(':');
    if (colon != std::string::npos)
      timeout = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    const bool early = spec.find("early") != std::string::npos;
    return std::make_unique<IdleTimeoutPolicy>(ctx, timeout, early);
  }

  if (spec == "oracle") return std::make_unique<OraclePolicy>(ctx);

  if (spec == "mapg-multimode")
    return std::make_unique<MultiModeMapgPolicy>(ctx);

  if (spec.rfind("mapg-hybrid", 0) == 0) {
    HistoryMapgPolicy::Options opt;
    opt.ewma_weight = spec_param(spec, "ewma", 0.125);
    return std::make_unique<HybridMapgPolicy>(ctx, opt);
  }

  if (spec.rfind("mapg-history", 0) == 0) {
    HistoryMapgPolicy::Options opt;
    opt.alpha = spec_param(spec, "alpha", 1.0);
    opt.ewma_weight = spec_param(spec, "ewma", 0.125);
    return std::make_unique<HistoryMapgPolicy>(ctx, opt);
  }

  if (spec.rfind("mapg", 0) == 0) {
    MapgPolicy::Options opt;
    opt.alpha = spec_param(spec, "alpha", 1.0);
    if (spec.find("aggressive") != std::string::npos) opt.aggressive = true;
    if (spec.find("noearly") != std::string::npos) opt.early_wake = false;
    if (spec.find("unfiltered") != std::string::npos) opt.dram_only = false;
    return std::make_unique<MapgPolicy>(ctx, opt);
  }

  return nullptr;
}

std::vector<std::string> standard_policy_specs() {
  return {"none", "idle-timeout:64", "oracle", "mapg", "mapg-aggressive"};
}

std::vector<std::string> ablation_policy_specs() {
  return {"none",          "oracle",
          "mapg",          "mapg-aggressive",
          "mapg-noearly",  "mapg-unfiltered",
          "mapg-history",  "mapg-hybrid",
          "mapg-multimode",
          "idle-timeout:64", "idle-timeout-early:64"};
}

}  // namespace mapg
