#include "pg/policies.h"

#include <cmath>

namespace mapg {

std::string MapgPolicy::name() const {
  std::string n = "mapg";
  if (opt_.aggressive) n += "-aggressive";
  if (!opt_.early_wake) n += "-noearly";
  if (!opt_.dram_only) n += "-unfiltered";
  if (opt_.alpha != 1.0 && !opt_.aggressive)
    n += "-a" + std::to_string(opt_.alpha).substr(0, 4);
  return n;
}

bool MapgPolicy::should_gate(const StallEvent& ev) {
  if (opt_.dram_only && !ev.dram) return false;
  if (opt_.aggressive) return true;
  const Cycle threshold =
      ctx_.entry_latency + ctx_.wakeup_latency +
      static_cast<Cycle>(std::llround(
          opt_.alpha * static_cast<double>(ctx_.break_even)));
  return known_residual(ev) >= threshold;
}

}  // namespace mapg
