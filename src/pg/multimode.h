// Multi-mode MAPG (extension feature): per-stall sleep-depth selection.
//
// Deep sleep has the higher savings *rate* but the larger entry cost, so
// there is a residual-length band — roughly between the light and deep
// profitability horizons — where the intermediate (light) sleep state nets
// more energy.  This policy evaluates the expected net savings of both
// modes against the known/estimated residual and picks the best (or
// declines).  With fast memory (short stalls), light mode recovers savings
// that deep-only MAPG must forgo; with slow memory it converges to plain
// MAPG.  R-Tab.4 quantifies this across DRAM speeds.
#pragma once

#include "pg/policy.h"

namespace mapg {

class MultiModeMapgPolicy final : public PgPolicy {
 public:
  explicit MultiModeMapgPolicy(const PolicyContext& ctx) : PgPolicy(ctx) {}

  std::string name() const override { return "mapg-multimode"; }
  bool should_gate(const StallEvent& ev) override;
  WakeMode wake_mode() const override { return WakeMode::kEarly; }
  SleepMode sleep_mode(const StallEvent& ev) override;

  /// Expected net savings of gating a stall of residual length `r` in
  /// `mode`, in deep-savings-rate cycle units (i.e. divided by the deep
  /// per-cycle savings power).  Negative = a loss.  Exposed for tests.
  double expected_net(Cycle residual, SleepMode mode) const;

 private:
  /// Best mode for this stall, or no value if neither mode profits.
  bool pick(const StallEvent& ev, SleepMode& mode_out) const;
};

}  // namespace mapg
