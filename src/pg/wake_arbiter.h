// Shared wakeup arbiter (multicore extension).
//
// Each core's staged wakeup draws a bounded rush current (R-Fig.2), but the
// package-level di/dt budget is shared: if several cores begin their wakeup
// simultaneously, the combined in-rush exceeds what the power delivery
// network tolerates.  The arbiter grants at most `slots` concurrent wakeup
// windows; an over-subscribed wakeup is postponed to the earliest cycle
// where a slot is free — which can turn an otherwise-hidden early wakeup
// into visible runtime overhead.  R-Fig.8 sweeps the slot budget.
//
// Requests arrive in non-decreasing stall-onset order (`floor`), but the
// requested window starts are NOT monotonic (each core wakes relative to
// its own data-return time), so grants are interval reservations per slot
// lane rather than a simple high-water mark.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mapg {

class WakeArbiter {
 public:
  /// `slots` = maximum concurrent wakeups; 0 means unlimited (no arbiter).
  explicit WakeArbiter(std::uint32_t slots);

  /// Reserve a wakeup window of `duration` cycles starting no earlier than
  /// `requested`.  `floor` must be non-decreasing across calls (the stall
  /// onset time); no future request will ever start before its own floor,
  /// which lets the arbiter discard stale reservations.  Returns the
  /// granted window start (>= requested).
  Cycle reserve(Cycle requested, Cycle duration, Cycle floor);

  std::uint32_t slots() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  std::uint64_t delayed_grants() const { return delayed_grants_; }
  std::uint64_t delay_cycles() const { return delay_cycles_; }
  void reset_stats() {
    delayed_grants_ = 0;
    delay_cycles_ = 0;
  }

 private:
  struct Interval {
    Cycle start;
    Cycle end;
  };
  /// Reserved windows, sorted by start, non-overlapping within a lane.
  using Lane = std::vector<Interval>;

  /// Earliest start >= requested at which [start, start+duration) fits.
  static Cycle earliest_fit(const Lane& lane, Cycle requested,
                            Cycle duration);
  void prune(Cycle floor);

  std::vector<Lane> lanes_;
  std::uint64_t delayed_grants_ = 0;
  std::uint64_t delay_cycles_ = 0;
};

}  // namespace mapg
