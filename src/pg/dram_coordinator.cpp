#include "pg/dram_coordinator.h"

namespace mapg {

PdWindow coordinated_pd_window(const DramCoordinationParams& params,
                               Cycle gate_start, Cycle data_ready) {
  PdWindow w;
  if (!params.enabled || params.idle_channels == 0) return w;
  // Entry ramp + minimum residency + hidden exit ramp must all fit before
  // the scheduled data return; otherwise the channels stay active.  (This
  // also guarantees the subtractions below cannot underflow.)
  if (gate_start + params.t_pd + params.t_cke + params.t_xp > data_ready)
    return w;
  w.eligible = true;
  w.established = gate_start + params.t_pd;
  w.exit_initiate = data_ready - params.t_xp;
  return w;
}

}  // namespace mapg
