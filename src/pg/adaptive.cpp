#include "pg/adaptive.h"

#include <cmath>

namespace mapg {

bool HistoryMapgPolicy::should_gate(const StallEvent& ev) {
  if (!ev.dram) return false;
  const Cycle threshold =
      ctx_.entry_latency + ctx_.wakeup_latency +
      static_cast<Cycle>(std::llround(
          opt_.alpha * static_cast<double>(ctx_.break_even)));
  return prediction_ >= static_cast<double>(threshold);
}

void HistoryMapgPolicy::observe(const StallEvent& ev) {
  if (!ev.dram) return;
  const double len = static_cast<double>(ev.length());
  prediction_ += opt_.ewma_weight * (len - prediction_);
}

}  // namespace mapg
