// ExperimentRunner: grids of (workload x policy) with baseline-relative
// metrics.  Every bench binary is a thin wrapper over this.
//
// Since the exec subsystem landed, the runner is a scoring layer over
// ExperimentEngine: all simulation traffic (baselines, comparisons,
// replicated seeds) is routed through the engine, so it parallelizes across
// the engine's worker threads and memoizes through the shared result cache.
// Per-workload baselines live in the engine's content-addressed memory
// tier — every runner (and bench) sharing an engine shares them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/sim.h"
#include "exec/engine.h"

namespace mapg {

/// A SimResult scored against the same-workload no-gating baseline.
struct Comparison {
  SimResult result;

  /// 1 - E_total(policy) / E_total(baseline).
  double total_energy_savings = 0;
  /// 1 - E_core_domain(policy) / E_core_domain(baseline) — the paper-style
  /// headline metric (always-on cache leakage excluded from both sides).
  double core_energy_savings = 0;
  /// Net gated-region leakage reduction: (leak saved - PG overhead) over the
  /// baseline gated-region leakage.
  double net_leakage_savings = 0;
  /// cycles(policy) / cycles(baseline) - 1.
  double runtime_overhead = 0;
};

/// Baseline-relative metrics aggregated over independent trace seeds:
/// mean / stdev / min / max per metric.  Replication quantifies how much of
/// any observed difference is workload-draw noise.
struct ReplicatedComparison {
  std::string workload;
  std::string policy;
  RunningStat core_energy_savings;
  RunningStat total_energy_savings;
  RunningStat net_leakage_savings;
  RunningStat runtime_overhead;
  RunningStat mpki;
  RunningStat ipc;

  std::uint64_t replicates() const { return core_energy_savings.count(); }
};

class ExperimentRunner {
 public:
  /// Without an explicit engine, a private single-threaded, memory-only
  /// engine is created — same observable behaviour as the historical
  /// serial runner.  Pass a shared engine (see bench_util) for parallel
  /// execution and persistent caching.
  explicit ExperimentRunner(SimConfig config,
                            std::shared_ptr<ExperimentEngine> engine = {});

  /// Run (or fetch from cache) the no-gating baseline for a workload.
  const SimResult& baseline(const WorkloadProfile& profile);

  /// Run one policy and score it against the cached baseline.
  Comparison compare_one(const WorkloadProfile& profile,
                         const std::string& policy_spec);

  /// Run a policy list (baseline included or not) against one workload.
  /// The baseline and all policies execute as one engine batch.
  std::vector<Comparison> compare(const WorkloadProfile& profile,
                                  const std::vector<std::string>& specs);

  /// Run (workload, policy) under `n_seeds` independent trace draws
  /// (run_seed, run_seed+1, ...), each scored against its own same-seed
  /// baseline.  All 2*n_seeds simulations execute as one engine batch;
  /// aggregation order is seed order, so results are scheduling-invariant.
  ReplicatedComparison replicate(const WorkloadProfile& profile,
                                 const std::string& policy_spec,
                                 unsigned n_seeds);

  const Simulator& simulator() const { return sim_; }
  ExperimentEngine& engine() { return *engine_; }

 private:
  /// Unwrap an outcome, rethrowing per-job failures (bad policy specs must
  /// keep surfacing as exceptions to preserve the historical API).
  static const SimResult& unwrap(const JobOutcome& outcome);

  Simulator sim_;  ///< kept for config() and the simulator() accessor
  std::shared_ptr<ExperimentEngine> engine_;
  /// Pins the shared_ptr<const SimResult> entries so baseline() can hand
  /// out stable references; keyed by workload name.
  std::map<std::string, std::shared_ptr<const SimResult>> baselines_;
};

/// Score `result` against `base` (exposed for tests and custom harnesses).
Comparison score_against(const SimResult& base, SimResult result);

}  // namespace mapg
