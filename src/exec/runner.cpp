#include "exec/runner.h"

#include <stdexcept>

namespace mapg {

Comparison score_against(const SimResult& base, SimResult result) {
  Comparison c;
  const double e_base = base.energy.total_j();
  const double e_run = result.energy.total_j();
  if (e_base > 0) c.total_energy_savings = 1.0 - e_run / e_base;

  const double ec_base = base.energy.core_domain_j();
  const double ec_run = result.energy.core_domain_j();
  if (ec_base > 0) c.core_energy_savings = 1.0 - ec_run / ec_base;

  const double leak_base = base.energy.core_leak_baseline_j;
  if (leak_base > 0) {
    c.net_leakage_savings =
        (result.energy.core_leak_saved_j() - result.energy.pg_overhead_j) /
        leak_base;
  }

  if (base.core.cycles > 0) {
    c.runtime_overhead = static_cast<double>(result.core.cycles) /
                             static_cast<double>(base.core.cycles) -
                         1.0;
  }
  c.result = std::move(result);
  return c;
}

ExperimentRunner::ExperimentRunner(SimConfig config,
                                   std::shared_ptr<ExperimentEngine> engine)
    : sim_(std::move(config)), engine_(std::move(engine)) {
  if (!engine_) engine_ = std::make_shared<ExperimentEngine>();
}

const SimResult& ExperimentRunner::unwrap(const JobOutcome& outcome) {
  if (!outcome.ok) throw std::invalid_argument(outcome.error);
  return *outcome.result;
}

const SimResult& ExperimentRunner::baseline(const WorkloadProfile& profile) {
  auto it = baselines_.find(profile.name);
  if (it == baselines_.end()) {
    JobOutcome o = engine_->run_one({sim_.config(), profile, "none"});
    unwrap(o);
    it = baselines_.emplace(profile.name, std::move(o.result)).first;
  }
  return *it->second;
}

Comparison ExperimentRunner::compare_one(const WorkloadProfile& profile,
                                         const std::string& policy_spec) {
  const SimResult& base = baseline(profile);
  return score_against(
      base, unwrap(engine_->run_one({sim_.config(), profile, policy_spec})));
}

std::vector<Comparison> ExperimentRunner::compare(
    const WorkloadProfile& profile, const std::vector<std::string>& specs) {
  // One batch: the baseline plus every spec, deduplicated by the engine's
  // memoization and spread across its worker threads.
  std::vector<ExperimentJob> jobs;
  jobs.reserve(specs.size() + 1);
  jobs.push_back({sim_.config(), profile, "none"});
  for (const auto& spec : specs) jobs.push_back({sim_.config(), profile, spec});
  std::vector<JobOutcome> outcomes = engine_->run(jobs);

  const SimResult& base = unwrap(outcomes.front());
  baselines_.emplace(profile.name, outcomes.front().result);

  std::vector<Comparison> out;
  out.reserve(specs.size());
  for (std::size_t i = 1; i < outcomes.size(); ++i)
    out.push_back(score_against(base, SimResult(unwrap(outcomes[i]))));
  return out;
}

ReplicatedComparison ExperimentRunner::replicate(
    const WorkloadProfile& profile, const std::string& policy_spec,
    unsigned n_seeds) {
  SweepSpec spec;
  spec.base = sim_.config();
  spec.workloads = {profile};
  spec.policy_specs = {"none", policy_spec};
  spec.n_seeds = n_seeds;
  const SweepResult sweep = engine_->run_sweep(spec);

  ReplicatedComparison rep;
  rep.workload = profile.name;
  for (unsigned i = 0; i < n_seeds; ++i) {
    const SimResult& base = sweep.baseline(0, 0, i);
    Comparison c = score_against(base, SimResult(sweep.result(0, 0, 1, i)));
    rep.policy = c.result.policy;
    rep.core_energy_savings.add(c.core_energy_savings);
    rep.total_energy_savings.add(c.total_energy_savings);
    rep.net_leakage_savings.add(c.net_leakage_savings);
    rep.runtime_overhead.add(c.runtime_overhead);
    rep.mpki.add(c.result.mpki());
    rep.ipc.add(c.result.ipc());
  }
  return rep;
}

}  // namespace mapg
