// SimResult <-> JSON and the content-addressed cache key scheme.
//
// Two jobs, both in service of the persistent result cache (see
// docs/EXEC.md):
//
//  1. Exact serialization.  result_to_json / result_from_json cover every
//     field of SimResult — including histograms and running moments — such
//     that from(to(r)) reproduces r bit-for-bit (doubles are emitted with
//     %.17g, integers as decimal literals).  Equality of two results can
//     therefore be checked as equality of their canonical dumps.
//
//  2. Canonical experiment identity.  An experiment cell is the triple
//     (SimConfig, WorkloadProfile, policy spec); the trace seed lives inside
//     SimConfig.run_seed.  cache_key() hashes a canonical JSON encoding of
//     ALL fields of that triple (plus a schema-version tag, bumped whenever
//     the encoding or simulator semantics change) into a 128-bit hex key.
//     Any config/profile/policy/seed difference => different key.
#pragma once

#include <cstdint>
#include <string>

#include "core/sim.h"
#include "exec/json.h"

namespace mapg {

/// Bump when the serialized form or the meaning of cached results changes;
/// old cache entries are then simply never matched again.
/// v2: SimConfig::fast_forward joined the experiment identity, and
/// GatingStats grew idle_ungated_cycles / refresh_window_cycles.
/// v3: DRAM low-power states. DramConfig::power + the two DramEnergyParams
/// low-power draws joined the experiment identity; DramStats grew the
/// residency counters, GatingStats the coordinated-PD tallies, and
/// EnergyBreakdown the dram background / low-power-saved split.
/// v4: single-pass policy sweeps (src/replay).  Replayed cells are
/// bit-identical to direct runs (tests/test_replay.cpp), so the encoding is
/// unchanged; the bump draws a provenance boundary — every cached result
/// from v4 on was produced (or could have been produced) by the replay
/// engine, and caches written before it are never matched again.
/// v5: checkpoint + prefix-resume (src/replay/checkpoint.h).
/// SimConfig::checkpoint_stride joined the experiment identity — resumed
/// cells are bit-identical for any stride (tests/test_checkpoint.cpp), but
/// the knob follows the fast_forward precedent: equivalences stay
/// falsifiable, never assumed by the cache.  The bump is also the
/// prefix-resume provenance boundary.
/// v6: multi-standard DRAM backend (docs/DRAM.md).  The DramConfig standard
/// label, page policy (+ hybrid_addr_bits), and FR-FCFS posted-write queue
/// knobs (queue_depth, write_starve_limit) joined the experiment identity,
/// and DramStats grew the write-queue counters in the result encoding.  The
/// DDR3-1600 / open / depth-0 defaults are bit-identical to v5 behavior
/// (tests/test_dram_sched.cpp), but the identity now names the axes.
inline constexpr int kExecSchemaVersion = 6;

// --- Results ---
Json result_to_json(const SimResult& r);
/// Throws std::runtime_error on a malformed / wrong-schema document.
SimResult result_from_json(const Json& j);

/// Field-exact equality via canonical serialization.
bool results_equal(const SimResult& a, const SimResult& b);

// --- Experiment identity ---
/// Canonical JSON object naming every field of the experiment cell.
Json experiment_identity(const SimConfig& config,
                         const WorkloadProfile& profile,
                         const std::string& policy_spec);

/// 32-hex-char content hash of experiment_identity(...).dump().
std::string cache_key(const SimConfig& config, const WorkloadProfile& profile,
                      const std::string& policy_spec);

/// 64-bit FNV-1a over a byte string (exposed for tests).
std::uint64_t fnv1a64(const std::string& bytes,
                      std::uint64_t seed = 14695981039346656037ULL);

}  // namespace mapg
