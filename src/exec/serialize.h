// SimResult <-> JSON and the content-addressed cache key scheme.
//
// Two jobs, both in service of the persistent result cache (see
// docs/EXEC.md):
//
//  1. Exact serialization.  result_to_json / result_from_json cover every
//     field of SimResult — including histograms and running moments — such
//     that from(to(r)) reproduces r bit-for-bit (doubles are emitted with
//     %.17g, integers as decimal literals).  Equality of two results can
//     therefore be checked as equality of their canonical dumps.
//
//  2. Canonical experiment identity.  An experiment cell is the triple
//     (SimConfig, WorkloadProfile, policy spec); the trace seed lives inside
//     SimConfig.run_seed.  cache_key() hashes a canonical JSON encoding of
//     ALL fields of that triple (plus a schema-version tag, bumped whenever
//     the encoding or simulator semantics change) into a 128-bit hex key.
//     Any config/profile/policy/seed difference => different key.
#pragma once

#include <cstdint>
#include <string>

#include "core/sim.h"
#include "exec/json.h"

namespace mapg {

/// Bump when the serialized form or the meaning of cached results changes;
/// old cache entries are then simply never matched again.
/// v2: SimConfig::fast_forward joined the experiment identity, and
/// GatingStats grew idle_ungated_cycles / refresh_window_cycles.
/// v3: DRAM low-power states. DramConfig::power + the two DramEnergyParams
/// low-power draws joined the experiment identity; DramStats grew the
/// residency counters, GatingStats the coordinated-PD tallies, and
/// EnergyBreakdown the dram background / low-power-saved split.
/// v4: single-pass policy sweeps (src/replay).  Replayed cells are
/// bit-identical to direct runs (tests/test_replay.cpp), so the encoding is
/// unchanged; the bump draws a provenance boundary — every cached result
/// from v4 on was produced (or could have been produced) by the replay
/// engine, and caches written before it are never matched again.
/// v5: checkpoint + prefix-resume (src/replay/checkpoint.h).
/// SimConfig::checkpoint_stride joined the experiment identity — resumed
/// cells are bit-identical for any stride (tests/test_checkpoint.cpp), but
/// the knob follows the fast_forward precedent: equivalences stay
/// falsifiable, never assumed by the cache.  The bump is also the
/// prefix-resume provenance boundary.
/// v6: multi-standard DRAM backend (docs/DRAM.md).  The DramConfig standard
/// label, page policy (+ hybrid_addr_bits), and FR-FCFS posted-write queue
/// knobs (queue_depth, write_starve_limit) joined the experiment identity,
/// and DramStats grew the write-queue counters in the result encoding.  The
/// DDR3-1600 / open / depth-0 defaults are bit-identical to v5 behavior
/// (tests/test_dram_sched.cpp), but the identity now names the axes.
/// v7: trace-driven cells (docs/TRACE.md).  A job bound to an on-disk trace
/// carries a `trace` object in its identity: the trace's content digest
/// (FNV-1a64 over the record payload bytes — format/chunking/path
/// independent), the window offset, and the workload label.  Generator
/// cells encode exactly as in v6 apart from the tag; the bump is the
/// provenance boundary for trace-bound keys.
inline constexpr int kExecSchemaVersion = 7;

// --- Results ---
Json result_to_json(const SimResult& r);
/// Throws std::runtime_error on a malformed / wrong-schema document.
SimResult result_from_json(const Json& j);

/// Field-exact equality via canonical serialization.
bool results_equal(const SimResult& a, const SimResult& b);

// --- Experiment identity ---
/// Binds an experiment cell to a window of an on-disk trace instead of the
/// profile's generator.  Only content joins the identity: the digest names
/// the instruction stream (so renaming or re-chunking the file never splits
/// the cache and editing one record always does), offset names the window
/// start, and `name` labels results.  The path is resolution-only.
struct TraceBinding {
  std::string path;
  std::string digest_hex;    ///< trace_digest_hex of the stream digest
  std::uint64_t offset = 0;  ///< absolute instruction index of the window
  std::string name;          ///< workload label, e.g. "trace:app1"
};

/// Canonical JSON object naming every field of the experiment cell.  A
/// non-null `trace` adds the binding's content identity (v7).
Json experiment_identity(const SimConfig& config,
                         const WorkloadProfile& profile,
                         const std::string& policy_spec,
                         const TraceBinding* trace = nullptr);

/// 32-hex-char content hash of experiment_identity(...).dump().
std::string cache_key(const SimConfig& config, const WorkloadProfile& profile,
                      const std::string& policy_spec,
                      const TraceBinding* trace = nullptr);

/// 64-bit FNV-1a over a byte string (exposed for tests).
std::uint64_t fnv1a64(const std::string& bytes,
                      std::uint64_t seed = 14695981039346656037ULL);

}  // namespace mapg
