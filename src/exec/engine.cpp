#include "exec/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "exec/serialize.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "replay/replay.h"
#include "trace/trace_file.h"
#include "trace/trace_io.h"

namespace mapg {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

}  // namespace

const SimResult& SweepResult::result(std::size_t vi, std::size_t wi,
                                     std::size_t pi, std::size_t si) const {
  const JobOutcome& o = at(vi, wi, pi, si);
  if (!o.ok)
    throw std::runtime_error("sweep cell failed: " + o.error);
  return *o.result;
}

const SimResult& SweepResult::baseline(std::size_t vi, std::size_t wi,
                                       std::size_t si) const {
  if (baseline_policy == npos)
    throw std::runtime_error(
        "sweep has no 'none' policy to use as a baseline");
  return result(vi, wi, baseline_policy, si);
}

ExperimentEngine::ExperimentEngine(ExecOptions options)
    : options_(std::move(options)),
      cache_(std::make_unique<ResultCache>(
          options_.use_disk_cache ? options_.cache_dir : std::string{})) {
  if (options_.jobs == 0) options_.jobs = ThreadPool::default_threads();
  // Pre-register the engine's counter set so snapshots and traces carry the
  // same metrics every run (zeros included), not just the ones a particular
  // run happened to touch.
  MAPG_OBS_ONLY({
    auto& reg = obs::MetricsRegistry::instance();
    for (const char* name :
         {"exec.jobs.run", "exec.jobs.cached", "exec.jobs.failed",
          "exec.jobs.replayed", "exec.cache.mem_hit", "exec.cache.disk_hit",
          "exec.cache.miss", "exec.cache.store", "sim.replay.timelines",
          "sim.replay.windows", "sim.replay.cells",
          "sim.replay.full_fallbacks", "sim.replay.prefix_resumes",
          "sim.replay.windows_saved", "sim.sample.regions",
          "sim.sample.clusters", "sim.sample.simulated",
          "sim.sample.projected"})
      reg.counter(name);
  })
  if (!options_.log_jsonl.empty()) {
    log_ = std::make_unique<std::ofstream>(options_.log_jsonl,
                                           std::ios::app);
  }
}

ExperimentEngine::~ExperimentEngine() {
  // Close the run log with a metrics snapshot line (docs/OBSERVABILITY.md):
  // distinguishable from per-job lines by its "event" field.
  MAPG_OBS_ONLY(if (log_ && log_->is_open()) {
    *log_ << "{\"event\":\"metrics\",\"metrics\":"
          << obs::metrics_json_string() << "}\n";
  })
}

EngineStats ExperimentEngine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

JobOutcome ExperimentEngine::execute(
    const ExperimentJob& job,
    std::shared_ptr<const std::vector<Instr>> trace) {
  const std::string key =
      cache_key(job.config, job.profile, job.policy_spec,
                job.trace ? &*job.trace : nullptr);
  const double t0 = now_ms();
  [[maybe_unused]] std::uint64_t trace_ts = 0;
  MAPG_OBS_ONLY(if (obs::EventTracer::instance().enabled()) trace_ts =
                    obs::EventTracer::instance().now_ns();)
  JobOutcome out;

  if (std::shared_ptr<const SimResult> hit = cache_->get(key)) {
    out.result = std::move(hit);
    out.ok = true;
    out.from_cache = true;
    out.wall_ms = now_ms() - t0;
  } else {
    try {
      const Simulator sim(job.config);
      if (job.trace.has_value()) {
        // Trace-bound cell: stream the window from disk.  The digest check
        // keeps the cache honest — the key claims this content, so a file
        // swapped behind the binding must fail, not silently mis-key.
        FileTraceSource file(job.trace->path);
        if (!job.trace->digest_hex.empty() &&
            file.info().digest_hex() != job.trace->digest_hex)
          throw std::runtime_error(
              job.trace->path + ": content digest " +
              file.info().digest_hex() + " does not match binding " +
              job.trace->digest_hex);
        file.seek(job.trace->offset);
        LimitedTraceSource window(
            file, job.config.warmup_instructions + job.config.instructions);
        out.result = cache_->store(
            key, sim.run(window, job.trace->name, job.policy_spec));
      } else if (trace != nullptr) {
        // Shared materialized trace (replay-group fallback): the stream is
        // what a fresh generator would produce, so this is bit-identical to
        // the generator path.
        SharedTraceView view(std::move(trace));
        out.result = cache_->store(
            key, sim.run(view, job.profile.name, job.policy_spec));
      } else {
        out.result =
            cache_->store(key, sim.run(job.profile, job.policy_spec));
      }
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown exception";
    }
    out.wall_ms = now_ms() - t0;
  }

  account(job, key, out, trace_ts);
  return out;
}

void ExperimentEngine::account(const ExperimentJob& job,
                               const std::string& key,
                               const JobOutcome& out,
                               [[maybe_unused]] std::uint64_t trace_ts) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!out.ok)
      ++stats_.jobs_failed;
    else if (out.from_cache)
      ++stats_.jobs_cached;
    else if (out.from_replay)
      ++stats_.jobs_replayed;
    else
      ++stats_.jobs_run;
    stats_.busy_ms += out.wall_ms;
  }
  MAPG_OBS_ONLY(
    if (!out.ok) MAPG_OBS_COUNTER_INC("exec.jobs.failed");
    else if (out.from_cache) MAPG_OBS_COUNTER_INC("exec.jobs.cached");
    else if (out.from_replay) MAPG_OBS_COUNTER_INC("exec.jobs.replayed");
    else MAPG_OBS_COUNTER_INC("exec.jobs.run");
    MAPG_OBS_HIST_RECORD("exec.job.wall_ns",
                         static_cast<std::uint64_t>(out.wall_ms * 1e6));
    obs::EventTracer& tracer = obs::EventTracer::instance();
    if (tracer.enabled()) {
      tracer.complete("job", "exec", trace_ts, tracer.now_ns() - trace_ts,
                      obs::TraceArgs()
                          .add("workload", job.profile.name)
                          .add("policy", job.policy_spec)
                          .add("seed", job.config.run_seed)
                          .add("cached", out.from_cache)
                          .add("replayed", out.from_replay)
                          .add("resumed", out.from_resume)
                          .add("ok", out.ok)
                          .json());
      const CacheStatsSnapshot cs = cache_->stats();
      tracer.counter("exec.cache",
                     obs::TraceArgs()
                         .add("hit", cs.memory_hits + cs.disk_hits)
                         .add("miss", cs.misses)
                         .json());
      const EngineStats es = stats();
      tracer.counter("exec.jobs", obs::TraceArgs()
                                      .add("run", es.jobs_run)
                                      .add("cached", es.jobs_cached)
                                      .add("replayed", es.jobs_replayed)
                                      .add("failed", es.jobs_failed)
                                      .json());
    })
  log_job(job, key, out);
}

void ExperimentEngine::log_job(const ExperimentJob& job,
                               const std::string& key,
                               const JobOutcome& outcome) {
  if (!log_) return;
  Json line = Json::object();
  line["key"] = Json::string(key);
  line["workload"] = Json::string(job.profile.name);
  line["policy"] = Json::string(job.policy_spec);
  line["seed"] = Json::number(job.config.run_seed);
  line["instructions"] = Json::number(job.config.instructions);
  line["ok"] = Json::boolean(outcome.ok);
  line["cached"] = Json::boolean(outcome.from_cache);
  line["replayed"] = Json::boolean(outcome.from_replay);
  line["resumed"] = Json::boolean(outcome.from_resume);
  line["wall_ms"] = Json::number(outcome.wall_ms);
  if (!outcome.ok) line["error"] = Json::string(outcome.error);
  std::lock_guard<std::mutex> lk(mu_);
  *log_ << line.dump() << "\n";
  log_->flush();
}

void ExperimentEngine::progress_tick(std::size_t done, std::size_t total) {
  if (!options_.progress) return;
  std::lock_guard<std::mutex> lk(mu_);
  const double elapsed_s = (now_ms() - run_started_ms_) / 1e3;
  const double rate = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s
                                    : 0.0;
  std::fprintf(stderr, "\r[exec] %zu/%zu jobs  %.1f sims/s   ", done, total,
               rate);
  if (done == total) std::fprintf(stderr, "\n");
  std::fflush(stderr);
}

JobOutcome ExperimentEngine::run_one(const ExperimentJob& job) {
  return execute(job);
}

JobOutcome ExperimentEngine::run_one_traced(
    const ExperimentJob& job,
    std::shared_ptr<const std::vector<Instr>> trace) {
  return execute(job, std::move(trace));
}

void ExperimentEngine::submit_detached(std::function<void()> task) {
  if (options_.jobs <= 1) {
    task();
    return;
  }
  {
    // run()/parallel_for() create the pool from a single caller thread;
    // detached submissions can race each other, so creation locks here.
    std::lock_guard<std::mutex> lk(mu_);
    if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.jobs);
  }
  pool_->submit(std::move(task));
}

std::vector<JobOutcome> ExperimentEngine::run(
    const std::vector<ExperimentJob>& jobs) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    run_started_ms_ = now_ms();
  }
  std::vector<JobOutcome> outcomes(jobs.size());

  if (options_.jobs <= 1 || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      outcomes[i] = execute(jobs[i]);
      progress_tick(i + 1, jobs.size());
    }
    return outcomes;
  }

  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.jobs);
  std::mutex done_mu;
  std::size_t done = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool_->submit([this, &jobs, &outcomes, &done_mu, &done, i,
                   total = jobs.size()] {
      // Slot i is exclusively ours; outcome order == submission order.
      outcomes[i] = execute(jobs[i]);
      std::size_t d;
      {
        std::lock_guard<std::mutex> lk(done_mu);
        d = ++done;
      }
      progress_tick(d, total);
    });
  }
  pool_->wait_idle();
  return outcomes;
}

std::vector<ExperimentJob> ExperimentEngine::expand(const SweepSpec& spec) {
  std::vector<std::pair<std::string, SimConfig>> variants = spec.variants;
  if (variants.empty()) variants.emplace_back("", spec.base);

  std::vector<ExperimentJob> jobs;
  jobs.reserve(variants.size() * spec.workloads.size() *
               spec.policy_specs.size() * std::max(1u, spec.n_seeds));
  for (const auto& [vname, vcfg] : variants) {
    (void)vname;
    for (const WorkloadProfile& w : spec.workloads) {
      for (const std::string& p : spec.policy_specs) {
        for (unsigned s = 0; s < std::max(1u, spec.n_seeds); ++s) {
          ExperimentJob job;
          job.config = vcfg;
          job.config.run_seed += s;
          job.profile = w;
          job.policy_spec = p;
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

SweepResult ExperimentEngine::run_sweep(const SweepSpec& spec) {
  SweepResult r;
  r.n_variants = spec.variants.empty() ? 1 : spec.variants.size();
  r.n_workloads = spec.workloads.size();
  r.n_policies = spec.policy_specs.size();
  r.n_seeds = std::max(1u, spec.n_seeds);
  for (std::size_t i = 0; i < spec.policy_specs.size(); ++i)
    if (spec.policy_specs[i] == "none") {
      r.baseline_policy = i;
      break;
    }
  const std::vector<ExperimentJob> jobs = expand(spec);
  // Recording pays for itself only when a group amortizes it across several
  // policies; single-policy sweeps take the direct path unchanged.
  if (!options_.use_replay || r.n_policies < 2) {
    r.outcomes = run(jobs);
    return r;
  }
  r.outcomes = run_replayed(jobs, r);
  return r;
}

void ExperimentEngine::run_group(const std::vector<ExperimentJob>& jobs,
                                 const std::vector<std::size_t>& cell_indices,
                                 std::vector<JobOutcome>& outcomes) {
  // 1. Serve whatever the cache already has; collect the misses.
  std::vector<std::size_t> missing;
  for (const std::size_t c : cell_indices) {
    const ExperimentJob& job = jobs[c];
    if (cache_->get(cache_key(job.config, job.profile, job.policy_spec)))
      outcomes[c] = execute(job);  // re-probe hits; accounting stays uniform
    else
      missing.push_back(c);
  }
  // 2. A recording (one full `none` simulation) only amortizes across >= 2
  // would-be simulations.
  if (missing.empty()) return;
  if (missing.size() == 1) {
    outcomes[missing.front()] = execute(jobs[missing.front()]);
    return;
  }

  // 3. Record the reference timeline once for the whole group.
  const ExperimentJob& first = jobs[missing.front()];
  const double t_rec = now_ms();
  StallTimeline timeline;
  bool recorded = false;
  try {
    timeline = record_timeline(first.config, first.profile);
    recorded = true;
  } catch (...) {
    // A platform config the simulator rejects outright: fall through — the
    // per-cell direct path below reproduces the exact error per cell.
  }
  const double record_ms = now_ms() - t_rec;
  if (recorded) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.timelines_recorded;
  }

  // 4. Resolve each missing cell: the `none` cell is the reference itself;
  // other policies replay, falling back to a direct simulation over the
  // shared trace buffer when replay is not exact.
  for (const std::size_t c : missing) {
    const ExperimentJob& job = jobs[c];
    if (!recorded) {
      outcomes[c] = execute(job);
      continue;
    }
    const std::string key =
        cache_key(job.config, job.profile, job.policy_spec);
    if (job.policy_spec == "none") {
      JobOutcome out;
      out.result = cache_->store(key, SimResult(*timeline.reference));
      out.ok = true;
      out.wall_ms = record_ms;  // the recording run WAS this cell
      account(job, key, out, 0);
      outcomes[c] = std::move(out);
      continue;
    }
    const double t0 = now_ms();
    ReplayOutcome replayed;
    bool replay_threw = false;
    try {
      replayed = replay_policy(timeline, job.policy_spec);
    } catch (...) {
      replay_threw = true;  // e.g. bad spec — direct path reports the error
    }
    if (!replayed.ok) {
      // The prefix before the first penalized window is still exact:
      // resume direct simulation from the latest checkpoint inside it
      // (replay/checkpoint.h) instead of re-simulating from cycle 0.
      if (!replay_threw && !timeline.checkpoints.empty() &&
          replayed.windows > 0) {
        ResumeOutcome resumed =
            resume_policy(timeline, job.policy_spec, replayed.windows - 1);
        if (resumed.ok) {
          {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.replay_prefix_resumes;
            stats_.replay_windows_saved += resumed.windows_replayed;
          }
          JobOutcome out;
          out.result = cache_->store(key, std::move(resumed.result));
          out.ok = true;
          out.from_resume = true;
          out.wall_ms = now_ms() - t0;
          account(job, key, out, 0);
          outcomes[c] = std::move(out);
          continue;
        }
      }
      if (!replay_threw) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.replay_fallbacks;
        MAPG_OBS_COUNTER_INC("sim.replay.full_fallbacks");
      }
      outcomes[c] = execute(job, timeline.record.trace);
      continue;
    }
    JobOutcome out;
    out.result = cache_->store(key, std::move(replayed.result));
    out.ok = true;
    out.from_replay = true;
    out.wall_ms = now_ms() - t0;
    account(job, key, out, 0);
    outcomes[c] = std::move(out);
  }
}

std::vector<JobOutcome> ExperimentEngine::run_replayed(
    const std::vector<ExperimentJob>& jobs, const SweepResult& shape) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    run_started_ms_ = now_ms();
  }
  std::vector<JobOutcome> outcomes(jobs.size());

  // One task per (variant, workload, seed) group; each group owns exactly
  // the cells at its expansion indices, so parallel groups write disjoint
  // slots and outcome order matches submission order for any jobs count.
  std::vector<std::vector<std::size_t>> groups;
  groups.reserve(shape.n_variants * shape.n_workloads * shape.n_seeds);
  for (std::size_t vi = 0; vi < shape.n_variants; ++vi)
    for (std::size_t wi = 0; wi < shape.n_workloads; ++wi)
      for (std::size_t si = 0; si < shape.n_seeds; ++si) {
        std::vector<std::size_t> cells;
        cells.reserve(shape.n_policies);
        for (std::size_t pi = 0; pi < shape.n_policies; ++pi)
          cells.push_back(shape.index(vi, wi, pi, si));
        groups.push_back(std::move(cells));
      }

  std::mutex done_mu;
  std::size_t done = 0;
  auto process = [&](std::size_t g) {
    run_group(jobs, groups[g], outcomes);
    std::size_t d;
    {
      std::lock_guard<std::mutex> lk(done_mu);
      done += groups[g].size();
      d = done;
    }
    progress_tick(d, jobs.size());
  };

  if (options_.jobs <= 1 || groups.size() <= 1) {
    for (std::size_t g = 0; g < groups.size(); ++g) process(g);
    return outcomes;
  }
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.jobs);
  for (std::size_t g = 0; g < groups.size(); ++g)
    pool_->submit([&process, g] { process(g); });
  pool_->wait_idle();
  return outcomes;
}

namespace {

/// parallel_for bodies are opaque (multicore cells, custom sweeps), so the
/// per-task span carries only the index.
void run_body_traced(const std::function<void(std::size_t)>& body,
                     std::size_t i) {
  [[maybe_unused]] std::uint64_t ts = 0;
  MAPG_OBS_ONLY(obs::EventTracer& tracer = obs::EventTracer::instance();
                if (tracer.enabled()) ts = tracer.now_ns();)
  body(i);
  MAPG_OBS_ONLY(if (tracer.enabled()) {
    tracer.complete("task", "exec", ts, tracer.now_ns() - ts,
                    obs::TraceArgs().add("index", std::uint64_t{i}).json());
  })
}

}  // namespace

void ExperimentEngine::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (options_.jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_body_traced(body, i);
    return;
  }
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.jobs);
  for (std::size_t i = 0; i < n; ++i)
    pool_->submit([&body, i] { run_body_traced(body, i); });
  pool_->wait_idle();
}

}  // namespace mapg
