#include "exec/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mapg {

namespace {

const Json& null_json() {
  static const Json v;
  return v;
}

const std::string& empty_string() {
  static const std::string s;
  return s;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  std::optional<Json> run() {
    skip_ws();
    std::optional<Json> v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return v;
  }

 private:
  std::optional<Json> fail(const std::string& what) {
    if (error_ != nullptr)
      *error_ = what + " at offset " + std::to_string(pos_);
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      std::optional<std::string> str = string_body();
      if (!str) return std::nullopt;
      return Json::string(std::move(*str));
    }
    if (literal("true")) return Json::boolean(true);
    if (literal("false")) return Json::boolean(false);
    if (literal("null")) return Json();
    return number();
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string token = s_.substr(start, pos_ - start);
    // Validate by strtod: the token grammar above is a superset of JSON's.
    const char* begin = token.c_str();
    char* end = nullptr;
    std::strtod(begin, &end);
    if (end != begin + token.size()) return fail("malformed number");
    return Json::raw_number(token);
  }

  std::optional<std::string> string_body() {
    if (!consume('"')) return (fail("expected '\"'"), std::nullopt);
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size())
            return (fail("truncated \\u escape"), std::nullopt);
          const std::string hex = s_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const unsigned long cp = std::strtoul(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4)
            return (fail("bad \\u escape"), std::nullopt);
          // Encode the BMP code point as UTF-8 (no surrogate pairing —
          // the engine never emits any).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return (fail("bad escape"), std::nullopt);
      }
    }
    return (fail("unterminated string"), std::nullopt);
  }

  std::optional<Json> array() {
    consume('[');
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      skip_ws();
      std::optional<Json> v = value();
      if (!v) return std::nullopt;
      out.push(std::move(*v));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  std::optional<Json> object() {
    consume('{');
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      std::optional<std::string> key = string_body();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      std::optional<Json> v = value();
      if (!v) return std::nullopt;
      out[*key] = std::move(*v);
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  Json j;
  j.type_ = Type::kNumber;
  j.scalar_ = buf;
  return j;
}

Json Json::number(std::uint64_t v) {
  Json j;
  j.type_ = Type::kNumber;
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.type_ = Type::kNumber;
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::raw_number(std::string token) {
  Json j;
  j.type_ = Type::kNumber;
  j.scalar_ = std::move(token);
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.scalar_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool(bool dflt) const {
  return type_ == Type::kBool ? bool_ : dflt;
}

double Json::as_double(double dflt) const {
  if (type_ != Type::kNumber) return dflt;
  return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t Json::as_u64(std::uint64_t dflt) const {
  if (type_ != Type::kNumber) return dflt;
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

std::int64_t Json::as_i64(std::int64_t dflt) const {
  if (type_ != Type::kNumber) return dflt;
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

const std::string& Json::as_string() const {
  return type_ == Type::kString ? scalar_ : empty_string();
}

void Json::push(Json v) {
  if (type_ != Type::kArray) throw std::logic_error("Json::push on non-array");
  arr_.push_back(std::move(v));
}

const Json& Json::at(std::size_t i) const {
  return i < arr_.size() ? arr_[i] : null_json();
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject)
    throw std::logic_error("Json::operator[] on non-object");
  return obj_[key];
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

const Json& Json::get(const std::string& key) const {
  const Json* v = find(key);
  return v != nullptr ? *v : null_json();
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull: out = "null"; break;
    case Type::kBool: out = bool_ ? "true" : "false"; break;
    case Type::kNumber: out = scalar_; break;
    case Type::kString: append_escaped(out, scalar_); break;
    case Type::kArray: {
      out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out += ',';
        out += arr_[i].dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, k);
        out += ':';
        out += v.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace mapg
