// ExperimentEngine: declarative experiment sweeps, executed in parallel,
// memoized through the persistent result cache.
//
// The contract that makes this safe: a Simulator run is a pure function of
// (SimConfig, WorkloadProfile, policy spec) — instances are independent and
// seed-deterministic.  The engine therefore (a) runs jobs on N worker
// threads and still returns outcomes in submission order, bit-identical to
// a serial run, and (b) keys each job by the content hash of its inputs so
// repeated cells are simulated exactly once per cache lifetime.
//
// Layering: exec sits above core (it drives Simulator); nothing in core may
// depend on exec.  ExperimentRunner (exec/runner.h) is the baseline-scoring
// convenience layer on top of this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/sim.h"
#include "exec/result_cache.h"
#include "exec/serialize.h"
#include "exec/thread_pool.h"
#include "trace/profile.h"

namespace mapg {

struct ExecOptions {
  /// Worker threads; 1 = run inline on the calling thread, 0 = one per
  /// hardware thread.
  unsigned jobs = 1;
  /// Disk cache directory; empty = memory-only memoization.
  std::string cache_dir;
  /// When false, the disk tier is neither read nor written (--no-cache).
  /// In-memory memoization stays on: it is pure dedup within one process.
  bool use_disk_cache = true;
  /// Live "done/total, sims/s" meter on stderr.
  bool progress = false;
  /// Per-job JSONL run log path; empty = off.
  std::string log_jsonl;
  /// Single-pass policy sweeps (src/replay, docs/MODEL.md §4b): run_sweep
  /// records the stall timeline once per (variant, workload, seed) group and
  /// replays it across the policy axis, falling back to direct simulation
  /// for any cell whose replay hits a penalized window.  Results are
  /// bit-identical either way (tests/test_replay.cpp); the knob exists so
  /// the equivalence stays falsifiable (--replay=0 on every bench).
  bool use_replay = true;
};

/// One experiment cell.  The trace seed rides inside config.run_seed.
/// With `trace` set, instructions come from the bound on-disk trace window
/// (FileTraceSource seeked to trace->offset, capped at warmup + measured)
/// instead of the profile's generator; the binding's content digest joins
/// the cache identity (exec schema v7) and `profile` degrades to a label
/// carrier.  Trace-bound jobs always take the direct simulation path —
/// replay grouping applies only to generated sweep cells (run_sweep).
struct ExperimentJob {
  SimConfig config;
  WorkloadProfile profile;
  std::string policy_spec = "none";
  std::optional<TraceBinding> trace;
};

struct JobOutcome {
  /// Shared so baselines and repeated cells don't copy multi-KB results.
  std::shared_ptr<const SimResult> result;
  bool ok = false;
  bool from_cache = false;
  /// Reconstituted from a recorded stall timeline instead of simulated
  /// (bit-identical to a direct run; see src/replay).
  bool from_replay = false;
  /// Simulated, but starting from an architectural checkpoint instead of
  /// cycle 0 (replay hit a penalized window; see replay/checkpoint.h).
  /// Counted under jobs_run — it IS a simulation, just a shorter one.
  bool from_resume = false;
  std::string error;     ///< exception text when !ok
  double wall_ms = 0.0;  ///< this job's execution (or cache lookup) time
};

/// Declarative (variant x workload x policy x seed) grid.
struct SweepSpec {
  SimConfig base;
  /// Config variants; empty means "just base".  Each entry's name labels
  /// rows in logs; its config replaces base wholesale.
  std::vector<std::pair<std::string, SimConfig>> variants;
  std::vector<WorkloadProfile> workloads;
  std::vector<std::string> policy_specs;
  /// Seeds run_seed .. run_seed + n_seeds - 1 (per variant config).
  unsigned n_seeds = 1;
};

/// Sweep outcomes with O(1) cell addressing in (variant, workload, policy,
/// seed) coordinates; `outcomes` is in expansion order (variant outermost,
/// seed innermost).
struct SweepResult {
  std::size_t n_variants = 1;
  std::size_t n_workloads = 0;
  std::size_t n_policies = 0;
  std::size_t n_seeds = 1;
  std::vector<JobOutcome> outcomes;
  /// Index of the "none" policy in the spec, or npos.
  std::size_t baseline_policy = npos;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t index(std::size_t vi, std::size_t wi, std::size_t pi,
                    std::size_t si = 0) const {
    return ((vi * n_workloads + wi) * n_policies + pi) * n_seeds + si;
  }
  const JobOutcome& at(std::size_t vi, std::size_t wi, std::size_t pi,
                       std::size_t si = 0) const {
    return outcomes.at(index(vi, wi, pi, si));
  }
  /// The SimResult of a cell; throws std::runtime_error if the job failed.
  const SimResult& result(std::size_t vi, std::size_t wi, std::size_t pi,
                          std::size_t si = 0) const;
  /// The same-variant same-workload same-seed "none" baseline.
  const SimResult& baseline(std::size_t vi, std::size_t wi,
                            std::size_t si = 0) const;
};

struct EngineStats {
  std::uint64_t jobs_run = 0;       ///< simulations actually executed
  std::uint64_t jobs_cached = 0;    ///< served from memory or disk cache
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_replayed = 0;  ///< cells reconstituted from a timeline
  std::uint64_t timelines_recorded = 0;  ///< reference recordings performed
  /// Replays abandoned on a penalized window whose cell fell back to a FULL
  /// direct simulation from cycle 0 (no usable checkpoint).
  std::uint64_t replay_fallbacks = 0;
  /// Replays abandoned on a penalized window whose cell resumed direct
  /// simulation from an architectural checkpoint instead of cycle 0
  /// (replay/checkpoint.h).  Disjoint from replay_fallbacks.
  std::uint64_t replay_prefix_resumes = 0;
  /// Stall windows skipped by prefix-resumes (the prefix the resumed
  /// controller was fed from the recording instead of re-simulating).
  std::uint64_t replay_windows_saved = 0;
  double busy_ms = 0;               ///< summed per-job wall time
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(ExecOptions options = {});
  ~ExperimentEngine();

  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  /// Run all jobs; outcomes come back in submission order regardless of
  /// thread scheduling.  Per-job failures are reported in the outcome, not
  /// thrown — one bad cell never tears down a sweep.
  std::vector<JobOutcome> run(const std::vector<ExperimentJob>& jobs);

  JobOutcome run_one(const ExperimentJob& job);

  /// run_one over a shared materialized trace buffer instead of a fresh
  /// generator (bit-identical; see execute()).  Serve-layer hook: the
  /// tiered executor re-simulates replay-ineligible cells from a cached
  /// StallTimeline's trace without regenerating it (src/serve/tiered.h).
  JobOutcome run_one_traced(const ExperimentJob& job,
                            std::shared_ptr<const std::vector<Instr>> trace);

  /// Enqueue an opaque task on the engine's pool and return immediately
  /// (the pool is created on first use; with jobs <= 1 the task runs
  /// inline).  Serve-layer hook: connection readers feed request handlers
  /// to the same workers that run simulations, so one knob (--jobs) bounds
  /// total compute.  Unlike run()/parallel_for(), completion is the
  /// caller's contract to track.
  void submit_detached(std::function<void()> task);

  /// Expand in deterministic order: variant, workload, policy, seed.
  static std::vector<ExperimentJob> expand(const SweepSpec& spec);

  /// Run the grid.  With options().use_replay and more than one policy,
  /// cells are grouped by (variant, workload, seed): each group records one
  /// `none` reference timeline and replays it across the policy axis
  /// (src/replay), falling back to direct simulation per cell when replay
  /// is not exact.  Outcomes are bit-identical to the direct path for any
  /// jobs count.
  SweepResult run_sweep(const SweepSpec& spec);

  /// Generic ordered parallel-for over [0, n) on the engine's pool — for
  /// work the result cache cannot key (e.g. multicore simulations).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  ResultCache& cache() { return *cache_; }
  const ExecOptions& options() const { return options_; }
  EngineStats stats() const;

 private:
  /// Simulate (or serve from cache) one cell.  A non-null `trace` feeds the
  /// simulator from the shared materialized buffer instead of a fresh
  /// generator — the stream is identical, so results are bit-identical.
  JobOutcome execute(const ExperimentJob& job,
                     std::shared_ptr<const std::vector<Instr>> trace = {});
  /// Shared outcome bookkeeping: engine stats, obs counters/trace, run log.
  void account(const ExperimentJob& job, const std::string& key,
               const JobOutcome& outcome, std::uint64_t trace_ts);
  /// The grouped record-once/replay-per-policy path behind run_sweep.
  std::vector<JobOutcome> run_replayed(const std::vector<ExperimentJob>& jobs,
                                       const SweepResult& shape);
  /// One (variant, workload, seed) group: cells at `cell_indices` in
  /// `jobs`, all sharing config/profile/seed and differing only in policy.
  void run_group(const std::vector<ExperimentJob>& jobs,
                 const std::vector<std::size_t>& cell_indices,
                 std::vector<JobOutcome>& outcomes);
  void log_job(const ExperimentJob& job, const std::string& key,
               const JobOutcome& outcome);
  void progress_tick(std::size_t done, std::size_t total);

  ExecOptions options_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<ThreadPool> pool_;  ///< created lazily, only when jobs > 1

  mutable std::mutex mu_;
  EngineStats stats_;
  std::unique_ptr<std::ofstream> log_;
  double run_started_ms_ = 0;  ///< monotonic, for the sims/sec meter
};

}  // namespace mapg
