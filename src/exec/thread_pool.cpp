#include "exec/thread_pool.h"

#include <chrono>

#include "obs/obs.h"

namespace mapg {

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
    MAPG_OBS_GAUGE_SET("exec.pool.pending", pending_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  MAPG_OBS_COUNTER_INC("exec.pool.submitted");
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mu);
    queues_[target]->deque.push_back(std::move(task));
  }
  work_.notify_one();
}

bool ThreadPool::try_get_task(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest-first.
  {
    Worker& w = *queues_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.deque.empty()) {
      out = std::move(w.deque.back());
      w.deque.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the other workers.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Worker& v = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lk(v.mu);
    if (!v.deque.empty()) {
      out = std::move(v.deque.front());
      v.deque.pop_front();
      MAPG_OBS_COUNTER_INC("exec.pool.steals");
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_get_task(self, task)) {
      try {
        task();
      } catch (...) {
        // Job bodies catch their own exceptions (see engine.cpp); anything
        // reaching here is contained so one bad task can't kill the pool.
      }
      std::lock_guard<std::mutex> lk(mu_);
      MAPG_OBS_GAUGE_SET("exec.pool.pending", pending_ - 1);
      if (--pending_ == 0) idle_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_) return;
    // Re-check under the lock via the pending counter: if work remains,
    // retry immediately instead of sleeping through the missed signal.
    work_.wait_for(lk, std::chrono::milliseconds(10));
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_.wait(lk, [this] { return pending_ == 0; });
}

}  // namespace mapg
