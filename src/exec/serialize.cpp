#include "exec/serialize.h"

#include <cstdio>
#include <stdexcept>

namespace mapg {

namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

Json hist_to_json(const Histogram& h) {
  Json j = Json::object();
  j["lo"] = Json::number(h.lo());
  j["hi"] = Json::number(h.hi());
  j["underflow"] = Json::number(h.underflow());
  j["overflow"] = Json::number(h.overflow());
  Json counts = Json::array();
  for (std::size_t i = 0; i < h.buckets(); ++i)
    counts.push(Json::number(h.bucket_count(i)));
  j["counts"] = std::move(counts);
  return j;
}

Histogram hist_from_json(const Json& j) {
  const Json& counts = j.get("counts");
  std::vector<std::uint64_t> c(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) c[i] = counts.at(i).as_u64();
  return Histogram::restore(j.get("lo").as_double(), j.get("hi").as_double(),
                            std::move(c), j.get("underflow").as_u64(),
                            j.get("overflow").as_u64());
}

Json rstat_to_json(const RunningStat& s) {
  Json j = Json::object();
  j["n"] = Json::number(s.count());
  j["mean"] = Json::number(s.mean());
  j["m2"] = Json::number(s.m2());
  j["min"] = Json::number(s.min());
  j["max"] = Json::number(s.max());
  return j;
}

RunningStat rstat_from_json(const Json& j) {
  return RunningStat::restore(j.get("n").as_u64(), j.get("mean").as_double(),
                              j.get("m2").as_double(),
                              j.get("min").as_double(),
                              j.get("max").as_double());
}

// ---------------------------------------------------------------------------
// Experiment identity (cache key input) — every field, fixed key names.
// ---------------------------------------------------------------------------

Json cache_config_json(const CacheConfig& c) {
  Json j = Json::object();
  j["size_bytes"] = Json::number(c.size_bytes);
  j["assoc"] = Json::number(c.assoc);
  j["line_bytes"] = Json::number(c.line_bytes);
  j["hit_latency"] = Json::number(c.hit_latency);
  j["repl"] = Json::number(static_cast<int>(c.repl));
  j["write_back"] = Json::boolean(c.write_back);
  return j;
}

Json config_json(const SimConfig& c) {
  Json j = Json::object();

  Json core = Json::object();
  core["mul_latency"] = Json::number(c.core.mul_latency);
  core["fp_latency"] = Json::number(c.core.fp_latency);
  core["div_latency"] = Json::number(c.core.div_latency);
  core["issue_width"] = Json::number(c.core.issue_width);
  core["mlp_window"] = Json::number(c.core.mlp_window);
  core["scoreboard_window"] = Json::number(c.core.scoreboard_window);
  j["core"] = std::move(core);

  Json mem = Json::object();
  mem["l1d"] = cache_config_json(c.mem.l1d);
  mem["l2"] = cache_config_json(c.mem.l2);
  Json dram = Json::object();
  dram["channels"] = Json::number(c.mem.dram.channels);
  dram["banks_per_channel"] = Json::number(c.mem.dram.banks_per_channel);
  dram["line_bytes"] = Json::number(c.mem.dram.line_bytes);
  dram["row_bytes"] = Json::number(c.mem.dram.row_bytes);
  dram["t_rcd"] = Json::number(c.mem.dram.t_rcd);
  dram["t_rp"] = Json::number(c.mem.dram.t_rp);
  dram["t_cl"] = Json::number(c.mem.dram.t_cl);
  dram["t_bl"] = Json::number(c.mem.dram.t_bl);
  dram["t_ras"] = Json::number(c.mem.dram.t_ras);
  dram["t_rfc"] = Json::number(c.mem.dram.t_rfc);
  dram["t_refi"] = Json::number(c.mem.dram.t_refi);
  dram["standard"] = Json::number(static_cast<int>(c.mem.dram.standard));
  dram["page_policy"] = Json::number(static_cast<int>(c.mem.dram.page_policy));
  dram["hybrid_addr_bits"] = Json::number(c.mem.dram.hybrid_addr_bits);
  dram["queue_depth"] = Json::number(c.mem.dram.queue_depth);
  dram["write_starve_limit"] = Json::number(c.mem.dram.write_starve_limit);
  Json dpw = Json::object();
  dpw["mode"] = Json::number(static_cast<int>(c.mem.dram.power.mode));
  dpw["t_pd"] = Json::number(c.mem.dram.power.t_pd);
  dpw["t_xp"] = Json::number(c.mem.dram.power.t_xp);
  dpw["t_cke"] = Json::number(c.mem.dram.power.t_cke);
  dpw["t_xs"] = Json::number(c.mem.dram.power.t_xs);
  dpw["powerdown_timeout"] = Json::number(c.mem.dram.power.powerdown_timeout);
  dpw["selfrefresh_timeout"] =
      Json::number(c.mem.dram.power.selfrefresh_timeout);
  dram["power"] = std::move(dpw);
  mem["dram"] = std::move(dram);
  mem["mc_request_latency"] = Json::number(c.mem.mc_request_latency);
  mem["fill_return_latency"] = Json::number(c.mem.fill_return_latency);
  Json pf = Json::object();
  pf["enable"] = Json::boolean(c.mem.prefetch.enable);
  pf["degree"] = Json::number(c.mem.prefetch.degree);
  pf["table_entries"] = Json::number(c.mem.prefetch.table_entries);
  pf["confirm_after"] = Json::number(c.mem.prefetch.confirm_after);
  mem["prefetch"] = std::move(pf);
  j["mem"] = std::move(mem);

  Json tech = Json::object();
  tech["freq_ghz"] = Json::number(c.tech.freq_ghz);
  tech["vdd"] = Json::number(c.tech.vdd);
  tech["core_leakage_w"] = Json::number(c.tech.core_leakage_w);
  tech["gated_fraction"] = Json::number(c.tech.gated_fraction);
  tech["l1_leakage_w"] = Json::number(c.tech.l1_leakage_w);
  tech["l2_leakage_w"] = Json::number(c.tech.l2_leakage_w);
  tech["other_leakage_w"] = Json::number(c.tech.other_leakage_w);
  tech["idle_clock_w"] = Json::number(c.tech.idle_clock_w);
  Json dyn = Json::array();
  for (const double e : c.tech.dyn_energy_nj) dyn.push(Json::number(e));
  tech["dyn_energy_nj"] = std::move(dyn);
  j["tech"] = std::move(tech);

  Json pg = Json::object();
  pg["c_vrail_nf"] = Json::number(c.pg.c_vrail_nf);
  pg["rail_swing_frac"] = Json::number(c.pg.rail_swing_frac);
  pg["gate_charge_nj"] = Json::number(c.pg.gate_charge_nj);
  pg["wakeup_stages"] = Json::number(c.pg.wakeup_stages);
  pg["stage_delay_ns"] = Json::number(c.pg.stage_delay_ns);
  pg["settle_ns"] = Json::number(c.pg.settle_ns);
  pg["entry_ns"] = Json::number(c.pg.entry_ns);
  pg["overhead_scale"] = Json::number(c.pg.overhead_scale);
  pg["light_swing_frac"] = Json::number(c.pg.light_swing_frac);
  pg["light_save_frac"] = Json::number(c.pg.light_save_frac);
  pg["light_wakeup_stages"] = Json::number(c.pg.light_wakeup_stages);
  j["pg"] = std::move(pg);

  Json de = Json::object();
  de["background_w_per_channel"] =
      Json::number(c.dram_energy.background_w_per_channel);
  de["powerdown_w_per_channel"] =
      Json::number(c.dram_energy.powerdown_w_per_channel);
  de["selfrefresh_w_per_channel"] =
      Json::number(c.dram_energy.selfrefresh_w_per_channel);
  de["activate_nj"] = Json::number(c.dram_energy.activate_nj);
  de["read_nj"] = Json::number(c.dram_energy.read_nj);
  de["write_nj"] = Json::number(c.dram_energy.write_nj);
  de["refresh_nj"] = Json::number(c.dram_energy.refresh_nj);
  j["dram_energy"] = std::move(de);

  Json th = Json::object();
  th["enable"] = Json::boolean(c.thermal.enable);
  th["t_ambient_c"] = Json::number(c.thermal.t_ambient_c);
  th["r_th_k_per_w"] = Json::number(c.thermal.r_th_k_per_w);
  th["tau_ms"] = Json::number(c.thermal.tau_ms);
  th["t_ref_c"] = Json::number(c.thermal.t_ref_c);
  th["leak_doubling_c"] = Json::number(c.thermal.leak_doubling_c);
  th["epoch_instructions"] = Json::number(c.thermal.epoch_instructions);
  j["thermal"] = std::move(th);

  j["instructions"] = Json::number(c.instructions);
  j["warmup_instructions"] = Json::number(c.warmup_instructions);
  j["run_seed"] = Json::number(c.run_seed);
  j["fast_forward"] = Json::boolean(c.fast_forward);
  j["checkpoint_stride"] = Json::number(c.checkpoint_stride);
  // SimConfig::batched is deliberately ABSENT: it selects how instructions
  // are fetched (scalar next vs SoA next_batch), not what is simulated, so
  // like --jobs it must never split the result cache.  Bit-identity across
  // the two modes is enforced by micro_sim_throughput's identity gate.
  return j;
}

Json profile_json(const WorkloadProfile& p) {
  // Every behaviour-affecting field; `description` is cosmetic and
  // deliberately excluded so doc edits don't invalidate cached results.
  Json j = Json::object();
  j["name"] = Json::string(p.name);
  j["f_load"] = Json::number(p.f_load);
  j["f_store"] = Json::number(p.f_store);
  j["f_branch"] = Json::number(p.f_branch);
  j["f_mul"] = Json::number(p.f_mul);
  j["f_div"] = Json::number(p.f_div);
  j["f_fp"] = Json::number(p.f_fp);
  j["working_set_bytes"] = Json::number(p.working_set_bytes);
  j["hot_set_bytes"] = Json::number(p.hot_set_bytes);
  j["num_streams"] = Json::number(p.num_streams);
  j["stream_stride_bytes"] = Json::number(p.stream_stride_bytes);
  j["p_stream"] = Json::number(p.p_stream);
  j["p_cold"] = Json::number(p.p_cold);
  j["p_pointer_chase"] = Json::number(p.p_pointer_chase);
  j["dep_dist_mean"] = Json::number(p.dep_dist_mean);
  j["p_no_consumer"] = Json::number(p.p_no_consumer);
  j["dep_dist_max"] = Json::number(std::uint64_t{p.dep_dist_max});
  j["seed"] = Json::number(p.seed);
  return j;
}

// ---------------------------------------------------------------------------
// SimResult <-> JSON
// ---------------------------------------------------------------------------

Json core_stats_json(const CoreStats& s) {
  Json j = Json::object();
  j["instrs"] = Json::number(s.instrs);
  j["cycles"] = Json::number(s.cycles);
  Json by_class = Json::array();
  for (const std::uint64_t n : s.instr_by_class) by_class.push(Json::number(n));
  j["instr_by_class"] = std::move(by_class);
  j["stalls_dram"] = Json::number(s.stalls_dram);
  j["stalls_other"] = Json::number(s.stalls_other);
  j["stall_cycles_dram"] = Json::number(s.stall_cycles_dram);
  j["stall_cycles_other"] = Json::number(s.stall_cycles_other);
  j["penalty_cycles"] = Json::number(s.penalty_cycles);
  j["mlp_limit_stalls"] = Json::number(s.mlp_limit_stalls);
  j["dram_stall_hist"] = hist_to_json(s.dram_stall_hist);
  j["outstanding_at_stall"] = rstat_to_json(s.outstanding_at_stall);
  return j;
}

CoreStats core_stats_from_json(const Json& j) {
  CoreStats s;
  s.instrs = j.get("instrs").as_u64();
  s.cycles = j.get("cycles").as_u64();
  const Json& by_class = j.get("instr_by_class");
  for (std::size_t i = 0; i < s.instr_by_class.size() && i < by_class.size();
       ++i)
    s.instr_by_class[i] = by_class.at(i).as_u64();
  s.stalls_dram = j.get("stalls_dram").as_u64();
  s.stalls_other = j.get("stalls_other").as_u64();
  s.stall_cycles_dram = j.get("stall_cycles_dram").as_u64();
  s.stall_cycles_other = j.get("stall_cycles_other").as_u64();
  s.penalty_cycles = j.get("penalty_cycles").as_u64();
  s.mlp_limit_stalls = j.get("mlp_limit_stalls").as_u64();
  s.dram_stall_hist = hist_from_json(j.get("dram_stall_hist"));
  s.outstanding_at_stall = rstat_from_json(j.get("outstanding_at_stall"));
  return s;
}

Json cache_stats_json(const CacheStats& s) {
  Json j = Json::object();
  j["read_hits"] = Json::number(s.read_hits);
  j["read_misses"] = Json::number(s.read_misses);
  j["write_hits"] = Json::number(s.write_hits);
  j["write_misses"] = Json::number(s.write_misses);
  j["writebacks"] = Json::number(s.writebacks);
  j["evictions"] = Json::number(s.evictions);
  j["prefetch_fills"] = Json::number(s.prefetch_fills);
  return j;
}

CacheStats cache_stats_from_json(const Json& j) {
  CacheStats s;
  s.read_hits = j.get("read_hits").as_u64();
  s.read_misses = j.get("read_misses").as_u64();
  s.write_hits = j.get("write_hits").as_u64();
  s.write_misses = j.get("write_misses").as_u64();
  s.writebacks = j.get("writebacks").as_u64();
  s.evictions = j.get("evictions").as_u64();
  s.prefetch_fills = j.get("prefetch_fills").as_u64();
  return s;
}

}  // namespace

Json result_to_json(const SimResult& r) {
  Json j = Json::object();
  j["schema"] = Json::number(kExecSchemaVersion);
  j["workload"] = Json::string(r.workload);
  j["policy"] = Json::string(r.policy);

  Json ctx = Json::object();
  ctx["entry_latency"] = Json::number(r.ctx.entry_latency);
  ctx["wakeup_latency"] = Json::number(r.ctx.wakeup_latency);
  ctx["break_even"] = Json::number(r.ctx.break_even);
  ctx["light_wakeup_latency"] = Json::number(r.ctx.light_wakeup_latency);
  ctx["light_break_even"] = Json::number(r.ctx.light_break_even);
  ctx["light_save_frac"] = Json::number(r.ctx.light_save_frac);
  j["ctx"] = std::move(ctx);

  j["core"] = core_stats_json(r.core);

  Json hier = Json::object();
  hier["loads"] = Json::number(r.hier.loads);
  hier["stores"] = Json::number(r.hier.stores);
  hier["served_l1"] = Json::number(r.hier.served_l1);
  hier["served_l2"] = Json::number(r.hier.served_l2);
  hier["served_dram"] = Json::number(r.hier.served_dram);
  hier["merged"] = Json::number(r.hier.merged);
  hier["dram_fills"] = Json::number(r.hier.dram_fills);
  hier["prefetch_issued"] = Json::number(r.hier.prefetch_issued);
  hier["prefetch_merges"] = Json::number(r.hier.prefetch_merges);
  j["hier"] = std::move(hier);

  j["l1"] = cache_stats_json(r.l1);
  j["l2"] = cache_stats_json(r.l2);

  Json dram = Json::object();
  dram["reads"] = Json::number(r.dram.reads);
  dram["writes"] = Json::number(r.dram.writes);
  dram["row_hits"] = Json::number(r.dram.row_hits);
  dram["row_closed"] = Json::number(r.dram.row_closed);
  dram["row_conflicts"] = Json::number(r.dram.row_conflicts);
  dram["refresh_delays"] = Json::number(r.dram.refresh_delays);
  dram["writes_queued"] = Json::number(r.dram.writes_queued);
  dram["writes_starved"] = Json::number(r.dram.writes_starved);
  dram["writes_overflowed"] = Json::number(r.dram.writes_overflowed);
  dram["writes_drained"] = Json::number(r.dram.writes_drained);
  dram["write_queue_peak"] = Json::number(r.dram.write_queue_peak);
  dram["write_wait_cycles"] = Json::number(r.dram.write_wait_cycles);
  dram["write_wait_max"] = Json::number(r.dram.write_wait_max);
  dram["active_cycles"] = Json::number(r.dram.active_cycles);
  dram["refresh_cycles"] = Json::number(r.dram.refresh_cycles);
  dram["powerdown_cycles"] = Json::number(r.dram.powerdown_cycles);
  dram["selfrefresh_cycles"] = Json::number(r.dram.selfrefresh_cycles);
  dram["powerdown_entries"] = Json::number(r.dram.powerdown_entries);
  dram["selfrefresh_entries"] = Json::number(r.dram.selfrefresh_entries);
  dram["lowpower_exit_delay"] = Json::number(r.dram.lowpower_exit_delay);
  dram["read_latency"] = rstat_to_json(r.dram.read_latency);
  j["dram"] = std::move(dram);

  Json gating = Json::object();
  Json act = Json::object();
  act["transitions"] = Json::number(r.gating.activity.transitions);
  act["gated_cycles"] = Json::number(r.gating.activity.gated_cycles);
  act["entry_cycles"] = Json::number(r.gating.activity.entry_cycles);
  act["wake_cycles"] = Json::number(r.gating.activity.wake_cycles);
  act["deep_transitions"] = Json::number(r.gating.activity.deep_transitions);
  act["light_transitions"] = Json::number(r.gating.activity.light_transitions);
  act["deep_gated_cycles"] =
      Json::number(r.gating.activity.deep_gated_cycles);
  act["light_gated_cycles"] =
      Json::number(r.gating.activity.light_gated_cycles);
  gating["activity"] = std::move(act);
  gating["eligible_stalls"] = Json::number(r.gating.eligible_stalls);
  gating["gated_events"] = Json::number(r.gating.gated_events);
  gating["skipped_events"] = Json::number(r.gating.skipped_events);
  gating["timeout_missed"] = Json::number(r.gating.timeout_missed);
  gating["aborted_entries"] = Json::number(r.gating.aborted_entries);
  gating["unprofitable_events"] = Json::number(r.gating.unprofitable_events);
  gating["penalty_cycles"] = Json::number(r.gating.penalty_cycles);
  gating["idle_ungated_cycles"] = Json::number(r.gating.idle_ungated_cycles);
  gating["refresh_window_cycles"] =
      Json::number(r.gating.refresh_window_cycles);
  gating["dram_pd_channel_cycles"] =
      Json::number(r.gating.dram_pd_channel_cycles);
  gating["dram_pd_windows"] = Json::number(r.gating.dram_pd_windows);
  gating["gated_len_hist"] = hist_to_json(r.gating.gated_len_hist);
  j["gating"] = std::move(gating);

  Json energy = Json::object();
  energy["dynamic_j"] = Json::number(r.energy.dynamic_j);
  energy["core_leak_j"] = Json::number(r.energy.core_leak_j);
  energy["ungated_leak_j"] = Json::number(r.energy.ungated_leak_j);
  energy["idle_clock_j"] = Json::number(r.energy.idle_clock_j);
  energy["pg_overhead_j"] = Json::number(r.energy.pg_overhead_j);
  energy["dram_j"] = Json::number(r.energy.dram_j);
  energy["dram_background_j"] = Json::number(r.energy.dram_background_j);
  energy["dram_lowpower_saved_j"] =
      Json::number(r.energy.dram_lowpower_saved_j);
  energy["core_leak_baseline_j"] =
      Json::number(r.energy.core_leak_baseline_j);
  j["energy"] = std::move(energy);

  return j;
}

SimResult result_from_json(const Json& j) {
  if (!j.is_object() ||
      j.get("schema").as_u64() != static_cast<std::uint64_t>(
                                      kExecSchemaVersion))
    throw std::runtime_error("SimResult JSON: missing or wrong schema tag");

  SimResult r;
  r.workload = j.get("workload").as_string();
  r.policy = j.get("policy").as_string();

  const Json& ctx = j.get("ctx");
  r.ctx.entry_latency = ctx.get("entry_latency").as_u64();
  r.ctx.wakeup_latency = ctx.get("wakeup_latency").as_u64();
  r.ctx.break_even = ctx.get("break_even").as_u64();
  r.ctx.light_wakeup_latency = ctx.get("light_wakeup_latency").as_u64();
  r.ctx.light_break_even = ctx.get("light_break_even").as_u64();
  r.ctx.light_save_frac = ctx.get("light_save_frac").as_double();

  r.core = core_stats_from_json(j.get("core"));

  const Json& hier = j.get("hier");
  r.hier.loads = hier.get("loads").as_u64();
  r.hier.stores = hier.get("stores").as_u64();
  r.hier.served_l1 = hier.get("served_l1").as_u64();
  r.hier.served_l2 = hier.get("served_l2").as_u64();
  r.hier.served_dram = hier.get("served_dram").as_u64();
  r.hier.merged = hier.get("merged").as_u64();
  r.hier.dram_fills = hier.get("dram_fills").as_u64();
  r.hier.prefetch_issued = hier.get("prefetch_issued").as_u64();
  r.hier.prefetch_merges = hier.get("prefetch_merges").as_u64();

  r.l1 = cache_stats_from_json(j.get("l1"));
  r.l2 = cache_stats_from_json(j.get("l2"));

  const Json& dram = j.get("dram");
  r.dram.reads = dram.get("reads").as_u64();
  r.dram.writes = dram.get("writes").as_u64();
  r.dram.row_hits = dram.get("row_hits").as_u64();
  r.dram.row_closed = dram.get("row_closed").as_u64();
  r.dram.row_conflicts = dram.get("row_conflicts").as_u64();
  r.dram.refresh_delays = dram.get("refresh_delays").as_u64();
  r.dram.writes_queued = dram.get("writes_queued").as_u64();
  r.dram.writes_starved = dram.get("writes_starved").as_u64();
  r.dram.writes_overflowed = dram.get("writes_overflowed").as_u64();
  r.dram.writes_drained = dram.get("writes_drained").as_u64();
  r.dram.write_queue_peak = dram.get("write_queue_peak").as_u64();
  r.dram.write_wait_cycles = dram.get("write_wait_cycles").as_u64();
  r.dram.write_wait_max = dram.get("write_wait_max").as_u64();
  r.dram.active_cycles = dram.get("active_cycles").as_u64();
  r.dram.refresh_cycles = dram.get("refresh_cycles").as_u64();
  r.dram.powerdown_cycles = dram.get("powerdown_cycles").as_u64();
  r.dram.selfrefresh_cycles = dram.get("selfrefresh_cycles").as_u64();
  r.dram.powerdown_entries = dram.get("powerdown_entries").as_u64();
  r.dram.selfrefresh_entries = dram.get("selfrefresh_entries").as_u64();
  r.dram.lowpower_exit_delay = dram.get("lowpower_exit_delay").as_u64();
  r.dram.read_latency = rstat_from_json(dram.get("read_latency"));

  const Json& gating = j.get("gating");
  const Json& act = gating.get("activity");
  r.gating.activity.transitions = act.get("transitions").as_u64();
  r.gating.activity.gated_cycles = act.get("gated_cycles").as_u64();
  r.gating.activity.entry_cycles = act.get("entry_cycles").as_u64();
  r.gating.activity.wake_cycles = act.get("wake_cycles").as_u64();
  r.gating.activity.deep_transitions = act.get("deep_transitions").as_u64();
  r.gating.activity.light_transitions = act.get("light_transitions").as_u64();
  r.gating.activity.deep_gated_cycles =
      act.get("deep_gated_cycles").as_u64();
  r.gating.activity.light_gated_cycles =
      act.get("light_gated_cycles").as_u64();
  r.gating.eligible_stalls = gating.get("eligible_stalls").as_u64();
  r.gating.gated_events = gating.get("gated_events").as_u64();
  r.gating.skipped_events = gating.get("skipped_events").as_u64();
  r.gating.timeout_missed = gating.get("timeout_missed").as_u64();
  r.gating.aborted_entries = gating.get("aborted_entries").as_u64();
  r.gating.unprofitable_events = gating.get("unprofitable_events").as_u64();
  r.gating.penalty_cycles = gating.get("penalty_cycles").as_u64();
  r.gating.idle_ungated_cycles = gating.get("idle_ungated_cycles").as_u64();
  r.gating.refresh_window_cycles =
      gating.get("refresh_window_cycles").as_u64();
  r.gating.dram_pd_channel_cycles =
      gating.get("dram_pd_channel_cycles").as_u64();
  r.gating.dram_pd_windows = gating.get("dram_pd_windows").as_u64();
  r.gating.gated_len_hist = hist_from_json(gating.get("gated_len_hist"));

  const Json& energy = j.get("energy");
  r.energy.dynamic_j = energy.get("dynamic_j").as_double();
  r.energy.core_leak_j = energy.get("core_leak_j").as_double();
  r.energy.ungated_leak_j = energy.get("ungated_leak_j").as_double();
  r.energy.idle_clock_j = energy.get("idle_clock_j").as_double();
  r.energy.pg_overhead_j = energy.get("pg_overhead_j").as_double();
  r.energy.dram_j = energy.get("dram_j").as_double();
  r.energy.dram_background_j = energy.get("dram_background_j").as_double();
  r.energy.dram_lowpower_saved_j =
      energy.get("dram_lowpower_saved_j").as_double();
  r.energy.core_leak_baseline_j =
      energy.get("core_leak_baseline_j").as_double();

  return r;
}

bool results_equal(const SimResult& a, const SimResult& b) {
  return result_to_json(a).dump() == result_to_json(b).dump();
}

Json experiment_identity(const SimConfig& config,
                         const WorkloadProfile& profile,
                         const std::string& policy_spec,
                         const TraceBinding* trace) {
  Json j = Json::object();
  j["schema"] = Json::number(kExecSchemaVersion);
  j["config"] = config_json(config);
  j["profile"] = profile_json(profile);
  j["policy_spec"] = Json::string(policy_spec);
  if (trace != nullptr) {
    // Content only: the path is resolution machinery, not identity.
    Json t = Json::object();
    t["digest"] = Json::string(trace->digest_hex);
    t["offset"] = Json::number(trace->offset);
    t["name"] = Json::string(trace->name);
    j["trace"] = std::move(t);
  }
  return j;
}

std::uint64_t fnv1a64(const std::string& bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string cache_key(const SimConfig& config, const WorkloadProfile& profile,
                      const std::string& policy_spec,
                      const TraceBinding* trace) {
  const std::string canon =
      experiment_identity(config, profile, policy_spec, trace).dump();
  // Two independently-seeded FNV-1a streams -> 128 bits; plenty for the
  // few thousand cells any reproduction sweep produces.
  const std::uint64_t a = fnv1a64(canon);
  const std::uint64_t b = fnv1a64(canon, 0x9e3779b97f4a7c15ULL);
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

}  // namespace mapg
