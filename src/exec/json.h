// Minimal JSON value: parse, build, canonical dump.
//
// The execution engine needs a self-describing on-disk format for cached
// SimResults and for the per-job run log, without pulling in an external
// dependency.  This value type covers exactly what that requires:
//   - objects keep sorted keys and dump() emits no insignificant whitespace,
//     so the serialized form of a value is canonical (equal values => equal
//     bytes => usable both for content hashes and equality checks);
//   - numbers are stored as their literal token, so a std::uint64_t cycle
//     count or a %.17g double survives a dump/parse round trip bit-exactly
//     (no silent routing through a lossy double).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mapg {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Json() = default;  ///< null

  static Json boolean(bool v);
  static Json number(double v);         ///< %.17g — round-trips any double
  static Json number(std::uint64_t v);
  static Json number(std::int64_t v);
  static Json number(unsigned v) { return number(std::uint64_t{v}); }
  static Json number(int v) { return number(std::int64_t{v}); }
  /// Adopt a pre-formatted numeric literal verbatim (parser + callers that
  /// must control the exact token, e.g. for canonical hashing).
  static Json raw_number(std::string token);
  static Json string(std::string v);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // --- Scalar access (defaults returned on type mismatch) ---
  bool as_bool(bool dflt = false) const;
  double as_double(double dflt = 0.0) const;
  std::uint64_t as_u64(std::uint64_t dflt = 0) const;
  std::int64_t as_i64(std::int64_t dflt = 0) const;
  const std::string& as_string() const;  ///< empty string on mismatch

  // --- Array ---
  void push(Json v);
  std::size_t size() const { return arr_.size(); }
  const Json& at(std::size_t i) const;

  // --- Object ---
  Json& operator[](const std::string& key);        ///< insert-or-get
  const Json* find(const std::string& key) const;  ///< null if absent
  /// find() that falls back to a shared null value — enables chained
  /// lookups like j.get("core").get("cycles").as_u64().
  const Json& get(const std::string& key) const;
  const std::map<std::string, Json>& items() const { return obj_; }

  /// Canonical single-line serialization (sorted keys, no whitespace).
  std::string dump() const;

  /// Strict-enough parser for everything dump() emits plus ordinary
  /// hand-written JSON.  Returns nullopt (and sets *error) on bad input.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< number token or string payload
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace mapg
