#include "exec/result_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/log.h"
#include "exec/serialize.h"
#include "obs/obs.h"

namespace mapg {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::path_for(const std::string& key) const {
  std::string path = dir_;
  path += '/';
  path += key;
  path += ".json";
  return path;
}

std::shared_ptr<const SimResult> ResultCache::get(const std::string& key) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.memory_hits;
      MAPG_OBS_COUNTER_INC("exec.cache.mem_hit");
      return it->second;
    }
  }
  if (dir_.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    MAPG_OBS_COUNTER_INC("exec.cache.miss");
    return nullptr;
  }

  // Disk lookup outside the lock: reads of distinct keys proceed in
  // parallel, and the same key read twice is merely redundant work.
  std::ifstream is(path_for(key));
  if (!is) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    MAPG_OBS_COUNTER_INC("exec.cache.miss");
    return nullptr;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  std::string err;
  const std::optional<Json> doc = Json::parse(buf.str(), &err);
  if (!doc) {
    log_warn() << "result cache: unparseable entry " << key << ": " << err;
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disk_errors;
    ++stats_.misses;
    MAPG_OBS_COUNTER_INC("exec.cache.disk_error");
    MAPG_OBS_COUNTER_INC("exec.cache.miss");
    return nullptr;
  }
  try {
    auto entry = std::make_shared<const SimResult>(result_from_json(*doc));
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disk_hits;
    MAPG_OBS_COUNTER_INC("exec.cache.disk_hit");
    memory_.emplace(key, entry);
    return entry;
  } catch (const std::exception& e) {
    log_warn() << "result cache: bad entry " << key << ": " << e.what();
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disk_errors;
    ++stats_.misses;
    MAPG_OBS_COUNTER_INC("exec.cache.disk_error");
    MAPG_OBS_COUNTER_INC("exec.cache.miss");
    return nullptr;
  }
}

std::shared_ptr<const SimResult> ResultCache::store(const std::string& key,
                                                    SimResult result) {
  auto entry = std::make_shared<const SimResult>(std::move(result));
  bool write_disk = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.stores;
    MAPG_OBS_COUNTER_INC("exec.cache.store");
    memory_[key] = entry;
    if (!dir_.empty()) {
      if (!dir_ready_) {
        std::error_code ec;
        fs::create_directories(dir_, ec);
        if (ec) {
          log_warn() << "result cache: cannot create '" << dir_
                     << "': " << ec.message() << " — disabling persistence";
        } else {
          dir_ready_ = true;
        }
      }
      write_disk = dir_ready_;
    }
  }
  if (!write_disk) return entry;

  // Atomic publish: write to a per-thread-unique temp name, then rename.
  const std::string final_path = path_for(key);
  std::ostringstream tmp_name;
  tmp_name << final_path << ".tmp." << std::this_thread::get_id();
  {
    std::ofstream os(tmp_name.str());
    if (!os) {
      log_warn() << "result cache: cannot write " << tmp_name.str();
      return entry;
    }
    os << result_to_json(*entry).dump() << "\n";
  }
  std::error_code ec;
  fs::rename(tmp_name.str(), final_path, ec);
  if (ec) {
    log_warn() << "result cache: rename failed for " << key << ": "
               << ec.message();
    fs::remove(tmp_name.str(), ec);
  }
  return entry;
}

CacheStatsSnapshot ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ResultCache::clear_memory() {
  std::lock_guard<std::mutex> lk(mu_);
  memory_.clear();
}

}  // namespace mapg
