// Content-addressed result cache: memory tier + optional disk tier.
//
// Keys are cache_key() hashes of the full experiment identity (config +
// profile + policy spec + seed, see serialize.h).  The memory tier holds
// shared_ptr<const SimResult> so concurrent readers and long-lived
// references (ExperimentRunner baselines) stay valid with no copying; the
// disk tier stores one pretty-small JSON file per cell under
// `<dir>/<key>.json`, written atomically (tmp file + rename) so a killed
// run never leaves a torn entry behind.
//
// All methods are thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/sim.h"

namespace mapg {

struct CacheStatsSnapshot {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;       ///< results inserted this process
  std::uint64_t disk_errors = 0;  ///< unreadable/corrupt entries skipped
};

class ResultCache {
 public:
  /// `dir` empty => memory-only.  The directory is created on first store.
  explicit ResultCache(std::string dir = {});

  /// Look `key` up: memory first, then disk (a disk hit is promoted into
  /// memory).  Returns nullptr on miss.  Corrupt disk entries count as
  /// misses and are left for the subsequent store() to overwrite.
  std::shared_ptr<const SimResult> get(const std::string& key);

  /// Insert (memory always, disk when persistent).  Returns the shared
  /// entry — callers should keep that pointer rather than their own copy.
  std::shared_ptr<const SimResult> store(const std::string& key,
                                         SimResult result);

  bool persistent() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  CacheStatsSnapshot stats() const;

  /// Drop the memory tier (tests; disk entries survive).
  void clear_memory();

 private:
  std::string path_for(const std::string& key) const;

  const std::string dir_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const SimResult>> memory_;
  CacheStatsSnapshot stats_;
  bool dir_ready_ = false;
};

}  // namespace mapg
