// Work-stealing thread pool for independent simulation jobs.
//
// Each worker owns a deque: it pushes/pops its own work LIFO (cache-warm)
// and steals FIFO from a victim when empty (oldest task first, the classic
// work-stealing discipline).  External submissions are dealt round-robin
// across the worker deques so a large sweep starts balanced even before
// stealing kicks in.
//
// Tasks are opaque void() closures; result ordering is the caller's problem
// (the ExperimentEngine writes results into pre-allocated slots, so sweep
// output order never depends on scheduling).  A task that throws is the
// caller's bug — the engine wraps every job body in its own try/catch — but
// the pool still contains it rather than calling std::terminate.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mapg {

class ThreadPool {
 public:
  /// `threads` == 0 selects default_threads().
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task.  Thread-safe (including from inside a task).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Hardware concurrency, clamped to at least 1.
  static unsigned default_threads();

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;  ///< guarded by `mu`
    std::mutex mu;
  };

  void worker_loop(std::size_t self);
  bool try_get_task(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                 ///< guards the counters below
  std::condition_variable work_;  ///< signalled on submit and shutdown
  std::condition_variable idle_;  ///< signalled when pending_ hits zero
  std::size_t pending_ = 0;       ///< submitted but not yet finished
  std::size_t next_queue_ = 0;    ///< round-robin submission cursor
  bool stop_ = false;
};

}  // namespace mapg
