#!/usr/bin/env bash
# Machine-readable perf trajectory: run the replay-speedup bench and emit
# BENCH_replay.json at the repo root (the committed copy is the trajectory
# record EXPERIMENTS.md §"Perf trajectory" quotes).
#
#   scripts/bench_report.sh [build_dir] [extra micro_replay_speedup args...]
#
# e.g.  scripts/bench_report.sh                      # default build/, tab1 axis
#       scripts/bench_report.sh build --axis=ablation --json=BENCH_ablation.json
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
[ "$#" -gt 0 ] && shift

BENCH="$BUILD/bench/micro_replay_speedup"
if [ ! -x "$BENCH" ]; then
  cmake -B "$BUILD" -S .
  cmake --build "$BUILD" --target micro_replay_speedup -j
fi

# Default output path unless the caller passed their own --json=.
ARGS=("$@")
case " ${ARGS[*]-} " in
  *" --json="*) ;;
  *) ARGS+=("--json=BENCH_replay.json") ;;
esac

"$BENCH" "${ARGS[@]}"
