#!/usr/bin/env bash
# Machine-readable perf trajectory: run a trajectory bench and emit its
# BENCH_*.json at the repo root (the committed copies are the trajectory
# record EXPERIMENTS.md §"Perf trajectory" quotes).
#
#   scripts/bench_report.sh [build_dir] [replay|serve|sampling|throughput|all] [extra bench args...]
#
# BENCH_replay.json carries the resume-aware census: replayed /
# prefix_resumes / full_fallbacks cell counts, windows_saved, and the
# checkpoint_stride in effect (docs/MODEL.md §4b-4c).
#
# BENCH_sampling.json carries the sampled-simulation record: speedup over
# full simulation, per-metric projection error, and 95% CI coverage on a
# 50M-instruction MAPGTRC2 trace (docs/TRACE.md §6).
#
# BENCH_throughput.json carries the batched-front-end record: full-sim
# instr/s scalar vs batched per (workload, policy) cell, plus the
# generator / file-reader / cache-decode microrates — every number is
# emitted only after the bench's bit-identity gate passes (docs/MODEL.md
# §4e).
#
# e.g.  scripts/bench_report.sh                      # build/, replay, tab1 axis
#       scripts/bench_report.sh build serve          # serving QPS -> BENCH_serve.json
#       scripts/bench_report.sh build sampling       # projection error record
#       scripts/bench_report.sh build all            # every record
#       scripts/bench_report.sh build replay --axis=ablation --json=BENCH_ablation.json
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
[ "$#" -gt 0 ] && shift
MODE="${1:-replay}"
case "$MODE" in
  replay|serve|sampling|throughput|all) [ "$#" -gt 0 ] && shift ;;
  *) MODE=replay ;;  # unrecognized first arg: treat it as a bench arg
esac

run_bench() {  # run_bench <target> <default_json> [args...]
  local target="$1" default_json="$2"
  shift 2
  local bin="$BUILD/bench/$target"
  if [ ! -x "$bin" ]; then
    cmake -B "$BUILD" -S .
    cmake --build "$BUILD" --target "$target" -j
  fi
  local args=("$@")
  case " ${args[*]-} " in
    *" --json="*) ;;
    *) args+=("--json=$default_json") ;;
  esac
  "$bin" "${args[@]}"
}

case "$MODE" in
  replay)   run_bench micro_replay_speedup BENCH_replay.json "$@" ;;
  serve)    run_bench load_serve BENCH_serve.json "$@" ;;
  sampling) run_bench micro_sampling BENCH_sampling.json "$@" ;;
  throughput) run_bench micro_sim_throughput BENCH_throughput.json "$@" ;;
  all)
    run_bench micro_replay_speedup BENCH_replay.json
    run_bench load_serve BENCH_serve.json
    run_bench micro_sampling BENCH_sampling.json
    run_bench micro_sim_throughput BENCH_throughput.json
    ;;
esac
