#!/usr/bin/env bash
# check_doc_links.sh — documentation consistency gate.
#
# Three checks, all fatal:
#   1. Inline links/images `[text](target)` in every *.md outside build
#      trees must point at existing files.  External schemes (http, https,
#      mailto) and pure-anchor links are skipped; `#fragment` suffixes and
#      `"title"` annotations are stripped before the existence test.
#      Relative targets resolve against the file's directory.
#   2. Every file under docs/ must be reachable from the README
#      Documentation index (a doc nobody can find is a doc that drifts).
#   3. Fenced ```cpp blocks in docs/MEMORY_POWER.md and docs/DRAM.md must
#      compile (`c++ -std=c++20 -fsyntax-only -I src`), so the examples
#      cannot drift from the API they document.
#
# Usage: scripts/check_doc_links.sh [repo-root]   (default: script's parent)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

fail=0
checked=0

# Markdown files, excluding build directories and third-party trees.
mapfile -t files < <(find . -name '*.md' \
  -not -path './build*' -not -path './.git/*' -not -path '*/node_modules/*' \
  | sort)

for file in "${files[@]}"; do
  dir=$(dirname "$file")
  # Pull out every](target) — good enough for the inline links we write.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    # Strip a quoted title and any #fragment.
    target="${target%% \"*}"
    target="${target%%#*}"
    [ -z "$target" ] && continue
    checked=$((checked + 1))
    if [ "${target#/}" != "$target" ]; then
      resolved=".$target"         # absolute-in-repo link
    else
      resolved="$dir/$target"
    fi
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $file -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]*\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done

# --- 2. docs/ reachability from the README Documentation index ------------
# Every doc must be linked from README.md (directly, as `docs/NAME.md`).
for doc in docs/*.md; do
  if ! grep -qF "($doc)" README.md; then
    echo "UNREACHABLE: $doc is not linked from README.md"
    fail=1
  fi
done

# --- 3. compile the fenced cpp blocks in the model-spec docs --------------
# Each block is extracted to its own translation unit and syntax-checked
# against the real headers.
blocks=0
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
for doc in docs/MEMORY_POWER.md docs/DRAM.md docs/TRACE.md; do
  [ -f "$doc" ] || continue
  rm -f "$tmpdir"/block*.cpp
  awk -v dir="$tmpdir" '
    /^```cpp$/ { inblock = 1; n += 1; out = dir "/block" n ".cpp"; next }
    /^```$/    { inblock = 0 }
    inblock    { print > out }
  ' "$doc"
  for block in "$tmpdir"/block*.cpp; do
    [ -e "$block" ] || continue
    blocks=$((blocks + 1))
    if ! c++ -std=c++20 -fsyntax-only -I src "$block"; then
      echo "DOC CODE BROKEN: $doc $(basename "$block") does not compile"
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "check_doc_links: documentation checks failed"
  exit 1
fi
echo "check_doc_links: $checked links OK across ${#files[@]} markdown files;" \
     "docs/ index complete; $blocks doc code blocks compile"
