#!/usr/bin/env bash
# check_doc_links.sh — fail if any markdown file in the repo contains a
# relative link to a file that does not exist.
#
# Checked: inline links/images `[text](target)` in every *.md outside build
# trees.  External schemes (http, https, mailto) and pure-anchor links are
# skipped; `#fragment` suffixes and `"title"` annotations are stripped before
# the existence test.  Relative targets resolve against the file's directory.
#
# Usage: scripts/check_doc_links.sh [repo-root]   (default: script's parent)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

fail=0
checked=0

# Markdown files, excluding build directories and third-party trees.
mapfile -t files < <(find . -name '*.md' \
  -not -path './build*' -not -path './.git/*' -not -path '*/node_modules/*' \
  | sort)

for file in "${files[@]}"; do
  dir=$(dirname "$file")
  # Pull out every](target) — good enough for the inline links we write.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    # Strip a quoted title and any #fragment.
    target="${target%% \"*}"
    target="${target%%#*}"
    [ -z "$target" ] && continue
    checked=$((checked + 1))
    if [ "${target#/}" != "$target" ]; then
      resolved=".$target"         # absolute-in-repo link
    else
      resolved="$dir/$target"
    fi
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $file -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]*\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "check_doc_links: broken links found"
  exit 1
fi
echo "check_doc_links: $checked links OK across ${#files[@]} markdown files"
