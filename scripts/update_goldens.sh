#!/usr/bin/env bash
# Regenerate the pinned golden table in tests/test_golden.cpp.
#
#   scripts/update_goldens.sh [build_dir]
#
# Builds test_golden, reruns every pinned table with MAPG_UPDATE_GOLDENS=1,
# and splices the freshly printed rows between the marker comments:
#   GOLDEN-BEGIN/GOLDEN-END            result table (Golden.PinnedResultTable)
#   TAB9-GOLDEN-BEGIN/TAB9-GOLDEN-END  DRAM standard x page-policy grid
#                                      (Golden.Tab9GridFrozen)
#   CKPT-GOLDEN-BEGIN/CKPT-GOLDEN-END  checkpoint fingerprints
#                                      (Golden.CheckpointFingerprintsFrozen)
# Run this ONLY after an intentional model change, then regenerate
# EXPERIMENTS.md and re-run the full suite.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SRC=tests/test_golden.cpp

if [ ! -d "$BUILD" ]; then
  cmake -B "$BUILD" -S .
fi
cmake --build "$BUILD" --target test_golden -j

ROWS="$(mktemp)"
trap 'rm -f "$ROWS"' EXIT

# splice TEST_FILTER ROW_REGEX BEGIN_MARKER END_MARKER
# Reruns one regeneration-mode test, keeps only its source-literal rows,
# and swaps them in between the marker comments (anchored on the markers
# themselves, not prose mentioning them).
splice() {
  local filter="$1" row_re="$2" begin="$3" end="$4"
  MAPG_UPDATE_GOLDENS=1 "$BUILD"/tests/test_golden \
      --gtest_filter="$filter" |
    grep -E "$row_re" > "$ROWS"

  local n
  n="$(wc -l < "$ROWS")"
  if [ "$n" -eq 0 ]; then
    echo "error: $filter regeneration produced no rows" >&2
    exit 1
  fi

  awk -v rows="$ROWS" -v begin="$begin" -v end="$end" '
    $0 ~ ("^[[:space:]]*// " begin) {
      print; while ((getline line < rows) > 0) print line; skipping = 1; next }
    $0 ~ ("^[[:space:]]*// " end) { skipping = 0 }
    !skipping { print }
  ' "$SRC" > "$SRC.tmp"
  mv "$SRC.tmp" "$SRC"
  echo "spliced $n rows ($filter) into $SRC"
}

# Result-table and tab9 rows look like '      {"...'; checkpoint rows like
# '      {25000u, ...'.
splice 'Golden.PinnedResultTable' '^[[:space:]]*\{"' \
       'GOLDEN-BEGIN' 'GOLDEN-END'
splice 'Golden.Tab9GridFrozen' '^[[:space:]]*\{"' \
       'TAB9-GOLDEN-BEGIN' 'TAB9-GOLDEN-END'
splice 'Golden.CheckpointFingerprintsFrozen' '^[[:space:]]*\{[0-9]' \
       'CKPT-GOLDEN-BEGIN' 'CKPT-GOLDEN-END'

echo "rebuild and re-run the suite:"
echo "  cmake --build $BUILD --target test_golden -j && $BUILD/tests/test_golden"
