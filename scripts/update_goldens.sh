#!/usr/bin/env bash
# Regenerate the pinned golden table in tests/test_golden.cpp.
#
#   scripts/update_goldens.sh [build_dir]
#
# Builds test_golden, reruns every table cell with MAPG_UPDATE_GOLDENS=1,
# and splices the freshly printed rows between the GOLDEN-BEGIN/GOLDEN-END
# markers.  Run this ONLY after an intentional model change, then regenerate
# EXPERIMENTS.md and re-run the full suite.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SRC=tests/test_golden.cpp

if [ ! -d "$BUILD" ]; then
  cmake -B "$BUILD" -S .
fi
cmake --build "$BUILD" --target test_golden -j

ROWS="$(mktemp)"
trap 'rm -f "$ROWS"' EXIT

# Only the regeneration output lines are source-literal rows: '      {"...'.
MAPG_UPDATE_GOLDENS=1 "$BUILD"/tests/test_golden \
    --gtest_filter='Golden.PinnedResultTable' |
  grep -E '^[[:space:]]*\{"' > "$ROWS"

N="$(wc -l < "$ROWS")"
if [ "$N" -eq 0 ]; then
  echo "error: regeneration produced no rows" >&2
  exit 1
fi

# Anchor on the marker comments themselves (not prose mentioning them).
awk -v rows="$ROWS" '
  /^[[:space:]]*\/\/ GOLDEN-BEGIN/ {
    print; while ((getline line < rows) > 0) print line; skipping = 1; next }
  /^[[:space:]]*\/\/ GOLDEN-END/ { skipping = 0 }
  !skipping { print }
' "$SRC" > "$SRC.tmp"
mv "$SRC.tmp" "$SRC"

echo "spliced $N golden rows into $SRC; rebuild and re-run the suite:"
echo "  cmake --build $BUILD --target test_golden -j && $BUILD/tests/test_golden"
