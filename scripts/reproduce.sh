#!/usr/bin/env bash
# Reproduce every experiment in EXPERIMENTS.md from a clean tree.
#
#   scripts/reproduce.sh [results_dir]
#
# Builds, runs the test suite, then regenerates every table/figure twice:
# once as the human-readable bench_output.txt and once as per-experiment CSV
# files under results/ for plotting.
set -euo pipefail
cd "$(dirname "$0")/.."

RESULTS="${1:-results}"

cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt | tail -3

echo "=== benches (text) ==="
: > bench_output.txt
for b in build/bench/*; do
  echo "######## $(basename "$b")" | tee -a bench_output.txt
  "$b" >> bench_output.txt 2>&1
done

echo "=== benches (csv -> ${RESULTS}/) ==="
mkdir -p "${RESULTS}"
for b in build/bench/*; do
  name="$(basename "$b")"
  case "$name" in
    micro_*)
      "$b" --benchmark_format=csv > "${RESULTS}/${name}.csv" 2>/dev/null ;;
    *)
      "$b" --csv=1 > "${RESULTS}/${name}.csv" ;;
  esac
done

echo "done: test_output.txt, bench_output.txt, ${RESULTS}/*.csv"
