#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the resident experiment server
# (docs/SERVE.md), the CI counterpart of tests/test_serve.cpp:
#
#   1. start mapg_served on an ephemeral port;
#   2. drive a request mix through mapg_client: ping, a cell that computes,
#      the same cell again (hot tier), a sweep, stats;
#   3. byte-identity: the server's embedded result JSON for a cell must be
#      identical to an in-process engine run of the same cell
#      (`mapg_client --local=1`), including for concurrent identical
#      requests racing each other;
#   4. clean shutdown on SIGTERM (exit 0 after draining).
#
# Usage: scripts/serve_smoke.sh [build_dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVED="$BUILD/tools/mapg_served"
CLIENT="$BUILD/tools/mapg_client"
for bin in "$SERVED" "$CLIENT"; do
  [ -x "$bin" ] || { echo "FATAL: $bin not built"; exit 1; }
done

tmp=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

CELL_ARGS=(--workload=mcf-like --policy=mapg
           --instructions=40000 --warmup=8000 --seed=1)

# --- 1. start on an ephemeral port, scrape it from the banner -------------
"$SERVED" --port=0 --jobs=2 > "$tmp/served.log" 2> "$tmp/served.err" &
server_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$tmp/served.log")
  [ -n "$port" ] && break
  kill -0 "$server_pid" 2>/dev/null || { cat "$tmp/served.err"; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "FATAL: server never announced its port"; exit 1; }
echo "server up on port $port (pid $server_pid)"

C=("$CLIENT" --port="$port")

# --- 2. request mix -------------------------------------------------------
"${C[@]}" ping
"${C[@]}" cell "${CELL_ARGS[@]}" > "$tmp/cell1.json"
grep -q '"tier":"compute"' "$tmp/cell1.json" \
  || { echo "FAIL: first cell did not compute"; cat "$tmp/cell1.json"; exit 1; }
"${C[@]}" cell "${CELL_ARGS[@]}" > "$tmp/cell2.json"
grep -q '"tier":"hot"' "$tmp/cell2.json" \
  || { echo "FAIL: repeat cell missed the hot tier"; cat "$tmp/cell2.json"; exit 1; }
"${C[@]}" sweep --workload=mcf-like,gcc-like --policy=none,mapg --seeds=1 \
  --instructions=40000 --warmup=8000 --seed=1 --summary=1
"${C[@]}" stats > "$tmp/stats.json"
grep -q '"computed"' "$tmp/stats.json" \
  || { echo "FAIL: stats missing serve counters"; cat "$tmp/stats.json"; exit 1; }

# --- 3. byte-identity vs a local in-process engine run --------------------
"${C[@]}" cell "${CELL_ARGS[@]}" --result-only=1 > "$tmp/from_server.json"
"$CLIENT" cell "${CELL_ARGS[@]}" --local=1 > "$tmp/from_engine.json"
cmp "$tmp/from_server.json" "$tmp/from_engine.json" \
  || { echo "FAIL: server result differs from direct engine run"; exit 1; }
echo "byte-identity: server == direct engine"

# Concurrent identical requests (racing connections) must all return those
# same bytes — the coalescer's contract from the outside.
seed=77
pids=()
for i in 1 2 3 4; do
  "${C[@]}" cell --workload=gcc-like --policy=mapg --instructions=40000 \
    --warmup=8000 --seed=$seed --result-only=1 > "$tmp/race$i.json" &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
"$CLIENT" cell --workload=gcc-like --policy=mapg --instructions=40000 \
  --warmup=8000 --seed=$seed --local=1 > "$tmp/race_ref.json"
for i in 1 2 3 4; do
  cmp "$tmp/race$i.json" "$tmp/race_ref.json" \
    || { echo "FAIL: concurrent request $i diverged"; exit 1; }
done
echo "byte-identity: 4 concurrent identical requests == direct engine"

# --- 4. clean SIGTERM -----------------------------------------------------
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
[ "$rc" -eq 0 ] || { echo "FAIL: SIGTERM exit code $rc"; exit 1; }
grep -q "signal" "$tmp/served.err" \
  || { echo "FAIL: server did not report signal-driven exit"; exit 1; }
echo "clean SIGTERM shutdown"
echo "serve_smoke: OK"
