// mapg_trace — generate, convert, inspect, filter, and characterize traces.
//
//   mapg_trace gen     --workload=mcf-like --count=1000000 --out=mcf.trc
//   mapg_trace convert --in=app.txt --dialect=rw --out=app.trc
//   mapg_trace inspect --in=app.trc [--chunks]
//   mapg_trace filter  --in=app.trc --out=app.l1f.trc --filter-kb=32
//   mapg_trace plan    --in=app.trc --regions=100000 --clusters=8
//   mapg_trace info    --in=mcf.trc
//   mapg_trace stats   --workload=lbm-like --count=500000   # from generator
//   mapg_trace stats   --in=mcf.trc                         # from file
//
// gen/convert/filter write MAPGTRC2 by default (--format=v1 for the legacy
// flat format); every file-reading subcommand accepts both versions through
// the streaming FileTraceSource.  `convert` ingests text traces (dialects
// `rw`: "R <addr>" / "W <addr>"; `dinero`: "0|1|2 <hexaddr>"; `champsim`:
// "<hexip> <hexaddr> <L|S>", the IP validated then dropped) and `filter`
// models a capture-side L1 that rewrites hits to ALU filler without
// changing the instruction count (docs/TRACE.md).  `plan` previews the
// sampled-simulation clustering without running anything.
#include <algorithm>
#include <iostream>
#include <set>
#include <string>

#include "common/config.h"
#include "common/stats.h"
#include "common/table.h"
#include "sample/planner.h"
#include "trace/convert.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_file.h"
#include "trace/trace_io.h"

using namespace mapg;

namespace {

int usage() {
  std::cout <<
      "usage: mapg_trace <gen|convert|inspect|filter|plan|info|stats> "
      "[options]\n"
      "  gen     --workload=NAME --count=N --out=FILE [--seed=N]\n"
      "          [--format=v1|v2]\n"
      "  convert --in=TEXT --dialect=rw|dinero|champsim --out=FILE\n"
      "          [--dep-dist=N]\n"
      "          [--pad=N] [--filter-kb=N [--filter-ways=N] [--line=N]]\n"
      "          [--format=v1|v2]\n"
      "  inspect --in=FILE [--chunks=1]\n"
      "  filter  --in=FILE --out=FILE --filter-kb=N [--filter-ways=N]\n"
      "          [--line=N] [--format=v1|v2]\n"
      "  plan    --in=FILE [--regions=N] [--clusters=K] [--seed=N]\n"
      "          [--sig-cache=FILE]\n"
      "  info    --in=FILE\n"
      "  stats   (--workload=NAME --count=N [--seed=N]) | (--in=FILE)\n";
  return 2;
}

/// Write `source` to `out` in the requested on-disk format.
bool write_out(const KvConfig& kv, const std::string& out,
               TraceSource& source, std::uint64_t count, std::string& err) {
  const std::string format = kv.get_or("format", "v2");
  if (format == "v1") return write_trace_file(out, source, count, &err);
  if (format == "v2") return write_trace_file_v2(out, source, count, &err);
  err = "unknown --format '" + format + "' (want v1 or v2)";
  return false;
}

int cmd_gen(const KvConfig& kv) {
  const std::string name = kv.get_or("workload", "");
  const WorkloadProfile* p = find_profile(name);
  if (p == nullptr) {
    std::cerr << "unknown workload '" << name << "'\n";
    return 1;
  }
  const std::uint64_t count = kv.get_uint("count", 1'000'000);
  const std::string out = kv.get_or("out", name + ".trc");
  TraceGenerator gen(*p, kv.get_uint("seed", 42));
  std::string err;
  if (!write_out(kv, out, gen, count, err)) {
    std::cerr << "write failed: " << err << "\n";
    return 1;
  }
  std::cout << "wrote " << count << " instructions to " << out << "\n";
  return 0;
}

int cmd_convert(const KvConfig& kv) {
  const std::string in = kv.get_or("in", "");
  const std::string out = kv.get_or("out", in + ".trc");
  ConvertOptions opts;
  opts.dep_dist =
      static_cast<std::uint16_t>(kv.get_uint("dep-dist", 1));
  opts.pad = kv.get_uint("pad", 0);
  std::vector<Instr> instrs;
  std::string err;
  if (!convert_text_trace_file(in, kv.get_or("dialect", "rw"), opts, instrs,
                               &err)) {
    std::cerr << "convert failed: " << err << "\n";
    return 1;
  }
  const std::uint64_t count = instrs.size();
  VectorTraceSource src(std::move(instrs));
  if (const std::uint64_t kb = kv.get_uint("filter-kb", 0)) {
    CacheFilter filter(kb * 1024, kv.get_uint("line", 64),
                       kv.get_uint("filter-ways", 4));
    FilteredTraceSource filtered(src, filter);
    if (!write_out(kv, out, filtered, count, err)) {
      std::cerr << "write failed: " << err << "\n";
      return 1;
    }
    std::cout << "converted " << count << " instructions to " << out
              << " (filter: " << filter.hits() << " hits rewritten, "
              << filter.misses() << " misses kept)\n";
    return 0;
  }
  if (!write_out(kv, out, src, count, err)) {
    std::cerr << "write failed: " << err << "\n";
    return 1;
  }
  std::cout << "converted " << count << " instructions to " << out << "\n";
  return 0;
}

int cmd_inspect(const KvConfig& kv) {
  const std::string in = kv.get_or("in", "");
  try {
    FileTraceSource src(in);
    const TraceFileInfo& info = src.info();
    Table t({"field", "value"});
    t.begin_row().cell("format").cell("MAPGTRC" +
                                      std::to_string(info.version));
    t.begin_row().cell("records").cell(info.records);
    t.begin_row().cell("chunk size").cell(info.chunk_size);
    t.begin_row().cell("chunks").cell(info.n_chunks);
    t.begin_row().cell("stream digest").cell(info.digest_hex());
    t.print(std::cout);
    if (kv.get_bool("chunks", false)) {
      // Verify every chunk by streaming the whole file (next() checks each
      // chunk digest as it loads).
      Instr instr;
      std::uint64_t n = 0;
      while (src.next(instr)) ++n;
      std::cout << "verified " << n << " records, all chunk digests ok\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "inspect failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int cmd_filter(const KvConfig& kv) {
  const std::string in = kv.get_or("in", "");
  const std::string out = kv.get_or("out", in + ".l1f");
  const std::uint64_t kb = kv.get_uint("filter-kb", 32);
  try {
    FileTraceSource src(in);
    CacheFilter filter(kb * 1024, kv.get_uint("line", 64),
                       kv.get_uint("filter-ways", 4));
    FilteredTraceSource filtered(src, filter);
    std::string err;
    if (!write_out(kv, out, filtered, src.size(), err)) {
      std::cerr << "write failed: " << err << "\n";
      return 1;
    }
    std::cout << "filtered " << src.size() << " instructions to " << out
              << ": " << filter.hits() << " hits rewritten, "
              << filter.misses() << " misses kept\n";
  } catch (const std::exception& e) {
    std::cerr << "filter failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int cmd_plan(const KvConfig& kv) {
  const std::string in = kv.get_or("in", "");
  SampleConfig cfg;
  cfg.region_instructions = kv.get_uint("regions", 1'000'000);
  cfg.clusters = kv.get_uint("clusters", 8);
  cfg.seed = kv.get_uint("seed", 42);
  cfg.signature_cache = kv.get_or("sig-cache", "");
  try {
    FileTraceSource src(in);
    const SamplePlan plan = build_sample_plan(src, cfg);
    std::cout << in << ": " << plan.total_instructions << " instructions, "
              << plan.regions.size() << " regions of "
              << cfg.region_instructions << ", " << plan.clusters.size()
              << " clusters" << (plan.exhaustive ? " (exhaustive)" : "")
              << "\n";
    Table t({"cluster", "members", "representative", "weight", "sim instrs"});
    for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
      const SampleCluster& cl = plan.clusters[c];
      t.begin_row()
          .cell(static_cast<std::uint64_t>(c))
          .cell(static_cast<std::uint64_t>(cl.members.size()))
          .cell(static_cast<std::uint64_t>(cl.representative))
          .cell(cl.weight, 2)
          .cell(plan.regions[cl.representative].length);
    }
    t.print(std::cout);
    std::cout << "sampled instructions: " << plan.sampled_instructions()
              << " of " << plan.total_instructions << "\n";
  } catch (const std::exception& e) {
    std::cerr << "plan failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int cmd_info(const KvConfig& kv) {
  const std::string in = kv.get_or("in", "");
  try {
    FileTraceSource src(in);
    std::cout << in << ": " << src.size() << " instructions (MAPGTRC"
              << src.info().version << ", digest "
              << src.info().digest_hex() << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "read failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int run_stats(TraceSource& src, std::uint64_t limit) {
  std::array<std::uint64_t, kNumOpClasses> mix{};
  RunningStat dep;
  LogHistogram dep_hist;
  std::set<Addr> lines;
  Addr min_addr = kNoAddr, max_addr = 0;
  std::uint64_t n = 0, mem_ops = 0, chase_like = 0;

  Instr instr;
  while (n < limit && src.next(instr)) {
    ++n;
    ++mix[static_cast<std::size_t>(instr.op)];
    if (instr.op == OpClass::kLoad || instr.op == OpClass::kStore) {
      ++mem_ops;
      lines.insert(instr.addr / 64);
      min_addr = std::min(min_addr, instr.addr);
      max_addr = std::max(max_addr, instr.addr);
    }
    if (instr.op == OpClass::kLoad && instr.dep_dist > 0) {
      dep.add(instr.dep_dist);
      dep_hist.add(instr.dep_dist);
      if (instr.dep_dist == 1) ++chase_like;
    }
  }
  if (n == 0) {
    std::cerr << "empty trace\n";
    return 1;
  }

  Table t({"metric", "value"});
  t.begin_row().cell("instructions").cell(n);
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    t.begin_row()
        .cell("mix." + std::string(op_class_name(static_cast<OpClass>(c))))
        .cell(format_percent(static_cast<double>(mix[c]) /
                             static_cast<double>(n)));
  }
  t.begin_row().cell("touched lines (64B)").cell(
      static_cast<std::uint64_t>(lines.size()));
  t.begin_row().cell("touched footprint").cell(
      format_si(static_cast<double>(lines.size()) * 64) + "B");
  if (mem_ops > 0) {
    t.begin_row().cell("addr span").cell(
        format_si(static_cast<double>(max_addr - min_addr)) + "B");
  }
  t.begin_row().cell("dep_dist mean").cell(dep.mean(), 2);
  t.begin_row().cell("dep_dist max").cell(dep.max(), 0);
  t.begin_row().cell("loads with dep_dist=1").cell(format_percent(
      dep.count() ? static_cast<double>(chase_like) /
                        static_cast<double>(dep.count())
                  : 0.0));
  t.print(std::cout);
  std::cout << "\ndep_dist distribution (log buckets):\n"
            << dep_hist.to_string();
  return 0;
}

int cmd_stats(const KvConfig& kv) {
  const std::uint64_t count = kv.get_uint("count", 500'000);
  if (auto in = kv.get("in")) {
    try {
      FileTraceSource src(*in);
      return run_stats(src, count);
    } catch (const std::exception& e) {
      std::cerr << "read failed: " << e.what() << "\n";
      return 1;
    }
  }
  const WorkloadProfile* p = find_profile(kv.get_or("workload", ""));
  if (p == nullptr) {
    std::cerr << "need --in=FILE or a valid --workload=NAME\n";
    return 1;
  }
  TraceGenerator gen(*p, kv.get_uint("seed", 42));
  return run_stats(gen, count);
}

}  // namespace

int main(int argc, char** argv) {
  KvConfig kv;
  const auto leftovers = kv.parse_args(argc, argv);
  if (leftovers.size() != 1) return usage();
  const std::string& cmd = leftovers[0];
  if (cmd == "gen") return cmd_gen(kv);
  if (cmd == "convert") return cmd_convert(kv);
  if (cmd == "inspect") return cmd_inspect(kv);
  if (cmd == "filter") return cmd_filter(kv);
  if (cmd == "plan") return cmd_plan(kv);
  if (cmd == "info") return cmd_info(kv);
  if (cmd == "stats") return cmd_stats(kv);
  return usage();
}
