// mapg_trace — generate, inspect, and characterize trace files.
//
//   mapg_trace gen --workload=mcf-like --count=1000000 --out=mcf.trc
//   mapg_trace info --in=mcf.trc
//   mapg_trace stats --workload=lbm-like --count=500000    # from generator
//   mapg_trace stats --in=mcf.trc                          # from file
//
// `stats` reports the instruction mix, footprint, and dependency-distance
// distribution — the knobs that determine stall structure (profile.h).
#include <algorithm>
#include <iostream>
#include <set>
#include <string>

#include "common/config.h"
#include "common/stats.h"
#include "common/table.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_io.h"

using namespace mapg;

namespace {

int usage() {
  std::cout <<
      "usage: mapg_trace <gen|info|stats> [options]\n"
      "  gen   --workload=NAME --count=N --out=FILE [--seed=N]\n"
      "  info  --in=FILE\n"
      "  stats (--workload=NAME --count=N [--seed=N]) | (--in=FILE)\n";
  return 2;
}

int cmd_gen(const KvConfig& kv) {
  const std::string name = kv.get_or("workload", "");
  const WorkloadProfile* p = find_profile(name);
  if (p == nullptr) {
    std::cerr << "unknown workload '" << name << "'\n";
    return 1;
  }
  const std::uint64_t count = kv.get_uint("count", 1'000'000);
  const std::string out = kv.get_or("out", name + ".trc");
  TraceGenerator gen(*p, kv.get_uint("seed", 42));
  std::string err;
  if (!write_trace_file(out, gen, count, &err)) {
    std::cerr << "write failed: " << err << "\n";
    return 1;
  }
  std::cout << "wrote " << count << " instructions to " << out << "\n";
  return 0;
}

int cmd_info(const KvConfig& kv) {
  const std::string in = kv.get_or("in", "");
  std::vector<Instr> trace;
  std::string err;
  if (!read_trace_file(in, trace, &err)) {
    std::cerr << "read failed: " << err << "\n";
    return 1;
  }
  std::cout << in << ": " << trace.size() << " instructions\n";
  return 0;
}

int run_stats(TraceSource& src, std::uint64_t limit) {
  std::array<std::uint64_t, kNumOpClasses> mix{};
  RunningStat dep;
  LogHistogram dep_hist;
  std::set<Addr> lines;
  Addr min_addr = kNoAddr, max_addr = 0;
  std::uint64_t n = 0, mem_ops = 0, chase_like = 0;

  Instr instr;
  while (n < limit && src.next(instr)) {
    ++n;
    ++mix[static_cast<std::size_t>(instr.op)];
    if (instr.op == OpClass::kLoad || instr.op == OpClass::kStore) {
      ++mem_ops;
      lines.insert(instr.addr / 64);
      min_addr = std::min(min_addr, instr.addr);
      max_addr = std::max(max_addr, instr.addr);
    }
    if (instr.op == OpClass::kLoad && instr.dep_dist > 0) {
      dep.add(instr.dep_dist);
      dep_hist.add(instr.dep_dist);
      if (instr.dep_dist == 1) ++chase_like;
    }
  }
  if (n == 0) {
    std::cerr << "empty trace\n";
    return 1;
  }

  Table t({"metric", "value"});
  t.begin_row().cell("instructions").cell(n);
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    t.begin_row()
        .cell("mix." + std::string(op_class_name(static_cast<OpClass>(c))))
        .cell(format_percent(static_cast<double>(mix[c]) /
                             static_cast<double>(n)));
  }
  t.begin_row().cell("touched lines (64B)").cell(
      static_cast<std::uint64_t>(lines.size()));
  t.begin_row().cell("touched footprint").cell(
      format_si(static_cast<double>(lines.size()) * 64) + "B");
  if (mem_ops > 0) {
    t.begin_row().cell("addr span").cell(
        format_si(static_cast<double>(max_addr - min_addr)) + "B");
  }
  t.begin_row().cell("dep_dist mean").cell(dep.mean(), 2);
  t.begin_row().cell("dep_dist max").cell(dep.max(), 0);
  t.begin_row().cell("loads with dep_dist=1").cell(format_percent(
      dep.count() ? static_cast<double>(chase_like) /
                        static_cast<double>(dep.count())
                  : 0.0));
  t.print(std::cout);
  std::cout << "\ndep_dist distribution (log buckets):\n"
            << dep_hist.to_string();
  return 0;
}

int cmd_stats(const KvConfig& kv) {
  const std::uint64_t count = kv.get_uint("count", 500'000);
  if (auto in = kv.get("in")) {
    std::vector<Instr> trace;
    std::string err;
    if (!read_trace_file(*in, trace, &err)) {
      std::cerr << "read failed: " << err << "\n";
      return 1;
    }
    VectorTraceSource src(std::move(trace));
    return run_stats(src, count);
  }
  const WorkloadProfile* p = find_profile(kv.get_or("workload", ""));
  if (p == nullptr) {
    std::cerr << "need --in=FILE or a valid --workload=NAME\n";
    return 1;
  }
  TraceGenerator gen(*p, kv.get_uint("seed", 42));
  return run_stats(gen, count);
}

}  // namespace

int main(int argc, char** argv) {
  KvConfig kv;
  const auto leftovers = kv.parse_args(argc, argv);
  if (leftovers.size() != 1) return usage();
  const std::string& cmd = leftovers[0];
  if (cmd == "gen") return cmd_gen(kv);
  if (cmd == "info") return cmd_info(kv);
  if (cmd == "stats") return cmd_stats(kv);
  return usage();
}
