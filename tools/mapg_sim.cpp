// mapg_sim — the command-line front end to the MAPG simulator.
//
// Single core:
//   mapg_sim --workload=mcf-like --policy=mapg
//   mapg_sim --workload=all --policy=std --instructions=2000000
//   mapg_sim --config=platform.cfg --workload=lbm-like --policy=oracle
//   mapg_sim --workload=mcf-like --policy=mapg --seeds=5      # replicated
// Multicore:
//   mapg_sim --cores=8 --workload=mcf-like,gamess-like --policy=mapg
// Any platform key from multicore/config_apply.h can be given either in the
// --config file or directly on the command line (e.g. --l2.size_kib=2048).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/log.h"
#include "common/table.h"
#include "exec/engine.h"
#include "exec/runner.h"
#include "multicore/config_apply.h"
#include "multicore/multicore.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "pg/factory.h"
#include "sample/runner.h"
#include "trace/profile.h"
#include "trace/trace_file.h"

using namespace mapg;

namespace {

/// Build the shared execution engine from the tool-namespace flags.
std::shared_ptr<ExperimentEngine> make_engine(const KvConfig& kv) {
  ExecOptions opts;
  opts.jobs = static_cast<unsigned>(kv.get_uint("jobs", 0));
  const char* env_cache = std::getenv("MAPG_CACHE_DIR");
  opts.cache_dir =
      kv.get_or("cache-dir", env_cache != nullptr ? env_cache : "");
  opts.use_disk_cache = !kv.get_bool("no-cache", false);
  opts.progress = kv.get_bool("progress", false);
  opts.log_jsonl = kv.get_or("runlog", "");
  return std::make_shared<ExperimentEngine>(opts);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int usage() {
  std::cout <<
      "usage: mapg_sim [options] (all key=value platform overrides accepted)\n"
      "  --workload=NAME[,NAME...]|all   workload profiles (see --list)\n"
      "  --policy=SPEC[,SPEC...]|std|abl policy specs (see --list)\n"
      "  --config=FILE                   key=value platform file\n"
      "  --cores=N                       run the multicore simulator\n"
      "  --seeds=N                       replicate over N trace seeds\n"
      "  --thermal.enable=1              leakage-temperature feedback mode\n"
      "  --dram-power=off|timeout|coordinated\n"
      "                                  DRAM low-power states (alias for\n"
      "                                  dram.power.mode; docs/MEMORY_POWER.md)\n"
      "  --dram-standard=ddr3-1600|ddr4-2400|lpddr4-3200\n"
      "                                  named DRAM timing + energy preset\n"
      "                                  (alias for dram.standard; docs/DRAM.md)\n"
      "  --page-policy=open|closed|hybrid\n"
      "                                  DRAM page-management policy (alias\n"
      "                                  for dram.page_policy; docs/DRAM.md)\n"
      "  --trace=FILE                    simulate an on-disk trace\n"
      "                                  (MAPGTRC1/2; docs/TRACE.md) instead\n"
      "                                  of a generated workload\n"
      "  --sample-regions=N              sampled simulation: region size in\n"
      "                                  instructions (0 = full run)\n"
      "  --sample-clusters=K             clusters / representatives (def 8)\n"
      "  --sample-warmup=N               warmup before each representative\n"
      "  --sample-seed=N                 clustering seed\n"
      "  --sample-sig-cache=FILE         signature cache (MAPGSIG1): load\n"
      "                                  when digest+slicing match, else\n"
      "                                  scan and refresh\n"
      "  --instructions=N --warmup=N --seed=N\n"
      "  --jobs=N                        worker threads (default: all cores)\n"
      "  --cache-dir=DIR                 persistent result cache\n"
      "                                  (default: $MAPG_CACHE_DIR)\n"
      "  --no-cache=1                    skip the disk cache this run\n"
      "  --progress=1                    live job meter on stderr\n"
      "  --runlog=FILE                   append per-job JSONL telemetry\n"
      "  --print-metrics                 metrics table on stdout after the run\n"
      "  --metrics-out=FILE              metrics snapshot as JSON\n"
      "  --trace-out=FILE                Chrome trace (Perfetto-loadable)\n"
      "  --csv=1                         CSV output\n"
      "  --list                          available workloads and policies\n";
  return 2;
}

void list_everything() {
  std::cout << "workloads:\n";
  for (const auto& p : builtin_profiles())
    std::cout << "  " << p.name << " — " << p.description << "\n";
  std::cout << "\npolicy specs:\n"
               "  none | idle-timeout:<N> | oracle | mapg | mapg:alpha=<f>\n"
               "  mapg-aggressive | mapg-noearly | mapg-unfiltered\n"
               "  mapg-history[:ewma=<f>] | mapg-hybrid[:ewma=<f>]\n"
               "  mapg-multimode | idle-timeout-early:<N>\n"
               "  <spec>-dram = coordinated CPU-DRAM gating decorator\n"
               "                (requires --dram-power=coordinated)\n"
               "  std = standard comparison set, abl = ablation set\n";
}

std::vector<WorkloadProfile> resolve_workloads(const std::string& arg) {
  std::vector<WorkloadProfile> out;
  if (arg == "all") return builtin_profiles();
  for (const auto& name : split_csv(arg)) {
    const WorkloadProfile* p = find_profile(name);
    if (p == nullptr) {
      std::cerr << "unknown workload '" << name << "' (try --list)\n";
      return {};
    }
    out.push_back(*p);
  }
  return out;
}

std::vector<std::string> resolve_policies(const std::string& arg) {
  if (arg == "std") return standard_policy_specs();
  if (arg == "abl") return ablation_policy_specs();
  return split_csv(arg);
}

int run_single(const KvConfig& kv, const std::vector<WorkloadProfile>& wls,
               const std::vector<std::string>& specs, bool csv,
               unsigned seeds) {
  std::vector<std::string> unknown;
  const SimConfig cfg = apply_sim_config(kv, SimConfig{}, &unknown);
  for (const auto& k : unknown)
    log_warn() << "ignoring unknown config key '" << k << "'";

  if (cfg.thermal.enable) {
    // Thermal mode: leakage-temperature feedback per run (seeds ignored).
    const Simulator sim(cfg);
    Table t({"workload", "policy", "T_avg_C", "T_peak_C", "iso_total_mJ",
             "thermal_total_mJ"});
    for (const auto& w : wls) {
      for (const auto& spec : specs) {
        ThermalResult r;
        try {
          r = sim.run_thermal(w, spec);
        } catch (const std::exception& e) {
          std::cerr << "policy '" << spec << "': " << e.what() << "\n";
          return 1;
        }
        t.begin_row()
            .cell(w.name)
            .cell(r.sim.policy)
            .cell(r.avg_temperature_c, 1)
            .cell(r.peak_temperature_c, 1)
            .cell(r.sim.energy.total_j() * 1e3, 3)
            .cell(r.thermal_total_j() * 1e3, 3);
      }
    }
    csv ? t.print_csv(std::cout) : t.print(std::cout);
    return 0;
  }

  std::shared_ptr<ExperimentEngine> engine = make_engine(kv);
  ExperimentRunner runner(cfg, engine);
  if (seeds > 1) {
    Table t({"workload", "policy", "core_savings_mean", "core_savings_stdev",
             "overhead_mean", "overhead_max", "mpki_mean", "seeds"});
    for (const auto& w : wls) {
      for (const auto& spec : specs) {
        if (spec == "none") continue;
        const ReplicatedComparison r = runner.replicate(w, spec, seeds);
        t.begin_row()
            .cell(r.workload)
            .cell(r.policy)
            .cell(format_percent(r.core_energy_savings.mean()))
            .cell(format_percent(r.core_energy_savings.stdev(), 2))
            .cell(format_percent(r.runtime_overhead.mean(), 2))
            .cell(format_percent(r.runtime_overhead.max(), 2))
            .cell(r.mpki.mean(), 1)
            .cell(r.replicates());
      }
    }
    csv ? t.print_csv(std::cout) : t.print(std::cout);
    return 0;
  }

  Table t({"workload", "MPKI", "IPC", "policy", "core_savings",
           "total_savings", "overhead", "gated_time", "events"});
  for (const auto& w : wls) {
    for (const auto& spec : specs) {
      Comparison c;
      try {
        c = runner.compare_one(w, spec);
      } catch (const std::exception& e) {
        std::cerr << "policy '" << spec << "': " << e.what() << "\n";
        return 1;
      }
      const SimResult& r = c.result;
      t.begin_row()
          .cell(w.name)
          .cell(r.mpki(), 1)
          .cell(r.ipc(), 3)
          .cell(r.policy)
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(c.total_energy_savings))
          .cell(format_percent(c.runtime_overhead, 2))
          .cell(format_percent(r.gated_time_fraction()))
          .cell(r.gating.gated_events);
    }
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  return 0;
}

/// "value±halfwidth" rendering for sampled estimates (the halfwidth is the
/// 95% CI; exact values print without the ±).
std::string pm(const MetricEstimate& e, int prec) {
  char buf[64];
  if (e.stderr_ == 0) {
    std::snprintf(buf, sizeof buf, "%.*f", prec, e.value);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f±%.*f", prec, e.value, prec,
                  e.value - e.ci_lo);
  }
  return buf;
}

int run_trace(const KvConfig& kv, const std::vector<std::string>& specs,
              bool csv) {
  std::vector<std::string> unknown;
  SimConfig cfg = apply_sim_config(kv, SimConfig{}, &unknown);
  for (const auto& k : unknown)
    log_warn() << "ignoring unknown config key '" << k << "'";
  const std::string path = kv.get_or("trace", "");
  const std::string name = kv.get_or("trace-name", "trace:" + path);

  try {
    FileTraceSource trace(path);
    const std::uint64_t region = kv.get_uint("sample-regions", 0);

    if (region == 0) {
      // Full simulation of a trace window through the engine: the binding's
      // content digest keys the cache (exec schema v7).
      if (!kv.contains("warmup")) cfg.warmup_instructions = 0;
      const std::uint64_t avail =
          trace.size() > cfg.warmup_instructions
              ? trace.size() - cfg.warmup_instructions
              : 0;
      if (!kv.contains("instructions") || cfg.instructions > avail)
        cfg.instructions = avail;
      std::shared_ptr<ExperimentEngine> engine = make_engine(kv);
      Table t({"workload", "instrs", "policy", "MPKI", "IPC", "gated_time",
               "total_mJ"});
      for (const auto& spec : specs) {
        ExperimentJob job;
        job.config = cfg;
        job.profile.name = name;
        job.policy_spec = spec;
        job.trace = TraceBinding{path, trace.info().digest_hex(), 0, name};
        const JobOutcome out = engine->run_one(job);
        if (!out.ok) {
          std::cerr << "policy '" << spec << "': " << out.error << "\n";
          return 1;
        }
        const SimResult& r = *out.result;
        t.begin_row()
            .cell(name)
            .cell(r.core.instrs)
            .cell(r.policy)
            .cell(r.mpki(), 1)
            .cell(r.ipc(), 3)
            .cell(format_percent(r.gated_time_fraction()))
            .cell(r.energy.total_j() * 1e3, 3);
      }
      csv ? t.print_csv(std::cout) : t.print(std::cout);
      return 0;
    }

    // Sampled simulation: plan once, project each policy (docs/TRACE.md).
    SampleConfig scfg;
    scfg.region_instructions = region;
    scfg.clusters = kv.get_uint("sample-clusters", 8);
    scfg.warmup_instructions = kv.get_uint("sample-warmup", 200'000);
    scfg.seed = kv.get_uint("sample-seed", 42);
    scfg.signature_cache = kv.get_or("sample-sig-cache", "");
    SamplePlan plan = build_sample_plan(trace, scfg);
    std::cout << name << ": " << plan.total_instructions << " instructions, "
              << plan.regions.size() << " regions, " << plan.clusters.size()
              << " clusters"
              << (plan.exhaustive ? " (exhaustive: full run)" : "")
              << ", simulating " << plan.sampled_instructions()
              << " instructions\n";
    SampledRunner runner(cfg, trace, std::move(plan), name);
    Table t({"workload", "policy", "IPC", "MPKI", "gated_time", "total_mJ",
             "exact"});
    for (const auto& spec : specs) {
      SampledResult r;
      try {
        r = runner.run(spec);
      } catch (const std::exception& e) {
        std::cerr << "policy '" << spec << "': " << e.what() << "\n";
        return 1;
      }
      MetricEstimate energy = *r.find("energy_total_j");
      energy.value *= 1e3;
      energy.ci_lo *= 1e3;
      energy.ci_hi *= 1e3;
      energy.stderr_ *= 1e3;
      t.begin_row()
          .cell(r.workload)
          .cell(r.policy)
          .cell(pm(*r.find("ipc"), 3))
          .cell(pm(*r.find("mpki"), 1))
          .cell(pm(*r.find("gated_time_fraction"), 3))
          .cell(pm(energy, 3))
          .cell(r.exact ? "yes" : "no");
    }
    csv ? t.print_csv(std::cout) : t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "trace run failed: " << e.what() << "\n";
    return 1;
  }
}

int run_multicore(const KvConfig& kv, const std::vector<WorkloadProfile>& wls,
                  const std::vector<std::string>& specs, bool csv) {
  std::vector<std::string> unknown;
  const MulticoreConfig cfg =
      apply_multicore_config(kv, MulticoreConfig{}, &unknown);
  for (const auto& k : unknown)
    log_warn() << "ignoring unknown config key '" << k << "'";

  const MulticoreSim sim(cfg);
  const MulticoreResult base = sim.run(wls, "none");

  Table t({"policy", "cores", "makespan", "avg_gated_time",
           "energy_savings", "dram_read_lat", "wake_delays"});
  for (const auto& spec : specs) {
    MulticoreResult r;
    try {
      r = sim.run(wls, spec);
    } catch (const std::exception& e) {
      std::cerr << "policy '" << spec << "': " << e.what() << "\n";
      return 1;
    }
    t.begin_row()
        .cell(r.policy)
        .cell(std::uint64_t{cfg.num_cores})
        .cell(r.makespan)
        .cell(format_percent(r.avg_gated_fraction()))
        .cell(format_percent(1.0 - r.total_j() / base.total_j()))
        .cell(r.dram.read_latency.mean(), 1)
        .cell(r.wake_delayed_grants);
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  KvConfig kv;
  const std::vector<std::string> leftovers = kv.parse_args(argc, argv);
  for (const auto& word : leftovers) {
    if (word == "--list" || word == "list") {
      list_everything();
      return 0;
    }
    if (word == "--help" || word == "-h") return usage();
    if (word == "--print-metrics") {
      kv.set("print-metrics", "1");
      continue;
    }
    std::cerr << "unrecognized argument '" << word << "'\n";
    return usage();
  }

  // Convenience alias shared with the benches: --dram-power=MODE is
  // shorthand for --dram.power.mode=MODE.
  if (auto mode = kv.get("dram-power"))
    if (!kv.contains("dram.power.mode")) kv.set("dram.power.mode", *mode);

  const std::string trace_out = kv.get_or("trace-out", "");
  if (!trace_out.empty()) obs::EventTracer::instance().start();

  if (auto cfg_path = kv.get("config")) {
    std::ifstream is(*cfg_path);
    if (!is) {
      std::cerr << "cannot open config file '" << *cfg_path << "'\n";
      return 1;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    KvConfig from_file;
    std::string err;
    if (!from_file.parse_text(buf.str(), &err)) {
      std::cerr << "config file error: " << err << "\n";
      return 1;
    }
    // Command-line values win over file values.
    for (const auto& [k, v] : from_file.all())
      if (!kv.contains(k)) kv.set(k, v);
  }

  const bool csv = kv.get_bool("csv", false);
  const auto seeds = static_cast<unsigned>(kv.get_uint("seeds", 1));
  const auto specs = resolve_policies(kv.get_or("policy", "std"));
  if (specs.empty()) {
    std::cerr << "no policies given\n";
    return usage();
  }

  int rc;
  if (kv.contains("trace")) {
    rc = run_trace(kv, specs, csv);
  } else {
    const auto workloads =
        resolve_workloads(kv.get_or("workload", "mcf-like"));
    if (workloads.empty()) return 1;
    rc = kv.get_uint("cores", 0) > 1
             ? run_multicore(kv, workloads, specs, csv)
             : run_single(kv, workloads, specs, csv, seeds);
  }

  // Observability sinks run even after a failed run — partial metrics are
  // exactly what one wants when debugging the failure.
  if (kv.get_bool("print-metrics", false)) {
    std::cout << "\n";
    obs::print_metrics_table(std::cout);
  }
  const std::string metrics_out = kv.get_or("metrics-out", "");
  if (!metrics_out.empty() && obs::write_metrics_file(metrics_out))
    std::cerr << "[obs] metrics -> " << metrics_out << "\n";
  if (!trace_out.empty()) {
    obs::EventTracer& tracer = obs::EventTracer::instance();
    if (obs::finalize_and_write_trace(trace_out))
      std::cerr << "[obs] trace: " << tracer.size() << " events ("
                << tracer.dropped() << " dropped) -> " << trace_out << "\n";
  }
  return rc;
}
