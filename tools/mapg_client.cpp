// mapg_client — CLI client for the resident experiment server.
//
//   mapg_client ping     --port=18256
//   mapg_client cell     --workload=mcf-like --policy=mapg --seed=3
//   mapg_client sweep    --workload=mcf-like,gcc-like --policy=none,mapg
//                        --seeds=2 --summary=1
//   mapg_client stats    --port=18256
//   mapg_client shutdown --port=18256
//
// Any platform key from multicore/config_apply.h (e.g. --l2.size_kib=2048,
// --instructions=200000, --seed=3) is forwarded in the request's config map;
// the server applies it with the same strict parser mapg_sim uses.
//
// Responses print as one line of canonical JSON.  For cells, --result-only=1
// prints just the embedded result document — the exact bytes
// result_to_json() of a local engine run serializes to — and --local=1
// computes the same cell in-process instead of via the server.  Together
// they make the byte-identity contract scriptable:
//
//   diff <(mapg_client cell ... --result-only=1 --local=1)
//        <(mapg_client cell ... --result-only=1)
#include <cstdlib>
#include <iostream>
#include <set>
#include <sstream>

#include "common/config.h"
#include "exec/engine.h"
#include "exec/serialize.h"
#include "multicore/config_apply.h"
#include "serve/client.h"
#include "trace/profile.h"

using namespace mapg;

namespace {

/// Tool-namespace flags that must NOT be forwarded as platform config.
const std::set<std::string>& tool_keys() {
  static const std::set<std::string> keys = {
      "host",   "port",  "workload",    "policy",    "seeds",
      "local",  "summary", "result-only", "cache-dir", "no-cache",
      "jobs",   "replay"};
  return keys;
}

std::map<std::string, std::string> config_from(const KvConfig& kv) {
  std::map<std::string, std::string> out;
  for (const auto& [k, v] : kv.all())
    if (tool_keys().count(k) == 0) out[k] = v;
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int usage() {
  std::cout <<
      "usage: mapg_client COMMAND [options] [platform key=value...]\n"
      "commands: ping | cell | sweep | stats | shutdown\n"
      "  --host=ADDR --port=N   server address (default 127.0.0.1:18256)\n"
      "  --workload=NAME[,..]   workload profile(s)\n"
      "  --policy=SPEC[,..]     policy spec(s)\n"
      "  --seeds=N              sweep: replicate over N trace seeds\n"
      "  --summary=1            sweep: per-cell table instead of JSON\n"
      "  --result-only=1        cell: print only the embedded result JSON\n"
      "  --local=1              cell: compute in-process (no server) —\n"
      "                         for byte-identity checks against the serve\n"
      "                         path (--cache-dir/--no-cache/--jobs apply)\n";
  return 2;
}

int fail(const std::string& error) {
  std::cerr << "mapg_client: " << error << "\n";
  return 1;
}

/// The --local=1 path: resolve the cell with an in-process engine and print
/// exactly the bytes the server embeds in its response's "result" field.
int run_local_cell(const KvConfig& kv, const serve::CellRequest& req) {
  KvConfig platform;
  for (const auto& [k, v] : req.config) platform.set(k, v);
  std::vector<std::string> unknown;
  ExperimentJob job;
  job.config = apply_sim_config(platform, SimConfig{}, &unknown);
  if (!unknown.empty())
    return fail("unknown config key '" + unknown.front() + "'");
  const WorkloadProfile* profile = find_profile(req.workload);
  if (profile == nullptr) return fail("unknown workload '" + req.workload + "'");
  job.profile = *profile;
  job.policy_spec = req.policy;

  ExecOptions opts;
  opts.jobs = 1;
  const char* env_cache = std::getenv("MAPG_CACHE_DIR");
  opts.cache_dir =
      kv.get_or("cache-dir", env_cache != nullptr ? env_cache : "");
  opts.use_disk_cache = !kv.get_bool("no-cache", false);
  opts.use_replay = kv.get_bool("replay", true);
  ExperimentEngine engine(opts);
  const JobOutcome out = engine.run_one(job);
  if (!out.ok) return fail(out.error);
  std::cout << result_to_json(*out.result).dump() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  KvConfig kv;
  const std::vector<std::string> leftovers = kv.parse_args(argc, argv);
  std::string command;
  for (const auto& word : leftovers) {
    if (word == "--help" || word == "-h") return usage();
    if (!command.empty()) {
      std::cerr << "unrecognized argument '" << word << "'\n";
      return usage();
    }
    command = word;
  }
  if (command.empty()) return usage();

  const std::string host = kv.get_or("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(kv.get_uint("port", 18256));

  if (command == "cell") {
    serve::CellRequest req;
    req.config = config_from(kv);
    req.workload = kv.get_or("workload", "mcf-like");
    req.policy = kv.get_or("policy", "none");
    if (kv.get_bool("local", false)) return run_local_cell(kv, req);

    serve::ServeClient client;
    std::string error;
    if (!client.connect(host, port, &error)) return fail(error);
    const std::optional<Json> doc = client.cell(req, &error);
    if (!doc) return fail(error);
    if (!doc->get("ok").as_bool())
      return fail("cell failed: " + doc->get("error").as_string());
    if (kv.get_bool("result-only", false))
      std::cout << doc->get("result").dump() << "\n";
    else
      std::cout << doc->dump() << "\n";
    return 0;
  }

  if (command == "sweep") {
    serve::SweepRequest req;
    req.config = config_from(kv);
    req.workloads = split_csv(kv.get_or("workload", "mcf-like"));
    req.policies = split_csv(kv.get_or("policy", "none,mapg"));
    req.seeds = static_cast<unsigned>(kv.get_uint("seeds", 1));
    serve::ServeClient client;
    std::string error;
    if (!client.connect(host, port, &error)) return fail(error);
    const std::optional<Json> doc = client.sweep(req, &error);
    if (!doc) return fail(error);
    if (!kv.get_bool("summary", false)) {
      std::cout << doc->dump() << "\n";
      return 0;
    }
    const Json& cells = doc->get("cells");
    std::size_t i = 0;
    bool any_failed = false;
    for (const std::string& w : req.workloads) {
      for (const std::string& p : req.policies) {
        for (unsigned s = 0; s < req.seeds; ++s, ++i) {
          const Json& cell = cells.at(i);
          const bool ok = cell.get("ok").as_bool();
          any_failed = any_failed || !ok;
          std::cout << w << " " << p << " seed=" << s << " tier="
                    << cell.get("tier").as_string() << " "
                    << (ok ? "ok" : "FAILED: " +
                                        cell.get("error").as_string())
                    << "\n";
        }
      }
    }
    return any_failed ? 1 : 0;
  }

  serve::ServeClient client;
  std::string error;
  if (!client.connect(host, port, &error)) return fail(error);
  if (command == "ping") {
    if (!client.ping(&error)) return fail(error);
    std::cout << "ok\n";
    return 0;
  }
  if (command == "stats") {
    const std::optional<Json> doc = client.stats(&error);
    if (!doc) return fail(error);
    std::cout << doc->dump() << "\n";
    return 0;
  }
  if (command == "shutdown") {
    if (!client.shutdown_server(&error)) return fail(error);
    std::cout << "ok\n";
    return 0;
  }
  std::cerr << "unknown command '" << command << "'\n";
  return usage();
}
