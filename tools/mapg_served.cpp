// mapg_served — the resident experiment server (docs/SERVE.md).
//
//   mapg_served --port=18256 --jobs=8 --cache-dir=/var/cache/mapg
//   mapg_served --port=0                  # ephemeral; bound port on stdout
//   mapg_served --shards=h1:18256,h2:18256   # shard front: forward by key
//
// Prints one `listening on ADDR:PORT` line to stdout once accepting, then
// serves until a client sends kShutdown (mapg_client shutdown) or the
// process receives SIGTERM/SIGINT.  Signals are handled with a self-pipe:
// the handler writes one byte, a watcher thread reads it and calls
// ServeServer::stop(), which drains in-flight requests before exit — so
// `kill` gives the same clean shutdown the protocol does.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include <unistd.h>

#include "common/config.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "serve/server.h"

using namespace mapg;

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // write() is async-signal-safe; the watcher thread does the real work.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : s) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

int usage() {
  std::cout <<
      "usage: mapg_served [options]\n"
      "  --bind=ADDR            listen address (default 127.0.0.1)\n"
      "  --port=N               listen port; 0 = ephemeral (default 18256)\n"
      "  --jobs=N               compute worker threads (default: all cores)\n"
      "  --cache-dir=DIR        persistent result cache\n"
      "                         (default: $MAPG_CACHE_DIR)\n"
      "  --no-cache=1           skip the disk cache tier\n"
      "  --replay=0             disable the cached-timeline replay tier\n"
      "  --hot-entries=N        hot LRU capacity in results (default 4096)\n"
      "  --timeline-entries=N   cached reference timelines (default 8)\n"
      "  --shards=H:P,H:P,...   shard-front mode: forward cells to these\n"
      "                         workers by cache key; no local simulation\n"
      "  --metrics-out=FILE     metrics snapshot as JSON on exit\n"
      "  --trace-out=FILE       Chrome trace (Perfetto-loadable) on exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  KvConfig kv;
  const std::vector<std::string> leftovers = kv.parse_args(argc, argv);
  for (const auto& word : leftovers) {
    if (word == "--help" || word == "-h") return usage();
    std::cerr << "unrecognized argument '" << word << "'\n";
    return usage();
  }

  const std::string trace_out = kv.get_or("trace-out", "");
  if (!trace_out.empty()) obs::EventTracer::instance().start();

  serve::ServerOptions opts;
  opts.bind_addr = kv.get_or("bind", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(kv.get_uint("port", 18256));
  opts.exec.jobs = static_cast<unsigned>(kv.get_uint("jobs", 0));
  const char* env_cache = std::getenv("MAPG_CACHE_DIR");
  opts.exec.cache_dir =
      kv.get_or("cache-dir", env_cache != nullptr ? env_cache : "");
  opts.exec.use_disk_cache = !kv.get_bool("no-cache", false);
  opts.exec.use_replay = kv.get_bool("replay", true);
  opts.tiered.hot_entries =
      static_cast<std::size_t>(kv.get_uint("hot-entries", 4096));
  opts.tiered.timeline_entries =
      static_cast<std::size_t>(kv.get_uint("timeline-entries", 8));
  opts.shards = split_csv(kv.get_or("shards", ""));

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // broken clients are per-connection errors

  serve::ServeServer server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "mapg_served: " << error << "\n";
    return 1;
  }
  std::cout << "listening on " << opts.bind_addr << ":" << server.port()
            << (server.shard_front()
                    ? " (shard front, " + std::to_string(opts.shards.size()) +
                          " workers)"
                    : "")
            << std::endl;  // flush: scripts wait for this line

  bool signalled = false;
  std::thread watcher([&] {
    char byte = 0;
    ssize_t n;
    while ((n = ::read(g_signal_pipe[0], &byte, 1)) < 0 && errno == EINTR) {
    }
    if (n > 0) {
      signalled = true;
      server.stop();  // unblocks wait()
    }
    // n == 0: main closed the write end after a protocol shutdown.
  });

  server.wait();
  server.stop();
  ::close(g_signal_pipe[1]);  // EOF for the watcher if no signal arrived
  watcher.join();

  std::cerr << "mapg_served: " << server.requests_served() << " requests, "
            << (signalled ? "signal" : "shutdown request") << "; exiting\n";

  const std::string metrics_out = kv.get_or("metrics-out", "");
  if (!metrics_out.empty() && obs::write_metrics_file(metrics_out))
    std::cerr << "[obs] metrics -> " << metrics_out << "\n";
  if (!trace_out.empty() && obs::finalize_and_write_trace(trace_out))
    std::cerr << "[obs] trace -> " << trace_out << "\n";
  return 0;
}
