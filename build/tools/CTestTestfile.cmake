# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_sim_list "/root/repo/build/tools/mapg_sim" "--list")
set_tests_properties(tool_sim_list PROPERTIES  PASS_REGULAR_EXPRESSION "mcf-like" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_run "/root/repo/build/tools/mapg_sim" "--workload=gcc-like" "--policy=mapg" "--instructions=50000" "--warmup=10000")
set_tests_properties(tool_sim_run PROPERTIES  PASS_REGULAR_EXPRESSION "gcc-like" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_multicore "/root/repo/build/tools/mapg_sim" "--cores=2" "--workload=gcc-like" "--policy=mapg" "--instructions=30000" "--warmup=10000")
set_tests_properties(tool_sim_multicore PROPERTIES  PASS_REGULAR_EXPRESSION "mapg" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_bad_workload "/root/repo/build/tools/mapg_sim" "--workload=nope")
set_tests_properties(tool_sim_bad_workload PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_trace_stats "/root/repo/build/tools/mapg_tracetool" "stats" "--workload=mcf-like" "--count=20000")
set_tests_properties(tool_trace_stats PROPERTIES  PASS_REGULAR_EXPRESSION "dep_dist mean" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
