file(REMOVE_RECURSE
  "CMakeFiles/mapg_tracetool.dir/mapg_tracetool.cpp.o"
  "CMakeFiles/mapg_tracetool.dir/mapg_tracetool.cpp.o.d"
  "mapg_tracetool"
  "mapg_tracetool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_tracetool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
