# Empty compiler generated dependencies file for mapg_tracetool.
# This may be replaced when dependencies are built.
