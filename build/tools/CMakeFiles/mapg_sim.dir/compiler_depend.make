# Empty compiler generated dependencies file for mapg_sim.
# This may be replaced when dependencies are built.
