file(REMOVE_RECURSE
  "CMakeFiles/mapg_sim.dir/mapg_sim.cpp.o"
  "CMakeFiles/mapg_sim.dir/mapg_sim.cpp.o.d"
  "mapg_sim"
  "mapg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
