
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/mapg_sim.cpp" "tools/CMakeFiles/mapg_sim.dir/mapg_sim.cpp.o" "gcc" "tools/CMakeFiles/mapg_sim.dir/mapg_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/multicore/CMakeFiles/mapg_multicore.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mapg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pg/CMakeFiles/mapg_pg.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mapg_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mapg_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mapg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mapg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mapg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
