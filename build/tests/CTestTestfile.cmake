# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_multicore[1]_include.cmake")
include("/root/repo/build/tests/test_multimode[1]_include.cmake")
include("/root/repo/build/tests/test_wake_arbiter[1]_include.cmake")
include("/root/repo/build/tests/test_prefetcher[1]_include.cmake")
include("/root/repo/build/tests/test_config_apply[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_mem_properties[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_thermal[1]_include.cmake")
