# Empty compiler generated dependencies file for test_wake_arbiter.
# This may be replaced when dependencies are built.
