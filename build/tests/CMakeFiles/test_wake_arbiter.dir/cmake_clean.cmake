file(REMOVE_RECURSE
  "CMakeFiles/test_wake_arbiter.dir/test_wake_arbiter.cpp.o"
  "CMakeFiles/test_wake_arbiter.dir/test_wake_arbiter.cpp.o.d"
  "test_wake_arbiter"
  "test_wake_arbiter.pdb"
  "test_wake_arbiter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wake_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
