# Empty compiler generated dependencies file for test_multimode.
# This may be replaced when dependencies are built.
