file(REMOVE_RECURSE
  "CMakeFiles/test_multimode.dir/test_multimode.cpp.o"
  "CMakeFiles/test_multimode.dir/test_multimode.cpp.o.d"
  "test_multimode"
  "test_multimode.pdb"
  "test_multimode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multimode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
