file(REMOVE_RECURSE
  "CMakeFiles/test_config_apply.dir/test_config_apply.cpp.o"
  "CMakeFiles/test_config_apply.dir/test_config_apply.cpp.o.d"
  "test_config_apply"
  "test_config_apply.pdb"
  "test_config_apply[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
