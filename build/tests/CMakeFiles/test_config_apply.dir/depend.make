# Empty dependencies file for test_config_apply.
# This may be replaced when dependencies are built.
