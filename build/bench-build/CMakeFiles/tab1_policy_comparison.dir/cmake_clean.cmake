file(REMOVE_RECURSE
  "../bench/tab1_policy_comparison"
  "../bench/tab1_policy_comparison.pdb"
  "CMakeFiles/tab1_policy_comparison.dir/tab1_policy_comparison.cpp.o"
  "CMakeFiles/tab1_policy_comparison.dir/tab1_policy_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
