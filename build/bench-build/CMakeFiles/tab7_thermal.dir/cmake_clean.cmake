file(REMOVE_RECURSE
  "../bench/tab7_thermal"
  "../bench/tab7_thermal.pdb"
  "CMakeFiles/tab7_thermal.dir/tab7_thermal.cpp.o"
  "CMakeFiles/tab7_thermal.dir/tab7_thermal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
