# Empty compiler generated dependencies file for tab7_thermal.
# This may be replaced when dependencies are built.
