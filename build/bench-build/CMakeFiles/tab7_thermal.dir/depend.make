# Empty dependencies file for tab7_thermal.
# This may be replaced when dependencies are built.
