file(REMOVE_RECURSE
  "../bench/tab3_ablation"
  "../bench/tab3_ablation.pdb"
  "CMakeFiles/tab3_ablation.dir/tab3_ablation.cpp.o"
  "CMakeFiles/tab3_ablation.dir/tab3_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
