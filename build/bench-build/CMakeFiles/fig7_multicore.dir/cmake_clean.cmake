file(REMOVE_RECURSE
  "../bench/fig7_multicore"
  "../bench/fig7_multicore.pdb"
  "CMakeFiles/fig7_multicore.dir/fig7_multicore.cpp.o"
  "CMakeFiles/fig7_multicore.dir/fig7_multicore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
