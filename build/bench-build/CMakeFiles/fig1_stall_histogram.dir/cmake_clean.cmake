file(REMOVE_RECURSE
  "../bench/fig1_stall_histogram"
  "../bench/fig1_stall_histogram.pdb"
  "CMakeFiles/fig1_stall_histogram.dir/fig1_stall_histogram.cpp.o"
  "CMakeFiles/fig1_stall_histogram.dir/fig1_stall_histogram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_stall_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
