# Empty compiler generated dependencies file for fig1_stall_histogram.
# This may be replaced when dependencies are built.
