file(REMOVE_RECURSE
  "../bench/tab5_prefetch"
  "../bench/tab5_prefetch.pdb"
  "CMakeFiles/tab5_prefetch.dir/tab5_prefetch.cpp.o"
  "CMakeFiles/tab5_prefetch.dir/tab5_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
