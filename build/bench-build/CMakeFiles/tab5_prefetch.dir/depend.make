# Empty dependencies file for tab5_prefetch.
# This may be replaced when dependencies are built.
