# Empty compiler generated dependencies file for tab4_multimode.
# This may be replaced when dependencies are built.
