file(REMOVE_RECURSE
  "../bench/tab4_multimode"
  "../bench/tab4_multimode.pdb"
  "CMakeFiles/tab4_multimode.dir/tab4_multimode.cpp.o"
  "CMakeFiles/tab4_multimode.dir/tab4_multimode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_multimode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
