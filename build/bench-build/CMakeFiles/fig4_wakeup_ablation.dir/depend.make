# Empty dependencies file for fig4_wakeup_ablation.
# This may be replaced when dependencies are built.
