file(REMOVE_RECURSE
  "../bench/fig4_wakeup_ablation"
  "../bench/fig4_wakeup_ablation.pdb"
  "CMakeFiles/fig4_wakeup_ablation.dir/fig4_wakeup_ablation.cpp.o"
  "CMakeFiles/fig4_wakeup_ablation.dir/fig4_wakeup_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_wakeup_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
