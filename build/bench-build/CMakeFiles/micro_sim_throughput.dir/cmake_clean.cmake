file(REMOVE_RECURSE
  "../bench/micro_sim_throughput"
  "../bench/micro_sim_throughput.pdb"
  "CMakeFiles/micro_sim_throughput.dir/micro_sim_throughput.cpp.o"
  "CMakeFiles/micro_sim_throughput.dir/micro_sim_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
