# Empty dependencies file for fig3_latency_sweep.
# This may be replaced when dependencies are built.
