file(REMOVE_RECURSE
  "../bench/fig3_latency_sweep"
  "../bench/fig3_latency_sweep.pdb"
  "CMakeFiles/fig3_latency_sweep.dir/fig3_latency_sweep.cpp.o"
  "CMakeFiles/fig3_latency_sweep.dir/fig3_latency_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_latency_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
