# Empty dependencies file for tab6_phases.
# This may be replaced when dependencies are built.
