file(REMOVE_RECURSE
  "../bench/tab6_phases"
  "../bench/tab6_phases.pdb"
  "CMakeFiles/tab6_phases.dir/tab6_phases.cpp.o"
  "CMakeFiles/tab6_phases.dir/tab6_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
