file(REMOVE_RECURSE
  "../bench/tab2_sensitivity"
  "../bench/tab2_sensitivity.pdb"
  "CMakeFiles/tab2_sensitivity.dir/tab2_sensitivity.cpp.o"
  "CMakeFiles/tab2_sensitivity.dir/tab2_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
