# Empty dependencies file for tab2_sensitivity.
# This may be replaced when dependencies are built.
