# Empty dependencies file for fig2_pg_circuit.
# This may be replaced when dependencies are built.
