file(REMOVE_RECURSE
  "../bench/fig2_pg_circuit"
  "../bench/fig2_pg_circuit.pdb"
  "CMakeFiles/fig2_pg_circuit.dir/fig2_pg_circuit.cpp.o"
  "CMakeFiles/fig2_pg_circuit.dir/fig2_pg_circuit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pg_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
