file(REMOVE_RECURSE
  "../bench/fig6_timeout_sweep"
  "../bench/fig6_timeout_sweep.pdb"
  "CMakeFiles/fig6_timeout_sweep.dir/fig6_timeout_sweep.cpp.o"
  "CMakeFiles/fig6_timeout_sweep.dir/fig6_timeout_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_timeout_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
