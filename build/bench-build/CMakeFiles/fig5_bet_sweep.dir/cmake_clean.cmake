file(REMOVE_RECURSE
  "../bench/fig5_bet_sweep"
  "../bench/fig5_bet_sweep.pdb"
  "CMakeFiles/fig5_bet_sweep.dir/fig5_bet_sweep.cpp.o"
  "CMakeFiles/fig5_bet_sweep.dir/fig5_bet_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bet_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
