# Empty dependencies file for fig8_wake_arbiter.
# This may be replaced when dependencies are built.
