file(REMOVE_RECURSE
  "../bench/fig8_wake_arbiter"
  "../bench/fig8_wake_arbiter.pdb"
  "CMakeFiles/fig8_wake_arbiter.dir/fig8_wake_arbiter.cpp.o"
  "CMakeFiles/fig8_wake_arbiter.dir/fig8_wake_arbiter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_wake_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
