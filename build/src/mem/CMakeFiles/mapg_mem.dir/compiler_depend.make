# Empty compiler generated dependencies file for mapg_mem.
# This may be replaced when dependencies are built.
