file(REMOVE_RECURSE
  "CMakeFiles/mapg_mem.dir/cache.cpp.o"
  "CMakeFiles/mapg_mem.dir/cache.cpp.o.d"
  "CMakeFiles/mapg_mem.dir/dram.cpp.o"
  "CMakeFiles/mapg_mem.dir/dram.cpp.o.d"
  "CMakeFiles/mapg_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/mapg_mem.dir/hierarchy.cpp.o.d"
  "CMakeFiles/mapg_mem.dir/prefetcher.cpp.o"
  "CMakeFiles/mapg_mem.dir/prefetcher.cpp.o.d"
  "libmapg_mem.a"
  "libmapg_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
