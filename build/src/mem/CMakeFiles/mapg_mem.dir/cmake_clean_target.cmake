file(REMOVE_RECURSE
  "libmapg_mem.a"
)
