file(REMOVE_RECURSE
  "CMakeFiles/mapg_power.dir/dram_energy.cpp.o"
  "CMakeFiles/mapg_power.dir/dram_energy.cpp.o.d"
  "CMakeFiles/mapg_power.dir/energy_model.cpp.o"
  "CMakeFiles/mapg_power.dir/energy_model.cpp.o.d"
  "CMakeFiles/mapg_power.dir/pg_circuit.cpp.o"
  "CMakeFiles/mapg_power.dir/pg_circuit.cpp.o.d"
  "CMakeFiles/mapg_power.dir/thermal.cpp.o"
  "CMakeFiles/mapg_power.dir/thermal.cpp.o.d"
  "libmapg_power.a"
  "libmapg_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
