# Empty dependencies file for mapg_power.
# This may be replaced when dependencies are built.
