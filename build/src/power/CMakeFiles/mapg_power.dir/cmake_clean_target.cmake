file(REMOVE_RECURSE
  "libmapg_power.a"
)
