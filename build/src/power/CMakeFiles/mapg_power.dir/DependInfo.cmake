
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/dram_energy.cpp" "src/power/CMakeFiles/mapg_power.dir/dram_energy.cpp.o" "gcc" "src/power/CMakeFiles/mapg_power.dir/dram_energy.cpp.o.d"
  "/root/repo/src/power/energy_model.cpp" "src/power/CMakeFiles/mapg_power.dir/energy_model.cpp.o" "gcc" "src/power/CMakeFiles/mapg_power.dir/energy_model.cpp.o.d"
  "/root/repo/src/power/pg_circuit.cpp" "src/power/CMakeFiles/mapg_power.dir/pg_circuit.cpp.o" "gcc" "src/power/CMakeFiles/mapg_power.dir/pg_circuit.cpp.o.d"
  "/root/repo/src/power/thermal.cpp" "src/power/CMakeFiles/mapg_power.dir/thermal.cpp.o" "gcc" "src/power/CMakeFiles/mapg_power.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mapg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mapg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mapg_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mapg_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
