file(REMOVE_RECURSE
  "libmapg_common.a"
)
