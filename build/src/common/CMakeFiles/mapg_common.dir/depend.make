# Empty dependencies file for mapg_common.
# This may be replaced when dependencies are built.
