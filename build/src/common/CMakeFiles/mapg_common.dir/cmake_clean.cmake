file(REMOVE_RECURSE
  "CMakeFiles/mapg_common.dir/config.cpp.o"
  "CMakeFiles/mapg_common.dir/config.cpp.o.d"
  "CMakeFiles/mapg_common.dir/log.cpp.o"
  "CMakeFiles/mapg_common.dir/log.cpp.o.d"
  "CMakeFiles/mapg_common.dir/stats.cpp.o"
  "CMakeFiles/mapg_common.dir/stats.cpp.o.d"
  "CMakeFiles/mapg_common.dir/table.cpp.o"
  "CMakeFiles/mapg_common.dir/table.cpp.o.d"
  "libmapg_common.a"
  "libmapg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
