# Empty dependencies file for mapg_cpu.
# This may be replaced when dependencies are built.
