file(REMOVE_RECURSE
  "CMakeFiles/mapg_cpu.dir/core.cpp.o"
  "CMakeFiles/mapg_cpu.dir/core.cpp.o.d"
  "libmapg_cpu.a"
  "libmapg_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
