file(REMOVE_RECURSE
  "libmapg_cpu.a"
)
