# Empty dependencies file for mapg_trace.
# This may be replaced when dependencies are built.
