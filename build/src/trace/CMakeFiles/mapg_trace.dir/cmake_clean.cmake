file(REMOVE_RECURSE
  "CMakeFiles/mapg_trace.dir/generator.cpp.o"
  "CMakeFiles/mapg_trace.dir/generator.cpp.o.d"
  "CMakeFiles/mapg_trace.dir/profiles.cpp.o"
  "CMakeFiles/mapg_trace.dir/profiles.cpp.o.d"
  "CMakeFiles/mapg_trace.dir/trace_io.cpp.o"
  "CMakeFiles/mapg_trace.dir/trace_io.cpp.o.d"
  "libmapg_trace.a"
  "libmapg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
