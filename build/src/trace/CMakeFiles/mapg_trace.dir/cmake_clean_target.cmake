file(REMOVE_RECURSE
  "libmapg_trace.a"
)
