file(REMOVE_RECURSE
  "libmapg_core.a"
)
