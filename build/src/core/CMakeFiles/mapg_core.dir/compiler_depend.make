# Empty compiler generated dependencies file for mapg_core.
# This may be replaced when dependencies are built.
