file(REMOVE_RECURSE
  "CMakeFiles/mapg_core.dir/runner.cpp.o"
  "CMakeFiles/mapg_core.dir/runner.cpp.o.d"
  "CMakeFiles/mapg_core.dir/sim.cpp.o"
  "CMakeFiles/mapg_core.dir/sim.cpp.o.d"
  "libmapg_core.a"
  "libmapg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
