file(REMOVE_RECURSE
  "CMakeFiles/mapg_pg.dir/adaptive.cpp.o"
  "CMakeFiles/mapg_pg.dir/adaptive.cpp.o.d"
  "CMakeFiles/mapg_pg.dir/factory.cpp.o"
  "CMakeFiles/mapg_pg.dir/factory.cpp.o.d"
  "CMakeFiles/mapg_pg.dir/multimode.cpp.o"
  "CMakeFiles/mapg_pg.dir/multimode.cpp.o.d"
  "CMakeFiles/mapg_pg.dir/pg_controller.cpp.o"
  "CMakeFiles/mapg_pg.dir/pg_controller.cpp.o.d"
  "CMakeFiles/mapg_pg.dir/policies.cpp.o"
  "CMakeFiles/mapg_pg.dir/policies.cpp.o.d"
  "CMakeFiles/mapg_pg.dir/wake_arbiter.cpp.o"
  "CMakeFiles/mapg_pg.dir/wake_arbiter.cpp.o.d"
  "libmapg_pg.a"
  "libmapg_pg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_pg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
