# Empty compiler generated dependencies file for mapg_pg.
# This may be replaced when dependencies are built.
