file(REMOVE_RECURSE
  "libmapg_pg.a"
)
