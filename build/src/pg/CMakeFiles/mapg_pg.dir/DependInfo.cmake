
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pg/adaptive.cpp" "src/pg/CMakeFiles/mapg_pg.dir/adaptive.cpp.o" "gcc" "src/pg/CMakeFiles/mapg_pg.dir/adaptive.cpp.o.d"
  "/root/repo/src/pg/factory.cpp" "src/pg/CMakeFiles/mapg_pg.dir/factory.cpp.o" "gcc" "src/pg/CMakeFiles/mapg_pg.dir/factory.cpp.o.d"
  "/root/repo/src/pg/multimode.cpp" "src/pg/CMakeFiles/mapg_pg.dir/multimode.cpp.o" "gcc" "src/pg/CMakeFiles/mapg_pg.dir/multimode.cpp.o.d"
  "/root/repo/src/pg/pg_controller.cpp" "src/pg/CMakeFiles/mapg_pg.dir/pg_controller.cpp.o" "gcc" "src/pg/CMakeFiles/mapg_pg.dir/pg_controller.cpp.o.d"
  "/root/repo/src/pg/policies.cpp" "src/pg/CMakeFiles/mapg_pg.dir/policies.cpp.o" "gcc" "src/pg/CMakeFiles/mapg_pg.dir/policies.cpp.o.d"
  "/root/repo/src/pg/wake_arbiter.cpp" "src/pg/CMakeFiles/mapg_pg.dir/wake_arbiter.cpp.o" "gcc" "src/pg/CMakeFiles/mapg_pg.dir/wake_arbiter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mapg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mapg_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mapg_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mapg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mapg_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
