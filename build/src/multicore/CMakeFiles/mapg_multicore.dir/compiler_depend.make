# Empty compiler generated dependencies file for mapg_multicore.
# This may be replaced when dependencies are built.
