file(REMOVE_RECURSE
  "libmapg_multicore.a"
)
