file(REMOVE_RECURSE
  "CMakeFiles/mapg_multicore.dir/config_apply.cpp.o"
  "CMakeFiles/mapg_multicore.dir/config_apply.cpp.o.d"
  "CMakeFiles/mapg_multicore.dir/multicore.cpp.o"
  "CMakeFiles/mapg_multicore.dir/multicore.cpp.o.d"
  "libmapg_multicore.a"
  "libmapg_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapg_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
