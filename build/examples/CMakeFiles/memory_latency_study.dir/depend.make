# Empty dependencies file for memory_latency_study.
# This may be replaced when dependencies are built.
