file(REMOVE_RECURSE
  "CMakeFiles/memory_latency_study.dir/memory_latency_study.cpp.o"
  "CMakeFiles/memory_latency_study.dir/memory_latency_study.cpp.o.d"
  "memory_latency_study"
  "memory_latency_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_latency_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
