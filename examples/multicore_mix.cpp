// Multicore mix: per-core MAPG on a heterogeneous 4-core workload mix with
// shared L2 + DRAM, showing per-core behaviour, the effect of contention,
// and the shared wakeup budget.  Demonstrates the MulticoreSim API.
//
//   ./multicore_mix [--cores=4] [--arbiter_slots=0] [--instructions=300000]
#include <iostream>

#include "common/config.h"
#include "common/table.h"
#include "multicore/multicore.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);

  MulticoreConfig mc;
  mc.num_cores = static_cast<std::uint32_t>(cfg.get_uint("cores", 4));
  mc.instructions_per_core = cfg.get_uint("instructions", 300'000);
  mc.warmup_instructions = cfg.get_uint("warmup", 100'000);
  mc.wake_arbiter_slots =
      static_cast<std::uint32_t>(cfg.get_uint("arbiter_slots", 0));

  // A heterogeneous mix: two memory-bound, one mixed, one compute-bound.
  std::vector<WorkloadProfile> mix;
  for (const char* name :
       {"mcf-like", "libquantum-like", "gcc-like", "povray-like"}) {
    mix.push_back(*find_profile(name));
  }

  const MulticoreSim sim(mc);
  std::cout << "running " << mc.num_cores << " cores, "
            << mc.instructions_per_core << " instructions each"
            << (mc.wake_arbiter_slots
                    ? " (wakeup slots: " +
                          std::to_string(mc.wake_arbiter_slots) + ")"
                    : "")
            << "\n\n";

  const MulticoreResult none = sim.run(mix, "none");
  const MulticoreResult mapg = sim.run(mix, "mapg");

  Table t({"core", "workload", "MPKI", "cycles", "gated_time",
           "gate_events"});
  for (std::size_t i = 0; i < mapg.cores.size(); ++i) {
    const CoreSlotResult& c = mapg.cores[i];
    t.begin_row()
        .cell(static_cast<std::uint64_t>(i))
        .cell(c.workload)
        .cell(c.mpki(), 1)
        .cell(c.core.cycles)
        .cell(format_percent(c.gated_time_fraction()))
        .cell(c.gating.gated_events);
  }
  t.print(std::cout);

  std::cout << "\nshared state: L2 miss rate "
            << format_percent(mapg.shared_l2.miss_rate())
            << ", DRAM read latency "
            << format_fixed(mapg.dram.read_latency.mean(), 1)
            << " cyc (row hit rate "
            << format_percent(mapg.dram.row_hit_rate()) << ")\n"
            << "package energy: " << format_fixed(none.total_j() * 1e3, 2)
            << " mJ (no gating) -> " << format_fixed(mapg.total_j() * 1e3, 2)
            << " mJ (MAPG), savings "
            << format_percent(1.0 - mapg.total_j() / none.total_j())
            << "\nmakespan overhead "
            << format_percent(static_cast<double>(mapg.makespan) /
                                      static_cast<double>(none.makespan) -
                                  1.0,
                              2)
            << ", wakeups delayed by the shared budget: "
            << mapg.wake_delayed_grants << "\n";
  return 0;
}
