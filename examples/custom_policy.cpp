// Custom policy: extend the library with your own gating policy through the
// public PgPolicy interface, run it on a frozen trace, and score it against
// the built-ins.
//
// The example policy is a "duty-cycle limiter": a deployment-motivated
// variant that behaves like MAPG but refuses to start a new transition
// within `cooldown` cycles of the previous one, bounding the transition
// rate (e.g. to respect a voltage-regulator or di/dt budget).
//
//   ./custom_policy [--cooldown=1000] [--instructions=1000000]
#include <iostream>
#include <memory>

#include "common/config.h"
#include "common/table.h"
#include "exec/runner.h"
#include "pg/policies.h"
#include "trace/generator.h"
#include "trace/profile.h"

using namespace mapg;

namespace {

/// MAPG with a minimum spacing between gating transitions.
class CooldownMapgPolicy final : public PgPolicy {
 public:
  CooldownMapgPolicy(const PolicyContext& ctx, Cycle cooldown)
      : PgPolicy(ctx), inner_(ctx, MapgPolicy::Options{}),
        cooldown_(cooldown) {}

  std::string name() const override {
    return "mapg-cooldown-" + std::to_string(cooldown_);
  }

  bool should_gate(const StallEvent& ev) override {
    if (last_gate_ != kNoCycle && ev.start < last_gate_ + cooldown_)
      return false;  // still cooling down from the previous transition
    if (!inner_.should_gate(ev)) return false;
    last_gate_ = ev.start;
    return true;
  }

  WakeMode wake_mode() const override { return inner_.wake_mode(); }

 private:
  MapgPolicy inner_;  ///< reuse the stock decision rule by composition
  Cycle cooldown_;
  Cycle last_gate_ = kNoCycle;
};

}  // namespace

int main(int argc, char** argv) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);
  const Cycle cooldown = cfg.get_uint("cooldown", 1000);

  SimConfig sim_cfg;
  sim_cfg.instructions = cfg.get_uint("instructions", 1'000'000);
  sim_cfg.warmup_instructions = 0;  // custom traces below are pre-warmed
  const Simulator sim(sim_cfg);
  const PolicyContext ctx = sim.policy_context();

  const WorkloadProfile* profile = find_profile("omnetpp-like");
  std::cout << "custom policy demo on " << profile->name
            << ": MAPG with a " << cooldown
            << "-cycle transition cooldown\n\n";

  // Score the custom policy and the stock ones against the same baseline.
  auto run_with = [&](PgPolicy& policy) {
    TraceGenerator trace(*profile, sim_cfg.run_seed);
    return sim.run(trace, profile->name, policy);
  };

  NoGatingPolicy none(ctx);
  const SimResult base = run_with(none);

  Table t({"policy", "core_savings", "overhead", "gate_events",
           "avg_event_spacing"});
  auto add_row = [&](PgPolicy& policy) {
    const Comparison c = score_against(base, run_with(policy));
    const SimResult& r = c.result;
    const double spacing =
        r.gating.gated_events
            ? static_cast<double>(r.core.cycles) /
                  static_cast<double>(r.gating.gated_events)
            : 0.0;
    t.begin_row()
        .cell(r.policy)
        .cell(format_percent(c.core_energy_savings))
        .cell(format_percent(c.runtime_overhead, 2))
        .cell(r.gating.gated_events)
        .cell(spacing, 0);
  };

  MapgPolicy stock(ctx, {});
  add_row(stock);
  CooldownMapgPolicy limited(ctx, cooldown);
  add_row(limited);
  CooldownMapgPolicy strict(ctx, cooldown * 10);
  add_row(strict);

  t.print(std::cout);
  std::cout << "\nThe cooldown trades savings for a bounded transition "
               "rate; average event\nspacing must stay above the cooldown "
               "by construction.\n";
  return 0;
}
