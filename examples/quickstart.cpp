// Quickstart: simulate one memory-bound workload under MAPG and compare it
// against the no-gating baseline and the clairvoyant oracle.
//
//   ./quickstart [--workload=mcf-like] [--instructions=2000000]
#include <iostream>

#include "common/config.h"
#include "common/table.h"
#include "core/sim.h"
#include "exec/runner.h"
#include "power/energy_model.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);
  const std::string workload = cfg.get_or("workload", "mcf-like");

  const WorkloadProfile* profile = find_profile(workload);
  if (profile == nullptr) {
    std::cerr << "unknown workload '" << workload << "'; available:\n";
    for (const auto& p : builtin_profiles())
      std::cerr << "  " << p.name << " — " << p.description << "\n";
    return 1;
  }

  SimConfig sim_cfg;
  sim_cfg.instructions = cfg.get_uint("instructions", 2'000'000);
  ExperimentRunner runner(sim_cfg);

  std::cout << "MAPG quickstart on " << profile->name << " ("
            << profile->description << ")\n";
  const PolicyContext ctx = runner.simulator().policy_context();
  std::cout << "circuit: entry=" << ctx.entry_latency
            << "cyc, wakeup=" << ctx.wakeup_latency
            << "cyc, break-even=" << ctx.break_even << "cyc\n\n";

  for (const std::string spec : {"none", "mapg", "oracle"}) {
    const Comparison c = runner.compare_one(*profile, spec);
    const SimResult& r = c.result;
    std::cout << "policy " << r.policy << ":\n"
              << "  cycles " << r.core.cycles << "  IPC "
              << format_fixed(r.ipc(), 3) << "  MPKI "
              << format_fixed(r.mpki(), 1) << "\n"
              << "  gated " << format_percent(r.gated_time_fraction())
              << " of time across " << r.gating.gated_events
              << " gating events\n"
              << "  core-domain energy savings "
              << format_percent(c.core_energy_savings)
              << ", runtime overhead "
              << format_percent(c.runtime_overhead, 2) << "\n"
              << energy_to_string(r.energy) << "\n";
  }
  return 0;
}
