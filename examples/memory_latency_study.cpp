// Memory-latency study: how MAPG's value scales with the memory technology
// behind the controller — from fast on-package DRAM (0.5x) to slow
// commodity or far-memory parts (4x).  Demonstrates programmatic SimConfig
// modification through the public API (the scenario the paper's
// introduction motivates: the slower the memory, the more leakage a stalled
// core wastes, and the more MAPG recovers).
//
//   ./memory_latency_study [--workload=mcf-like] [--instructions=1000000]
#include <iostream>

#include "common/config.h"
#include "common/table.h"
#include "exec/runner.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);
  const std::string workload = cfg.get_or("workload", "mcf-like");
  const WorkloadProfile* profile = find_profile(workload);
  if (profile == nullptr) {
    std::cerr << "unknown workload '" << workload << "'\n";
    return 1;
  }

  SimConfig base;
  base.instructions = cfg.get_uint("instructions", 1'000'000);

  std::cout << "MAPG vs memory technology speed on " << profile->name
            << "\n(latency scale 1.0 = DDR3-1600-class timings seen from a "
               "3 GHz core)\n\n";

  Table t({"latency_scale", "read_latency_avg", "IPC", "stall_time",
           "mapg_core_savings", "mapg_overhead", "gated_time"});

  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    SimConfig sim_cfg = base;
    auto scaled = [&](Cycle c) {
      return static_cast<Cycle>(static_cast<double>(c) * scale);
    };
    sim_cfg.mem.dram.t_rcd = scaled(base.mem.dram.t_rcd);
    sim_cfg.mem.dram.t_rp = scaled(base.mem.dram.t_rp);
    sim_cfg.mem.dram.t_cl = scaled(base.mem.dram.t_cl);
    sim_cfg.mem.dram.t_ras = scaled(base.mem.dram.t_ras);

    ExperimentRunner runner(sim_cfg);
    const Comparison c = runner.compare_one(*profile, "mapg");
    const SimResult& r = c.result;
    const double stall_frac =
        r.core.cycles ? static_cast<double>(r.core.stall_cycles_dram) /
                            static_cast<double>(r.core.cycles)
                      : 0.0;
    t.begin_row()
        .cell(scale, 2)
        .cell(r.dram.read_latency.mean(), 1)
        .cell(r.ipc(), 3)
        .cell(format_percent(stall_frac))
        .cell(format_percent(c.core_energy_savings))
        .cell(format_percent(c.runtime_overhead, 2))
        .cell(format_percent(r.gated_time_fraction()));
  }
  t.print(std::cout);
  std::cout << "\nReading: slower memory -> more stall time -> more of the "
               "core's leakage\nis recoverable, while early wakeup keeps the "
               "overhead near zero throughout.\n";
  return 0;
}
