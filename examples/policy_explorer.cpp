// Policy explorer: run any set of policies against any workload and print a
// full comparison, including per-policy gating diagnostics.  Demonstrates
// the ExperimentRunner API and the policy-spec mini-language.
//
//   ./policy_explorer --workload=libquantum-like \
//       --policies=none,idle-timeout:32,mapg,mapg-history,oracle \
//       [--instructions=2000000] [--list]
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "exec/runner.h"
#include "pg/factory.h"
#include "trace/profile.h"

using namespace mapg;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);

  if (cfg.contains("list")) {
    std::cout << "workloads:\n";
    for (const auto& p : builtin_profiles())
      std::cout << "  " << p.name << " — " << p.description << "\n";
    std::cout << "\npolicy specs: none, idle-timeout:<N>, oracle, mapg,\n"
                 "  mapg:alpha=<f>, mapg-aggressive, mapg-noearly,\n"
                 "  mapg-unfiltered, mapg-history[:ewma=<f>]\n";
    return 0;
  }

  const std::string workload = cfg.get_or("workload", "libquantum-like");
  const WorkloadProfile* profile = find_profile(workload);
  if (profile == nullptr) {
    std::cerr << "unknown workload '" << workload
              << "' (use --list to see options)\n";
    return 1;
  }

  std::vector<std::string> specs =
      split_csv(cfg.get_or("policies", ""));
  if (specs.empty()) specs = standard_policy_specs();

  SimConfig sim_cfg;
  sim_cfg.instructions = cfg.get_uint("instructions", 2'000'000);
  sim_cfg.warmup_instructions = cfg.get_uint("warmup", 250'000);
  sim_cfg.run_seed = cfg.get_uint("seed", 42);
  ExperimentRunner runner(sim_cfg);

  std::cout << "exploring " << profile->name << " (" << profile->description
            << ") over " << sim_cfg.instructions << " instructions\n\n";

  Table t({"policy", "IPC", "core_savings", "total_savings", "overhead",
           "gated_time", "events", "skipped", "unprofitable", "aborted",
           "avg_gated_len"});
  for (const auto& spec : specs) {
    Comparison c;
    try {
      c = runner.compare_one(*profile, spec);
    } catch (const std::exception& e) {
      std::cerr << "skipping '" << spec << "': " << e.what() << "\n";
      continue;
    }
    const SimResult& r = c.result;
    const double avg_gated =
        r.gating.gated_events
            ? static_cast<double>(r.gating.activity.gated_cycles) /
                  static_cast<double>(r.gating.gated_events)
            : 0.0;
    t.begin_row()
        .cell(r.policy)
        .cell(r.ipc(), 3)
        .cell(format_percent(c.core_energy_savings))
        .cell(format_percent(c.total_energy_savings))
        .cell(format_percent(c.runtime_overhead, 2))
        .cell(format_percent(r.gated_time_fraction()))
        .cell(r.gating.gated_events)
        .cell(r.gating.skipped_events)
        .cell(r.gating.unprofitable_events)
        .cell(r.gating.aborted_entries)
        .cell(avg_gated, 1);
  }
  t.print(std::cout);
  return 0;
}
