// R-Fig.5 — Sensitivity to break-even time: net leakage savings as the PG
// transition overhead energy scales from 0.25x to 8x (BET ~12 to ~380 cyc).
//
// Expected shape: MAPG's savings decay gracefully as BET grows (its
// threshold rule declines stalls that are no longer profitable, so net
// savings never go negative); IdleTimeout collapses quickly because its
// effective gated interval was already truncated by the timeout; Oracle is
// the upper envelope.
#include <iostream>

#include "bench_util.h"
#include "power/pg_circuit.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Fig.5", "savings vs break-even time (overhead scaling)",
                env);

  Table t({"overhead_scale", "break_even_cycles", "workload", "policy",
           "net_leak_savings", "core_energy_savings", "gate_events",
           "unprofitable"});

  // Baselines are independent of the PG circuit: compute once per workload.
  std::map<std::string, SimResult> bases;
  for (const auto& profile : representative_profiles())
    bases.emplace(profile.name, Simulator(env.sim).run(profile, "none"));

  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    SimConfig cfg = env.sim;
    cfg.pg.overhead_scale = scale;
    const Simulator sim(cfg);
    const PgCircuit circuit(cfg.pg, cfg.tech);

    for (const auto& profile : representative_profiles()) {
      for (const char* spec : {"mapg", "idle-timeout:64", "oracle"}) {
        const Comparison c =
            score_against(bases.at(profile.name), sim.run(profile, spec));
        const SimResult& r = c.result;
        t.begin_row()
            .cell(scale, 2)
            .cell(circuit.break_even_cycles())
            .cell(profile.name)
            .cell(r.policy)
            .cell(format_percent(c.net_leakage_savings))
            .cell(format_percent(c.core_energy_savings))
            .cell(r.gating.gated_events)
            .cell(r.gating.unprofitable_events);
      }
    }
  }
  bench::emit(t, env);
  return 0;
}
