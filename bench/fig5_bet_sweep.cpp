// R-Fig.5 — Sensitivity to break-even time: net leakage savings as the PG
// transition overhead energy scales from 0.25x to 8x (BET ~12 to ~380 cyc).
//
// Expected shape: MAPG's savings decay gracefully as BET grows (its
// threshold rule declines stalls that are no longer profitable, so net
// savings never go negative); IdleTimeout collapses quickly because its
// effective gated interval was already truncated by the timeout; Oracle is
// the upper envelope.
//
// Two engine sweeps: baselines once per workload at the unscaled config
// (a no-gating run never touches the PG circuit, so one baseline serves
// every overhead scale), then the (scale x workload x policy) grid.
#include <iostream>

#include "bench_util.h"
#include "power/pg_circuit.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Fig.5", "savings vs break-even time (overhead scaling)",
                env);

  const std::vector<WorkloadProfile> profiles = representative_profiles();
  const std::vector<double> scales = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  const std::vector<std::string> policies = {"mapg", "idle-timeout:64",
                                             "oracle"};

  // Baselines are independent of the PG circuit: compute once per workload.
  SweepSpec base_sweep;
  base_sweep.base = env.sim;
  base_sweep.workloads = profiles;
  base_sweep.policy_specs = {"none"};
  const SweepResult bases = env.engine->run_sweep(base_sweep);

  SweepSpec sweep;
  sweep.base = env.sim;
  for (const double scale : scales) {
    SimConfig cfg = env.sim;
    cfg.pg.overhead_scale = scale;
    sweep.variants.emplace_back("scale=" + std::to_string(scale), cfg);
  }
  sweep.workloads = profiles;
  sweep.policy_specs = policies;
  const SweepResult grid = env.engine->run_sweep(sweep);

  Table t({"overhead_scale", "break_even_cycles", "workload", "policy",
           "net_leak_savings", "core_energy_savings", "gate_events",
           "unprofitable"});

  for (std::size_t vi = 0; vi < scales.size(); ++vi) {
    const PgCircuit circuit(sweep.variants[vi].second.pg, env.sim.tech);
    for (std::size_t wi = 0; wi < profiles.size(); ++wi) {
      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        const Comparison c = score_against(bases.result(0, wi, 0),
                                           SimResult(grid.result(vi, wi, pi)));
        const SimResult& r = c.result;
        t.begin_row()
            .cell(scales[vi], 2)
            .cell(circuit.break_even_cycles())
            .cell(profiles[wi].name)
            .cell(r.policy)
            .cell(format_percent(c.net_leakage_savings))
            .cell(format_percent(c.core_energy_savings))
            .cell(r.gating.gated_events)
            .cell(r.gating.unprofitable_events);
      }
    }
  }
  bench::emit(t, env);
  bench::report_engine(env);
  return 0;
}
