// R-Fig.3 — Sensitivity to memory latency: core-domain energy savings as
// DRAM core timing (tRCD/tRP/tCL/tRAS) scales from 0.5x to 4x.
//
// Expected shape: longer memory latency -> longer stalls -> more gateable
// time -> higher savings for both MAPG and Oracle, with MAPG tracking the
// oracle across the sweep.  (The burst time and bus are left at 1x: this
// models a slower DRAM core behind the same interface.)
#include <iostream>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Fig.3", "energy savings vs DRAM latency scaling", env);

  Table t({"latency_scale", "workload", "policy", "core_energy_savings",
           "runtime_overhead", "gated_time", "mean_stall_len"});

  for (double scale : {0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0}) {
    SimConfig cfg = env.sim;
    auto scaled = [&](Cycle c) {
      return static_cast<Cycle>(static_cast<double>(c) * scale);
    };
    cfg.mem.dram.t_rcd = scaled(env.sim.mem.dram.t_rcd);
    cfg.mem.dram.t_rp = scaled(env.sim.mem.dram.t_rp);
    cfg.mem.dram.t_cl = scaled(env.sim.mem.dram.t_cl);
    cfg.mem.dram.t_ras = scaled(env.sim.mem.dram.t_ras);
    ExperimentRunner runner(cfg);

    for (const auto& profile : representative_profiles()) {
      for (const char* spec : {"mapg", "oracle"}) {
        const Comparison c = runner.compare_one(profile, spec);
        const SimResult& r = c.result;
        const double mean_stall =
            r.core.stalls_dram
                ? static_cast<double>(r.core.stall_cycles_dram) /
                      static_cast<double>(r.core.stalls_dram)
                : 0.0;
        t.begin_row()
            .cell(scale, 2)
            .cell(profile.name)
            .cell(r.policy)
            .cell(format_percent(c.core_energy_savings))
            .cell(format_percent(c.runtime_overhead, 2))
            .cell(format_percent(r.gated_time_fraction()))
            .cell(mean_stall, 1);
      }
    }
  }
  bench::emit(t, env);
  return 0;
}
