// R-Tab.5 (extension) — Interaction with latency hiding: MAPG savings as an
// L2 stream prefetcher of increasing degree removes the DRAM stalls it
// feeds on.
//
// Expected shape: on streaming workloads the prefetcher both speeds up the
// run (IPC up) and shrinks MAPG's harvest (gated time down) — total energy
// still improves because runtime shrinks.  On pointer-chasing workloads the
// prefetcher trains on nothing and MAPG's savings are untouched.  MAPG
// remains overhead-free throughout: the two techniques compose.
#include <iostream>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Tab.5", "MAPG vs stream-prefetch degree", env);

  Table t({"workload", "pf_degree", "IPC", "MPKI", "pf_issued/kinstr",
           "gated_time", "core_energy_savings", "runtime_overhead"});

  for (const char* workload :
       {"libquantum-like", "lbm-like", "mcf-like", "omnetpp-like"}) {
    const WorkloadProfile* p = find_profile(workload);
    for (std::uint32_t degree : {0u, 1u, 2u, 4u, 8u}) {
      SimConfig cfg = env.sim;
      cfg.mem.prefetch.enable = degree > 0;
      cfg.mem.prefetch.degree = degree == 0 ? 1 : degree;
      ExperimentRunner runner(cfg);
      const Comparison c = runner.compare_one(*p, "mapg");
      const SimResult& r = c.result;
      t.begin_row()
          .cell(workload)
          .cell(std::uint64_t{degree})
          .cell(r.ipc(), 3)
          .cell(r.mpki(), 1)
          .cell(1000.0 * static_cast<double>(r.hier.prefetch_issued) /
                    static_cast<double>(r.core.instrs),
                1)
          .cell(format_percent(r.gated_time_fraction()))
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(c.runtime_overhead, 2));
    }
  }
  bench::emit(t, env);
  std::cout << "note: savings/overhead are relative to the no-gating "
               "baseline WITH the same\nprefetcher, isolating the gating "
               "policy's contribution at each design point.\n";
  return 0;
}
