// R-Tab.1 — Headline comparison: core-domain energy savings and runtime
// overhead for every workload under NoGating / IdleTimeout / Oracle /
// MAPG-conservative / MAPG-aggressive.
//
// Expected shape (DESIGN.md §4): MAPG saves tens of percent on memory-bound
// workloads at <2% overhead; IdleTimeout saves far less at much higher
// overhead; Oracle bounds MAPG from above; compute-bound rows are ~0 for
// every policy.
//
// The whole (workload x policy) grid runs as one ExperimentEngine sweep:
// parallel across --jobs threads, memoized in --cache-dir, and emitted in
// deterministic grid order, so output is byte-identical for any thread
// count and a warm cache re-run simulates nothing.
#include <iostream>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 2'000'000);
  bench::banner("R-Tab.1",
                "per-workload energy savings and overhead, all policies",
                env);

  const auto specs = standard_policy_specs();

  SweepSpec sweep;
  sweep.base = env.sim;
  sweep.workloads = builtin_profiles();
  sweep.policy_specs = specs;
  const SweepResult grid = env.engine->run_sweep(sweep);

  Table t({"workload", "MPKI", "policy", "core_energy_savings",
           "total_energy_savings", "net_leak_savings", "runtime_overhead",
           "gated_time", "gate_events", "unprofitable"});

  struct Agg {
    double core = 0, total = 0, leak = 0, over = 0;
    int n = 0;
  };
  std::map<std::string, Agg> agg;

  for (std::size_t wi = 0; wi < sweep.workloads.size(); ++wi) {
    for (std::size_t pi = 0; pi < specs.size(); ++pi) {
      if (specs[pi] == "none") continue;  // the implicit reference
      const Comparison c = score_against(grid.baseline(0, wi),
                                         SimResult(grid.result(0, wi, pi)));
      const SimResult& r = c.result;
      t.begin_row()
          .cell(sweep.workloads[wi].name)
          .cell(r.mpki(), 1)
          .cell(r.policy)
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(c.total_energy_savings))
          .cell(format_percent(c.net_leakage_savings))
          .cell(format_percent(c.runtime_overhead, 2))
          .cell(format_percent(r.gated_time_fraction()))
          .cell(r.gating.gated_events)
          .cell(r.gating.unprofitable_events);
      Agg& a = agg[r.policy];
      a.core += c.core_energy_savings;
      a.total += c.total_energy_savings;
      a.leak += c.net_leakage_savings;
      a.over += c.runtime_overhead;
      ++a.n;
    }
  }
  bench::emit(t, env);

  Table avg({"policy", "avg_core_savings", "avg_total_savings",
             "avg_net_leak_savings", "avg_overhead"});
  for (const auto& [policy, a] : agg) {
    avg.begin_row()
        .cell(policy)
        .cell(format_percent(a.core / a.n))
        .cell(format_percent(a.total / a.n))
        .cell(format_percent(a.leak / a.n))
        .cell(format_percent(a.over / a.n, 2));
  }
  bench::emit(avg, env);
  bench::report_engine(env);
  return 0;
}
