// R-Fig.6 — The conventional-baseline design space: IdleTimeout savings and
// overhead across timeout thresholds, with MAPG as the reference line.
//
// Expected shape: small timeouts gate more but still pay the reactive
// wakeup on every stall (high overhead); large timeouts miss the stalls
// entirely.  No point on the timeout curve reaches MAPG's corner
// (high savings AND ~zero overhead) — the motivation for memory-access-
// driven gating.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Fig.6", "idle-timeout sweep vs MAPG reference", env);

  ExperimentRunner runner(env.sim);
  Table t({"workload", "policy", "core_energy_savings", "net_leak_savings",
           "runtime_overhead", "gate_events", "timeout_missed"});

  for (const auto& profile : representative_profiles()) {
    for (const Cycle timeout : {0u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
      const std::string spec = "idle-timeout:" + std::to_string(timeout);
      const Comparison c = runner.compare_one(profile, spec);
      t.begin_row()
          .cell(profile.name)
          .cell(c.result.policy)
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(c.net_leakage_savings))
          .cell(format_percent(c.runtime_overhead, 2))
          .cell(c.result.gating.gated_events)
          .cell(c.result.gating.timeout_missed);
    }
    const Comparison mapg = runner.compare_one(profile, "mapg");
    t.begin_row()
        .cell(profile.name)
        .cell("mapg (reference)")
        .cell(format_percent(mapg.core_energy_savings))
        .cell(format_percent(mapg.net_leakage_savings))
        .cell(format_percent(mapg.runtime_overhead, 2))
        .cell(mapg.result.gating.gated_events)
        .cell(std::uint64_t{0});
  }
  bench::emit(t, env);
  return 0;
}
