// R-Tab.8 (extension) — DRAM low-power states: timeout-parked channels vs
// coordinated CPU–DRAM gating (docs/MEMORY_POWER.md).
//
// Three platforms per workload, all running the same MAPG core policy:
//   off          no DRAM low-power states (the Tab.1 baseline platform)
//   timeout      idle channels enter precharge power-down on a per-channel
//                192-cycle timer (DRAM-side, policy-oblivious)
//   coordinated  the PG controller parks the idle channels for exactly the
//                window it gates the core, exits tXP early so the wakeup is
//                latency-hidden ("mapg-dram" spec + kCoordinated mode)
//
// Expected shape: timeout mode wins on DRAM energy wherever inter-access
// gaps beat the timer; cache-resident workloads (gamess) barely touch DRAM,
// the timer parks the channels almost permanently, and the saving
// approaches the PD/background power ratio.  Two second-order effects make
// the timing column interesting: PD entry precharges the banks, so on
// row-conflict-heavy pointer chasers (mcf, omnetpp) the timer acts as an
// accidental closed-page policy and RUNTIME IMPROVES (negative overhead) —
// while on streaming row-hit workloads (libquantum) the same precharge
// destroys row locality and the extra ACTIVATE energy can exceed the tiny
// residency saving (negative to_save).  Coordinated mode only parks during
// gated stalls with the exit scheduled tXP before data return: smaller but
// never-negative savings, and no timing perturbation at all.
#include <iostream>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Tab.8", "DRAM low-power states", env);

  SimConfig off_cfg = env.sim;
  off_cfg.mem.dram.power.mode = DramPowerMode::kOff;
  SimConfig to_cfg = env.sim;
  to_cfg.mem.dram.power.mode = DramPowerMode::kTimeout;
  SimConfig co_cfg = env.sim;
  co_cfg.mem.dram.power.mode = DramPowerMode::kCoordinated;

  std::cout << "timings: tPD " << to_cfg.mem.dram.power.t_pd << ", tXP "
            << to_cfg.mem.dram.power.t_xp << ", tCKE "
            << to_cfg.mem.dram.power.t_cke << ", pd_timeout "
            << to_cfg.mem.dram.power.powerdown_timeout
            << " core cycles; background "
            << env.sim.dram_energy.background_w_per_channel * 1e3
            << " mW/ch, power-down "
            << env.sim.dram_energy.powerdown_w_per_channel * 1e3
            << " mW/ch\n\n";

  const Simulator off_sim(off_cfg);
  const Simulator to_sim(to_cfg);
  const Simulator co_sim(co_cfg);

  Table t({"workload", "dram_off_mJ", "dram_to_mJ", "dram_co_mJ", "to_save",
           "co_save", "to_overhead", "pd_resid", "co_windows"});

  for (const char* name : {"mcf-like", "lbm-like", "libquantum-like",
                           "omnetpp-like", "gcc-like", "gamess-like"}) {
    const WorkloadProfile* p = find_profile(name);
    const SimResult off = off_sim.run(*p, "mapg");
    const SimResult to = to_sim.run(*p, "mapg");
    const SimResult co = co_sim.run(*p, "mapg-dram");

    // Timeout mode perturbs timing (tXP on the critical path); coordinated
    // mode does not, so its runtime matches `off` and needs no column.
    const double to_overhead =
        static_cast<double>(to.core.cycles) / off.core.cycles - 1.0;
    const double pd_resid =
        static_cast<double>(to.dram.powerdown_cycles +
                            to.dram.selfrefresh_cycles) /
        (static_cast<double>(to.core.cycles) * to_cfg.mem.dram.channels);

    t.begin_row()
        .cell(name)
        .cell(off.energy.dram_j * 1e3, 3)
        .cell(to.energy.dram_j * 1e3, 3)
        .cell(co.energy.dram_j * 1e3, 3)
        .cell(format_percent(1.0 - to.energy.dram_j / off.energy.dram_j))
        .cell(format_percent(1.0 - co.energy.dram_j / off.energy.dram_j))
        .cell(format_percent(to_overhead, 2))
        .cell(format_percent(pd_resid))
        .cell(co.gating.dram_pd_windows);
  }
  bench::emit(t, env);
  return 0;
}
