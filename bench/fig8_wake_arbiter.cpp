// R-Fig.8 (extension) — Shared di/dt budget: per-core MAPG on 8 cores as
// the number of concurrent wakeup slots shrinks from unlimited to 1.
//
// Expected shape: with a generous budget nothing changes (wakeups rarely
// collide).  As slots shrink, colliding wakeups queue: cores stay gated
// slightly longer (marginally MORE leakage saved) but resume later, so
// runtime overhead appears — the multicore analogue of the single-core
// rush-current/staging trade-off in R-Fig.2.
#include <iostream>

#include "bench_util.h"
#include "multicore/multicore.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 300'000, 100'000);
  bench::banner("R-Fig.8", "wakeup-slot budget on an 8-core package", env);

  const std::vector<WorkloadProfile> mix = {*find_profile("mcf-like"),
                                            *find_profile("libquantum-like")};

  MulticoreConfig base;
  base.num_cores = 8;
  base.instructions_per_core = env.sim.instructions;
  base.warmup_instructions = env.sim.warmup_instructions;
  base.run_seed = env.sim.run_seed;

  base.wake_arbiter_slots = 0;
  const MulticoreResult none = MulticoreSim(base).run(mix, "none");

  Table t({"wake_slots", "delayed_wakeups", "avg_delay", "makespan_overhead",
           "avg_gated_time", "energy_savings"});

  for (std::uint32_t arb_slots : {0u, 8u, 4u, 2u, 1u}) {
    MulticoreConfig cfg = base;
    cfg.wake_arbiter_slots = arb_slots;
    const MulticoreResult r = MulticoreSim(cfg).run(mix, "mapg");

    const double overhead = static_cast<double>(r.makespan) /
                                static_cast<double>(none.makespan) -
                            1.0;
    const double avg_delay =
        r.wake_delayed_grants
            ? static_cast<double>(r.wake_delay_cycles) /
                  static_cast<double>(r.wake_delayed_grants)
            : 0.0;
    t.begin_row()
        .cell(arb_slots == 0 ? std::string("unlimited")
                             : std::to_string(arb_slots))
        .cell(r.wake_delayed_grants)
        .cell(avg_delay, 1)
        .cell(format_percent(overhead, 2))
        .cell(format_percent(r.avg_gated_fraction()))
        .cell(format_percent(1.0 - r.total_j() / none.total_j()));
  }
  bench::emit(t, env);
  return 0;
}
