// R-Fig.2 — PG circuit design space: staged wakeup trades peak rush current
// against wakeup latency; overhead energy sets the break-even time.
//
// Series 1: stage count -> wakeup latency, peak in-rush current.
// Series 2: rush-current budget -> minimum stage count and resulting wakeup.
// Series 3: overhead-energy scale -> break-even time (input to R-Fig.5).
#include <iostream>

#include "bench_util.h"
#include "power/pg_circuit.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 0, 0);
  bench::banner("R-Fig.2", "PG circuit: staging vs rush current vs wakeup",
                env);

  const TechParams tech = env.sim.tech;

  Table stages({"stages", "wakeup_ns", "wakeup_cycles", "rush_peak_A",
                "overhead_nJ", "break_even_cycles"});
  for (std::uint32_t n : {1u, 2u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    PgCircuitConfig cfg = env.sim.pg;
    cfg.wakeup_stages = n;
    const PgCircuit pg(cfg, tech);
    stages.begin_row()
        .cell(std::uint64_t{n})
        .cell(static_cast<double>(n) * cfg.stage_delay_ns + cfg.settle_ns, 1)
        .cell(pg.wakeup_latency_cycles())
        .cell(pg.rush_current_peak_a(), 3)
        .cell(pg.overhead_energy_j() * 1e9, 2)
        .cell(pg.break_even_cycles());
  }
  bench::emit(stages, env);

  Table budget({"imax_A", "min_stages", "wakeup_cycles_at_min"});
  const PgCircuit pg(env.sim.pg, tech);
  for (double imax : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const std::uint32_t n = pg.min_stages_for_rush_limit(imax);
    budget.begin_row().cell(imax, 2).cell(std::uint64_t{n});
    if (n > 0)
      budget.cell(pg.wakeup_latency_cycles(n));
    else
      budget.cell("unreachable");
  }
  bench::emit(budget, env);

  Table bet({"overhead_scale", "overhead_nJ", "break_even_cycles",
             "break_even_ns"});
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    PgCircuitConfig cfg = env.sim.pg;
    cfg.overhead_scale = scale;
    const PgCircuit c(cfg, tech);
    bet.begin_row()
        .cell(scale, 2)
        .cell(c.overhead_energy_j() * 1e9, 2)
        .cell(c.break_even_cycles())
        .cell(static_cast<double>(c.break_even_cycles()) *
                  tech.cycle_time_ns(),
              1);
  }
  bench::emit(bet, env);
  return 0;
}
