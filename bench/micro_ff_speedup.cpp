// Fast-forward kernel speedup: closed-form stall resolution vs the
// cycle-accurate stepped reference, on one memory-bound and one
// compute-bound workload.
//
// The fast-forward path skips each full-core stall window in O(1); the
// reference ticks every stalled cycle through the kernel's clocked
// components.  On mcf-like (most cycles stalled on DRAM) the closed form
// should win by >= 3x; on gamess-like (almost no stalls) the two paths run
// the same issue loop, so the target is merely parity (>= 1x).
//
// The bench first verifies the bit-identity contract on its own operating
// point — a speedup claim for a kernel that diverges would be meaningless —
// and exits nonzero on mismatch.
//
// Usage: micro_ff_speedup [--instructions=N] [--warmup=N] [--seed=N]
// Prints one row per workload: Minstr/s in each mode plus the speedup.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "exec/serialize.h"
#include "trace/profile.h"

namespace {

using mapg::SimConfig;
using mapg::SimResult;
using mapg::Simulator;
using mapg::WorkloadProfile;

double run_once(const SimConfig& cfg, const WorkloadProfile& p,
                SimResult* out = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  SimResult r = Simulator(cfg).run(p, "mapg");
  const auto t1 = std::chrono::steady_clock::now();
  if (out != nullptr) *out = std::move(r);
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-k wall time (seconds) — insensitive to scheduler noise.
double best_of(const SimConfig& cfg, const WorkloadProfile& p, int k) {
  double best = run_once(cfg, p);  // also serves as the warmup run
  for (int i = 1; i < k; ++i) best = std::min(best, run_once(cfg, p));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  mapg::bench::BenchEnv env = mapg::bench::parse_env(argc, argv, 400'000,
                                                     50'000);
  std::printf(
      "==== micro_ff_speedup: fast-forward vs cycle-accurate kernel ====\n"
      "(instructions=%llu, warmup=%llu, seed=%llu; policy=mapg)\n\n",
      static_cast<unsigned long long>(env.sim.instructions),
      static_cast<unsigned long long>(env.sim.warmup_instructions),
      static_cast<unsigned long long>(env.sim.run_seed));
  std::printf("%-16s %14s %14s %9s %8s\n", "workload", "ff Minstr/s",
              "ref Minstr/s", "speedup", "target");

  bool all_ok = true;
  const struct {
    const char* workload;
    double target;
  } cases[] = {{"mcf-like", 3.0}, {"gamess-like", 1.0}};

  for (const auto& c : cases) {
    const WorkloadProfile* p = mapg::find_profile(c.workload);
    if (p == nullptr) return 2;

    SimConfig fast = env.sim;
    fast.fast_forward = true;
    SimConfig stepped = env.sim;
    stepped.fast_forward = false;

    // Bit-identity gate: a speedup over a diverging kernel counts for
    // nothing.
    SimResult a, b;
    run_once(fast, *p, &a);
    run_once(stepped, *p, &b);
    if (mapg::result_to_json(a).dump() != mapg::result_to_json(b).dump()) {
      std::fprintf(stderr,
                   "FAIL: %s: kernels diverge — run tests/test_differential "
                   "before benchmarking\n",
                   c.workload);
      all_ok = false;
      continue;
    }

    const double t_fast = best_of(fast, *p, 3);
    const double t_ref = best_of(stepped, *p, 3);
    const double minstr = static_cast<double>(env.sim.instructions) / 1e6;
    const double speedup = t_ref / t_fast;
    const bool met = speedup >= c.target;
    std::printf("%-16s %14.2f %14.2f %8.2fx %8s\n", c.workload,
                minstr / t_fast, minstr / t_ref, speedup,
                met ? "PASS" : "MISS");
    // The compute-bound parity target is a hard floor; the memory-bound
    // speedup is reported but only warned on, since absolute ratios vary
    // with the host.  ISSUE acceptance measures it on the reference host.
    if (!met)
      std::fprintf(stderr, "warning: %s speedup %.2fx below %.1fx target\n",
                   c.workload, speedup, c.target);
  }
  return all_ok ? 0 : 1;
}
