// Single-pass policy-sweep speedup: record-once/replay-per-policy
// (src/replay, docs/MODEL.md §4b) vs direct per-cell simulation, on an
// R-Tab.1-shaped grid — every builtin workload crossed with an 11-policy
// axis.
//
// The replay path records one `none` reference timeline per workload
// (materializing the trace in the same pass — TeeTraceSource — and
// capturing architectural checkpoints every --checkpoint-stride
// instructions) and reconstitutes every penalty-free policy cell from it.
// A cell whose replay hits a penalized window resumes direct simulation
// from the latest checkpoint before that window (replay/checkpoint.h), or
// from cycle 0 over the shared trace buffer when no checkpoint is eligible.
// The headline ratio is therefore sweep wall-clock, not per-cell
// throughput, and it is bounded by
//   P / (c_rec + F * ((1 - rho) * c_fb + rho * c_res))
// for P policies of which F are penalized: c_rec = recording cost relative
// to a direct cell (~1.1 with tee recording + checkpoint capture), c_fb =
// full-fallback cost (~0.9: skips trace generation), rho = the fraction of
// penalized cells with an eligible checkpoint, and c_res = their resumed
// cost (proportional to the un-skipped suffix).  Wake-exact policies
// (oracle + the MAPG early-wake family, any alpha) replay; reactive-wake
// and threshold-free policies are genuinely penalized — and, measured on
// these axes, their FIRST penalized window lands within the first ~0.2% of
// recorded windows (idle-timeout trips on the first long stall,
// mapg-aggressive within the warmup), so no checkpoint is eligible and
// rho ~ 0 here.  The checkpoint machinery pays off when the first penalty
// lands late (adaptive thresholds, late-phase workloads —
// tests/test_checkpoint.cpp constructs such cells); on this grid the
// honest bound is the rho=0 one.  That is a property of the policies, not
// an engine limitation (docs/MODEL.md §4b-4c).
//
// Two axes, both 12 x 11:
//   --axis=tab1      (default) the R-Tab.1 comparison extended with the
//                    alpha-sensitivity variants the fig5/tab2 sweeps run;
//                    F = 2 (idle-timeout, mapg-aggressive), target >= 3x.
//   --axis=ablation  factory ablation_policy_specs(); F = 5, so the exact
//                    bound caps near 2x — reported for the census, no 3x
//                    claim is possible there.
//
// The bench first proves the bit-identity contract on the UNION of both
// axes — every cell of the replayed sweep must serialize identically to
// the direct sweep — and exits nonzero on mismatch.  A speedup claim for a
// diverging engine would be meaningless.
//
// Usage: micro_replay_speedup [--instructions=N] [--warmup=N] [--seed=N]
//                             [--jobs=N] [--reps=K] [--axis=tab1|ablation]
//                             [--smoke=1] [--json=FILE]
//   --smoke=1   identity check only, at a tiny instruction count (CI mode)
//   --json=FILE machine-readable result record (scripts/bench_report.sh)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "exec/json.h"
#include "exec/serialize.h"
#include "pg/factory.h"
#include "trace/profile.h"

namespace {

using namespace mapg;

/// R-Tab.1's headline comparison extended with the alpha-sensitivity
/// variants (the axis fig5/tab2-style sweeps exercise): 11 policies, of
/// which only idle-timeout:64 and mapg-aggressive are penalized.
std::vector<std::string> tab1_axis() {
  std::vector<std::string> specs = standard_policy_specs();
  for (const char* a : {"0.25", "0.5", "0.75", "1.5", "2.0", "4.0"})
    specs.push_back(std::string("mapg:alpha=") + a);
  return specs;
}

/// Union of the timing axes, for the identity gate.
std::vector<std::string> union_axis() {
  std::vector<std::string> specs = tab1_axis();
  for (const std::string& s : ablation_policy_specs())
    if (std::find(specs.begin(), specs.end(), s) == specs.end())
      specs.push_back(s);
  return specs;
}

struct SweepRun {
  SweepResult grid;
  EngineStats stats;
  double wall_s = 0;
};

/// Run the sweep on a fresh engine (cold result cache) and time it.
SweepRun run_sweep_cold(const SweepSpec& spec, unsigned jobs,
                        bool use_replay) {
  ExecOptions opt;
  opt.jobs = jobs;
  opt.use_disk_cache = false;  // cold result cache is the operating point
  opt.use_replay = use_replay;
  ExperimentEngine engine(opt);
  const auto t0 = std::chrono::steady_clock::now();
  SweepRun out;
  out.grid = engine.run_sweep(spec);
  const auto t1 = std::chrono::steady_clock::now();
  out.stats = engine.stats();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

/// Every cell byte-identical between the two sweeps; prints the first
/// diverging cell otherwise.
bool identical(const SweepSpec& spec, const SweepResult& direct,
               const SweepResult& replay) {
  for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi)
    for (std::size_t pi = 0; pi < spec.policy_specs.size(); ++pi) {
      const JobOutcome& a = direct.at(0, wi, pi);
      const JobOutcome& b = replay.at(0, wi, pi);
      if (a.ok != b.ok) {
        std::fprintf(stderr, "FAIL: %s/%s: ok %d vs %d\n",
                     spec.workloads[wi].name.c_str(),
                     spec.policy_specs[pi].c_str(), a.ok, b.ok);
        return false;
      }
      if (!a.ok) continue;  // equal error text is checked by tests
      if (result_to_json(*a.result).dump() !=
          result_to_json(*b.result).dump()) {
        std::fprintf(stderr, "FAIL: %s/%s: direct and replayed results "
                             "diverge\n",
                     spec.workloads[wi].name.c_str(),
                     spec.policy_specs[pi].c_str());
        return false;
      }
    }
  return true;
}

void print_census(const SweepSpec& spec, const SweepResult& replay) {
  std::printf("per-policy replay coverage (of %zu workloads):\n",
              spec.workloads.size());
  for (std::size_t pi = 0; pi < spec.policy_specs.size(); ++pi) {
    std::size_t replayed = 0, resumed = 0;
    for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
      if (replay.at(0, wi, pi).from_replay) ++replayed;
      if (replay.at(0, wi, pi).from_resume) ++resumed;
    }
    std::printf("  %-24s %2zu replayed, %2zu resumed, %2zu direct%s\n",
                spec.policy_specs[pi].c_str(), replayed, resumed,
                spec.workloads.size() - replayed - resumed,
                spec.policy_specs[pi] == "none" ? " (reference)" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 500'000, 100'000);
  KvConfig cfg;
  cfg.parse_args(argc, argv);
  const bool smoke = cfg.get_bool("smoke", false);
  const int reps = static_cast<int>(cfg.get_uint("reps", 2));
  const std::string axis = cfg.get_or("axis", "tab1");
  const std::string json_path = cfg.get_or("json", "");
  const double target = axis == "tab1" ? 3.0 : 1.5;

  SweepSpec sweep;
  sweep.base = env.sim;
  if (smoke) {
    sweep.base.instructions = cfg.get_uint("instructions", 20'000);
    sweep.base.warmup_instructions = cfg.get_uint("warmup", 4'000);
  }
  sweep.workloads = builtin_profiles();
  sweep.policy_specs = union_axis();
  const unsigned jobs = env.exec.jobs;

  std::printf(
      "==== micro_replay_speedup: single-pass policy sweep vs direct ====\n"
      "(instructions=%llu, warmup=%llu, seed=%llu, jobs=%u, axis=%s; "
      "%zu workloads%s)\n\n",
      static_cast<unsigned long long>(sweep.base.instructions),
      static_cast<unsigned long long>(sweep.base.warmup_instructions),
      static_cast<unsigned long long>(sweep.base.run_seed), jobs,
      axis.c_str(), sweep.workloads.size(), smoke ? "; SMOKE" : "");

  // --- Identity gate over the union of both axes (also warms allocator /
  // page-cache state for the timed runs) ---
  SweepRun direct = run_sweep_cold(sweep, jobs, false);
  SweepRun replay = run_sweep_cold(sweep, jobs, true);
  if (!identical(sweep, direct.grid, replay.grid)) return 1;
  std::printf("identity: all %zu cells byte-identical (replayed %llu, "
              "prefix resumes %llu, full fallbacks %llu)\n",
              direct.grid.outcomes.size(),
              static_cast<unsigned long long>(replay.stats.jobs_replayed),
              static_cast<unsigned long long>(
                  replay.stats.replay_prefix_resumes),
              static_cast<unsigned long long>(replay.stats.replay_fallbacks));
  print_census(sweep, replay.grid);
  if (smoke) {
    std::printf("smoke mode: identity only, skipping timing\n");
    return 0;
  }

  // --- Timed comparison on the selected 11-policy axis: best-of-k
  // cold-cache sweeps each way ---
  sweep.policy_specs = axis == "ablation" ? ablation_policy_specs()
                                          : tab1_axis();
  direct = run_sweep_cold(sweep, jobs, false);
  replay = run_sweep_cold(sweep, jobs, true);
  for (int i = 1; i < reps; ++i) {
    SweepRun d = run_sweep_cold(sweep, jobs, false);
    if (d.wall_s < direct.wall_s) direct = std::move(d);
    SweepRun r = run_sweep_cold(sweep, jobs, true);
    if (r.wall_s < replay.wall_s) replay = std::move(r);
  }

  const double speedup = direct.wall_s / replay.wall_s;
  const bool met = speedup >= target;
  std::printf("\ntimed axis: %s (%zu policies x %zu workloads)\n",
              axis.c_str(), sweep.policy_specs.size(),
              sweep.workloads.size());
  std::printf("%-22s %10s %10s\n", "", "direct", "replay");
  std::printf("%-22s %9.3fs %9.3fs\n", "sweep wall-clock", direct.wall_s,
              replay.wall_s);
  std::printf("%-22s %10llu %10llu\n", "cells simulated",
              static_cast<unsigned long long>(direct.stats.jobs_run),
              static_cast<unsigned long long>(replay.stats.jobs_run));
  std::printf("%-22s %10llu %10llu\n", "cells replayed", 0ULL,
              static_cast<unsigned long long>(replay.stats.jobs_replayed));
  std::printf("%-22s %10s %10llu\n", "prefix resumes", "-",
              static_cast<unsigned long long>(
                  replay.stats.replay_prefix_resumes));
  std::printf("%-22s %10s %10llu\n", "windows saved", "-",
              static_cast<unsigned long long>(
                  replay.stats.replay_windows_saved));
  std::printf("%-22s %10s %10llu\n", "full fallbacks", "-",
              static_cast<unsigned long long>(replay.stats.replay_fallbacks));
  std::printf("\nspeedup: %.2fx (target %.1fx) %s\n", speedup, target,
              met ? "PASS" : "MISS");
  if (!met)
    std::fprintf(stderr, "warning: sweep speedup %.2fx below %.1fx target\n",
                 speedup, target);

  if (!json_path.empty()) {
    Json j = Json::object();
    j["bench"] = Json::string("micro_replay_speedup");
    j["axis"] = Json::string(axis);
    j["instructions"] = Json::number(sweep.base.instructions);
    j["warmup"] = Json::number(sweep.base.warmup_instructions);
    j["seed"] = Json::number(sweep.base.run_seed);
    j["jobs"] = Json::number(std::uint64_t{jobs});
    j["workloads"] = Json::number(std::uint64_t{sweep.workloads.size()});
    j["policies"] = Json::number(std::uint64_t{sweep.policy_specs.size()});
    j["identity"] = Json::boolean(true);
    j["direct_s"] = Json::number(direct.wall_s);
    j["replay_s"] = Json::number(replay.wall_s);
    j["speedup"] = Json::number(speedup);
    j["timelines"] = Json::number(replay.stats.timelines_recorded);
    j["replayed"] = Json::number(replay.stats.jobs_replayed);
    j["full_fallbacks"] = Json::number(replay.stats.replay_fallbacks);
    j["prefix_resumes"] = Json::number(replay.stats.replay_prefix_resumes);
    j["windows_saved"] = Json::number(replay.stats.replay_windows_saved);
    j["checkpoint_stride"] = Json::number(sweep.base.checkpoint_stride);
    j["target"] = Json::number(target);
    j["met"] = Json::boolean(met);
    std::ofstream out(json_path);
    out << j.dump() << "\n";
    std::fprintf(stderr, "[bench] json -> %s\n", json_path.c_str());
  }
  return 0;
}
