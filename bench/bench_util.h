// Shared scaffolding for the table/figure reproduction binaries.
//
// Every bench accepts optional "--key=value" overrides:
//   --instructions=N   measured instructions per run (default per-bench)
//   --warmup=N         warmup instructions
//   --seed=N           trace seed
//   --fast-forward=0   tick stall windows cycle-by-cycle instead of the
//                      closed-form fast path (bit-identical, much slower;
//                      see bench/micro_ff_speedup.cpp)
//   --batched=1        pull SoA InstrBlocks through TraceSource::next_batch
//                      and run Core::run_batched instead of the scalar
//                      next()/step() front-end (bit-identical, faster; a
//                      pure execution-strategy knob excluded from the result
//                      cache identity — see bench/micro_sim_throughput.cpp)
//   --dram-power=MODE  DRAM low-power states (docs/MEMORY_POWER.md):
//                      off (default), timeout (idle channels park on a
//                      per-channel timer), coordinated (the PG controller
//                      parks idle channels during gated stalls; pair with
//                      a "<policy>-dram" spec)
//   --dram-standard=S  named DRAM timing + energy preset (docs/DRAM.md):
//                      ddr3-1600 (the default timing set), ddr4-2400,
//                      lpddr4-3200; individual dram.t_* keys still override
//   --page-policy=P    DRAM page-management policy: open (default),
//                      closed (auto-precharge), hybrid (HAPPY-style,
//                      keyed by row-address bits; docs/DRAM.md §4)
//   --csv=1            emit CSV instead of the aligned text table
// Execution-engine flags (see docs/EXEC.md):
//   --jobs=N           simulation worker threads (default: all hardware
//                      threads; results are bit-identical for any N)
//   --cache-dir=DIR    persistent result cache (default: $MAPG_CACHE_DIR
//                      when set, else disabled)
//   --no-cache         ignore the disk cache for this run
//   --progress=1       live jobs/sec meter on stderr
//   --runlog=FILE      append per-job JSONL telemetry to FILE
//   --replay=0         disable single-pass policy-sweep replay (src/replay);
//                      every cell then simulates directly.  Results are
//                      bit-identical either way (bench/micro_replay_speedup
//                      verifies, tests/test_replay.cpp proves)
//   --checkpoint-stride=N
//                      instructions between architectural checkpoints
//                      captured while recording a reference timeline
//                      (replay/checkpoint.h); penalized cells resume from
//                      the latest eligible checkpoint instead of cycle 0.
//                      0 disables capture; results are bit-identical for
//                      any stride (tests/test_checkpoint.cpp proves)
// Observability flags (see docs/OBSERVABILITY.md):
//   --metrics-out=FILE write the end-of-run metrics snapshot as JSON
//   --trace-out=FILE   record a Chrome trace (open in Perfetto or
//                      chrome://tracing); per-job spans + counter tracks
//   --trace-buf=N      trace ring capacity in events (default 262144;
//                      overflow drops oldest and counts trace.dropped)
#pragma once

#include <memory>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "core/sim.h"
#include "exec/engine.h"
#include "exec/runner.h"

namespace mapg::bench {

struct BenchEnv {
  SimConfig sim;
  bool csv = false;
  ExecOptions exec;
  /// Engine built from `exec`; shared so every runner in the binary pools
  /// threads and memoized results.
  std::shared_ptr<ExperimentEngine> engine;
  /// Observability sinks; empty = off.  Written by report_engine().
  std::string metrics_out;
  std::string trace_out;
};

/// Parse argv into a SimConfig starting from the repository defaults.
BenchEnv parse_env(int argc, char** argv, std::uint64_t default_instructions,
                   std::uint64_t default_warmup = 250'000);

/// Print the standard experiment banner (id, what it reproduces).
void banner(const std::string& experiment_id, const std::string& title,
            const BenchEnv& env);

/// Emit a finished table in the requested format.
void emit(const Table& table, const BenchEnv& env);

/// One-line engine telemetry (sims run / cached / wall time) on stderr —
/// kept off stdout so table output stays byte-identical across --jobs=N.
/// Also flushes the observability sinks: --metrics-out JSON and the
/// --trace-out Chrome trace, when configured.
void report_engine(const BenchEnv& env);

}  // namespace mapg::bench
