// Shared scaffolding for the table/figure reproduction binaries.
//
// Every bench accepts optional "--key=value" overrides:
//   --instructions=N   measured instructions per run (default per-bench)
//   --warmup=N         warmup instructions
//   --seed=N           trace seed
//   --csv=1            emit CSV instead of the aligned text table
#pragma once

#include <string>

#include "common/config.h"
#include "common/table.h"
#include "core/runner.h"
#include "core/sim.h"

namespace mapg::bench {

struct BenchEnv {
  SimConfig sim;
  bool csv = false;
};

/// Parse argv into a SimConfig starting from the repository defaults.
BenchEnv parse_env(int argc, char** argv, std::uint64_t default_instructions,
                   std::uint64_t default_warmup = 250'000);

/// Print the standard experiment banner (id, what it reproduces).
void banner(const std::string& experiment_id, const std::string& title,
            const BenchEnv& env);

/// Emit a finished table in the requested format.
void emit(const Table& table, const BenchEnv& env);

}  // namespace mapg::bench
