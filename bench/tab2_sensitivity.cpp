// R-Tab.2 — Microarchitectural sensitivity: MAPG savings vs the core's MLP
// window and the LLC capacity.
//
// Expected shape: a wider MLP window overlaps misses, shortening and
// thinning full-core stalls -> lower (but still substantial) savings on
// loose-dependency workloads, nearly unchanged on pointer-chasing ones.
// A bigger LLC lowers MPKI -> fewer gating opportunities.
//
// Each sensitivity axis is one engine sweep with config variants, so every
// (variant x workload) cell — baseline and MAPG — runs in parallel and is
// individually cached.
#include <iostream>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

namespace {

/// (variant x workload) grid of baseline + mapg for the given configs.
SweepResult run_axis(bench::BenchEnv& env,
                     std::vector<std::pair<std::string, SimConfig>> variants,
                     const std::vector<std::string>& workloads) {
  SweepSpec sweep;
  sweep.base = env.sim;
  sweep.variants = std::move(variants);
  for (const auto& name : workloads)
    sweep.workloads.push_back(*find_profile(name));
  sweep.policy_specs = {"none", "mapg"};
  return env.engine->run_sweep(sweep);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Tab.2", "sensitivity to MLP window and LLC size", env);

  // mcf: tight chains (MLP ~1); libquantum/lbm: loose dependencies where
  // the MLP window actually changes overlap.
  const std::vector<std::string> workloads = {"mcf-like", "libquantum-like",
                                              "lbm-like"};

  const std::vector<std::uint32_t> windows = {1, 2, 4, 8, 16};
  {
    std::vector<std::pair<std::string, SimConfig>> variants;
    for (const std::uint32_t window : windows) {
      SimConfig cfg = env.sim;
      cfg.core.mlp_window = window;
      variants.emplace_back("mlp=" + std::to_string(window), cfg);
    }
    const SweepResult grid = run_axis(env, std::move(variants), workloads);

    Table mlp({"mlp_window", "workload", "MPKI", "IPC", "core_energy_savings",
               "gated_time", "mean_outstanding_at_stall"});
    for (std::size_t vi = 0; vi < windows.size(); ++vi) {
      for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Comparison c = score_against(grid.baseline(vi, wi),
                                           SimResult(grid.result(vi, wi, 1)));
        const SimResult& r = c.result;
        mlp.begin_row()
            .cell(std::uint64_t{windows[vi]})
            .cell(workloads[wi])
            .cell(r.mpki(), 1)
            .cell(r.ipc(), 3)
            .cell(format_percent(c.core_energy_savings))
            .cell(format_percent(r.gated_time_fraction()))
            .cell(r.core.outstanding_at_stall.mean(), 2);
      }
    }
    bench::emit(mlp, env);
  }

  const std::vector<std::uint32_t> widths = {1, 2, 4};
  {
    std::vector<std::pair<std::string, SimConfig>> variants;
    for (const std::uint32_t w : widths) {
      SimConfig cfg = env.sim;
      cfg.core.issue_width = w;
      variants.emplace_back("width=" + std::to_string(w), cfg);
    }
    const SweepResult grid = run_axis(env, std::move(variants), workloads);

    Table width({"issue_width", "workload", "IPC", "stall_time",
                 "core_energy_savings", "gated_time"});
    for (std::size_t vi = 0; vi < widths.size(); ++vi) {
      for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Comparison c = score_against(grid.baseline(vi, wi),
                                           SimResult(grid.result(vi, wi, 1)));
        const SimResult& r = c.result;
        const double stall_frac =
            r.core.cycles ? static_cast<double>(r.core.stall_cycles_dram) /
                                static_cast<double>(r.core.cycles)
                          : 0.0;
        width.begin_row()
            .cell(std::uint64_t{widths[vi]})
            .cell(workloads[wi])
            .cell(r.ipc(), 3)
            .cell(format_percent(stall_frac))
            .cell(format_percent(c.core_energy_savings))
            .cell(format_percent(r.gated_time_fraction()));
      }
    }
    bench::emit(width, env);
  }

  const std::vector<std::uint64_t> llc_kib = {256, 512, 1024, 2048, 4096};
  {
    std::vector<std::pair<std::string, SimConfig>> variants;
    for (const std::uint64_t kib : llc_kib) {
      SimConfig cfg = env.sim;
      cfg.mem.l2.size_bytes = kib * 1024;
      variants.emplace_back("l2=" + std::to_string(kib) + "KiB", cfg);
    }
    const SweepResult grid = run_axis(env, std::move(variants), workloads);

    Table llc({"l2_size_KiB", "workload", "MPKI", "core_energy_savings",
               "gated_time", "runtime_overhead"});
    for (std::size_t vi = 0; vi < llc_kib.size(); ++vi) {
      for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Comparison c = score_against(grid.baseline(vi, wi),
                                           SimResult(grid.result(vi, wi, 1)));
        const SimResult& r = c.result;
        llc.begin_row()
            .cell(llc_kib[vi])
            .cell(workloads[wi])
            .cell(r.mpki(), 1)
            .cell(format_percent(c.core_energy_savings))
            .cell(format_percent(r.gated_time_fraction()))
            .cell(format_percent(c.runtime_overhead, 2));
      }
    }
    bench::emit(llc, env);
  }
  bench::report_engine(env);
  return 0;
}
