// R-Tab.2 — Microarchitectural sensitivity: MAPG savings vs the core's MLP
// window and the LLC capacity.
//
// Expected shape: a wider MLP window overlaps misses, shortening and
// thinning full-core stalls -> lower (but still substantial) savings on
// loose-dependency workloads, nearly unchanged on pointer-chasing ones.
// A bigger LLC lowers MPKI -> fewer gating opportunities.
#include <iostream>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Tab.2", "sensitivity to MLP window and LLC size", env);

  // mcf: tight chains (MLP ~1); libquantum/lbm: loose dependencies where
  // the MLP window actually changes overlap.
  const std::vector<std::string> workloads = {"mcf-like", "libquantum-like",
                                              "lbm-like"};

  Table mlp({"mlp_window", "workload", "MPKI", "IPC", "core_energy_savings",
             "gated_time", "mean_outstanding_at_stall"});
  for (std::uint32_t window : {1u, 2u, 4u, 8u, 16u}) {
    SimConfig cfg = env.sim;
    cfg.core.mlp_window = window;
    ExperimentRunner runner(cfg);
    for (const auto& name : workloads) {
      const WorkloadProfile* p = find_profile(name);
      const Comparison c = runner.compare_one(*p, "mapg");
      const SimResult& r = c.result;
      mlp.begin_row()
          .cell(std::uint64_t{window})
          .cell(name)
          .cell(r.mpki(), 1)
          .cell(r.ipc(), 3)
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(r.gated_time_fraction()))
          .cell(r.core.outstanding_at_stall.mean(), 2);
    }
  }
  bench::emit(mlp, env);

  Table width({"issue_width", "workload", "IPC", "stall_time",
               "core_energy_savings", "gated_time"});
  for (std::uint32_t w : {1u, 2u, 4u}) {
    SimConfig cfg = env.sim;
    cfg.core.issue_width = w;
    ExperimentRunner runner(cfg);
    for (const auto& name : workloads) {
      const WorkloadProfile* p = find_profile(name);
      const Comparison c = runner.compare_one(*p, "mapg");
      const SimResult& r = c.result;
      const double stall_frac =
          r.core.cycles ? static_cast<double>(r.core.stall_cycles_dram) /
                              static_cast<double>(r.core.cycles)
                        : 0.0;
      width.begin_row()
          .cell(std::uint64_t{w})
          .cell(name)
          .cell(r.ipc(), 3)
          .cell(format_percent(stall_frac))
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(r.gated_time_fraction()));
    }
  }
  bench::emit(width, env);

  Table llc({"l2_size_KiB", "workload", "MPKI", "core_energy_savings",
             "gated_time", "runtime_overhead"});
  for (std::uint64_t kib : {256u, 512u, 1024u, 2048u, 4096u}) {
    SimConfig cfg = env.sim;
    cfg.mem.l2.size_bytes = kib * 1024;
    ExperimentRunner runner(cfg);
    for (const auto& name : workloads) {
      const WorkloadProfile* p = find_profile(name);
      const Comparison c = runner.compare_one(*p, "mapg");
      const SimResult& r = c.result;
      llc.begin_row()
          .cell(kib)
          .cell(name)
          .cell(r.mpki(), 1)
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(r.gated_time_fraction()))
          .cell(format_percent(c.runtime_overhead, 2));
    }
  }
  bench::emit(llc, env);
  return 0;
}
