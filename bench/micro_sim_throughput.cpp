// Raw simulation throughput: the batched SoA front-end vs the scalar path.
//
// SimConfig::batched (TraceSource::next_batch -> InstrBlock ->
// Core::run_batched, plus the mmap'd zero-copy trace reader) is a pure
// execution-strategy knob: it may change wall-clock only, never results.
// This bench enforces that contract, then measures what the knob buys:
//
//   1. IDENTITY GATE — for every (workload, policy) cell a scalar and a
//      batched full run must serialize to the exact same SimResult (the
//      byte-level form the result cache stores).  The gate also proves
//      generator next_batch == repeated next, mmap == buffered
//      record-for-record on a frozen MAPGTRC2 file, and
//      Cache::decode_block == scalar line/set/tag.  Any divergence exits
//      nonzero BEFORE a single timing number is printed.
//   2. Full-simulation instr/s per cell, scalar vs batched — the headline
//      rows EXPERIMENTS.md §"Simulator throughput" quotes.
//   3. Trace-generation and on-disk read microrates (gen next vs
//      next_batch; FileTraceSource vs MmapTraceSource streaming).
//   4. Batched cache index/tag decode rate vs the scalar reference.
//
// Usage: micro_sim_throughput [--instructions=N] [--warmup=N] [--seed=N]
//                             [--batched=0] [--smoke=1] [--json=FILE]
//                             [--keep=1]
//   --smoke=1     small counts: identity gate + quick rates (the CI step)
//   --batched=0   scalar-only timing; skips the batched runs and the gate
//   --json=FILE   machine-readable record (scripts/bench_report.sh
//                 throughput -> BENCH_throughput.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "core/sim.h"
#include "exec/json.h"
#include "exec/serialize.h"
#include "mem/cache.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_file.h"

using namespace mapg;

namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Order-sensitive accumulator over an instruction stream: any reordered,
/// dropped, or altered record changes it, and reading every field defeats
/// dead-code elimination in the timing loops.
struct StreamSum {
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  void add(OpClass op, Addr addr, std::uint16_t dep) {
    h = (h ^ static_cast<std::uint64_t>(op)) * 0x100000001b3ULL;
    h = (h ^ addr) * 0x100000001b3ULL;
    h = (h ^ dep) * 0x100000001b3ULL;
  }
};

struct CellRow {
  std::string workload, policy;
  double scalar_s = 0, batched_s = 0;
  double scalar_mips = 0, batched_mips = 0, speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);
  const bool smoke = cfg.get_bool("smoke", false);
  const bool with_batched = cfg.get_bool("batched", true);
  const std::uint64_t instructions =
      cfg.get_uint("instructions", smoke ? 200'000 : 5'000'000);
  const std::uint64_t warmup = cfg.get_uint("warmup", smoke ? 50'000 : 250'000);
  const std::uint64_t seed = cfg.get_uint("seed", 42);
  const std::uint64_t reps = cfg.get_uint("reps", smoke ? 1 : 3);
  const std::string json_path = cfg.get_or("json", "");
  const std::vector<std::string> workloads = {"mcf-like", "gamess-like"};
  const std::vector<std::string> policies = {"none", "mapg"};

  std::printf(
      "==== micro_sim_throughput: batched SoA front-end vs scalar ====\n"
      "(%llu measured + %llu warmup instrs per cell, seed %llu%s%s)\n\n",
      static_cast<unsigned long long>(instructions),
      static_cast<unsigned long long>(warmup),
      static_cast<unsigned long long>(seed), smoke ? "; SMOKE" : "",
      with_batched ? "" : "; scalar only (--batched=0)");

  SimConfig base;
  base.instructions = instructions;
  base.warmup_instructions = warmup;
  base.run_seed = seed;

  // ---- Stages 1+2: the identity gate and full-sim timing share runs ----
  std::vector<CellRow> rows;
  for (const std::string& wl : workloads) {
    const WorkloadProfile* profile = find_profile(wl);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown workload '%s'\n", wl.c_str());
      return 1;
    }
    for (const std::string& spec : policies) {
      CellRow row;
      row.workload = wl;
      row.policy = spec;

      // Best-of-`reps`: the identity comparison uses the first pair, the
      // reported time is the per-mode minimum (least-disturbed run).
      SimConfig sc = base;
      sc.batched = false;
      SimConfig bc = base;
      bc.batched = true;
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        double t0 = now_s();
        const SimResult scalar = Simulator(sc).run(*profile, spec);
        const double scalar_s = now_s() - t0;
        if (rep == 0 || scalar_s < row.scalar_s) row.scalar_s = scalar_s;

        if (!with_batched) continue;
        t0 = now_s();
        const SimResult batched = Simulator(bc).run(*profile, spec);
        const double batched_s = now_s() - t0;
        if (rep == 0 || batched_s < row.batched_s) row.batched_s = batched_s;

        // The serialized form is what the result cache stores; equality
        // there is exactly the contract SimConfig::batched claims when it
        // opts out of the cache key.
        if (rep == 0 &&
            (!results_equal(scalar, batched) ||
             result_to_json(scalar).dump() !=
                 result_to_json(batched).dump())) {
          std::fprintf(stderr,
                       "FAIL: batched run diverged from scalar on %s/%s\n",
                       wl.c_str(), spec.c_str());
          return 1;
        }
      }

      const double total = static_cast<double>(instructions + warmup);
      row.scalar_mips = total / row.scalar_s / 1e6;
      row.batched_mips = row.batched_s > 0 ? total / row.batched_s / 1e6 : 0;
      row.speedup = row.batched_s > 0 ? row.scalar_s / row.batched_s : 0;
      rows.push_back(row);
    }
  }

  // ---- Stages 1b+3a: generator batch identity and microrate ----
  const WorkloadProfile* gen_profile = find_profile("mcf-like");
  const std::uint64_t gen_count = smoke ? 2'000'000 : 20'000'000;
  double gen_scalar_mips = 0, gen_batched_mips = 0;
  {
    TraceGenerator gen(*gen_profile, seed);
    // Drawn through the base reference: the core consumes traces behind
    // TraceSource&, so the scalar cost being measured includes the
    // per-record virtual dispatch the batch API amortizes.
    TraceSource& src = gen;
    StreamSum scalar_sum;
    Instr instr;
    double t0 = now_s();
    for (std::uint64_t i = 0; i < gen_count; ++i) {
      src.next(instr);
      scalar_sum.add(instr.op, instr.addr, instr.dep_dist);
    }
    gen_scalar_mips = static_cast<double>(gen_count) / (now_s() - t0) / 1e6;

    src.reset();
    StreamSum batch_sum;
    InstrBlock block;
    t0 = now_s();
    for (std::uint64_t left = gen_count; left > 0;) {
      const auto want = static_cast<std::size_t>(
          std::min<std::uint64_t>(left, InstrBlock::kCapacity));
      src.next_batch(block, want);
      for (std::size_t i = 0; i < block.count; ++i)
        batch_sum.add(block.op[i], block.addr[i], block.dep_dist[i]);
      left -= block.count;
    }
    gen_batched_mips = static_cast<double>(gen_count) / (now_s() - t0) / 1e6;

    if (batch_sum.h != scalar_sum.h) {
      std::fprintf(stderr,
                   "FAIL: generator next_batch stream diverged from next()\n");
      return 1;
    }
  }

  // ---- Stages 1c+3b: mmap == buffered on a frozen trace, read rates ----
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string trace_path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                                 "/micro_sim_throughput.trc";
  const std::uint64_t file_count = smoke ? 500'000 : 10'000'000;
  double read_scalar_mrps = 0, read_batched_mrps = 0, read_mmap_mrps = 0;
  {
    TraceGenerator gen(*gen_profile, seed);
    std::string err;
    if (!write_trace_file_v2(trace_path, gen, file_count, &err)) {
      std::fprintf(stderr, "trace write failed: %s\n", err.c_str());
      return 1;
    }
    // Scalar baseline: one record per next() call, the pre-batch access
    // pattern of every file-backed consumer.
    auto scalar_stream = [file_count](SeekableTraceSource& src, double& mrps) {
      StreamSum sum;
      Instr instr;
      std::uint64_t served = 0;
      const double t0 = now_s();
      while (src.next(instr)) {
        sum.add(instr.op, instr.addr, instr.dep_dist);
        ++served;
      }
      mrps = static_cast<double>(file_count) / (now_s() - t0) / 1e6;
      return served == file_count ? sum.h : 0;
    };
    auto batch_stream = [file_count](SeekableTraceSource& src, double& mrps) {
      StreamSum sum;
      InstrBlock block;
      std::uint64_t served = 0;
      const double t0 = now_s();
      while (src.next_batch(block) > 0) {
        for (std::size_t i = 0; i < block.count; ++i)
          sum.add(block.op[i], block.addr[i], block.dep_dist[i]);
        served += block.count;
      }
      mrps = static_cast<double>(file_count) / (now_s() - t0) / 1e6;
      return served == file_count ? sum.h : 0;
    };
    FileTraceSource buffered(trace_path);
    MmapTraceSource mapped(trace_path);
    // Prime each reader with one full pass first (digest memo populated,
    // page cache warm), so the timed passes measure decode, not FNV
    // verification or cold I/O; all sums must agree.
    double discard = 0;
    (void)batch_stream(buffered, discard);
    buffered.reset();
    const std::uint64_t h_scalar = scalar_stream(buffered, read_scalar_mrps);
    buffered.reset();
    const std::uint64_t h_batch = batch_stream(buffered, read_batched_mrps);
    (void)batch_stream(mapped, discard);
    mapped.reset();
    const std::uint64_t h_map = batch_stream(mapped, read_mmap_mrps);
    if (h_scalar == 0 || h_scalar != h_batch || h_scalar != h_map) {
      std::fprintf(stderr,
                   "FAIL: file readers diverged (scalar/batched/mmap)\n");
      return 1;
    }
  }

  // ---- Stages 1d+4: cache decode_block identity and rate ----
  double decode_scalar_maps = 0, decode_batched_maps = 0;
  {
    Cache l2(CacheConfig{.name = "l2",
                         .size_bytes = 2 * 1024 * 1024,
                         .assoc = 16,
                         .line_bytes = 64});
    std::vector<Addr> addrs(InstrBlock::kCapacity);
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
    for (Addr& a : addrs) {  // xorshift64: arbitrary well-spread addresses
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      a = x;
    }
    std::vector<Addr> lines(addrs.size()), tags(addrs.size());
    std::vector<std::uint64_t> sets(addrs.size());
    l2.decode_block(addrs.data(), addrs.size(), lines.data(), sets.data(),
                    tags.data());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      if (lines[i] != l2.line_addr(addrs[i]) ||
          sets[i] != l2.set_index(addrs[i]) ||
          tags[i] != l2.tag_of(addrs[i])) {
        std::fprintf(stderr,
                     "FAIL: decode_block diverged from scalar at lane %zu\n",
                     i);
        return 1;
      }
    }
    const std::uint64_t reps =
        (smoke ? 4'000'000 : 80'000'000) / addrs.size();
    volatile std::uint64_t sink = 0;
    double t0 = now_s();
    for (std::uint64_t r = 0; r < reps; ++r) {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < addrs.size(); ++i)
        acc += l2.line_addr(addrs[i]) + l2.set_index(addrs[i]) +
               l2.tag_of(addrs[i]);
      sink = sink + acc;
    }
    decode_scalar_maps =
        static_cast<double>(reps * addrs.size()) / (now_s() - t0) / 1e6;
    t0 = now_s();
    for (std::uint64_t r = 0; r < reps; ++r) {
      l2.decode_block(addrs.data(), addrs.size(), lines.data(), sets.data(),
                      tags.data());
      sink = sink + lines[0] + sets[0] + tags[0];
    }
    decode_batched_maps =
        static_cast<double>(reps * addrs.size()) / (now_s() - t0) / 1e6;
  }

  if (with_batched)
    std::printf(
        "identity gate: scalar == batched on every cell; generator, mmap "
        "reader, and cache decode streams bit-identical\n\n");

  Table t({"workload", "policy", "scalar Minstr/s", "batched Minstr/s",
           "speedup"});
  double mcf_speedup = 0, mcf_batched_mips = 0;
  for (const CellRow& r : rows) {
    t.begin_row()
        .cell(r.workload)
        .cell(r.policy)
        .cell(r.scalar_mips, 2)
        .cell(r.batched_mips, 2)
        .cell(r.speedup, 2);
    if (r.workload == "mcf-like" && r.policy == "mapg") {
      mcf_speedup = r.speedup;
      mcf_batched_mips = r.batched_mips;
    }
  }
  t.print(std::cout);

  std::printf(
      "\ntrace gen:    %7.1f -> %7.1f Minstr/s\n"
      "trace read:   %7.1f -> %7.1f -> %7.1f Mrec/s  "
      "(scalar -> batched -> mmap batched)\n"
      "cache decode: %7.0f -> %7.0f Maddr/s  (scalar -> decode_block)\n"
      "full-sim speedup (mcf-like, mapg): %.2fx\n",
      gen_scalar_mips, gen_batched_mips, read_scalar_mrps, read_batched_mrps,
      read_mmap_mrps, decode_scalar_maps, decode_batched_maps, mcf_speedup);

  if (!json_path.empty()) {
    Json j = Json::object();
    j["bench"] = Json::string("micro_sim_throughput");
    j["instructions"] = Json::number(static_cast<double>(instructions));
    j["warmup"] = Json::number(static_cast<double>(warmup));
    j["smoke"] = Json::boolean(smoke);
    j["identity_gate"] = Json::boolean(with_batched);
    j["gen_scalar_minstr_s"] = Json::number(gen_scalar_mips);
    j["gen_batched_minstr_s"] = Json::number(gen_batched_mips);
    j["read_scalar_mrec_s"] = Json::number(read_scalar_mrps);
    j["read_batched_mrec_s"] = Json::number(read_batched_mrps);
    j["read_mmap_mrec_s"] = Json::number(read_mmap_mrps);
    j["decode_scalar_maddr_s"] = Json::number(decode_scalar_maps);
    j["decode_batched_maddr_s"] = Json::number(decode_batched_maps);
    j["full_sim_batched_minstr_s_mcf_mapg"] = Json::number(mcf_batched_mips);
    j["full_sim_speedup_mcf_mapg"] = Json::number(mcf_speedup);
    Json arr = Json::array();
    for (const CellRow& r : rows) {
      Json e = Json::object();
      e["workload"] = Json::string(r.workload);
      e["policy"] = Json::string(r.policy);
      e["scalar_s"] = Json::number(r.scalar_s);
      e["batched_s"] = Json::number(r.batched_s);
      e["scalar_minstr_s"] = Json::number(r.scalar_mips);
      e["batched_minstr_s"] = Json::number(r.batched_mips);
      e["speedup"] = Json::number(r.speedup);
      arr.push(std::move(e));
    }
    j["cells"] = std::move(arr);
    std::ofstream out(json_path);
    out << j.dump() << "\n";
    std::fprintf(stderr, "[bench] json -> %s\n", json_path.c_str());
  }

  if (!cfg.get_bool("keep", false)) std::remove(trace_path.c_str());
  return 0;
}
