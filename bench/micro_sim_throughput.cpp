// Simulator throughput microbenchmarks (google-benchmark): how fast each
// substrate and the composed simulator run.  These guard against
// performance regressions that would make the table/figure sweeps above
// impractically slow.
#include <benchmark/benchmark.h>

#include "core/sim.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/hierarchy.h"
#include "trace/generator.h"
#include "trace/profile.h"

namespace mapg {
namespace {

void BM_TraceGeneration(benchmark::State& state) {
  const WorkloadProfile* p = find_profile("mcf-like");
  TraceGenerator gen(*p, 1);
  Instr instr;
  for (auto _ : state) {
    gen.next(instr);
    benchmark::DoNotOptimize(instr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache(CacheConfig{.name = "L2",
                          .size_bytes = 1024 * 1024,
                          .assoc = 16,
                          .line_bytes = 64,
                          .hit_latency = 12});
  Prng prng(7);
  const std::uint64_t span = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(prng.below(span) * 64, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 22);

void BM_DramAccess(benchmark::State& state) {
  Dram dram(DramConfig{});
  Prng prng(11);
  Cycle t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dram.access(prng.below(1 << 22) * 64, false, t));
    t += 20;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void BM_FullSimulation(benchmark::State& state) {
  // End-to-end instructions/second for one memory-bound and one
  // compute-bound profile under the full MAPG stack.
  const char* names[] = {"mcf-like", "gamess-like"};
  const WorkloadProfile* p = find_profile(names[state.range(0)]);
  SimConfig cfg;
  cfg.instructions = 200'000;
  cfg.warmup_instructions = 0;
  const Simulator sim(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(*p, "mapg"));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.instructions));
  state.SetLabel(p->name);
}
BENCHMARK(BM_FullSimulation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mapg

BENCHMARK_MAIN();
