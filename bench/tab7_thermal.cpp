// R-Tab.7 (extension) — Leakage-temperature feedback: how much extra saving
// the cooler gated die provides beyond isothermal accounting.
//
// Expected shape: two competing effects.  (a) Gating cools the die, so the
// awake-time leakage shrinks too — amplification.  (b) A workload whose
// UNGATED hot-spot never reaches the leakage characterization temperature
// runs with a multiplier below 1 for both policies, shrinking leakage's
// share of the total and thus the relative savings.  Amplification
// therefore shows on the hottest (most stall-heavy, always-leaking)
// workloads — mcf's ungated hot-spot sits at ~T_ref and gains ~2 points —
// while lukewarm workloads lose a fraction of a point.  Honest net: the
// feedback helps exactly where MAPG already helps most.
#include <iostream>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Tab.7", "leakage-temperature feedback", env);

  SimConfig cfg = env.sim;
  cfg.thermal.enable = true;
  const Simulator sim(cfg);
  std::cout << "thermal node: ambient " << cfg.thermal.t_ambient_c
            << " C, R_th " << cfg.thermal.r_th_k_per_w << " K/W, tau "
            << cfg.thermal.tau_ms << " ms; leakage ref "
            << cfg.thermal.t_ref_c << " C, doubling every "
            << cfg.thermal.leak_doubling_c << " K\n\n";

  Table t({"workload", "T_avg_none", "T_avg_mapg", "delta_T",
           "iso_savings", "thermal_savings", "amplification"});

  for (const char* name : {"mcf-like", "lbm-like", "libquantum-like",
                           "omnetpp-like", "gcc-like", "gamess-like"}) {
    const WorkloadProfile* p = find_profile(name);
    const ThermalResult none = sim.run_thermal(*p, "none");
    const ThermalResult mapg = sim.run_thermal(*p, "mapg");

    const double iso =
        1.0 - mapg.sim.energy.total_j() / none.sim.energy.total_j();
    const double thermal =
        1.0 - mapg.thermal_total_j() / none.thermal_total_j();
    t.begin_row()
        .cell(name)
        .cell(none.avg_temperature_c, 1)
        .cell(mapg.avg_temperature_c, 1)
        .cell(none.avg_temperature_c - mapg.avg_temperature_c, 1)
        .cell(format_percent(iso))
        .cell(format_percent(thermal))
        .cell(format_percent(thermal - iso));
  }
  bench::emit(t, env);
  return 0;
}
