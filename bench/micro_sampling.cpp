// Sampled-simulation projection error + speedup vs full simulation.
//
// The sampled path (src/sample, docs/TRACE.md) slices a trace into
// fixed-size regions, k-means-clusters their memory-access-vector
// signatures, simulates one representative per cluster, and projects
// whole-trace metrics as cluster-weighted sums with model-based confidence
// intervals.  This bench measures the two numbers that decide whether that
// trade is honest on traces long enough to matter:
//
//   - projection error: |sampled - full| / full per reported metric, with
//     the full-simulation value's position relative to the 95% CI;
//   - speedup: full-simulation wall-clock over sampled wall-clock for the
//     same policy axis on the same on-disk trace, measured both COLD
//     (signature scan included) and WARM (signatures served from the
//     MAPGSIG1 cache, the steady state once a trace has been planned once).
//
// The warm run must project bit-identically to the cold run — the cache is
// a pure memoization — and the bench exits nonzero if it does not.
//
// The trace is written once (MAPGTRC2, generator content) and both paths
// stream it from disk, so the comparison isolates the sampling machinery.
// The error bound asserted here (kErrorBound, relative) is the one
// docs/TRACE.md documents and CI's sampling smoke enforces; run the bench
// at defaults to reproduce the EXPERIMENTS.md R-Sampling numbers.
//
// Usage: micro_sampling [--count=N] [--regions=N] [--clusters=K]
//                       [--sample-warmup=N] [--seed=N] [--workload=NAME]
//                       [--smoke=1] [--json=FILE] [--keep=1]
//   --count=N     trace length in instructions (default 50M; smoke 2M)
//   --smoke=1     small trace + bound assertion only (CI mode)
//   --json=FILE   machine-readable record (scripts/bench_report.sh)
//   --keep=1      keep the generated trace file
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "exec/json.h"
#include "sample/runner.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_file.h"

using namespace mapg;

namespace {

/// Documented relative-error bound for the default axes (docs/TRACE.md);
/// the smoke asserts it, the full run reports the measured figure.
constexpr double kErrorBound = 0.10;

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct MetricRow {
  std::string policy, metric;
  double full = 0, sampled = 0, rel_err = 0;
  bool in_ci = false;
};

double metric_from(const SimResult& r, const std::string& name) {
  if (name == "ipc") return r.ipc();
  if (name == "mpki") return r.mpki();
  if (name == "gated_time_fraction") return r.gated_time_fraction();
  if (name == "energy_total_j") return r.energy.total_j();
  if (name == "cycles") return static_cast<double>(r.core.cycles);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);
  const bool smoke = cfg.get_bool("smoke", false);
  const std::uint64_t count =
      cfg.get_uint("count", smoke ? 2'000'000 : 50'000'000);
  const std::uint64_t region_instrs =
      cfg.get_uint("regions", smoke ? 100'000 : 1'000'000);
  const std::uint64_t clusters = cfg.get_uint("clusters", 4);
  const std::uint64_t sample_warmup =
      cfg.get_uint("sample-warmup", smoke ? 20'000 : 100'000);
  const std::uint64_t seed = cfg.get_uint("seed", 42);
  const std::string workload = cfg.get_or("workload", "mcf-like");
  const std::string json_path = cfg.get_or("json", "");
  const std::vector<std::string> policies = {"none", "mapg"};
  const std::vector<std::string> metrics = {
      "ipc", "mpki", "gated_time_fraction", "energy_total_j", "cycles"};

  const WorkloadProfile* profile = find_profile(workload);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 1;
  }

  std::printf(
      "==== micro_sampling: phase-sampled projection vs full simulation "
      "====\n"
      "trace: %s x %llu instrs; regions of %llu, %llu clusters, warmup %llu"
      "%s\n",
      workload.c_str(), static_cast<unsigned long long>(count),
      static_cast<unsigned long long>(region_instrs),
      static_cast<unsigned long long>(clusters),
      static_cast<unsigned long long>(sample_warmup), smoke ? "; SMOKE" : "");

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string trace_path = std::string(tmpdir ? tmpdir : "/tmp") +
                                 "/micro_sampling_" + workload + ".trc";
  {
    TraceGenerator gen(*profile, seed);
    std::string err;
    if (!write_trace_file_v2(trace_path, gen, count, &err)) {
      std::fprintf(stderr, "trace write failed: %s\n", err.c_str());
      return 1;
    }
  }

  SimConfig sim_cfg;  // platform defaults; sampling overrides the windows
  sim_cfg.run_seed = seed;

  // Full simulation: one cold direct run over the whole trace per policy —
  // the reference the projection is judged against.
  std::vector<SimResult> full;
  const double t_full0 = now_s();
  for (const std::string& spec : policies) {
    FileTraceSource trace(trace_path);
    SimConfig fc = sim_cfg;
    fc.warmup_instructions = 0;
    fc.instructions = count;
    full.push_back(Simulator(fc).run(trace, "trace:" + workload, spec));
  }
  const double full_s = now_s() - t_full0;

  // Sampled, cold: signature scan + clustering + simulation, priming the
  // signature cache.  Then warm: same thing with the cache hitting, the
  // steady state for a trace that has been planned before.
  SampleConfig scfg;
  scfg.region_instructions = region_instrs;
  scfg.clusters = clusters;
  scfg.warmup_instructions = sample_warmup;
  scfg.seed = seed;
  scfg.signature_cache = trace_path + ".sigs";
  std::remove(scfg.signature_cache.c_str());

  std::uint64_t plan_regions = 0, plan_clusters = 0, plan_sampled = 0;
  auto sampled_pass = [&](std::vector<SampledResult>& out) {
    FileTraceSource trace(trace_path);
    SamplePlan plan = build_sample_plan(trace, scfg);
    SampledRunner runner(sim_cfg, trace, std::move(plan),
                         "trace:" + workload);
    for (const std::string& spec : policies) out.push_back(runner.run(spec));
    plan_regions = out[0].regions;
    plan_clusters = out[0].clusters;
    plan_sampled = runner.plan().sampled_instructions();
  };

  std::vector<SampledResult> sampled;
  const double t_cold0 = now_s();
  sampled_pass(sampled);
  const double cold_s = now_s() - t_cold0;

  std::vector<SampledResult> warm;
  const double t_warm0 = now_s();
  sampled_pass(warm);
  const double warm_s = now_s() - t_warm0;

  // The cache is pure memoization: the warm plan and therefore every warm
  // estimate must be bit-identical to the cold run.
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (std::size_t m = 0; m < sampled[p].metrics.size(); ++m) {
      if (warm[p].metrics[m].value != sampled[p].metrics[m].value ||
          warm[p].metrics[m].stderr_ != sampled[p].metrics[m].stderr_) {
        std::fprintf(stderr,
                     "error: warm (cached-signature) projection diverged "
                     "from cold on %s/%s\n",
                     policies[p].c_str(), sampled[p].metrics[m].name.c_str());
        return 1;
      }
    }
  }

  std::printf("plan: %llu regions -> %llu representatives (%llu of %llu "
              "instrs simulated)\n",
              static_cast<unsigned long long>(plan_regions),
              static_cast<unsigned long long>(plan_clusters),
              static_cast<unsigned long long>(plan_sampled),
              static_cast<unsigned long long>(count));

  Table t({"policy", "metric", "full", "sampled", "rel_err", "in_95ci"});
  std::vector<MetricRow> rows;
  double max_err = 0;
  std::size_t ci_hits = 0, ci_total = 0;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (const std::string& m : metrics) {
      const MetricEstimate* e = sampled[p].find(m);
      if (e == nullptr) continue;
      MetricRow row;
      row.policy = policies[p];
      row.metric = m;
      row.full = metric_from(full[p], m);
      row.sampled = e->value;
      row.rel_err = row.full != 0
                        ? std::abs(row.sampled - row.full) /
                              std::abs(row.full)
                        : std::abs(row.sampled);
      row.in_ci = row.full >= e->ci_lo && row.full <= e->ci_hi;
      if (row.full != 0 || row.sampled != 0) {
        max_err = std::max(max_err, row.rel_err);
        ++ci_total;
        if (row.in_ci) ++ci_hits;
      }
      rows.push_back(row);
      t.begin_row()
          .cell(row.policy)
          .cell(row.metric)
          .cell(row.full, 4)
          .cell(row.sampled, 4)
          .cell(format_percent(row.rel_err, 2))
          .cell(row.in_ci ? "yes" : "no");
    }
  }
  t.print(std::cout);

  const double speedup_cold = cold_s > 0 ? full_s / cold_s : 0;
  const double speedup = warm_s > 0 ? full_s / warm_s : 0;
  std::printf("\nfull: %.2fs   sampled cold: %.2fs (%.2fx)   sampled warm: "
              "%.2fs (%.2fx)\n"
              "max relative error: %.3f%% (bound %.0f%%)   CI coverage: "
              "%zu/%zu\n",
              full_s, cold_s, speedup_cold, warm_s, speedup, 100 * max_err,
              100 * kErrorBound, ci_hits, ci_total);

  if (!json_path.empty()) {
    Json j = Json::object();
    j["bench"] = Json::string("micro_sampling");
    j["workload"] = Json::string(workload);
    j["count"] = Json::number(count);
    j["region_instructions"] = Json::number(region_instrs);
    j["clusters"] = Json::number(clusters);
    j["regions"] = Json::number(sampled[0].regions);
    j["sampled_instructions"] = Json::number(plan_sampled);
    j["full_s"] = Json::number(full_s);
    j["sample_cold_s"] = Json::number(cold_s);
    j["sample_warm_s"] = Json::number(warm_s);
    j["speedup_cold"] = Json::number(speedup_cold);
    j["speedup"] = Json::number(speedup);
    j["max_rel_err"] = Json::number(max_err);
    j["ci_covered"] = Json::number(ci_hits);
    j["ci_total"] = Json::number(ci_total);
    j["smoke"] = Json::boolean(smoke);
    Json arr = Json::array();
    for (const MetricRow& r : rows) {
      Json e = Json::object();
      e["policy"] = Json::string(r.policy);
      e["metric"] = Json::string(r.metric);
      e["full"] = Json::number(r.full);
      e["sampled"] = Json::number(r.sampled);
      e["rel_err"] = Json::number(r.rel_err);
      e["in_ci"] = Json::boolean(r.in_ci);
      arr.push(std::move(e));
    }
    j["metrics"] = std::move(arr);
    std::ofstream out(json_path);
    out << j.dump() << "\n";
    std::fprintf(stderr, "[bench] json -> %s\n", json_path.c_str());
  }

  if (!cfg.get_bool("keep", false)) {
    std::remove(trace_path.c_str());
    std::remove(scfg.signature_cache.c_str());
  }

  if (max_err > kErrorBound) {
    std::fprintf(stderr, "error: max relative error %.3f exceeds %.2f\n",
                 max_err, kErrorBound);
    return 1;
  }
  if (!smoke && speedup < 10.0) {
    std::fprintf(stderr, "warning: speedup %.2fx below the 10x target\n",
                 speedup);
  }
  return 0;
}
