// Execution-engine microbenchmarks (google-benchmark): sweep throughput at
// 1/2/4/8 worker threads, and the result cache's hit/miss/store costs.
// These guard the exec subsystem the same way micro_sim_throughput guards
// the simulator: a scheduling or serialization regression shows up here
// before it shows up as a slow reproduce.sh.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "core/sim.h"
#include "exec/engine.h"
#include "exec/serialize.h"
#include "trace/profile.h"

namespace mapg {
namespace {

SweepSpec small_sweep() {
  SweepSpec spec;
  spec.base.instructions = 50'000;
  spec.base.warmup_instructions = 10'000;
  spec.workloads = representative_profiles();
  spec.policy_specs = {"none", "mapg"};
  spec.n_seeds = 2;  // 4 workloads x 2 policies x 2 seeds = 16 jobs
  return spec;
}

/// End-to-end sweep sims/sec at N worker threads.  A fresh engine per
/// iteration keeps the in-memory memoization from serving later rounds.
void BM_EngineSweep(benchmark::State& state) {
  const SweepSpec spec = small_sweep();
  const std::size_t jobs_per_sweep =
      spec.workloads.size() * spec.policy_specs.size() * spec.n_seeds;
  for (auto _ : state) {
    ExecOptions opts;
    opts.jobs = static_cast<unsigned>(state.range(0));
    ExperimentEngine engine(opts);
    benchmark::DoNotOptimize(engine.run_sweep(spec));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs_per_sweep));
  state.SetLabel("sims");
}
BENCHMARK(BM_EngineSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

SimResult sample_result() {
  SimConfig cfg;
  cfg.instructions = 50'000;
  cfg.warmup_instructions = 10'000;
  static const SimResult r =
      Simulator(cfg).run(*find_profile("mcf-like"), "mapg");
  return r;
}

/// Memory-tier hit: the cost a warm sweep pays per already-computed cell.
void BM_CacheMemoryHit(benchmark::State& state) {
  ResultCache cache;
  cache.store("k", sample_result());
  for (auto _ : state) benchmark::DoNotOptimize(cache.get("k"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMemoryHit);

/// Miss: key hash + failed lookup (the cold-sweep overhead per cell).
void BM_CacheMiss(benchmark::State& state) {
  ResultCache cache;
  const SimConfig cfg;
  const WorkloadProfile& p = *find_profile("mcf-like");
  std::uint64_t n = 0;
  for (auto _ : state) {
    SimConfig c = cfg;
    c.run_seed = ++n;  // fresh key every time
    benchmark::DoNotOptimize(cache.get(cache_key(c, p, "mapg")));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMiss);

/// Disk store: serialize + atomic write of one full SimResult.
void BM_CacheDiskStore(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "mapg_bench_cache_store";
  ResultCache cache(dir.string());
  const SimResult r = sample_result();
  std::uint64_t n = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.store(std::to_string(++n), r));
  state.SetItemsProcessed(state.iterations());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_CacheDiskStore);

/// Disk hit: parse + reconstruct one full SimResult from its JSON entry.
void BM_CacheDiskLoad(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "mapg_bench_cache_load";
  ResultCache cache(dir.string());
  cache.store("k", sample_result());
  for (auto _ : state) {
    cache.clear_memory();  // force the disk path
    benchmark::DoNotOptimize(cache.get("k"));
  }
  state.SetItemsProcessed(state.iterations());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_CacheDiskLoad);

}  // namespace
}  // namespace mapg

BENCHMARK_MAIN();
