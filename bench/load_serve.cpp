// Serving-path load generator (docs/SERVE.md): closed-loop clients drive a
// ServeServer over real loopback TCP and measure QPS + p50/p99 latency at
// three cache-hit mixes — ~0 % (every request a fresh seed: cold compute),
// ~50 %, and ~95 % (requests mostly revisit a small warmed key set) — first
// against a single server, then through a shard front fanning out to N
// worker servers by v4 cache key.
//
// "Closed loop" means each client thread has exactly one request in flight:
// it sends a cell, waits for the reply, records the wall latency, repeats.
// QPS is total requests over the mix's wall-clock; latencies are merged
// across clients before taking percentiles.  Hit ratios are verified from
// the per-response `tier` field (hot/cache/replay/coalesced = hit), which
// works identically in sharded mode where the front's own stats are empty.
//
// The headline claim for BENCH_serve.json: hot-mix QPS >= 5x cold-mix QPS
// on the single-shard server — the tiering exists to make repeat queries
// cheap, and this is the number that says by how much.
//
// Usage: load_serve [--instructions=N] [--warmup=N] [--clients=N]
//                   [--reqs=N] [--cold-reqs=N] [--warm-set=N] [--shards=N]
//                   [--jobs=N] [--target=X] [--smoke=1] [--json=FILE]
//   --reqs       requests per client in the warm (50 %/95 %) mixes
//   --cold-reqs  requests per client in the cold mix (each one simulates)
//   --shards     worker count for the sharded scenario (0 skips it)
//   --smoke=1    tiny counts, machinery check only, no target enforcement
//   --json=FILE  machine-readable record (scripts/bench_report.sh serve)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace mapg;
using namespace mapg::serve;
using Clock = std::chrono::steady_clock;

constexpr const char* kWorkload = "mcf-like";
constexpr const char* kPolicy = "mapg";

std::atomic<std::uint64_t> g_unique_seed{100000};

struct MixSpec {
  const char* name;
  double hit_target;   ///< fraction of requests aimed at the warm set
  std::size_t per_client;
};

struct MixResult {
  std::string name;
  double hit_target = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double wall_s = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_ratio = 0;
  std::map<std::string, std::uint64_t> tiers;
};

/// A scenario is the server topology under test: one plain server, or a
/// front plus N workers (all in-process, all speaking real TCP loopback).
struct Scenario {
  std::string name;
  std::size_t shards = 0;  ///< 0 = single server, no front
  std::vector<std::unique_ptr<ServeServer>> servers;
  std::uint16_t target_port = 0;  ///< where clients connect

  ~Scenario() {
    // Front first so it stops forwarding before its workers vanish.
    for (auto it = servers.rbegin(); it != servers.rend(); ++it) (*it)->stop();
  }
};

std::unique_ptr<Scenario> make_scenario(std::size_t shards, unsigned jobs) {
  auto sc = std::make_unique<Scenario>();
  sc->shards = shards;
  sc->name = shards == 0 ? "1 shard" : std::to_string(shards) + " shards";
  std::string error;
  std::vector<std::string> worker_addrs;
  for (std::size_t i = 0; i < shards; ++i) {
    ServerOptions wo;
    wo.exec.jobs = jobs;
    wo.exec.use_disk_cache = false;
    auto worker = std::make_unique<ServeServer>(wo);
    if (!worker->start(&error)) {
      std::fprintf(stderr, "FATAL: worker start: %s\n", error.c_str());
      std::exit(1);
    }
    worker_addrs.push_back("127.0.0.1:" + std::to_string(worker->port()));
    sc->servers.push_back(std::move(worker));
  }
  ServerOptions fo;
  fo.exec.jobs = jobs;
  fo.exec.use_disk_cache = false;
  fo.shards = worker_addrs;  // empty => plain single server
  auto front = std::make_unique<ServeServer>(fo);
  if (!front->start(&error)) {
    std::fprintf(stderr, "FATAL: server start: %s\n", error.c_str());
    std::exit(1);
  }
  sc->target_port = front->port();
  sc->servers.push_back(std::move(front));
  return sc;
}

CellRequest make_cell(std::uint64_t instructions, std::uint64_t warmup,
                      std::uint64_t seed) {
  CellRequest req;
  req.workload = kWorkload;
  req.policy = kPolicy;
  req.config = {{"instructions", std::to_string(instructions)},
                {"warmup", std::to_string(warmup)},
                {"seed", std::to_string(seed)}};
  return req;
}

/// Issue every warm-set cell once so later mixes find them resident in the
/// hot tier (in sharded mode this lands each key on its owning worker).
void warm(std::uint16_t port, std::uint64_t instructions,
          std::uint64_t warmup, std::size_t warm_set) {
  ServeClient client;
  std::string error;
  if (!client.connect("127.0.0.1", port, &error)) {
    std::fprintf(stderr, "FATAL: warm connect: %s\n", error.c_str());
    std::exit(1);
  }
  for (std::size_t s = 0; s < warm_set; ++s) {
    if (!client.cell(make_cell(instructions, warmup, 1 + s), &error)) {
      std::fprintf(stderr, "FATAL: warming seed %zu: %s\n", 1 + s,
                   error.c_str());
      std::exit(1);
    }
  }
}

MixResult run_mix(const MixSpec& spec, std::uint16_t port, unsigned clients,
                  std::uint64_t instructions, std::uint64_t warmup,
                  std::size_t warm_set) {
  // Request i targets the warm set iff its slot in a 20-wide pattern is
  // below hit_target*20 — deterministic, so every run sees the same mix.
  const std::size_t warm_slots =
      static_cast<std::size_t>(spec.hit_target * 20.0 + 0.5);

  struct PerClient {
    std::vector<double> latency_ms;
    std::map<std::string, std::uint64_t> tiers;
    std::uint64_t errors = 0;
  };
  std::vector<PerClient> per(clients);
  std::vector<ServeClient> conns(clients);
  std::string error;
  for (unsigned c = 0; c < clients; ++c)
    if (!conns[c].connect("127.0.0.1", port, &error)) {
      std::fprintf(stderr, "FATAL: client connect: %s\n", error.c_str());
      std::exit(1);
    }

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PerClient& me = per[c];
      me.latency_ms.reserve(spec.per_client);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < spec.per_client; ++i) {
        const bool hit = (i % 20) < warm_slots;
        const std::uint64_t seed =
            hit ? 1 + (c * spec.per_client + i) % warm_set
                : g_unique_seed.fetch_add(1);
        const CellRequest req = make_cell(instructions, warmup, seed);
        std::string err;
        const auto t0 = Clock::now();
        const auto doc = conns[c].cell(req, &err);
        const auto t1 = Clock::now();
        me.latency_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (!doc || !doc->get("ok").as_bool()) {
          ++me.errors;
          ++me.tiers["error"];
        } else {
          ++me.tiers[doc->get("tier").as_string()];
        }
      }
    });
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const auto t1 = Clock::now();

  MixResult out;
  out.name = spec.name;
  out.hit_target = spec.hit_target;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  std::vector<double> merged;
  std::uint64_t hits = 0;
  for (PerClient& p : per) {
    merged.insert(merged.end(), p.latency_ms.begin(), p.latency_ms.end());
    out.errors += p.errors;
    for (const auto& [tier, n] : p.tiers) out.tiers[tier] += n;
  }
  for (const char* t : {"hot", "cache", "replay", "coalesced"}) {
    auto it = out.tiers.find(t);
    if (it != out.tiers.end()) hits += it->second;
  }
  out.requests = merged.size();
  out.qps = out.wall_s > 0 ? static_cast<double>(out.requests) / out.wall_s
                           : 0;
  out.hit_ratio = out.requests
                      ? static_cast<double>(hits) /
                            static_cast<double>(out.requests)
                      : 0;
  std::sort(merged.begin(), merged.end());
  auto pct = [&](double q) {
    if (merged.empty()) return 0.0;
    const std::size_t idx = std::min(
        merged.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(merged.size())));
    return merged[idx];
  };
  out.p50_ms = pct(0.50);
  out.p99_ms = pct(0.99);
  return out;
}

void print_mix(const Scenario& sc, const MixResult& m) {
  std::string census;
  for (const auto& [tier, n] : m.tiers)
    census += (census.empty() ? "" : ", ") + std::to_string(n) + " " + tier;
  std::printf("  %-9s %-6s hit %3.0f%% (asked %3.0f%%)  %6llu req  "
              "%8.1f qps  p50 %7.3f ms  p99 %7.3f ms  [%s]\n",
              sc.name.c_str(), m.name.c_str(), 100 * m.hit_ratio,
              100 * m.hit_target,
              static_cast<unsigned long long>(m.requests), m.qps, m.p50_ms,
              m.p99_ms, census.c_str());
}

Json mix_json(const MixResult& m) {
  Json j = Json::object();
  j["name"] = Json::string(m.name);
  j["hit_target"] = Json::number(m.hit_target);
  j["hit_ratio"] = Json::number(m.hit_ratio);
  j["requests"] = Json::number(m.requests);
  j["errors"] = Json::number(m.errors);
  j["wall_s"] = Json::number(m.wall_s);
  j["qps"] = Json::number(m.qps);
  j["p50_ms"] = Json::number(m.p50_ms);
  j["p99_ms"] = Json::number(m.p99_ms);
  Json tiers = Json::object();
  for (const auto& [tier, n] : m.tiers) tiers[tier] = Json::number(n);
  j["tiers"] = std::move(tiers);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);
  const bool smoke = cfg.get_bool("smoke", false);
  const std::uint64_t instructions =
      cfg.get_uint("instructions", smoke ? 20'000 : 60'000);
  const std::uint64_t warmup = cfg.get_uint("warmup", smoke ? 4'000 : 10'000);
  const unsigned clients =
      static_cast<unsigned>(cfg.get_uint("clients", 3));
  const std::size_t reqs = cfg.get_uint("reqs", smoke ? 20 : 200);
  const std::size_t cold_reqs = cfg.get_uint("cold-reqs", smoke ? 4 : 30);
  const std::size_t warm_set = cfg.get_uint("warm-set", 16);
  const std::size_t shards = cfg.get_uint("shards", 2);
  const unsigned jobs = static_cast<unsigned>(cfg.get_uint("jobs", 2));
  const double target = cfg.get_double("target", 5.0);
  const std::string json_path = cfg.get_or("json", "");

  const std::vector<MixSpec> mixes = {
      {"cold", 0.0, cold_reqs},
      {"mixed", 0.5, reqs},
      {"hot", 0.95, reqs},
  };

  std::printf("==== load_serve: closed-loop serving QPS by cache-hit mix "
              "====\n(instructions=%llu, warmup=%llu, clients=%u, jobs=%u, "
              "warm set %zu keys, %s/%s%s)\n\n",
              static_cast<unsigned long long>(instructions),
              static_cast<unsigned long long>(warmup), clients, jobs,
              warm_set, kWorkload, kPolicy, smoke ? "; SMOKE" : "");

  double qps_cold = 0, qps_hot = 0;
  std::uint64_t total_errors = 0;
  std::vector<std::pair<std::size_t, std::vector<MixResult>>> scenarios;
  for (const std::size_t n_shards :
       std::vector<std::size_t>{0, shards == 0 ? 0 : shards}) {
    if (!scenarios.empty() && n_shards == 0) continue;  // --shards=0
    const auto sc = make_scenario(n_shards, jobs);
    std::vector<MixResult> results;
    for (const MixSpec& spec : mixes) {
      if (spec.hit_target > 0 && (results.empty() ||
                                  results.back().hit_target == 0))
        warm(sc->target_port, instructions, warmup, warm_set);
      MixResult m = run_mix(spec, sc->target_port, clients, instructions,
                            warmup, warm_set);
      print_mix(*sc, m);
      total_errors += m.errors;
      if (n_shards == 0 && m.hit_target == 0) qps_cold = m.qps;
      if (n_shards == 0 && m.hit_target > 0.9) qps_hot = m.qps;
      results.push_back(std::move(m));
    }
    scenarios.emplace_back(n_shards == 0 ? 1 : n_shards,
                           std::move(results));
    std::printf("\n");
  }

  const double gap = qps_cold > 0 ? qps_hot / qps_cold : 0;
  const bool met = gap >= target;
  std::printf("hot/cold QPS gap (1 shard): %.1fx (target %.1fx) %s\n", gap,
              target, smoke ? "(smoke: informational)"
                            : (met ? "PASS" : "MISS"));
  if (total_errors) {
    std::fprintf(stderr, "FAIL: %llu request errors\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (!met && !smoke)
    std::fprintf(stderr, "warning: hot/cold gap %.1fx below %.1fx target\n",
                 gap, target);

  if (!json_path.empty()) {
    Json j = Json::object();
    j["bench"] = Json::string("load_serve");
    j["instructions"] = Json::number(instructions);
    j["warmup"] = Json::number(warmup);
    j["clients"] = Json::number(std::uint64_t{clients});
    j["jobs"] = Json::number(std::uint64_t{jobs});
    j["warm_set"] = Json::number(warm_set);
    j["workload"] = Json::string(kWorkload);
    j["policy"] = Json::string(kPolicy);
    Json scens = Json::array();
    for (const auto& [n_shards, results] : scenarios) {
      Json s = Json::object();
      s["shards"] = Json::number(n_shards);
      Json ms = Json::array();
      for (const MixResult& m : results) ms.push(mix_json(m));
      s["mixes"] = std::move(ms);
      scens.push(std::move(s));
    }
    j["scenarios"] = std::move(scens);
    j["qps_cold"] = Json::number(qps_cold);
    j["qps_hot"] = Json::number(qps_hot);
    j["hot_over_cold"] = Json::number(gap);
    j["target"] = Json::number(target);
    j["met"] = Json::boolean(met);
    std::ofstream out(json_path);
    out << j.dump() << "\n";
    std::fprintf(stderr, "[bench] json -> %s\n", json_path.c_str());
  }
  return 0;
}
