// R-Tab.9 (extension) — the page-policy x DRAM-standard x gating-mode grid
// (docs/DRAM.md).
//
// Every cell runs the same MAPG core policy on one of the named DRAM timing
// standards (DDR3-1600 / DDR4-2400 / LPDDR4-3200, each with its IDD-class
// energy set) under one of the three page-management policies (open /
// closed / hybrid), with the FR-FCFS posted-write queue enabled — and is
// evaluated under two gating modes: DRAM low-power off, and coordinated
// CPU-DRAM gating ("mapg-dram" + DramPowerMode::kCoordinated).
//
// Expected shape: on streaming row-hit workloads (libquantum) the closed
// policy destroys row locality — every access pays a fresh ACT, runtime and
// DRAM energy both lose; on row-conflict pointer chasers (mcf, omnetpp) the
// closed policy converts conflicts (PRE+ACT on the critical path) into
// pre-hidden closed-bank opens and WINS on runtime.  The hybrid policy
// splits the difference by address.  Across standards, LPDDR4's small 2 KiB
// pages cut row locality but its mobile-class background power makes the
// coordinated saving fraction the largest of the three — which is what moves
// MAPG's coordinated-gating crossover.
//
// Every cell is additionally re-run with the cycle-stepped reference kernel
// (--fast-forward=0 path) and the two canonical result encodings are
// compared: the closed-form coordinated math must be bit-identical to the
// stepped PowerDownMeter on the full grid, not just at the DDR3 defaults.
// A mismatching cell prints "DIFF" in the ff_ok column and the bench exits
// nonzero.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "exec/serialize.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 250'000);
  bench::banner("R-Tab.9", "DRAM page policy x standard x gating grid", env);

  const DramStandard kStandards[] = {DramStandard::kDdr3_1600,
                                     DramStandard::kDdr4_2400,
                                     DramStandard::kLpddr4_3200};
  const PagePolicy kPolicies[] = {PagePolicy::kOpen, PagePolicy::kClosed,
                                  PagePolicy::kHybrid};

  int bad_cells = 0;
  for (const char* name : {"libquantum-like", "mcf-like"}) {
    const WorkloadProfile* p = find_profile(name);
    std::cout << "--- " << name << " ---\n";
    Table t({"standard", "policy", "cycles", "row_hit", "wq_wait",
             "dram_off_mJ", "dram_co_mJ", "co_save", "ff_ok"});

    for (const DramStandard standard : kStandards) {
      for (const PagePolicy policy : kPolicies) {
        SimConfig cell = env.sim;
        apply_dram_standard(cell.mem.dram, standard);
        cell.dram_energy = dram_energy_for_standard(standard);
        cell.mem.dram.page_policy = policy;
        if (cell.mem.dram.queue_depth == 0) cell.mem.dram.queue_depth = 8;

        SimConfig off_cfg = cell;
        off_cfg.mem.dram.power.mode = DramPowerMode::kOff;
        SimConfig co_cfg = cell;
        co_cfg.mem.dram.power.mode = DramPowerMode::kCoordinated;

        const SimResult off = Simulator(off_cfg).run(*p, "mapg");
        const SimResult co = Simulator(co_cfg).run(*p, "mapg-dram");

        // The acceptance gate: the fast-forward closed form must match the
        // cycle-stepped reference bit-for-bit in BOTH gating modes of this
        // cell.  Canonical JSON covers every counter, histogram and energy
        // double, so nothing can drift silently.
        SimConfig off_step = off_cfg;
        off_step.fast_forward = false;
        SimConfig co_step = co_cfg;
        co_step.fast_forward = false;
        const bool ok =
            result_to_json(off).dump() ==
                result_to_json(Simulator(off_step).run(*p, "mapg")).dump() &&
            result_to_json(co).dump() ==
                result_to_json(Simulator(co_step).run(*p, "mapg-dram"))
                    .dump();
        if (!ok) ++bad_cells;

        const double wq_wait =
            off.dram.writes_queued
                ? static_cast<double>(off.dram.write_wait_cycles) /
                      static_cast<double>(off.dram.writes_queued)
                : 0.0;
        t.begin_row()
            .cell(to_string(standard))
            .cell(to_string(policy))
            .cell(off.core.cycles)
            .cell(format_percent(off.dram.row_hit_rate()))
            .cell(wq_wait, 1)
            .cell(off.energy.dram_j * 1e3, 3)
            .cell(co.energy.dram_j * 1e3, 3)
            .cell(format_percent(1.0 - co.energy.dram_j / off.energy.dram_j))
            .cell(ok ? "ok" : "DIFF");
      }
    }
    bench::emit(t, env);
  }

  if (bad_cells > 0) {
    std::cerr << "FAIL: " << bad_cells
              << " grid cell(s) diverged between the closed-form and "
                 "cycle-stepped kernels\n";
    return 1;
  }
  std::cout << "all grid cells: closed form == stepped reference "
               "(bit-identical canonical encodings)\n";
  return 0;
}
