// R-Tab.3 — MAPG design-choice ablations across all workloads:
//   mapg                   full mechanism (threshold + filter + early wake)
//   mapg-aggressive        no profitability threshold (every DRAM stall)
//   mapg-noearly           no MC-initiated wakeup (reactive wake)
//   mapg-unfiltered        gate every full-core stall, even L1/L2 ones
//   idle-timeout:64        neither mechanism (conventional baseline)
//   idle-timeout-early:64  blind timeout entry + MAPG's early wakeup only
//
// The two idle-timeout rows decompose MAPG's advantage: early wakeup alone
// removes the runtime overhead; cause-driven immediate entry alone recovers
// the timeout's truncated savings; MAPG needs both.
//
// Expected shape: removing the threshold barely matters on memory-bound
// workloads (nearly all DRAM stalls are profitable) but adds unprofitable
// transitions on mixed ones; removing early wake converts the wakeup
// latency into runtime overhead; removing the DRAM filter changes nothing
// as long as the threshold stays (it already rejects short cache stalls).
#include <iostream>

#include "bench_util.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Tab.3", "MAPG mechanism ablations", env);

  ExperimentRunner runner(env.sim);
  Table t({"workload", "variant", "core_energy_savings", "net_leak_savings",
           "runtime_overhead", "gate_events", "unprofitable",
           "aborted_entries"});

  for (const auto& profile : builtin_profiles()) {
    for (const char* spec :
         {"mapg", "mapg-aggressive", "mapg-noearly", "mapg-unfiltered",
          "idle-timeout:64", "idle-timeout-early:64"}) {
      const Comparison c = runner.compare_one(profile, spec);
      const SimResult& r = c.result;
      t.begin_row()
          .cell(profile.name)
          .cell(r.policy)
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(c.net_leakage_savings))
          .cell(format_percent(c.runtime_overhead, 2))
          .cell(r.gating.gated_events)
          .cell(r.gating.unprofitable_events)
          .cell(r.gating.aborted_entries);
    }
  }
  bench::emit(t, env);
  return 0;
}
