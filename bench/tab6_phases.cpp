// R-Tab.6 (extension) — Non-stationary workloads: estimate-driven MAPG vs
// the history-driven predictor when the stall distribution keeps changing.
//
// Setup: transition overhead is scaled 2x (BET 94, gating horizon 130
// cycles) so the profitability boundary cuts through the stall
// distribution, and the trace alternates between a long-stall phase
// (mcf-like, ~180-cycle stalls: gate) and a short-stall phase (a
// loose-dependency streaming profile, ~100-cycle stalls: don't).  Plain
// MAPG is stateless — it reads the controller's residual estimate per
// stall, so phase switches cost it nothing — but that estimate is the
// no-contention CLOSED-ROW latency, which overestimates the row-hit-heavy
// short-stall phase and makes MAPG gate unprofitably there.  The history
// policy has the opposite failure mode: unbiased in steady state, but it
// must relearn across every switch.  The sweep shows which error dominates
// at each phase length (measured: the estimate's bias costs more than the
// predictor's staleness except at the very shortest phases — an argument
// for hybrid estimate+history policies as future work).
#include <iostream>

#include "bench_util.h"
#include "exec/runner.h"
#include "pg/factory.h"
#include "trace/generator.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000, 0);
  bench::banner("R-Tab.6", "phased workloads: estimate vs history", env);

  SimConfig cfg = env.sim;
  cfg.pg.overhead_scale = 2.0;  // BET 94: short stalls become unprofitable
  const WorkloadProfile mem_phase = *find_profile("mcf-like");
  WorkloadProfile short_phase = *find_profile("libquantum-like");
  short_phase.name = "stream-loose";
  short_phase.dep_dist_mean = 24;  // consumers trail: residuals shrink
  const Simulator sim(cfg);
  const PolicyContext ctx = sim.policy_context();
  std::cout << "gating horizon: entry+wakeup+BET = "
            << ctx.entry_latency + ctx.wakeup_latency + ctx.break_even
            << " cycles\n\n";

  Table t({"phase_len_instrs", "policy", "core_energy_savings",
           "runtime_overhead", "gate_events", "unprofitable"});

  for (std::uint64_t phase_len :
       {2'000u, 10'000u, 50'000u, 250'000u, 1'000'000u}) {
    // Baseline for this phase length (no gating, same trace).
    PhasedTraceGenerator base_trace(mem_phase, short_phase, phase_len,
                                    env.sim.run_seed);
    NoGatingPolicy none(ctx);
    const SimResult base = sim.run(base_trace, "phased", none);

    for (const char* spec :
         {"mapg", "mapg-history", "mapg-hybrid", "oracle"}) {
      PhasedTraceGenerator trace(mem_phase, short_phase, phase_len,
                                 env.sim.run_seed);
      auto policy = make_policy(spec, ctx);
      const Comparison c =
          score_against(base, sim.run(trace, "phased", *policy));
      const SimResult& r = c.result;
      t.begin_row()
          .cell(phase_len)
          .cell(r.policy)
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(c.runtime_overhead, 2))
          .cell(r.gating.gated_events)
          .cell(r.gating.unprofitable_events);
    }
  }
  bench::emit(t, env);
  return 0;
}
