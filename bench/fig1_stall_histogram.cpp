// R-Fig.1 — Motivation: distribution of full-core memory-stall durations.
//
// Reproduces the argument that memory stalls are (a) frequent, (b) mostly
// 100-400 cycles long — above MAPG's effective break-even horizon but far
// too short for conventional idle-timeout gating once its timeout, entry
// and reactive-wakeup costs are paid.
//
// Output: one row per workload with stall statistics, then the per-workload
// stall-length histogram series (bucket midpoints x stall share).
#include <iostream>

#include "bench_util.h"
#include "power/pg_circuit.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 2'000'000);
  bench::banner("R-Fig.1", "full-core memory-stall duration distribution",
                env);

  const Simulator sim(env.sim);
  const PgCircuit circuit(env.sim.pg, env.sim.tech);
  std::cout << "PG circuit horizon: entry=" << circuit.entry_latency_cycles()
            << "cyc wakeup=" << circuit.wakeup_latency_cycles()
            << "cyc break-even=" << circuit.break_even_cycles() << "cyc\n\n";

  Table summary({"workload", "MPKI", "IPC", "stalls/Minstr",
                 "stall_frac_of_time", "mean_len", "p50", "p90"});
  struct Series {
    std::string name;
    Histogram hist{0.0, 1024.0, 64};
  };
  std::vector<Series> series;

  for (const auto& profile : builtin_profiles()) {
    const SimResult r = sim.run(profile, "none");
    const auto& h = r.core.dram_stall_hist;
    const double stall_frac =
        r.core.cycles
            ? static_cast<double>(r.core.stall_cycles_dram) /
                  static_cast<double>(r.core.cycles)
            : 0.0;
    const double mean_len =
        r.core.stalls_dram
            ? static_cast<double>(r.core.stall_cycles_dram) /
                  static_cast<double>(r.core.stalls_dram)
            : 0.0;
    summary.begin_row()
        .cell(r.workload)
        .cell(r.mpki(), 2)
        .cell(r.ipc(), 3)
        .cell(1e6 * static_cast<double>(r.core.stalls_dram) /
                  static_cast<double>(r.core.instrs),
              1)
        .cell(format_percent(stall_frac))
        .cell(mean_len, 1)
        .cell(h.quantile(0.5), 0)
        .cell(h.quantile(0.9), 0);
    series.push_back({r.workload, h});
  }
  bench::emit(summary, env);

  // Histogram series for the figure: share of stalls per 16-cycle bucket.
  Table fig({"stall_len_bucket", "workload", "share_of_stalls"});
  for (const auto& s : series) {
    if (s.hist.total() == 0) continue;
    for (std::size_t b = 0; b < s.hist.buckets(); ++b) {
      if (s.hist.bucket_count(b) == 0) continue;
      fig.begin_row()
          .cell(format_fixed((s.hist.bucket_lo(b) + s.hist.bucket_hi(b)) / 2,
                             0))
          .cell(s.name)
          .cell(static_cast<double>(s.hist.bucket_count(b)) /
                    static_cast<double>(s.hist.total()),
                4);
    }
  }
  bench::emit(fig, env);
  return 0;
}
