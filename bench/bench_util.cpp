#include "bench_util.h"

#include <iostream>

namespace mapg::bench {

BenchEnv parse_env(int argc, char** argv, std::uint64_t default_instructions,
                   std::uint64_t default_warmup) {
  KvConfig cfg;
  cfg.parse_args(argc, argv);

  BenchEnv env;
  env.sim.instructions = cfg.get_uint("instructions", default_instructions);
  env.sim.warmup_instructions = cfg.get_uint("warmup", default_warmup);
  env.sim.run_seed = cfg.get_uint("seed", 42);
  env.csv = cfg.get_bool("csv", false);
  return env;
}

void banner(const std::string& experiment_id, const std::string& title,
            const BenchEnv& env) {
  std::cout << "==== " << experiment_id << ": " << title << " ====\n"
            << "(reconstructed experiment, see DESIGN.md; instructions="
            << env.sim.instructions << ", warmup="
            << env.sim.warmup_instructions << ", seed=" << env.sim.run_seed
            << ")\n\n";
}

void emit(const Table& table, const BenchEnv& env) {
  if (env.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "\n";
}

}  // namespace mapg::bench
