#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "obs/obs.h"
#include "obs/report.h"

namespace mapg::bench {

BenchEnv parse_env(int argc, char** argv, std::uint64_t default_instructions,
                   std::uint64_t default_warmup) {
  KvConfig cfg;
  const std::vector<std::string> leftovers = cfg.parse_args(argc, argv);

  BenchEnv env;
  env.sim.instructions = cfg.get_uint("instructions", default_instructions);
  env.sim.warmup_instructions = cfg.get_uint("warmup", default_warmup);
  env.sim.run_seed = cfg.get_uint("seed", 42);
  env.sim.fast_forward = cfg.get_bool("fast-forward", true);
  env.sim.checkpoint_stride =
      cfg.get_uint("checkpoint-stride", env.sim.checkpoint_stride);
  env.sim.batched = cfg.get_bool("batched", false);
  const std::string dram_power = cfg.get_or("dram-power", "off");
  if (dram_power == "timeout")
    env.sim.mem.dram.power.mode = DramPowerMode::kTimeout;
  else if (dram_power == "coordinated")
    env.sim.mem.dram.power.mode = DramPowerMode::kCoordinated;
  // Named timing standard: applied before any later per-key override a bench
  // may layer on, and paired with the standard's IDD-class energy set
  // (docs/DRAM.md).  --dram-standard=ddr3-1600 is bit-identical to the
  // default (the preset IS the default timing set).
  if (const auto standard_name = cfg.get("dram-standard")) {
    DramStandard standard;
    if (parse_dram_standard(*standard_name, standard)) {
      apply_dram_standard(env.sim.mem.dram, standard);
      env.sim.dram_energy = dram_energy_for_standard(standard);
    } else {
      std::cerr << "warning: unknown --dram-standard '" << *standard_name
                << "' (want ddr3-1600 | ddr4-2400 | lpddr4-3200 | custom)\n";
    }
  }
  if (const auto policy_name = cfg.get("page-policy")) {
    PagePolicy policy;
    if (parse_page_policy(*policy_name, policy))
      env.sim.mem.dram.page_policy = policy;
    else
      std::cerr << "warning: unknown --page-policy '" << *policy_name
                << "' (want open | closed | hybrid)\n";
  }
  env.sim.mem.dram.queue_depth = static_cast<std::uint32_t>(
      cfg.get_uint("dram.queue_depth", env.sim.mem.dram.queue_depth));
  env.csv = cfg.get_bool("csv", false);

  // --- Execution engine flags ---
  env.exec.jobs = static_cast<unsigned>(cfg.get_uint("jobs", 0));
  const char* env_cache = std::getenv("MAPG_CACHE_DIR");
  env.exec.cache_dir =
      cfg.get_or("cache-dir", env_cache != nullptr ? env_cache : "");
  env.exec.use_disk_cache = !cfg.get_bool("no-cache", false);
  for (const std::string& word : leftovers)
    if (word == "--no-cache") env.exec.use_disk_cache = false;
  env.exec.progress = cfg.get_bool("progress", false);
  env.exec.log_jsonl = cfg.get_or("runlog", "");
  env.exec.use_replay = cfg.get_bool("replay", true);

  // --- Observability flags (docs/OBSERVABILITY.md) ---
  env.metrics_out = cfg.get_or("metrics-out", "");
  env.trace_out = cfg.get_or("trace-out", "");
  if (!env.trace_out.empty())
    obs::EventTracer::instance().start(static_cast<std::size_t>(cfg.get_uint(
        "trace-buf", obs::EventTracer::kDefaultCapacity)));

  env.engine = std::make_shared<ExperimentEngine>(env.exec);
  return env;
}

void banner(const std::string& experiment_id, const std::string& title,
            const BenchEnv& env) {
  std::cout << "==== " << experiment_id << ": " << title << " ====\n"
            << "(reconstructed experiment, see DESIGN.md; instructions="
            << env.sim.instructions << ", warmup="
            << env.sim.warmup_instructions << ", seed=" << env.sim.run_seed
            << ")\n\n";
}

void emit(const Table& table, const BenchEnv& env) {
  if (env.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "\n";
}

void report_engine(const BenchEnv& env) {
  if (!env.engine) return;
  const EngineStats s = env.engine->stats();
  const CacheStatsSnapshot c = env.engine->cache().stats();
  std::fprintf(stderr,
               "[exec] %llu simulated, %llu replayed (%llu timelines, "
               "%llu full fallbacks, %llu prefix resumes), "
               "%llu cached (mem %llu / disk %llu), "
               "%llu failed, %.0f ms sim time across %u worker(s)\n",
               static_cast<unsigned long long>(s.jobs_run),
               static_cast<unsigned long long>(s.jobs_replayed),
               static_cast<unsigned long long>(s.timelines_recorded),
               static_cast<unsigned long long>(s.replay_fallbacks),
               static_cast<unsigned long long>(s.replay_prefix_resumes),
               static_cast<unsigned long long>(s.jobs_cached),
               static_cast<unsigned long long>(c.memory_hits),
               static_cast<unsigned long long>(c.disk_hits),
               static_cast<unsigned long long>(s.jobs_failed), s.busy_ms,
               env.engine->options().jobs);

  if (!env.metrics_out.empty() && obs::write_metrics_file(env.metrics_out))
    std::fprintf(stderr, "[obs] metrics -> %s\n", env.metrics_out.c_str());
  if (!env.trace_out.empty()) {
    obs::EventTracer& tracer = obs::EventTracer::instance();
    if (obs::finalize_and_write_trace(env.trace_out))
      std::fprintf(stderr,
                   "[obs] trace: %zu events (%llu dropped) -> %s\n",
                   tracer.size(),
                   static_cast<unsigned long long>(tracer.dropped()),
                   env.trace_out.c_str());
  }
}

}  // namespace mapg::bench
