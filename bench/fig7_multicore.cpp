// R-Fig.7 (extension) — Multicore scaling: per-core MAPG under shared-L2 +
// shared-DRAM contention, 1-8 cores.
//
// Expected shape: contention lengthens memory stalls (queueing) and lowers
// the DRAM row-hit rate, so the gateable fraction of time GROWS with core
// count on memory-bound mixes — MAPG's savings scale up with integration
// density, while the commit-point early wakeup keeps overhead near zero.
//
// Multicore runs can't go through the single-core result cache (their
// identity spans a whole workload mix), but they parallelize the same way:
// each (mix, cores, policy) cell executes on the engine's thread pool via
// parallel_for, and rows are emitted in fixed grid order afterwards.
#include <iostream>

#include "bench_util.h"
#include "multicore/multicore.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 500'000, 100'000);
  bench::banner("R-Fig.7", "multicore scaling of per-core MAPG", env);

  // Homogeneous memory-bound mix and a mixed bag.
  const std::vector<WorkloadProfile> mem_mix = {*find_profile("mcf-like")};
  const std::vector<WorkloadProfile> mixed = representative_profiles();

  const std::vector<std::string> mix_names = {"mcf-only", "mixed"};
  const std::vector<std::uint32_t> core_counts = {1, 2, 4, 8};
  const std::vector<std::string> policies = {"none", "mapg", "oracle"};

  struct Cell {
    std::string mix_name;
    std::uint32_t cores = 0;
    std::string policy;
  };
  std::vector<Cell> cells;
  for (const auto& mix_name : mix_names)
    for (const std::uint32_t cores : core_counts)
      for (const auto& policy : policies)
        cells.push_back({mix_name, cores, policy});

  std::vector<MulticoreResult> results(cells.size());
  env.engine->parallel_for(cells.size(), [&](std::size_t i) {
    const Cell& cell = cells[i];
    const auto& mix = cell.mix_name == "mcf-only" ? mem_mix : mixed;
    MulticoreConfig cfg;
    cfg.num_cores = cell.cores;
    cfg.instructions_per_core = env.sim.instructions;
    cfg.warmup_instructions = env.sim.warmup_instructions;
    cfg.run_seed = env.sim.run_seed;
    results[i] = MulticoreSim(cfg).run(mix, cell.policy);
  });

  Table t({"mix", "cores", "policy", "dram_read_lat", "row_hit_rate",
           "avg_MPKI", "avg_gated_time", "pkg_energy_savings",
           "runtime_overhead"});

  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].policy == "none") continue;  // the per-cell reference
    // The matching baseline is the "none" cell of the same (mix, cores)
    // group; groups are contiguous runs of `policies.size()` cells.
    const MulticoreResult& none =
        results[i - i % policies.size()];
    const MulticoreResult& r = results[i];

    double avg_mpki = 0;
    for (const auto& c : r.cores) avg_mpki += c.mpki();
    avg_mpki /= static_cast<double>(r.cores.size());

    const double savings = 1.0 - r.total_j() / none.total_j();
    const double overhead = static_cast<double>(r.makespan) /
                                static_cast<double>(none.makespan) -
                            1.0;
    t.begin_row()
        .cell(cells[i].mix_name)
        .cell(std::uint64_t{cells[i].cores})
        .cell(r.policy)
        .cell(r.dram.read_latency.mean(), 1)
        .cell(format_percent(r.dram.row_hit_rate()))
        .cell(avg_mpki, 1)
        .cell(format_percent(r.avg_gated_fraction()))
        .cell(format_percent(savings))
        .cell(format_percent(overhead, 2));
  }
  bench::emit(t, env);
  bench::report_engine(env);
  return 0;
}
