// R-Fig.7 (extension) — Multicore scaling: per-core MAPG under shared-L2 +
// shared-DRAM contention, 1-8 cores.
//
// Expected shape: contention lengthens memory stalls (queueing) and lowers
// the DRAM row-hit rate, so the gateable fraction of time GROWS with core
// count on memory-bound mixes — MAPG's savings scale up with integration
// density, while the commit-point early wakeup keeps overhead near zero.
#include <iostream>

#include "bench_util.h"
#include "multicore/multicore.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 500'000, 100'000);
  bench::banner("R-Fig.7", "multicore scaling of per-core MAPG", env);

  // Homogeneous memory-bound mix and a mixed bag.
  const std::vector<WorkloadProfile> mem_mix = {*find_profile("mcf-like")};
  const std::vector<WorkloadProfile> mixed = representative_profiles();

  Table t({"mix", "cores", "policy", "dram_read_lat", "row_hit_rate",
           "avg_MPKI", "avg_gated_time", "pkg_energy_savings",
           "runtime_overhead"});

  for (const auto* mix_name : {"mcf-only", "mixed"}) {
    const auto& mix =
        std::string(mix_name) == "mcf-only" ? mem_mix : mixed;
    for (std::uint32_t cores : {1u, 2u, 4u, 8u}) {
      MulticoreConfig cfg;
      cfg.num_cores = cores;
      cfg.instructions_per_core = env.sim.instructions;
      cfg.warmup_instructions = env.sim.warmup_instructions;
      cfg.run_seed = env.sim.run_seed;
      const MulticoreSim sim(cfg);

      const MulticoreResult none = sim.run(mix, "none");
      for (const char* spec : {"mapg", "oracle"}) {
        const MulticoreResult r = sim.run(mix, spec);

        double avg_mpki = 0;
        for (const auto& c : r.cores) avg_mpki += c.mpki();
        avg_mpki /= static_cast<double>(r.cores.size());

        const double savings = 1.0 - r.total_j() / none.total_j();
        const double overhead =
            static_cast<double>(r.makespan) /
                static_cast<double>(none.makespan) -
            1.0;
        t.begin_row()
            .cell(mix_name)
            .cell(std::uint64_t{cores})
            .cell(r.policy)
            .cell(r.dram.read_latency.mean(), 1)
            .cell(format_percent(r.dram.row_hit_rate()))
            .cell(avg_mpki, 1)
            .cell(format_percent(r.avg_gated_fraction()))
            .cell(format_percent(savings))
            .cell(format_percent(overhead, 2));
      }
    }
  }
  bench::emit(t, env);
  return 0;
}
