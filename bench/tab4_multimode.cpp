// R-Tab.4 (extension) — Multi-mode sleep: deep-only MAPG vs per-stall
// light/deep selection across memory speeds.
//
// Expected shape: with slow memory every stall clears the deep horizon and
// the two policies coincide; as memory gets faster the stall distribution
// slides into the band where only the light (intermediate) state profits,
// so multi-mode keeps harvesting savings after deep-only MAPG has fallen
// off.  Overhead stays ~0 for both (early wakeup is mode-independent).
#include <iostream>

#include "bench_util.h"
#include "power/pg_circuit.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Tab.4", "multi-mode (light/deep) sleep selection", env);

  {
    const PgCircuit pg(env.sim.pg, env.sim.tech);
    std::cout << "deep:  wake=" << pg.wakeup_latency_cycles(SleepMode::kDeep)
              << "cyc BET=" << pg.break_even_cycles(SleepMode::kDeep)
              << "cyc saves=100%\n"
              << "light: wake=" << pg.wakeup_latency_cycles(SleepMode::kLight)
              << "cyc BET=" << pg.break_even_cycles(SleepMode::kLight)
              << "cyc saves="
              << format_percent(pg.save_fraction(SleepMode::kLight), 0)
              << "\n\n";
  }

  Table t({"dram_scale", "workload", "policy", "core_energy_savings",
           "runtime_overhead", "deep_events", "light_events",
           "mean_stall_len"});

  for (double scale : {0.25, 0.5, 0.75, 1.0, 2.0}) {
    SimConfig cfg = env.sim;
    auto scaled = [&](Cycle c) {
      const auto v = static_cast<Cycle>(static_cast<double>(c) * scale);
      return v > 0 ? v : 1;
    };
    cfg.mem.dram.t_rcd = scaled(env.sim.mem.dram.t_rcd);
    cfg.mem.dram.t_rp = scaled(env.sim.mem.dram.t_rp);
    cfg.mem.dram.t_cl = scaled(env.sim.mem.dram.t_cl);
    cfg.mem.dram.t_ras = scaled(env.sim.mem.dram.t_ras);
    ExperimentRunner runner(cfg);

    for (const char* workload : {"libquantum-like", "mcf-like"}) {
      const WorkloadProfile* p = find_profile(workload);
      for (const char* spec : {"mapg", "mapg-multimode", "oracle"}) {
        const Comparison c = runner.compare_one(*p, spec);
        const SimResult& r = c.result;
        const double mean_stall =
            r.core.stalls_dram
                ? static_cast<double>(r.core.stall_cycles_dram) /
                      static_cast<double>(r.core.stalls_dram)
                : 0.0;
        t.begin_row()
            .cell(scale, 2)
            .cell(workload)
            .cell(r.policy)
            .cell(format_percent(c.core_energy_savings))
            .cell(format_percent(c.runtime_overhead, 2))
            .cell(r.gating.activity.deep_transitions)
            .cell(r.gating.activity.light_transitions)
            .cell(mean_stall, 1);
      }
    }
  }
  bench::emit(t, env);
  return 0;
}
