// R-Fig.4 — The early-wakeup mechanism: runtime overhead vs wakeup latency,
// with and without memory-controller-initiated wakeup.
//
// Expected shape: with early wakeup the overhead stays ~0 until the wakeup
// latency exceeds the controller's notice window (tCL + burst + fill return
// ~= 71 cycles at the default config), then grows with the excess.  Without
// it (reactive wake on data arrival), overhead grows linearly with wakeup
// latency from the start.  This is MAPG's key mechanism ablation.
#include <iostream>

#include "bench_util.h"
#include "power/pg_circuit.h"
#include "trace/profile.h"

using namespace mapg;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::parse_env(argc, argv, 1'000'000);
  bench::banner("R-Fig.4",
                "overhead vs wakeup latency, early vs reactive wake", env);

  const WorkloadProfile* profile = find_profile("mcf-like");
  const DramConfig& d = env.sim.mem.dram;
  std::cout << "controller notice window = tCL + tBL + fill_return = "
            << d.t_cl + d.t_bl + env.sim.mem.fill_return_latency
            << " cycles\n\n";

  // The baseline is independent of the PG circuit: compute it once.
  const SimResult base = Simulator(env.sim).run(*profile, "none");

  Table t({"wakeup_cycles", "policy", "runtime_overhead",
           "core_energy_savings", "gated_time", "penalty_per_event"});

  // The threshold rule makes plain MAPG decline all gating once
  // entry + wakeup + BET exceeds the residual estimate (~78-cycle wakeup at
  // the defaults) — savings drop to zero rather than overhead growing.  The
  // aggressive pair forces gating regardless, isolating the pure
  // wake-mechanism cost across the whole sweep.
  for (std::uint32_t stages : {1u, 4u, 8u, 12u, 16u, 20u, 24u, 30u, 36u,
                               44u, 56u}) {
    SimConfig cfg = env.sim;
    cfg.pg.wakeup_stages = stages;
    const Simulator sim(cfg);
    const PgCircuit circuit(cfg.pg, cfg.tech);

    for (const char* spec : {"mapg", "mapg-noearly", "mapg-aggressive",
                             "mapg-aggressive-noearly"}) {
      const Comparison c = score_against(base, sim.run(*profile, spec));
      const SimResult& r = c.result;
      const double penalty_per_event =
          r.gating.gated_events
              ? static_cast<double>(r.gating.penalty_cycles) /
                    static_cast<double>(r.gating.gated_events)
              : 0.0;
      t.begin_row()
          .cell(circuit.wakeup_latency_cycles())
          .cell(r.policy)
          .cell(format_percent(c.runtime_overhead, 2))
          .cell(format_percent(c.core_energy_savings))
          .cell(format_percent(r.gated_time_fraction()))
          .cell(penalty_per_event, 1);
    }
  }
  bench::emit(t, env);
  return 0;
}
