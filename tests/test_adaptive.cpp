// Unit + integration tests for the history-based adaptive MAPG variant.
#include <gtest/gtest.h>

#include "core/sim.h"
#include "exec/runner.h"
#include "pg/adaptive.h"
#include "pg/factory.h"

namespace mapg {
namespace {

PolicyContext ctx() {
  return PolicyContext{.entry_latency = 6, .wakeup_latency = 30,
                       .break_even = 47};
}

StallEvent dram_stall(Cycle start, Cycle len) {
  StallEvent ev;
  ev.start = start;
  ev.data_ready = start + len;
  ev.commit = start + len / 2;
  ev.estimate = ev.data_ready;
  ev.dram = true;
  return ev;
}

TEST(HistoryMapg, StartsOptimistic) {
  HistoryMapgPolicy p(ctx(), {});
  EXPECT_DOUBLE_EQ(p.prediction(), 200.0);
  EXPECT_TRUE(p.should_gate(dram_stall(100, 5)));  // prediction, not truth
}

TEST(HistoryMapg, LearnsShortStallsAndStopsGating) {
  HistoryMapgPolicy p(ctx(), {.ewma_weight = 0.5});
  // Feed a run of 20-cycle stalls; the prediction must converge below the
  // 83-cycle threshold and gating must stop.
  for (int i = 0; i < 20; ++i) p.observe(dram_stall(1000 * i, 20));
  EXPECT_LT(p.prediction(), 25.0);
  EXPECT_FALSE(p.should_gate(dram_stall(99999, 500)));
}

TEST(HistoryMapg, RelearnsLongStalls) {
  HistoryMapgPolicy p(ctx(), {.ewma_weight = 0.5});
  for (int i = 0; i < 20; ++i) p.observe(dram_stall(1000 * i, 20));
  ASSERT_FALSE(p.should_gate(dram_stall(0, 500)));
  for (int i = 0; i < 20; ++i) p.observe(dram_stall(50000 + 1000 * i, 300));
  EXPECT_GT(p.prediction(), 250.0);
  EXPECT_TRUE(p.should_gate(dram_stall(999999, 10)));
}

TEST(HistoryMapg, IgnoresNonDramStalls) {
  HistoryMapgPolicy p(ctx(), {.ewma_weight = 0.5});
  StallEvent l2 = dram_stall(100, 2);
  l2.dram = false;
  for (int i = 0; i < 50; ++i) p.observe(l2);
  EXPECT_DOUBLE_EQ(p.prediction(), 200.0);  // unchanged
  EXPECT_FALSE(p.should_gate(l2));          // and never gates non-DRAM
}

TEST(HistoryMapg, EwmaUpdateIsExact) {
  HistoryMapgPolicy p(ctx(), {.ewma_weight = 0.125});
  p.observe(dram_stall(0, 100));
  EXPECT_DOUBLE_EQ(p.prediction(), 200.0 + 0.125 * (100.0 - 200.0));
}

TEST(HistoryMapg, FactoryBuildsWithParameters) {
  auto p = make_policy("mapg-history", ctx());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "mapg-history");
  EXPECT_EQ(p->wake_mode(), WakeMode::kEarly);

  auto tuned = make_policy("mapg-history:ewma=0.5", ctx());
  ASSERT_NE(tuned, nullptr);
  auto* h = dynamic_cast<HistoryMapgPolicy*>(tuned.get());
  ASSERT_NE(h, nullptr);
  h->observe(dram_stall(0, 100));
  EXPECT_DOUBLE_EQ(h->prediction(), 150.0);
}

TEST(HybridMapg, RequiresBothSignalsToAgree) {
  HybridMapgPolicy p(ctx(), {.ewma_weight = 0.5});
  // Fresh policy: optimistic history (200) + long estimate -> gates.
  EXPECT_TRUE(p.should_gate(dram_stall(100, 300)));
  // History learns short stalls: its veto now blocks a long ESTIMATE.
  for (int i = 0; i < 20; ++i) p.observe(dram_stall(1000 * i, 20));
  EXPECT_FALSE(p.should_gate(dram_stall(99999, 300)));
  // Relearn long stalls; now a short estimate is the blocking veto.
  for (int i = 0; i < 20; ++i) p.observe(dram_stall(50000 + 1000 * i, 300));
  StallEvent short_est = dram_stall(999999, 300);
  short_est.commit = short_est.start + 150;  // not committed at onset...
  short_est.estimate = short_est.start + 40;  // ...and the estimate is short
  EXPECT_FALSE(p.should_gate(short_est));
  // Both long: gates.
  EXPECT_TRUE(p.should_gate(dram_stall(999999, 300)));
}

TEST(HybridMapg, FactoryAndNaming) {
  auto p = make_policy("mapg-hybrid", ctx());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "mapg-hybrid");
  EXPECT_EQ(p->wake_mode(), WakeMode::kEarly);
  bool found = false;
  for (const auto& s : ablation_policy_specs()) found |= s == "mapg-hybrid";
  EXPECT_TRUE(found);
}

TEST(HybridMapg, EndToEndFewestUnprofitableEvents) {
  // On a stationary memory-bound workload all three agree; the hybrid must
  // never gate MORE unprofitable events than either constituent.
  SimConfig cfg;
  cfg.instructions = 200'000;
  cfg.warmup_instructions = 50'000;
  cfg.pg.overhead_scale = 2.0;  // put the horizon inside the distribution
  ExperimentRunner runner(cfg);
  const WorkloadProfile* p = find_profile("libquantum-like");
  const Comparison est = runner.compare_one(*p, "mapg");
  const Comparison hist = runner.compare_one(*p, "mapg-history");
  const Comparison hyb = runner.compare_one(*p, "mapg-hybrid");
  EXPECT_LE(hyb.result.gating.unprofitable_events,
            est.result.gating.unprofitable_events);
  EXPECT_LE(hyb.result.gating.unprofitable_events,
            hist.result.gating.unprofitable_events);
  EXPECT_LT(hyb.runtime_overhead, 0.01);
}

TEST(HistoryMapg, EndToEndTracksPlainMapgOnMemoryBound) {
  SimConfig cfg;
  cfg.instructions = 300'000;
  cfg.warmup_instructions = 100'000;
  ExperimentRunner runner(cfg);
  const WorkloadProfile* p = find_profile("mcf-like");
  const Comparison plain = runner.compare_one(*p, "mapg");
  const Comparison history = runner.compare_one(*p, "mapg-history");
  // mcf's stalls are uniformly long, so history prediction stays above the
  // threshold: savings within 10% of estimate-driven MAPG.
  EXPECT_GT(history.core_energy_savings, 0.9 * plain.core_energy_savings);
  EXPECT_LT(history.runtime_overhead, 0.01);
}

TEST(HistoryMapg, EndToEndStaysQuietOnComputeBound) {
  SimConfig cfg;
  cfg.instructions = 300'000;
  cfg.warmup_instructions = 100'000;
  ExperimentRunner runner(cfg);
  const Comparison c =
      runner.compare_one(*find_profile("povray-like"), "mapg-history");
  EXPECT_GE(c.core_energy_savings, -0.01);
  EXPECT_LT(c.runtime_overhead, 0.01);
}

}  // namespace
}  // namespace mapg
