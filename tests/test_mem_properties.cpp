// Parameterized property tests over cache geometries and DRAM
// configurations: structural invariants that must hold for every shape.
#include <gtest/gtest.h>

#include <tuple>

#include "common/prng.h"
#include "mem/cache.h"
#include "mem/dram.h"

namespace mapg {
namespace {

// ---------------------------------------------------------------------------
// Cache geometry sweep.
// ---------------------------------------------------------------------------
class CacheGeometry
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t /*size*/, std::uint32_t /*assoc*/,
                     ReplPolicy>> {};

TEST_P(CacheGeometry, ResidentWorkingSetAlwaysHitsAfterWarmup) {
  const auto& [size, assoc, repl] = GetParam();
  Cache c(CacheConfig{.name = "t",
                      .size_bytes = size,
                      .assoc = assoc,
                      .line_bytes = 64,
                      .hit_latency = 1,
                      .repl = repl});
  // A working set of half the capacity, touched repeatedly: after warmup,
  // every policy must keep it resident (it fits with room to spare).
  const std::uint64_t lines = size / 64 / 2;
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64, false);
  c.reset_stats();
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64, false);
  EXPECT_EQ(c.stats().misses(), 0u);
}

TEST_P(CacheGeometry, EvictionAccountingInvariants) {
  const auto& [size, assoc, repl] = GetParam();
  Cache c(CacheConfig{.name = "t",
                      .size_bytes = size,
                      .assoc = assoc,
                      .line_bytes = 64,
                      .hit_latency = 1,
                      .repl = repl});
  Prng prng(assoc * 1000 + static_cast<int>(repl));
  const std::uint64_t capacity_lines = size / 64;
  for (int i = 0; i < 20000; ++i) {
    const Addr a = prng.below(capacity_lines * 8) * 64;
    c.access(a, prng.bernoulli(0.3));
  }
  const CacheStats& s = c.stats();
  // Every eviction replaced a previously-missed line.
  EXPECT_LE(s.evictions, s.misses());
  // Evictions account for all misses beyond the capacity.
  EXPECT_GE(s.evictions + capacity_lines, s.misses());
  // Writebacks only from dirty (written) lines.
  EXPECT_LE(s.writebacks, s.evictions);
}

TEST_P(CacheGeometry, ContainsAgreesWithHits) {
  const auto& [size, assoc, repl] = GetParam();
  Cache c(CacheConfig{.name = "t",
                      .size_bytes = size,
                      .assoc = assoc,
                      .line_bytes = 64,
                      .hit_latency = 1,
                      .repl = repl});
  Prng prng(7);
  for (int i = 0; i < 5000; ++i) {
    const Addr a = prng.below(size / 8) * 64;  // 8x capacity
    const bool resident = c.contains(a);
    const bool hit = c.access(a, false).hit;
    EXPECT_EQ(resident, hit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(4096u, 32768u, 262144u),
                       ::testing::Values(1u, 2u, 8u, 16u),
                       ::testing::Values(ReplPolicy::kLru,
                                         ReplPolicy::kTreePlru,
                                         ReplPolicy::kRandom)),
    [](const auto& info) {
      const auto repl = std::get<2>(info.param);
      const char* r = repl == ReplPolicy::kLru
                          ? "lru"
                          : (repl == ReplPolicy::kTreePlru ? "plru" : "rand");
      return std::to_string(std::get<0>(info.param) / 1024) + "k_w" +
             std::to_string(std::get<1>(info.param)) + "_" + r;
    });

// ---------------------------------------------------------------------------
// DRAM configuration sweep.
// ---------------------------------------------------------------------------
class DramShape : public ::testing::TestWithParam<
                      std::tuple<std::uint32_t /*channels*/,
                                 std::uint32_t /*banks*/>> {};

TEST_P(DramShape, LatencyBoundsAndInformationContract) {
  const auto& [channels, banks] = GetParam();
  DramConfig cfg;
  cfg.channels = channels;
  cfg.banks_per_channel = banks;
  ASSERT_TRUE(cfg.valid());
  Dram d(cfg);
  Prng prng(channels * 100 + banks);
  Cycle t = 1000;
  for (int i = 0; i < 5000; ++i) {
    const Addr line = prng.below(1 << 22) * cfg.line_bytes;
    const DramResult r = d.access(line, prng.bernoulli(0.3), t);
    // Lower bound: nothing completes faster than CAS + burst.
    EXPECT_GE(r.completion, t + cfg.t_cl + cfg.t_bl);
    // The contract MAPG builds on: data returns exactly tCL+tBL after the
    // column command commits, never earlier or later.
    EXPECT_EQ(r.completion, r.commit + cfg.t_cl + cfg.t_bl);
    EXPECT_GE(r.commit, t);
    EXPECT_EQ(r.estimate, t + cfg.estimate_latency());
    t += prng.below(40);
  }
  // The whole run is classified: every access got a row-buffer outcome.
  const DramStats& s = d.stats();
  EXPECT_EQ(s.row_hits + s.row_closed + s.row_conflicts,
            s.reads + s.writes);
}

TEST_P(DramShape, SequentialStreamMostlyRowHits) {
  const auto& [channels, banks] = GetParam();
  DramConfig cfg;
  cfg.channels = channels;
  cfg.banks_per_channel = banks;
  Dram d(cfg);
  Cycle t = 1000;
  for (int i = 0; i < 2000; ++i) {
    d.access(static_cast<Addr>(i) * cfg.line_bytes, false, t);
    t += 60;
  }
  EXPECT_GT(d.stats().row_hit_rate(), 0.9);
}

TEST_P(DramShape, MoreBanksReduceConflicts) {
  const auto& [channels, banks] = GetParam();
  if (banks < 4) GTEST_SKIP() << "comparison needs a smaller sibling";
  DramConfig big;
  big.channels = channels;
  big.banks_per_channel = banks;
  DramConfig small = big;
  small.banks_per_channel = banks / 4;

  auto conflicts = [](const DramConfig& cfg) {
    Dram d(cfg);
    Prng prng(99);
    Cycle t = 1000;
    for (int i = 0; i < 10000; ++i) {
      d.access(prng.below(1 << 20) * cfg.line_bytes, false, t);
      t += 30;
    }
    return d.stats().row_conflicts;
  };
  EXPECT_LT(conflicts(big), conflicts(small));
}

INSTANTIATE_TEST_SUITE_P(Shapes, DramShape,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u),
                                            ::testing::Values(4u, 8u, 16u)),
                         [](const auto& info) {
                           return "ch" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_b" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace mapg
