// Unit tests for src/exec: canonical JSON, exact SimResult serialization,
// the content-addressed result cache, the work-stealing pool, and the
// determinism contract of ExperimentEngine (parallel == serial, bit for
// bit; per-job failures never tear down a sweep).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/sim.h"
#include "exec/engine.h"
#include "exec/json.h"
#include "exec/result_cache.h"
#include "exec/runner.h"
#include "exec/serialize.h"
#include "exec/thread_pool.h"
#include "trace/profile.h"

namespace mapg {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.instructions = 20'000;
  cfg.warmup_instructions = 5'000;
  return cfg;
}

SimResult run_tiny(const std::string& workload = "mcf-like",
                   const std::string& spec = "mapg") {
  return Simulator(tiny_config()).run(*find_profile(workload), spec);
}

// --- Json ---

TEST(Json, CanonicalDumpSortsKeysAndPreservesNumberTokens) {
  Json obj = Json::object();
  obj["zeta"] = Json::number(std::uint64_t{18446744073709551615ULL});
  obj["alpha"] = Json::number(0.1);
  obj["mid"] = Json::array();
  obj["mid"].push(Json::string("a\"b\n"));
  const std::string text = obj.dump();
  // Keys come out sorted regardless of insertion order.
  EXPECT_LT(text.find("\"alpha\""), text.find("\"mid\""));
  EXPECT_LT(text.find("\"mid\""), text.find("\"zeta\""));
  // Max u64 survives (would be destroyed by a double round-trip).
  EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
}

TEST(Json, ParseRoundTripsCanonicalForm) {
  const std::string text =
      "{\"a\":[1,2.5,-3],\"b\":{\"x\":true,\"y\":null},\"s\":\"q\\\"\\n\"}";
  std::string err;
  const std::optional<Json> parsed = Json::parse(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const Json& j = *parsed;
  EXPECT_EQ(j.dump(), text);
  EXPECT_EQ(j.get("a").at(0).as_u64(), 1u);
  EXPECT_DOUBLE_EQ(j.get("a").at(1).as_double(), 2.5);
  EXPECT_EQ(j.get("a").at(2).as_i64(), -3);
  EXPECT_TRUE(j.get("b").get("x").as_bool());
  EXPECT_EQ(j.get("s").as_string(), "q\"\n");
}

TEST(Json, ParseRejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\":1} trailing"}) {
    std::string err;
    EXPECT_FALSE(Json::parse(bad, &err).has_value()) << "accepted: " << bad;
  }
}

// --- Serialization ---

TEST(Serialize, ResultRoundTripIsBitExact) {
  const SimResult r = run_tiny();
  const SimResult back = result_from_json(result_to_json(r));
  EXPECT_TRUE(results_equal(r, back));
  // Spot-check a few fields the dump comparison already covers, for a
  // readable failure if the canonical form ever drifts.
  EXPECT_EQ(back.core.cycles, r.core.cycles);
  EXPECT_EQ(back.gating.gated_events, r.gating.gated_events);
  EXPECT_DOUBLE_EQ(back.energy.dynamic_j, r.energy.dynamic_j);
  EXPECT_EQ(back.core.dram_stall_hist.total(),
            r.core.dram_stall_hist.total());
}

TEST(Serialize, RoundTripSurvivesTextReparse) {
  const SimResult r = run_tiny("libquantum-like", "oracle");
  std::string err;
  const std::optional<Json> parsed =
      Json::parse(result_to_json(r).dump(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(results_equal(r, result_from_json(*parsed)));
}

TEST(Serialize, CacheKeyIsStableAndWellFormed) {
  const SimConfig cfg = tiny_config();
  const WorkloadProfile& p = *find_profile("mcf-like");
  const std::string key = cache_key(cfg, p, "mapg");
  EXPECT_EQ(key.size(), 32u);
  EXPECT_EQ(key.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(cache_key(cfg, p, "mapg"), key);  // deterministic
}

TEST(Serialize, CacheKeySensitiveToEveryIdentityComponent) {
  const SimConfig cfg = tiny_config();
  const WorkloadProfile& p = *find_profile("mcf-like");
  const std::string base = cache_key(cfg, p, "mapg");

  // Config change.
  SimConfig cfg2 = cfg;
  cfg2.core.mlp_window += 1;
  EXPECT_NE(cache_key(cfg2, p, "mapg"), base);
  SimConfig cfg3 = cfg;
  cfg3.pg.overhead_scale *= 2.0;
  EXPECT_NE(cache_key(cfg3, p, "mapg"), base);

  // Profile change (behavioural field and a different builtin).
  WorkloadProfile p2 = p;
  p2.p_pointer_chase += 0.01;
  EXPECT_NE(cache_key(cfg, p2, "mapg"), base);
  EXPECT_NE(cache_key(cfg, *find_profile("lbm-like"), "mapg"), base);

  // Policy change.
  EXPECT_NE(cache_key(cfg, p, "mapg:alpha=0.5"), base);
  EXPECT_NE(cache_key(cfg, p, "none"), base);

  // Seed change.
  SimConfig cfg4 = cfg;
  cfg4.run_seed += 1;
  EXPECT_NE(cache_key(cfg4, p, "mapg"), base);
}

TEST(Serialize, CacheKeyIgnoresCosmeticDescription) {
  const SimConfig cfg = tiny_config();
  WorkloadProfile p = *find_profile("mcf-like");
  const std::string base = cache_key(cfg, p, "mapg");
  p.description = "reworded";
  EXPECT_EQ(cache_key(cfg, p, "mapg"), base);
}

// --- ResultCache ---

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("mapg_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(ResultCache, MemoryRoundTripReturnsEqualResult) {
  ResultCache cache;  // memory-only
  const SimResult r = run_tiny();
  cache.store("k1", r);
  const auto hit = cache.get("k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(results_equal(*hit, r));
  EXPECT_EQ(cache.get("absent"), nullptr);
  const CacheStatsSnapshot s = cache.stats();
  EXPECT_EQ(s.memory_hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stores, 1u);
}

TEST(ResultCache, DiskRoundTripReturnsEqualResult) {
  TempDir dir("cache_rt");
  const SimResult r = run_tiny("lbm-like", "idle-timeout:64");
  {
    ResultCache cache(dir.str());
    cache.store("deadbeef", r);
    EXPECT_TRUE(std::filesystem::exists(dir.path() / "deadbeef.json"));
  }
  // A fresh cache object (fresh process, morally) must reload it from disk.
  ResultCache cache(dir.str());
  const auto hit = cache.get("deadbeef");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(results_equal(*hit, r));
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  // The disk hit was promoted into memory.
  cache.get("deadbeef");
  EXPECT_EQ(cache.stats().memory_hits, 1u);
}

TEST(ResultCache, CorruptDiskEntryIsAMissNotACrash) {
  TempDir dir("cache_corrupt");
  ResultCache cache(dir.str());
  cache.store("good", run_tiny());
  std::filesystem::create_directories(dir.path());
  std::ofstream(dir.path() / "bad.json") << "{not json";
  cache.clear_memory();
  EXPECT_EQ(cache.get("bad"), nullptr);
  EXPECT_GE(cache.stats().disk_errors, 1u);
  ASSERT_NE(cache.get("good"), nullptr);  // disk tier still healthy
}

// --- ThreadPool ---

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SurvivesThrowingTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&count, i] {
      if (i % 2 == 0) throw std::runtime_error("boom");
      ++count;
    });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 25);
}

// --- ExperimentEngine ---

SweepSpec test_sweep(unsigned n_seeds = 4) {
  SweepSpec spec;
  spec.base = tiny_config();
  spec.workloads = {*find_profile("mcf-like"), *find_profile("lbm-like"),
                    *find_profile("gamess-like")};
  spec.policy_specs = {"none", "mapg", "idle-timeout:64"};
  spec.n_seeds = n_seeds;
  return spec;
}

TEST(ExperimentEngine, ExpansionOrderAndShape) {
  const SweepSpec spec = test_sweep(2);
  const auto jobs = ExperimentEngine::expand(spec);
  ASSERT_EQ(jobs.size(), 3u * 3u * 2u);
  // Seed is innermost, then policy, then workload.
  EXPECT_EQ(jobs[0].profile.name, "mcf-like");
  EXPECT_EQ(jobs[0].policy_spec, "none");
  EXPECT_EQ(jobs[0].config.run_seed, spec.base.run_seed);
  EXPECT_EQ(jobs[1].config.run_seed, spec.base.run_seed + 1);
  EXPECT_EQ(jobs[2].policy_spec, "mapg");
  EXPECT_EQ(jobs[6].profile.name, "lbm-like");
}

TEST(ExperimentEngine, ParallelSweepBitIdenticalToSerial) {
  const SweepSpec spec = test_sweep(4);  // 3 workloads x 3 policies x 4 seeds

  ExecOptions serial_opts;
  serial_opts.jobs = 1;
  ExperimentEngine serial(serial_opts);
  const SweepResult a = serial.run_sweep(spec);

  ExecOptions parallel_opts;
  parallel_opts.jobs = 8;
  ExperimentEngine parallel(parallel_opts);
  const SweepResult b = parallel.run_sweep(spec);

  ASSERT_EQ(a.outcomes.size(), 36u);
  ASSERT_EQ(b.outcomes.size(), a.outcomes.size());
  EXPECT_EQ(a.baseline_policy, 0u);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_TRUE(a.outcomes[i].ok) << "serial job " << i << ": "
                                  << a.outcomes[i].error;
    ASSERT_TRUE(b.outcomes[i].ok) << "parallel job " << i << ": "
                                  << b.outcomes[i].error;
    EXPECT_TRUE(results_equal(*a.outcomes[i].result, *b.outcomes[i].result))
        << "job " << i << " diverged between --jobs=1 and --jobs=8";
  }
}

TEST(ExperimentEngine, MemoizesRepeatedCellsWithinProcess) {
  ExperimentEngine engine;
  const ExperimentJob job{tiny_config(), *find_profile("mcf-like"), "mapg"};
  const JobOutcome first = engine.run_one(job);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.from_cache);
  const JobOutcome again = engine.run_one(job);
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(again.result.get(), first.result.get());  // shared, not copied
  EXPECT_EQ(engine.stats().jobs_run, 1u);
  EXPECT_EQ(engine.stats().jobs_cached, 1u);
}

TEST(ExperimentEngine, WarmDiskCacheRunsZeroSimulations) {
  TempDir dir("engine_warm");
  const SweepSpec spec = test_sweep(1);

  ExecOptions opts;
  opts.jobs = 4;
  opts.cache_dir = dir.str();
  {
    ExperimentEngine cold(opts);
    cold.run_sweep(spec);
    // With replay on (the default), part of the policy axis reconstitutes
    // from each group's recorded timeline instead of simulating; every cell
    // is still produced exactly once.
    EXPECT_EQ(cold.stats().jobs_run + cold.stats().jobs_replayed, 9u);
    EXPECT_GT(cold.stats().jobs_replayed, 0u);
    EXPECT_EQ(cold.stats().timelines_recorded, 3u);  // one per workload group
  }
  // Fresh engine, same directory: everything must come off disk.
  ExperimentEngine warm(opts);
  const SweepResult r = warm.run_sweep(spec);
  EXPECT_EQ(warm.stats().jobs_run, 0u);
  EXPECT_EQ(warm.stats().jobs_replayed, 0u);
  EXPECT_EQ(warm.stats().jobs_cached, 9u);
  for (const auto& o : r.outcomes) {
    EXPECT_TRUE(o.ok);
    EXPECT_TRUE(o.from_cache);
  }
}

TEST(ExperimentEngine, NoCacheOptionSkipsDiskTier) {
  TempDir dir("engine_nocache");
  ExecOptions opts;
  opts.cache_dir = dir.str();
  opts.use_disk_cache = false;
  ExperimentEngine engine(opts);
  engine.run_one({tiny_config(), *find_profile("mcf-like"), "mapg"});
  EXPECT_FALSE(std::filesystem::exists(dir.path()));
}

TEST(ExperimentEngine, ThrowingJobReportedWithoutTearingDownSweep) {
  SweepSpec spec = test_sweep(1);
  spec.policy_specs = {"none", "mapg", "definitely-not-a-policy"};

  ExecOptions opts;
  opts.jobs = 4;
  ExperimentEngine engine(opts);
  const SweepResult r = engine.run_sweep(spec);

  ASSERT_EQ(r.outcomes.size(), 9u);
  for (std::size_t wi = 0; wi < 3; ++wi) {
    EXPECT_TRUE(r.at(0, wi, 0).ok);   // none
    EXPECT_TRUE(r.at(0, wi, 1).ok);   // mapg
    const JobOutcome& bad = r.at(0, wi, 2);
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.result, nullptr);
    EXPECT_FALSE(bad.error.empty());
  }
  EXPECT_EQ(engine.stats().jobs_failed, 3u);
  // result() surfaces the stored error as an exception on demand.
  EXPECT_THROW(r.result(0, 0, 2), std::runtime_error);
  EXPECT_NO_THROW(r.baseline(0, 0));
}

TEST(ExperimentEngine, ParallelForCoversRangeOnce) {
  ExecOptions opts;
  opts.jobs = 4;
  ExperimentEngine engine(opts);
  std::vector<int> hits(1000, 0);
  engine.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i], 1) << "index " << i;
}

// --- ExperimentRunner on the engine ---

TEST(ExperimentRunner, SharesBaselinesThroughEngineCache) {
  auto engine = std::make_shared<ExperimentEngine>();
  ExperimentRunner runner(tiny_config(), engine);
  const WorkloadProfile& p = *find_profile("mcf-like");
  runner.compare_one(p, "mapg");
  const std::uint64_t runs_after_first = engine->stats().jobs_run;
  runner.compare_one(p, "idle-timeout:64");
  // Second comparison reuses the memoized "none" baseline: exactly one new
  // simulation, not two.
  EXPECT_EQ(engine->stats().jobs_run, runs_after_first + 1);
}

TEST(ExperimentRunner, ReplicateMatchesDirectSeedRuns) {
  auto engine = std::make_shared<ExperimentEngine>();
  SimConfig cfg = tiny_config();
  ExperimentRunner runner(cfg, engine);
  const WorkloadProfile& p = *find_profile("lbm-like");
  const ReplicatedComparison rep = runner.replicate(p, "mapg", 3);
  EXPECT_EQ(rep.replicates(), 3u);

  // Recompute one replicate by hand and check it is inside the observed
  // min/max (it is literally one of the three samples).
  SimConfig c1 = cfg;
  c1.run_seed += 1;
  const Simulator sim(c1);
  const SimResult base = sim.run(p, "none");
  const SimResult gated = sim.run(p, "mapg");
  const double savings =
      1.0 - gated.energy.core_domain_j() / base.energy.core_domain_j();
  EXPECT_LE(rep.core_energy_savings.min(), savings + 1e-12);
  EXPECT_GE(rep.core_energy_savings.max(), savings - 1e-12);
}

}  // namespace
}  // namespace mapg
