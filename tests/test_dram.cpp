// Unit tests for the DRAM timing model: address mapping, row-buffer
// outcomes, exact latency composition, bus contention, refresh, and the
// estimate/commit/completion information contract MAPG depends on.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "mem/dram.h"

namespace mapg {
namespace {

DramConfig test_config() {
  DramConfig c;
  c.channels = 2;
  c.banks_per_channel = 8;
  c.line_bytes = 64;
  c.row_bytes = 8192;
  c.t_rcd = 41;
  c.t_rp = 41;
  c.t_cl = 41;
  c.t_bl = 15;
  c.t_ras = 105;
  c.t_rfc = 480;
  c.t_refi = 23400;
  return c;
}

/// Build a line address hitting (channel, bank, row, col) under the mapping.
Addr make_line(const DramConfig& c, std::uint32_t channel, std::uint32_t bank,
               std::uint64_t row, std::uint64_t col = 0) {
  const std::uint64_t lpr = c.lines_per_row();
  std::uint64_t line_no = row;
  line_no = line_no * c.banks_per_channel + bank;
  line_no = line_no * lpr + col;
  line_no = line_no * c.channels + channel;
  return line_no * c.line_bytes;
}

TEST(DramConfig, Validity) {
  EXPECT_TRUE(test_config().valid());
  DramConfig c = test_config();
  c.channels = 0;
  EXPECT_FALSE(c.valid());
  c = test_config();
  c.row_bytes = 32;  // smaller than line
  EXPECT_FALSE(c.valid());
  c = test_config();
  c.t_rfc = c.t_refi;  // refresh never ends
  EXPECT_FALSE(c.valid());
}

TEST(Dram, AddressMappingRoundTrip) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  for (std::uint32_t ch = 0; ch < cfg.channels; ++ch)
    for (std::uint32_t b = 0; b < cfg.banks_per_channel; b += 3)
      for (std::uint64_t row : {0ULL, 7ULL, 123ULL}) {
        std::uint32_t ch2, b2;
        std::uint64_t row2;
        d.map_address(make_line(cfg, ch, b, row, 5), ch2, b2, row2);
        EXPECT_EQ(ch2, ch);
        EXPECT_EQ(b2, b);
        EXPECT_EQ(row2, row);
      }
}

TEST(Dram, SequentialLinesShareRowsAcrossChannels) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  // Consecutive line addresses alternate channels; within a channel they
  // stay in the same row until lines_per_row lines have passed.
  std::uint32_t ch0, b0, ch1, b1;
  std::uint64_t r0, r1;
  d.map_address(0, ch0, b0, r0);
  d.map_address(64, ch1, b1, r1);
  EXPECT_NE(ch0, ch1);
  d.map_address(128, ch1, b1, r1);  // same channel as line 0
  EXPECT_EQ(ch1, ch0);
  EXPECT_EQ(b1, b0);
  EXPECT_EQ(r1, r0);
}

TEST(Dram, ClosedRowLatencyIsExact) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  const Cycle t0 = 1000;  // away from the t=0 refresh window
  const DramResult r = d.access(make_line(cfg, 0, 0, 0), false, t0);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kClosed);
  // ACT at t0, column at t0+tRCD, data [t0+tRCD+tCL, +tBL).
  EXPECT_EQ(r.commit, t0 + cfg.t_rcd);
  EXPECT_EQ(r.completion, t0 + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
  EXPECT_EQ(r.estimate, t0 + cfg.estimate_latency());
}

TEST(Dram, RowHitLatencyIsExact) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  const Cycle t0 = 1000;
  d.access(make_line(cfg, 0, 0, 0, 0), false, t0);
  const Cycle t1 = t0 + 500;
  const DramResult r = d.access(make_line(cfg, 0, 0, 0, 3), false, t1);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kHit);
  EXPECT_EQ(r.commit, t1);
  EXPECT_EQ(r.completion, t1 + cfg.t_cl + cfg.t_bl);
}

TEST(Dram, RowConflictPaysPrechargeAndRespectsTras) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  const Cycle t0 = 1000;
  d.access(make_line(cfg, 0, 0, 0), false, t0);  // opens row 0 (ACT at t0)
  // Immediately request a different row in the same bank: precharge cannot
  // start before ACT+tRAS.
  const Cycle t1 = t0 + cfg.t_rcd + cfg.t_bl;  // bank ready, but tRAS not met
  const DramResult r = d.access(make_line(cfg, 0, 0, 9), false, t1);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kConflict);
  const Cycle pre = t0 + cfg.t_ras;  // earliest precharge
  EXPECT_EQ(r.completion, pre + cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
}

TEST(Dram, ConflictAfterTrasElapsedStartsImmediately) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  const Cycle t0 = 1000;
  d.access(make_line(cfg, 0, 0, 0), false, t0);
  const Cycle t1 = t0 + 2000;  // long after tRAS
  const DramResult r = d.access(make_line(cfg, 0, 0, 9), false, t1);
  EXPECT_EQ(r.completion, t1 + cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
}

TEST(Dram, BusContentionSerializesBursts) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  const Cycle t0 = 1000;
  // Two simultaneous closed-row requests to different banks, same channel:
  // their data bursts must not overlap on the shared data bus.
  const DramResult a = d.access(make_line(cfg, 0, 0, 0), false, t0);
  const DramResult b = d.access(make_line(cfg, 0, 1, 0), false, t0);
  EXPECT_GE(b.completion, a.completion + cfg.t_bl);
}

TEST(Dram, DifferentChannelsDoNotContend) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  const Cycle t0 = 1000;
  const DramResult a = d.access(make_line(cfg, 0, 0, 0), false, t0);
  const DramResult b = d.access(make_line(cfg, 1, 0, 0), false, t0);
  EXPECT_EQ(a.completion, b.completion);  // identical independent timing
}

TEST(Dram, CommitNeverAfterCompletionMinusBurst) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  Cycle t = 1000;
  for (int i = 0; i < 200; ++i) {
    const Addr line = make_line(cfg, i % 2, (i / 2) % 8, i % 5, i % 3);
    const DramResult r = d.access(line, false, t);
    // The information contract: commit + tCL + tBL == completion, i.e. the
    // return is exactly known tCL+tBL cycles ahead.
    EXPECT_EQ(r.completion, r.commit + cfg.t_cl + cfg.t_bl);
    EXPECT_GE(r.commit, t);
    t += 7;
  }
}

TEST(Dram, RefreshWindowDelaysRequests) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  // A request arriving inside the first refresh window [0, tRFC) must be
  // pushed to the window end.
  const DramResult r = d.access(make_line(cfg, 0, 0, 0), false, 100);
  EXPECT_EQ(r.completion,
            cfg.t_rfc + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
  EXPECT_EQ(d.stats().refresh_delays, 1u);
}

TEST(Dram, RefreshDisabledWithZeroRefi) {
  DramConfig cfg = test_config();
  cfg.t_refi = 0;
  Dram d(cfg);
  const DramResult r = d.access(make_line(cfg, 0, 0, 0), false, 100);
  EXPECT_EQ(r.completion, 100 + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
}

TEST(Dram, StatsClassifyOutcomes) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  Cycle t = 1000;
  d.access(make_line(cfg, 0, 0, 0), false, t);      // closed
  t += 600;
  d.access(make_line(cfg, 0, 0, 0, 1), false, t);   // hit
  t += 600;
  d.access(make_line(cfg, 0, 0, 5), false, t);      // conflict
  t += 600;
  d.access(make_line(cfg, 0, 0, 5, 2), true, t);    // write, hit
  EXPECT_EQ(d.stats().reads, 3u);
  EXPECT_EQ(d.stats().writes, 1u);
  EXPECT_EQ(d.stats().row_closed, 1u);
  EXPECT_EQ(d.stats().row_hits, 2u);
  EXPECT_EQ(d.stats().row_conflicts, 1u);
  EXPECT_NEAR(d.stats().row_hit_rate(), 0.5, 1e-12);
  EXPECT_EQ(d.stats().read_latency.count(), 3u);
}

TEST(Dram, SelfRefreshExitHonorsPendingRefreshWindow) {
  // Regression pin: the refresh check runs at the power-exit-shifted start,
  // not the raw arrival cycle.  A request that wakes a self-refreshing
  // channel such that the tXS exit lands inside a refresh window must pay
  // the remainder of that window on top of tXS (the device still owes its
  // deferred auto-refresh); the old "refresh checked at request start only"
  // semantics silently skipped it.
  DramConfig cfg = test_config();
  cfg.power.mode = DramPowerMode::kTimeout;
  cfg.power.powerdown_timeout = 0;
  cfg.power.selfrefresh_timeout = 1000;
  ASSERT_TRUE(cfg.valid());
  Dram d(cfg);

  // Idle since 0: self-refresh established at 1000 + tPD.  Arrive 100
  // cycles before the second refresh window so now + tXS = 23710 lands
  // inside [23400, 23880).
  const Cycle now = cfg.t_refi - 200;
  ASSERT_LT(now + cfg.power.t_xs, cfg.t_refi + cfg.t_rfc);
  ASSERT_GE(now + cfg.power.t_xs, cfg.t_refi);
  const DramResult r = d.access(make_line(cfg, 0, 0, 0), false, now);
  EXPECT_EQ(r.completion,
            cfg.t_refi + cfg.t_rfc + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
  EXPECT_EQ(d.stats().refresh_delays, 1u);
  EXPECT_EQ(d.stats().selfrefresh_entries, 1u);
  EXPECT_EQ(d.stats().lowpower_exit_delay, cfg.power.t_xs);
}

TEST(Dram, WriteOccupiesBankForLaterReads) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  const Cycle t0 = 1000;
  d.access(make_line(cfg, 0, 0, 0), true, t0);  // write opens row 0
  // Immediate read of another row in the same bank sees the busy bank.
  const DramResult r = d.access(make_line(cfg, 0, 0, 3), false, t0 + 1);
  EXPECT_GT(r.completion,
            t0 + 1 + cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
}

TEST(Dram, MonotonicCompletionUnderLoad) {
  const DramConfig cfg = test_config();
  Dram d(cfg);
  Cycle t = 1000;
  Cycle prev_completion = 0;
  Prng prng(5);
  for (int i = 0; i < 2000; ++i) {
    const Addr line = prng.below(1ULL << 24) * cfg.line_bytes;
    const DramResult r = d.access(line, false, t);
    EXPECT_GE(r.completion, t + cfg.t_cl + cfg.t_bl);
    EXPECT_GE(r.commit, t);
    (void)prev_completion;
    prev_completion = r.completion;
    t += prng.below(50);
  }
}

}  // namespace
}  // namespace mapg
