// Unit tests for MemoryHierarchy: latency composition per level, writeback
// routing, MSHR merging, and the estimate/commit information contract.
#include <gtest/gtest.h>

#include "mem/hierarchy.h"

namespace mapg {
namespace {

HierarchyConfig small_hierarchy() {
  HierarchyConfig h;
  h.l1d = CacheConfig{.name = "L1D",
                      .size_bytes = 1024,
                      .assoc = 2,
                      .line_bytes = 64,
                      .hit_latency = 3};
  h.l2 = CacheConfig{.name = "L2",
                     .size_bytes = 8192,
                     .assoc = 4,
                     .line_bytes = 64,
                     .hit_latency = 12};
  h.mc_request_latency = 10;
  h.fill_return_latency = 15;
  return h;
}

TEST(HierarchyConfig, ValidityRequiresMatchingLines) {
  HierarchyConfig h = small_hierarchy();
  EXPECT_TRUE(h.valid());
  h.l1d.line_bytes = 32;
  h.l1d.size_bytes = 1024;
  EXPECT_FALSE(h.valid());
}

TEST(Hierarchy, L1HitLatency) {
  MemoryHierarchy m(small_hierarchy());
  m.load(0, 1000);  // cold fill
  const MemAccessResult r = m.load(0, 2000);
  EXPECT_EQ(r.served_by, ServedBy::kL1);
  EXPECT_EQ(r.complete, 2000u + 3u);
  EXPECT_EQ(r.commit, 2000u);     // known immediately
  EXPECT_EQ(r.estimate, r.complete);
  EXPECT_FALSE(r.merged);
}

TEST(Hierarchy, L2HitLatencyAfterL1Eviction) {
  MemoryHierarchy m(small_hierarchy());
  // L1: 8 sets x 2 ways.  Fill three lines mapping to L1 set 0; the first
  // gets evicted from L1 but all stay in L2 (32 sets x 4 ways).
  const Addr a = 0, b = 8 * 64, c = 16 * 64;
  m.load(a, 1000);
  m.load(b, 2000);
  m.load(c, 3000);
  const MemAccessResult r = m.load(a, 4000);
  EXPECT_EQ(r.served_by, ServedBy::kL2);
  EXPECT_EQ(r.complete, 4000u + 3u + 12u);
  EXPECT_EQ(r.commit, 4000u);
}

TEST(Hierarchy, DramMissLatencyComposition) {
  const HierarchyConfig cfg = small_hierarchy();
  MemoryHierarchy m(cfg);
  const Cycle t0 = 1000;
  const MemAccessResult r = m.load(0, t0);
  EXPECT_EQ(r.served_by, ServedBy::kDram);
  // Request path: L1 probe (3) + L2 probe (12) + interconnect (10), then a
  // closed-row DRAM access, then the fill return (15).
  const Cycle t_req = t0 + 3 + 12 + 10;
  const DramConfig& d = cfg.dram;
  EXPECT_EQ(r.complete, t_req + d.t_rcd + d.t_cl + d.t_bl + 15);
  EXPECT_EQ(r.estimate, t_req + d.estimate_latency() + 15);
  EXPECT_EQ(r.commit, t_req + d.t_rcd);
}

TEST(Hierarchy, MshrMergesInFlightLine) {
  MemoryHierarchy m(small_hierarchy());
  const MemAccessResult first = m.load(0, 1000);
  ASSERT_EQ(first.served_by, ServedBy::kDram);
  // Second access to the same line before the fill returns: merged, same
  // completion, no new DRAM traffic.
  const MemAccessResult second = m.load(8, 1002);
  EXPECT_TRUE(second.merged);
  EXPECT_EQ(second.complete, first.complete);
  EXPECT_EQ(m.dram_stats().reads, 1u);
  EXPECT_EQ(m.stats().merged, 1u);
}

TEST(Hierarchy, MergeExpiresAfterFillReturns) {
  MemoryHierarchy m(small_hierarchy());
  const MemAccessResult first = m.load(0, 1000);
  const MemAccessResult later = m.load(0, first.complete + 1);
  EXPECT_FALSE(later.merged);
  EXPECT_EQ(later.served_by, ServedBy::kL1);  // line was filled
}

TEST(Hierarchy, StoreMissAllocatesAndMergesWithLoads) {
  MemoryHierarchy m(small_hierarchy());
  const MemAccessResult st = m.store(0, 1000);
  EXPECT_EQ(st.served_by, ServedBy::kDram);
  const MemAccessResult ld = m.load(0, 1001);
  EXPECT_TRUE(ld.merged);
  EXPECT_EQ(ld.complete, st.complete);
}

TEST(Hierarchy, DirtyL1VictimWritesBackIntoL2) {
  MemoryHierarchy m(small_hierarchy());
  const Addr a = 0;
  m.store(a, 1000);  // dirty in L1
  // Evict `a` from L1 by loading two more lines into L1 set 0.
  m.load(8 * 64, 20000);
  m.load(16 * 64, 40000);
  // `a` must still be in L2 (served as an L2 hit, not DRAM).
  const MemAccessResult r = m.load(a, 60000);
  EXPECT_EQ(r.served_by, ServedBy::kL2);
}

TEST(Hierarchy, DirtyL2VictimGoesToDramAsWrite) {
  MemoryHierarchy m(small_hierarchy());
  // Dirty one line, then stream enough distinct lines through its L2 set to
  // evict it; the dirty victim must appear as a DRAM write.
  m.store(0, 1000);
  Cycle t = 10000;
  for (int i = 1; i <= 8; ++i) {  // L2 set 0 has 4 ways (32 sets)
    m.load(static_cast<Addr>(i) * 32 * 64, t);
    t += 10000;
  }
  EXPECT_GE(m.dram_stats().writes, 1u);
}

TEST(Hierarchy, ServedByCountersAddUp) {
  MemoryHierarchy m(small_hierarchy());
  Cycle t = 1000;
  for (int i = 0; i < 50; ++i) {
    m.load(static_cast<Addr>(i % 10) * 64, t);
    t += 2000;
  }
  const HierarchyStats& s = m.stats();
  EXPECT_EQ(s.loads, 50u);
  EXPECT_EQ(s.served_l1 + s.served_l2 + s.served_dram, 50u);
}

TEST(Hierarchy, ResetStatsClearsAllLayers) {
  MemoryHierarchy m(small_hierarchy());
  m.load(0, 1000);
  m.store(64, 2000);
  m.reset_stats();
  EXPECT_EQ(m.stats().loads, 0u);
  EXPECT_EQ(m.l1_stats().accesses(), 0u);
  EXPECT_EQ(m.l2_stats().accesses(), 0u);
  EXPECT_EQ(m.dram_stats().reads + m.dram_stats().writes, 0u);
  // State survives: the line is still cached.
  const MemAccessResult r = m.load(0, 999999);
  EXPECT_EQ(r.served_by, ServedBy::kL1);
}

TEST(Hierarchy, EstimateIsOptimisticUnderContention) {
  MemoryHierarchy m(small_hierarchy());
  // Slam many distinct rows at the same cycle region: queueing and row
  // conflicts make true completion exceed the no-contention estimate (the
  // estimate assumes a closed-row access; row hits could undershoot it, so
  // the 16 KiB stride below guarantees every access opens a new row).
  Cycle t = 1000;
  int dram_count = 0;
  for (int i = 0; i < 64; ++i) {
    const MemAccessResult r = m.load(static_cast<Addr>(i) * 16384, t);
    if (r.served_by == ServedBy::kDram && !r.merged) {
      EXPECT_GE(r.complete, r.estimate);
      EXPECT_LE(r.commit, r.complete);
      ++dram_count;
    }
    ++t;
  }
  EXPECT_GT(dram_count, 32);
}

}  // namespace
}  // namespace mapg
