// Tests for multi-mode (light/deep) MAPG: the mode-selection rule, the
// controller's per-mode timing/accounting, and end-to-end behaviour across
// memory speeds.
#include <gtest/gtest.h>

#include "core/sim.h"
#include "exec/runner.h"
#include "pg/factory.h"
#include "pg/multimode.h"
#include "pg/pg_controller.h"

namespace mapg {
namespace {

PolicyContext ctx() {
  // Defaults of the repository circuit: deep {entry 6, wake 30, BET 47},
  // light {wake 12, BET 40 (3.5 nJ at 0.55 x 0.475 W)}, save frac 0.55.
  TechParams tech;
  const PgCircuit pg(PgCircuitConfig{}, tech);
  return PgController::make_context(pg);
}

StallEvent dram_stall(Cycle start, Cycle len) {
  StallEvent ev;
  ev.start = start;
  ev.data_ready = start + len;
  ev.commit = start;  // exact residual known at onset
  ev.estimate = ev.data_ready;
  ev.dram = true;
  return ev;
}

TEST(MultiMode, ContextCarriesLightModeFacts) {
  const PolicyContext c = ctx();
  EXPECT_GT(c.light_wakeup_latency, 0u);
  EXPECT_LT(c.light_wakeup_latency, c.wakeup_latency);
  EXPECT_GT(c.light_break_even, 0u);
  EXPECT_LT(c.light_break_even, c.break_even);
  EXPECT_NEAR(c.light_save_frac, 0.55, 1e-12);
}

TEST(MultiMode, NetFormulaMatchesHandAnalysis) {
  MultiModeMapgPolicy p(ctx());
  // Deep: net = (r - 6 - 30) - 47 in deep-rate units.
  EXPECT_NEAR(p.expected_net(183, SleepMode::kDeep), 100.0, 1e-9);
  // Very short stall: gated clamps to 0, pure BET loss.
  EXPECT_NEAR(p.expected_net(10, SleepMode::kDeep), -47.0, 1e-9);
  // Light: net = 0.55 * ((r - 6 - 12) - BET_light).
  const PolicyContext c = ctx();
  const double exp_light =
      0.55 * (183.0 - 18.0 - static_cast<double>(c.light_break_even));
  EXPECT_NEAR(p.expected_net(183, SleepMode::kLight), exp_light, 1e-9);
}

TEST(MultiMode, PicksNothingLightDeepByResidual) {
  MultiModeMapgPolicy p(ctx());
  const PolicyContext c = ctx();
  // Below the light horizon: no gating at all.
  StallEvent tiny = dram_stall(1000, c.light_break_even / 2);
  EXPECT_FALSE(p.should_gate(tiny));

  // Mid-band: light must beat deep.  Find the crossover numerically and
  // probe one point on each side.
  Cycle mid = 0, long_stall = 0;
  for (Cycle r = 1; r < 2000; ++r) {
    const double nd = p.expected_net(r, SleepMode::kDeep);
    const double nl = p.expected_net(r, SleepMode::kLight);
    if (mid == 0 && nl > 0 && nl > nd) mid = r;
    if (long_stall == 0 && nd > 0 && nd > nl) long_stall = r;
  }
  ASSERT_GT(mid, 0u);         // a light-wins band exists
  ASSERT_GT(long_stall, mid);  // and deep wins beyond it

  EXPECT_TRUE(p.should_gate(dram_stall(1000, mid)));
  EXPECT_EQ(p.sleep_mode(dram_stall(1000, mid)), SleepMode::kLight);
  EXPECT_TRUE(p.should_gate(dram_stall(1000, long_stall)));
  EXPECT_EQ(p.sleep_mode(dram_stall(1000, long_stall)), SleepMode::kDeep);
}

TEST(MultiMode, NeverGatesNonDram) {
  MultiModeMapgPolicy p(ctx());
  StallEvent l2 = dram_stall(1000, 500);
  l2.dram = false;
  EXPECT_FALSE(p.should_gate(l2));
}

TEST(MultiMode, ControllerUsesLightTiming) {
  TechParams tech;
  const PgCircuit circuit(PgCircuitConfig{}, tech);
  MultiModeMapgPolicy policy(PgController::make_context(circuit));
  PgController c(policy, circuit);

  // A mid-band stall: gated in light mode with the light wakeup latency.
  const PolicyContext pc = PgController::make_context(circuit);
  const Cycle mid_len = pc.entry_latency + pc.light_wakeup_latency +
                        pc.light_break_even + 10;
  ASSERT_EQ(policy.sleep_mode(dram_stall(1000, mid_len)), SleepMode::kLight);
  c.on_stall(dram_stall(1000, mid_len));
  const GatingActivity& a = c.activity();
  EXPECT_EQ(a.light_transitions, 1u);
  EXPECT_EQ(a.deep_transitions, 0u);
  EXPECT_EQ(a.wake_cycles, pc.light_wakeup_latency);
  EXPECT_GT(a.light_gated_cycles, 0u);

  // A long stall: deep this time.
  c.on_stall(dram_stall(100000, 400));
  EXPECT_EQ(c.activity().deep_transitions, 1u);
  EXPECT_EQ(c.activity().transitions, 2u);
  EXPECT_EQ(c.activity().light_gated_cycles +
                c.activity().deep_gated_cycles,
            c.activity().gated_cycles);
}

TEST(MultiMode, FactoryAndAblationListInclude) {
  auto p = make_policy("mapg-multimode", ctx());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "mapg-multimode");
  bool found = false;
  for (const auto& s : ablation_policy_specs()) found |= s == "mapg-multimode";
  EXPECT_TRUE(found);
}

TEST(MultiMode, EndToEndAtLeastAsGoodAsDeepOnlyWithFastMemory) {
  // Halve DRAM latencies: stalls shrink toward the deep-mode horizon, where
  // light sleep recovers energy deep-only MAPG must decline.
  SimConfig cfg;
  cfg.instructions = 300'000;
  cfg.warmup_instructions = 100'000;
  for (Cycle* t : {&cfg.mem.dram.t_rcd, &cfg.mem.dram.t_rp,
                   &cfg.mem.dram.t_cl, &cfg.mem.dram.t_ras})
    *t /= 2;
  ExperimentRunner runner(cfg);
  const WorkloadProfile* p = find_profile("libquantum-like");
  const Comparison deep_only = runner.compare_one(*p, "mapg");
  const Comparison multimode = runner.compare_one(*p, "mapg-multimode");
  EXPECT_GE(multimode.core_energy_savings,
            deep_only.core_energy_savings - 1e-6);
  EXPECT_LT(multimode.runtime_overhead, 0.01);
}

TEST(MultiMode, EndToEndConvergesToMapgOnSlowMemory) {
  SimConfig cfg;
  cfg.instructions = 300'000;
  cfg.warmup_instructions = 100'000;
  ExperimentRunner runner(cfg);
  const WorkloadProfile* p = find_profile("mcf-like");
  const Comparison deep_only = runner.compare_one(*p, "mapg");
  const Comparison multimode = runner.compare_one(*p, "mapg-multimode");
  // mcf stalls are uniformly far beyond the crossover: nearly every gating
  // lands in deep mode and the two policies agree within 2%.
  EXPECT_NEAR(multimode.core_energy_savings, deep_only.core_energy_savings,
              0.02);
  const auto& act = multimode.result.gating.activity;
  EXPECT_GT(act.deep_transitions, 10 * (act.light_transitions + 1));
}

}  // namespace
}  // namespace mapg
