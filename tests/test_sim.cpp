// Integration tests: full Simulator/ExperimentRunner runs across the policy
// stack, checking determinism, cross-component accounting consistency, the
// baseline-relative scoring, and the public custom-trace/custom-policy API.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/sim.h"
#include "exec/runner.h"
#include "trace/trace_io.h"

namespace mapg {
namespace {

SimConfig fast_config() {
  SimConfig cfg;
  cfg.instructions = 300'000;
  cfg.warmup_instructions = 100'000;
  return cfg;
}

TEST(Sim, DeterministicAcrossRuns) {
  const Simulator sim(fast_config());
  const WorkloadProfile* p = find_profile("mcf-like");
  ASSERT_NE(p, nullptr);
  const SimResult a = sim.run(*p, "mapg");
  const SimResult b = sim.run(*p, "mapg");
  EXPECT_EQ(a.core.cycles, b.core.cycles);
  EXPECT_EQ(a.gating.gated_events, b.gating.gated_events);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(Sim, SeedChangesOutcomeSlightly) {
  SimConfig cfg = fast_config();
  const WorkloadProfile* p = find_profile("mcf-like");
  const SimResult a = Simulator(cfg).run(*p, "none");
  cfg.run_seed = 43;
  const SimResult b = Simulator(cfg).run(*p, "none");
  EXPECT_NE(a.core.cycles, b.core.cycles);      // different trace
  // But the workload character is stable: cycles within 5%.
  const double ratio = static_cast<double>(a.core.cycles) /
                       static_cast<double>(b.core.cycles);
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(Sim, NoGatingHasNoActivityAndConservesCycles) {
  const Simulator sim(fast_config());
  const SimResult r = sim.run(*find_profile("omnetpp-like"), "none");
  EXPECT_EQ(r.gating.gated_events, 0u);
  EXPECT_EQ(r.gating.activity.transitions, 0u);
  EXPECT_EQ(r.energy.pg_overhead_j, 0.0);
  EXPECT_EQ(r.core.penalty_cycles, 0u);
  EXPECT_EQ(r.core.busy_cycles() + r.core.idle_cycles(), r.core.cycles);
}

TEST(Sim, PenaltyAccountingConsistentAcrossLayers) {
  const Simulator sim(fast_config());
  for (const char* spec : {"mapg", "mapg-noearly", "idle-timeout:64",
                           "oracle", "mapg-aggressive"}) {
    const SimResult r = sim.run(*find_profile("libquantum-like"), spec);
    EXPECT_EQ(r.core.penalty_cycles, r.gating.penalty_cycles) << spec;
    const GatingActivity& a = r.gating.activity;
    EXPECT_LE(a.gated_cycles + a.entry_cycles + a.wake_cycles,
              r.core.idle_cycles())
        << spec;
  }
}

TEST(Sim, OracleIsPerformanceNeutral) {
  const Simulator sim(fast_config());
  const WorkloadProfile* p = find_profile("mcf-like");
  const SimResult none = sim.run(*p, "none");
  const SimResult oracle = sim.run(*p, "oracle");
  EXPECT_EQ(none.core.cycles, oracle.core.cycles);
  EXPECT_EQ(none.core.instrs, oracle.core.instrs);
}

TEST(Sim, MapgEarlyWakeNearPerformanceNeutral) {
  const Simulator sim(fast_config());
  const WorkloadProfile* p = find_profile("mcf-like");
  const SimResult none = sim.run(*p, "none");
  const SimResult mapg = sim.run(*p, "mapg");
  const double overhead = static_cast<double>(mapg.core.cycles) /
                              static_cast<double>(none.core.cycles) -
                          1.0;
  EXPECT_LT(overhead, 0.01);  // paper claim: wakeup hidden by the MC notice
  EXPECT_GE(overhead, -0.005);  // DRAM alignment noise (see test_properties)
}

TEST(Sim, DynamicEnergyIndependentOfPolicy) {
  const Simulator sim(fast_config());
  const WorkloadProfile* p = find_profile("soplex-like");
  const SimResult none = sim.run(*p, "none");
  const SimResult mapg = sim.run(*p, "mapg");
  // Same trace, same committed instructions: identical dynamic energy.
  EXPECT_DOUBLE_EQ(none.energy.dynamic_j, mapg.energy.dynamic_j);
}

TEST(Sim, MapgSavesEnergyOnMemoryBound) {
  ExperimentRunner runner(fast_config());
  const Comparison c = runner.compare_one(*find_profile("mcf-like"), "mapg");
  EXPECT_GT(c.core_energy_savings, 0.25);  // tens of percent
  EXPECT_GT(c.net_leakage_savings, 0.30);
  EXPECT_LT(c.runtime_overhead, 0.01);
  EXPECT_GT(c.result.gated_time_fraction(), 0.3);
}

TEST(Sim, MapgNearZeroOnComputeBound) {
  ExperimentRunner runner(fast_config());
  const Comparison c =
      runner.compare_one(*find_profile("gamess-like"), "mapg");
  EXPECT_LT(c.result.gated_time_fraction(), 0.05);
  EXPECT_GE(c.core_energy_savings, -0.01);  // never materially worse
  EXPECT_LT(c.runtime_overhead, 0.005);
}

TEST(Sim, OracleBoundsMapgSavings) {
  ExperimentRunner runner(fast_config());
  for (const auto& profile : representative_profiles()) {
    const Comparison mapg = runner.compare_one(profile, "mapg");
    const Comparison oracle = runner.compare_one(profile, "oracle");
    // Oracle gates every profitable stall with perfect wake placement; a
    // tiny tolerance absorbs rounding in the scoring division.
    EXPECT_GE(oracle.net_leakage_savings,
              mapg.net_leakage_savings - 1e-9)
        << profile.name;
  }
}

TEST(Sim, IdleTimeoutFarBelowMapg) {
  ExperimentRunner runner(fast_config());
  const WorkloadProfile* p = find_profile("mcf-like");
  const Comparison mapg = runner.compare_one(*p, "mapg");
  const Comparison timeout = runner.compare_one(*p, "idle-timeout:64");
  // The reconstructed baseline: the 64-cycle timeout truncates each gated
  // interval AND the reactive wakeup stretches runtime by ~wakeup_latency
  // per stall, which buys back leakage everywhere.  Its end-to-end (core
  // energy) savings must be far below MAPG's, at much higher overhead.
  EXPECT_LT(timeout.core_energy_savings, 0.6 * mapg.core_energy_savings);
  EXPECT_GT(timeout.runtime_overhead, mapg.runtime_overhead + 0.05);
}

TEST(Sim, ThrowsOnUnknownPolicy) {
  const Simulator sim(fast_config());
  EXPECT_THROW(sim.run(*find_profile("mcf-like"), "bogus"),
               std::invalid_argument);
}

TEST(Sim, PolicyContextExposedAndPropagated) {
  const Simulator sim(fast_config());
  const PolicyContext ctx = sim.policy_context();
  EXPECT_GT(ctx.wakeup_latency, 0u);
  const SimResult r = sim.run(*find_profile("gcc-like"), "mapg");
  EXPECT_EQ(r.ctx.wakeup_latency, ctx.wakeup_latency);
  EXPECT_EQ(r.ctx.break_even, ctx.break_even);
}

TEST(Sim, CustomTraceAndPolicyThroughPublicApi) {
  // A user-supplied policy: gate only on Tuesdays (never), via the public
  // run(TraceSource&, ..., PgPolicy&) overload.
  class NeverPolicy final : public PgPolicy {
   public:
    using PgPolicy::PgPolicy;
    std::string name() const override { return "never"; }
    bool should_gate(const StallEvent&) override { return false; }
    WakeMode wake_mode() const override { return WakeMode::kReactive; }
  };

  SimConfig cfg = fast_config();
  cfg.warmup_instructions = 0;
  const Simulator sim(cfg);
  TraceGenerator gen(*find_profile("astar-like"), 7);
  LimitedTraceSource trace(gen, 50'000);
  NeverPolicy policy(sim.policy_context());
  const SimResult r = sim.run(trace, "custom", policy);
  EXPECT_EQ(r.policy, "never");
  EXPECT_EQ(r.workload, "custom");
  EXPECT_EQ(r.core.instrs, 50'000u);
  EXPECT_EQ(r.gating.gated_events, 0u);
}

TEST(Runner, BaselineIsCachedPerWorkload) {
  ExperimentRunner runner(fast_config());
  const WorkloadProfile* p = find_profile("bzip2-like");
  const SimResult& b1 = runner.baseline(*p);
  const SimResult& b2 = runner.baseline(*p);
  EXPECT_EQ(&b1, &b2);  // same cached object
}

TEST(Runner, ScoreAgainstSelfIsZero) {
  const Simulator sim(fast_config());
  const SimResult base = sim.run(*find_profile("hmmer-like"), "none");
  const Comparison c = score_against(base, base);
  EXPECT_NEAR(c.total_energy_savings, 0.0, 1e-12);
  EXPECT_NEAR(c.core_energy_savings, 0.0, 1e-12);
  EXPECT_NEAR(c.runtime_overhead, 0.0, 1e-12);
}

TEST(Runner, CompareReturnsRowPerSpec) {
  ExperimentRunner runner(fast_config());
  const auto rows =
      runner.compare(*find_profile("gcc-like"), standard_policy_specs());
  ASSERT_EQ(rows.size(), standard_policy_specs().size());
  EXPECT_EQ(rows[0].result.policy, "no-gating");
  EXPECT_NEAR(rows[0].core_energy_savings, 0.0, 1e-12);
}

TEST(Sim, StallHistogramConsistentWithCounters) {
  const Simulator sim(fast_config());
  const SimResult r = sim.run(*find_profile("milc-like"), "none");
  EXPECT_EQ(r.core.dram_stall_hist.total(), r.core.stalls_dram);
  EXPECT_GT(r.core.stalls_dram, 0u);
}

TEST(Sim, FileTraceReproducesGeneratorRun) {
  // Freeze a trace to disk, replay it, and require identical timing: the
  // end-to-end determinism contract of the trace I/O path.
  SimConfig cfg = fast_config();
  cfg.instructions = 100'000;
  cfg.warmup_instructions = 0;
  const Simulator sim(cfg);
  const WorkloadProfile* p = find_profile("omnetpp-like");

  TraceGenerator gen(*p, cfg.run_seed);
  const std::string path = ::testing::TempDir() + "mapg_sim_trace.bin";
  std::string err;
  ASSERT_TRUE(write_trace_file(path, gen, 100'000, &err)) << err;

  auto ctx = sim.policy_context();
  MapgPolicy policy(ctx, {});
  TraceGenerator gen2(*p, cfg.run_seed);
  const SimResult live = sim.run(gen2, "live", policy);

  std::vector<Instr> frozen;
  ASSERT_TRUE(read_trace_file(path, frozen, &err)) << err;
  VectorTraceSource replay(frozen);
  MapgPolicy policy2(ctx, {});
  const SimResult replayed = sim.run(replay, "replay", policy2);

  EXPECT_EQ(live.core.cycles, replayed.core.cycles);
  EXPECT_EQ(live.gating.gated_events, replayed.gating.gated_events);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mapg
