// Tests for the multicore substrate: scheduler correctness (single-core
// equivalence), shared-resource contention effects, per-core independence,
// energy aggregation, and input validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "multicore/multicore.h"
#include "trace/generator.h"
#include "trace/trace_io.h"

namespace mapg {
namespace {

MulticoreConfig fast_config(std::uint32_t cores) {
  MulticoreConfig cfg;
  cfg.num_cores = cores;
  cfg.instructions_per_core = 150'000;
  cfg.warmup_instructions = 50'000;
  return cfg;
}

std::vector<WorkloadProfile> profile(const std::string& name) {
  const WorkloadProfile* p = find_profile(name);
  EXPECT_NE(p, nullptr);
  return {*p};
}

TEST(Multicore, SingleCoreMatchesSimulatorExactly) {
  // One core, zero address offset: the multicore path must reproduce the
  // single-core Simulator cycle-for-cycle.
  MulticoreConfig mc_cfg = fast_config(1);
  const MulticoreSim mc(mc_cfg);
  const MulticoreResult mcr = mc.run(profile("mcf-like"), "mapg");

  SimConfig sc_cfg;
  sc_cfg.core = mc_cfg.core;
  sc_cfg.mem = mc_cfg.mem;
  sc_cfg.tech = mc_cfg.tech;
  sc_cfg.pg = mc_cfg.pg;
  sc_cfg.instructions = mc_cfg.instructions_per_core;
  sc_cfg.warmup_instructions = mc_cfg.warmup_instructions;
  sc_cfg.run_seed = mc_cfg.run_seed;
  const SimResult scr = Simulator(sc_cfg).run(*find_profile("mcf-like"),
                                              "mapg");

  ASSERT_EQ(mcr.cores.size(), 1u);
  EXPECT_EQ(mcr.cores[0].core.cycles, scr.core.cycles);
  EXPECT_EQ(mcr.cores[0].core.instrs, scr.core.instrs);
  EXPECT_EQ(mcr.cores[0].gating.gated_events, scr.gating.gated_events);
  EXPECT_EQ(mcr.dram.reads, scr.dram.reads);
}

TEST(Multicore, Deterministic) {
  const MulticoreSim mc(fast_config(4));
  const MulticoreResult a = mc.run(profile("omnetpp-like"), "mapg");
  const MulticoreResult b = mc.run(profile("omnetpp-like"), "mapg");
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    EXPECT_EQ(a.cores[i].core.cycles, b.cores[i].core.cycles);
    EXPECT_EQ(a.cores[i].gating.gated_events, b.cores[i].gating.gated_events);
  }
  EXPECT_DOUBLE_EQ(a.total_j(), b.total_j());
}

TEST(Multicore, CoresDrawIndependentTraces) {
  const MulticoreSim mc(fast_config(4));
  const MulticoreResult r = mc.run(profile("mcf-like"), "none");
  // Same profile, different seeds and offsets: cycle counts must differ
  // across cores (identical counts would mean accidentally shared streams).
  bool any_different = false;
  for (std::size_t i = 1; i < r.cores.size(); ++i)
    any_different |= r.cores[i].core.cycles != r.cores[0].core.cycles;
  EXPECT_TRUE(any_different);
}

TEST(Multicore, ContentionLengthensStalls) {
  // The same workload on 1 vs 8 cores: shared DRAM queueing must raise the
  // mean memory latency and lengthen per-core stalls.
  const MulticoreResult one =
      MulticoreSim(fast_config(1)).run(profile("libquantum-like"), "none");
  const MulticoreResult eight =
      MulticoreSim(fast_config(8)).run(profile("libquantum-like"), "none");
  EXPECT_GT(eight.dram.read_latency.mean(), one.dram.read_latency.mean());

  auto mean_stall = [](const CoreSlotResult& c) {
    return c.core.stalls_dram
               ? static_cast<double>(c.core.stall_cycles_dram) /
                     static_cast<double>(c.core.stalls_dram)
               : 0.0;
  };
  EXPECT_GT(mean_stall(eight.cores[0]), mean_stall(one.cores[0]));
}

TEST(Multicore, SharedL2ContentionRaisesMpki) {
  // gcc-like has a hot set that fits a 1 MiB L2 alone but not when eight
  // cores compete for the same capacity.
  const MulticoreResult one =
      MulticoreSim(fast_config(1)).run(profile("gcc-like"), "none");
  const MulticoreResult eight =
      MulticoreSim(fast_config(8)).run(profile("gcc-like"), "none");
  EXPECT_GT(eight.cores[0].mpki(), 1.5 * one.cores[0].mpki());
}

TEST(Multicore, MapgStillNearOracleUnderContention) {
  const MulticoreConfig cfg = fast_config(4);
  const auto w = profile("mcf-like");
  const MulticoreResult none = MulticoreSim(cfg).run(w, "none");
  const MulticoreResult mapg = MulticoreSim(cfg).run(w, "mapg");
  const MulticoreResult oracle = MulticoreSim(cfg).run(w, "oracle");

  EXPECT_LT(mapg.total_j(), none.total_j());
  EXPECT_LE(oracle.total_j(), mapg.total_j() * 1.02);
  EXPECT_GE(mapg.total_j(), oracle.total_j() * 0.98);
  EXPECT_GT(mapg.avg_gated_fraction(), 0.3);
}

TEST(Multicore, PerCoreAccountingInvariants) {
  const MulticoreSim mc(fast_config(4));
  const MulticoreResult r = mc.run(
      {*find_profile("mcf-like"), *find_profile("gamess-like")}, "mapg");
  ASSERT_EQ(r.cores.size(), 4u);
  // Workloads assigned round-robin.
  EXPECT_EQ(r.cores[0].workload, "mcf-like");
  EXPECT_EQ(r.cores[1].workload, "gamess-like");
  EXPECT_EQ(r.cores[2].workload, "mcf-like");

  for (const auto& c : r.cores) {
    EXPECT_EQ(c.core.busy_cycles() + c.core.idle_cycles(), c.core.cycles);
    EXPECT_EQ(c.core.penalty_cycles, c.gating.penalty_cycles);
    const GatingActivity& a = c.gating.activity;
    EXPECT_LE(a.gated_cycles + a.entry_cycles + a.wake_cycles,
              c.core.idle_cycles());
    // Per-core ungated leakage holds only the private L1 component.
    EXPECT_LT(c.energy.ungated_leak_j,
              0.2 * c.energy.core_leak_baseline_j + 1e-12);
    EXPECT_LE(c.core.cycles, r.makespan);
  }
  EXPECT_GT(r.shared_leak_j, 0.0);
  EXPECT_GT(r.total_j(), r.shared_leak_j);

  // The memory-bound cores gate heavily; the compute-bound ones barely.
  EXPECT_GT(r.cores[0].gated_time_fraction(), 0.2);
  EXPECT_LT(r.cores[1].gated_time_fraction(), 0.05);
}

TEST(Multicore, MakespanIsMaxCoreCycles) {
  const MulticoreSim mc(fast_config(3));
  const MulticoreResult r = mc.run(
      {*find_profile("mcf-like"), *find_profile("povray-like")}, "none");
  Cycle max_cycles = 0;
  for (const auto& c : r.cores)
    max_cycles = std::max(max_cycles, c.core.cycles);
  EXPECT_EQ(r.makespan, max_cycles);
  // mcf (memory-bound) needs far more cycles than povray for equal work —
  // though povray is itself slowed by mcf thrashing the shared L2.
  EXPECT_GT(r.cores[0].core.cycles, 2 * r.cores[1].core.cycles);
}

TEST(Multicore, RejectsBadInputs) {
  const MulticoreSim mc(fast_config(2));
  EXPECT_THROW(mc.run({}, "mapg"), std::invalid_argument);
  EXPECT_THROW(mc.run(profile("mcf-like"), "not-a-policy"),
               std::invalid_argument);

  MulticoreConfig tiny = fast_config(2);
  tiny.core_addr_stride = 1 << 20;  // smaller than mcf's working set
  EXPECT_THROW(MulticoreSim(tiny).run(profile("mcf-like"), "mapg"),
               std::invalid_argument);
}

std::vector<Instr> take(TraceSource& src, std::size_t n) {
  std::vector<Instr> v;
  v.reserve(n);
  Instr ins;
  while (v.size() < n && src.next(ins)) v.push_back(ins);
  return v;
}

TEST(Multicore, ExternalTraceEndingBeforeWarmupInvalidatesSlot) {
  // Three finite external traces: one covers the full quota, one ends
  // mid-measurement (valid, partial), one ends before the warmup target —
  // that slot must come back invalid with ZEROED stats, not with warmup
  // traffic frozen in as if it were measured.
  MulticoreConfig cfg = fast_config(3);
  const WorkloadProfile* p = find_profile("mcf-like");
  ASSERT_NE(p, nullptr);
  const std::uint64_t quota =
      cfg.warmup_instructions + cfg.instructions_per_core;

  TraceGenerator gen_full(*p, 1), gen_mid(*p, 2), gen_short(*p, 3);
  VectorTraceSource full(take(gen_full, quota));
  VectorTraceSource mid(
      take(gen_mid, cfg.warmup_instructions + cfg.instructions_per_core / 2));
  VectorTraceSource short_trace(take(gen_short, cfg.warmup_instructions / 2));

  const MulticoreResult r = MulticoreSim(cfg).run(
      {*p}, "mapg", {&full, &mid, &short_trace});
  ASSERT_EQ(r.cores.size(), 3u);

  EXPECT_TRUE(r.cores[0].valid);
  EXPECT_EQ(r.cores[0].core.instrs, cfg.instructions_per_core);

  EXPECT_TRUE(r.cores[1].valid);
  EXPECT_GT(r.cores[1].core.instrs, 0u);
  EXPECT_LT(r.cores[1].core.instrs, cfg.instructions_per_core);

  EXPECT_FALSE(r.cores[2].valid);
  EXPECT_EQ(r.cores[2].core.instrs, 0u);
  EXPECT_EQ(r.cores[2].core.cycles, 0u);
  EXPECT_EQ(r.cores[2].gating.gated_events, 0u);
}

TEST(Multicore, ExternalTracesValidated) {
  const MulticoreSim mc(fast_config(2));
  TraceGenerator gen(*find_profile("mcf-like"), 1);
  VectorTraceSource one(take(gen, 1000));
  // Wrong count and null entries are both rejected up front.
  EXPECT_THROW(mc.run(profile("mcf-like"), "mapg", {&one}),
               std::invalid_argument);
  EXPECT_THROW(mc.run(profile("mcf-like"), "mapg", {&one, nullptr}),
               std::invalid_argument);
}

TEST(Multicore, SharedStatsAggregateAllCores) {
  const MulticoreSim mc(fast_config(4));
  const MulticoreResult r = mc.run(profile("milc-like"), "none");
  std::uint64_t total_fills = 0;
  for (const auto& c : r.cores) total_fills += c.hier.dram_fills;
  // Every demand fill issued by any core is one read at the shared
  // controller.  The shared count additionally includes the tail traffic of
  // cores that finished their quota early but keep running while stragglers
  // complete, and misses a little traffic around the warmup reset — so the
  // two agree within a modest band rather than exactly.
  const double ratio = static_cast<double>(r.dram.reads) /
                       static_cast<double>(total_fills);
  EXPECT_GT(ratio, 0.90);
  EXPECT_LT(ratio, 1.25);
}

}  // namespace
}  // namespace mapg
