// Multi-process ResultCache stress: several engine PROCESSES (fork, not
// threads) share one cache directory while an adversary overwrites entries
// with garbage mid-run.  The cache's contract under fire:
//   * concurrent stores of the same key from different processes are safe
//     (atomic tmp+rename publication — no torn reads);
//   * a corrupt entry is a miss plus a disk_error, never a crash or a wrong
//     result — the cell is recomputed and the entry overwritten;
//   * after the dust settles, every result equals a cache-free reference
//     run byte for byte.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "exec/engine.h"
#include "exec/serialize.h"
#include "trace/profile.h"

namespace mapg {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("mapg_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

std::vector<ExperimentJob> stress_grid() {
  std::vector<ExperimentJob> jobs;
  for (const char* workload : {"mcf-like", "gcc-like"}) {
    for (const char* policy : {"none", "mapg"}) {
      for (std::uint64_t seed : {1, 2}) {
        ExperimentJob job;
        job.config.instructions = 30000;
        job.config.warmup_instructions = 5000;
        job.config.run_seed = seed;
        job.profile = *find_profile(workload);
        job.policy_spec = policy;
        jobs.push_back(job);
      }
    }
  }
  return jobs;
}

/// Child body: run the whole grid against the shared cache dir; 0 = every
/// cell ok.  Runs post-fork, so no gtest assertions — just an exit code.
int child_run(const std::string& cache_dir) {
  ExecOptions opts;
  opts.jobs = 2;
  opts.cache_dir = cache_dir;
  ExperimentEngine engine(opts);
  const std::vector<JobOutcome> outcomes = engine.run(stress_grid());
  for (const JobOutcome& out : outcomes)
    if (!out.ok || out.result == nullptr) return 1;
  return 0;
}

void corrupt_file(const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::trunc);
  os << "{\"this json never closes\": [1, 2,";
}

TEST(CacheStress, ConcurrentProcessesWithInjectedCorruption) {
  TempDir dir("cache_stress");
  const std::vector<ExperimentJob> jobs = stress_grid();

  // Reference bytes from a cache-free engine, before any forking.
  std::vector<std::string> reference;
  {
    ExecOptions opts;
    opts.jobs = 2;
    ExperimentEngine engine(opts);
    for (const JobOutcome& out : engine.run(jobs)) {
      ASSERT_TRUE(out.ok) << out.error;
      reference.push_back(result_to_json(*out.result).dump());
    }
  }

  std::vector<std::string> keys;
  for (const ExperimentJob& job : jobs)
    keys.push_back(cache_key(job.config, job.profile, job.policy_spec));

  constexpr int kProcesses = 3;
  std::vector<pid_t> children;
  for (int i = 0; i < kProcesses; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) ::_exit(child_run(dir.str()));
    children.push_back(pid);
  }

  // The adversary: while the children race each other storing entries,
  // repeatedly smash published entries with garbage and drop junk files
  // the cache never asked for.
  for (int round = 0; round < 40; ++round) {
    std::error_code ec;
    if (std::filesystem::exists(dir.path(), ec)) {
      corrupt_file(dir.path() / (keys[round % keys.size()] + ".json"));
      corrupt_file(dir.path() / "not-a-cache-entry.json");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child saw a failed or null cell";
  }

  // Leave every entry corrupt, then prove a fresh engine survives: each
  // corrupt read is a disk_error + miss, each cell recomputes, and the
  // bytes match the cache-free reference exactly.
  for (const std::string& key : keys)
    corrupt_file(dir.path() / (key + ".json"));
  ExecOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir.str();
  ExperimentEngine engine(opts);
  const std::vector<JobOutcome> outcomes = engine.run(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_EQ(result_to_json(*outcomes[i].result).dump(), reference[i]);
  }
  EXPECT_GE(engine.cache().stats().disk_errors, keys.size());
  EXPECT_EQ(engine.stats().jobs_run + engine.stats().jobs_replayed,
            jobs.size());

  // And the recomputation overwrote the smashed entries: a second fresh
  // engine now serves everything from disk without simulating.
  ExperimentEngine verify(opts);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobOutcome out = verify.run_one(jobs[i]);
    ASSERT_TRUE(out.ok);
    EXPECT_TRUE(out.from_cache);
    EXPECT_EQ(result_to_json(*out.result).dump(), reference[i]);
  }
  EXPECT_EQ(verify.stats().jobs_run, 0u);
}

}  // namespace
}  // namespace mapg
